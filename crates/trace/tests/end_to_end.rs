//! End-to-end trace tests against real kernel executions.

use vortex_core::LwsPolicy;
use vortex_kernels::{run_kernel_traced, Kernel, VecAdd};
use vortex_sim::{DeviceConfig, VecTraceSink};
use vortex_trace::{render_timeline, SectionLegend, Timeline, TimelineOptions, Trace, TraceStats};

fn traced_run(lws: u32) -> (Trace, vortex_asm::Program) {
    let mut kernel = VecAdd::new(128);
    let program = kernel.build().unwrap();
    let mut sink = VecTraceSink::new();
    run_kernel_traced(
        &mut kernel,
        &DeviceConfig::with_topology(1, 2, 4),
        LwsPolicy::Explicit(lws),
        Some(&mut sink),
    )
    .unwrap();
    (Trace::from_sink(sink), program)
}

#[test]
fn every_issue_lands_in_a_known_section() {
    let (trace, program) = traced_run(16);
    for event in trace.events() {
        assert!(program.section_at(event.pc).is_some(), "pc {:#x} has no section", event.pc);
    }
}

#[test]
fn multi_round_traces_repeat_the_spawn_section() {
    let (trace, program) = traced_run(1);
    let stats = TraceStats::compute(&trace, &program);
    assert_eq!(stats.wspawns, 16, "gws=128 over hp=8 at lws=1 is 16 rounds");
    assert_eq!(stats.barriers as usize, 16 * 2, "two warps meet each round barrier");

    let (trace, program) = traced_run(16);
    let stats = TraceStats::compute(&trace, &program);
    assert_eq!(stats.wspawns, 1, "exact fit spawns once");
}

#[test]
fn timeline_renders_every_active_warp() {
    let (trace, program) = traced_run(16);
    let timeline: Timeline = render_timeline(
        &trace,
        &program,
        0,
        "vecadd lws=16",
        TimelineOptions { width: 64, show_lane_counts: true },
    );
    // 2 warps x (section row + lane row).
    assert_eq!(timeline.rows().len(), 4);
    let text = timeline.to_text();
    for letter in ['d', 'w', 'b', 'y', 'x'] {
        assert!(text.contains(letter), "section letter {letter} missing:\n{text}");
    }
}

#[test]
fn legend_covers_harness_sections() {
    let (_, program) = traced_run(16);
    let legend = SectionLegend::for_program(&program);
    let line = legend.to_line();
    for kind in ["dispatch", "spawn", "worker", "body", "sync", "exit"] {
        assert!(line.contains(kind), "{kind} missing from legend: {line}");
    }
}

#[test]
fn trace_duration_brackets_run_time() {
    let (trace, _) = traced_run(16);
    assert!(trace.duration() > 0);
    assert!(trace.start().unwrap() >= 256, "dispatch overhead precedes first issue");
    assert!(trace.len() > 100, "a real kernel issues plenty of instructions");
}
