//! The versioned binary trace format (`.vxtr`) for recorded per-warp
//! event streams — the on-disk half of the record/replay engine.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    4 B   "VXTR"
//! version  u32   TRACE_FORMAT_VERSION
//! key      u64   caller-provided identity (see `docs/TRACE.md` keying)
//! flags    u32   bit 0 = tainted (run read a timing CSR)
//! cores    u32   recording topology
//! warps    u32   warps per core
//! launches u32   launch records (one per kernel phase)
//! length   u32   payload bytes
//! digest   u64   FNV-1a/64 over the payload bytes
//! payload        launches × (cores·warps) streams, each:
//!                  count u32, then `count` tagged events
//! ```
//!
//! Event encoding: tag `u8`, then the operands —
//! `0` Ctl (`next_pc u32`, `tmask u32`), `1` Halt, `2` Wspawn
//! (`count u32`, `target u32`), `3` Bar (`id u32`, `count u32`),
//! `4` MemSpan (`addr0 u32`, `last u32`, `store u8`), `5` MemLanes
//! (`n u8`, `n × addr u32`, `store u8`).
//!
//! The reader is truncation-tolerant: any byte-level damage — short
//! file, bad magic, foreign version, payload digest mismatch, an
//! unknown tag — yields a clean [`TraceDecodeError`], never a panic and
//! never a silently partial trace. A decoded trace is always complete.

use std::error::Error;
use std::fmt;

use vortex_sim::{LaunchRecord, RecordedTrace, WarpEvent};

/// Version stamp of the `.vxtr` byte format. Bump on **any** layout
/// change; readers reject other versions outright (re-recording a trace
/// is always cheaper than a misdecoded one).
pub const TRACE_FORMAT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"VXTR";
const HEADER_LEN: usize = 4 + 4 + 8 + 4 + 4 + 4 + 4 + 4 + 8;

/// Why a byte buffer failed to decode as a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceDecodeError {
    /// The buffer does not start with the `VXTR` magic.
    BadMagic,
    /// The file was written by a different format version.
    VersionMismatch {
        /// The version found in the header.
        found: u32,
    },
    /// The buffer ends before the structure it promises.
    Truncated,
    /// The payload digest does not match the header (bit rot or a
    /// torn write that slipped past the atomic-rename path).
    DigestMismatch,
    /// An event tag or operand is out of range.
    Corrupt,
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => f.write_str("not a VXTR trace file"),
            TraceDecodeError::VersionMismatch { found } => write!(
                f,
                "trace format version {found} (this build reads {TRACE_FORMAT_VERSION}); re-record"
            ),
            TraceDecodeError::Truncated => f.write_str("trace file truncated"),
            TraceDecodeError::DigestMismatch => f.write_str("trace payload digest mismatch"),
            TraceDecodeError::Corrupt => f.write_str("trace payload corrupt"),
        }
    }
}

impl Error for TraceDecodeError {}

/// FNV-1a/64 over `bytes` (the same function the campaign store keys
/// with, duplicated here so the format crate stays dependency-free).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn event_bytes(out: &mut Vec<u8>, ev: &WarpEvent) {
    match ev {
        WarpEvent::Ctl { next_pc, tmask } => {
            out.push(0);
            put_u32(out, *next_pc);
            put_u32(out, *tmask);
        }
        WarpEvent::Halt => out.push(1),
        WarpEvent::Wspawn { count, target } => {
            out.push(2);
            put_u32(out, *count);
            put_u32(out, *target);
        }
        WarpEvent::Bar { id, count } => {
            out.push(3);
            put_u32(out, *id);
            put_u32(out, *count);
        }
        WarpEvent::MemSpan { addr0, last, store } => {
            out.push(4);
            put_u32(out, *addr0);
            put_u32(out, *last);
            out.push(u8::from(*store));
        }
        WarpEvent::MemLanes { addrs, store } => {
            out.push(5);
            debug_assert!(addrs.len() <= 32, "SIMT width bounds the lane set");
            out.push(addrs.len() as u8);
            for &a in addrs {
                put_u32(out, a);
            }
            out.push(u8::from(*store));
        }
    }
}

/// Serialises `trace` under identity `key` into a self-describing,
/// digest-protected byte buffer.
pub fn encode_trace(key: u64, trace: &RecordedTrace) -> Vec<u8> {
    let mut payload = Vec::new();
    for launch in &trace.launches {
        for stream in launch.streams() {
            put_u32(&mut payload, stream.len() as u32);
            for ev in stream {
                event_bytes(&mut payload, ev);
            }
        }
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, TRACE_FORMAT_VERSION);
    out.extend_from_slice(&key.to_le_bytes());
    put_u32(&mut out, u32::from(trace.tainted));
    put_u32(&mut out, trace.cores as u32);
    put_u32(&mut out, trace.warps as u32);
    put_u32(&mut out, trace.launches.len() as u32);
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&fnv64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// A bounds-checked little-endian reader over the payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Result<u8, TraceDecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(TraceDecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, TraceDecodeError> {
        let end = self.pos.checked_add(4).ok_or(TraceDecodeError::Truncated)?;
        let s = self.bytes.get(self.pos..end).ok_or(TraceDecodeError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(s.try_into().expect("4-byte slice")))
    }

    fn event(&mut self) -> Result<WarpEvent, TraceDecodeError> {
        Ok(match self.u8()? {
            0 => WarpEvent::Ctl { next_pc: self.u32()?, tmask: self.u32()? },
            1 => WarpEvent::Halt,
            2 => WarpEvent::Wspawn { count: self.u32()?, target: self.u32()? },
            3 => WarpEvent::Bar { id: self.u32()?, count: self.u32()? },
            4 => WarpEvent::MemSpan { addr0: self.u32()?, last: self.u32()?, store: self.bool()? },
            5 => {
                let n = self.u8()? as usize;
                if n > 32 {
                    return Err(TraceDecodeError::Corrupt);
                }
                let mut addrs = Vec::with_capacity(n);
                for _ in 0..n {
                    addrs.push(self.u32()?);
                }
                WarpEvent::MemLanes { addrs, store: self.bool()? }
            }
            _ => return Err(TraceDecodeError::Corrupt),
        })
    }

    fn bool(&mut self) -> Result<bool, TraceDecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(TraceDecodeError::Corrupt),
        }
    }
}

/// Decodes a buffer produced by [`encode_trace`], returning the stored
/// key alongside the trace. The caller compares the key against the one
/// it expects — a mismatch means the file belongs to a different
/// (program, data, mapping, engine version) identity and must not be
/// replayed.
///
/// # Errors
///
/// Any structural damage decodes to a [`TraceDecodeError`]; no partial
/// trace is ever returned.
pub fn decode_trace(bytes: &[u8]) -> Result<(u64, RecordedTrace), TraceDecodeError> {
    if bytes.len() < HEADER_LEN {
        if bytes.len() >= 4 && &bytes[..4] != MAGIC {
            return Err(TraceDecodeError::BadMagic);
        }
        return Err(TraceDecodeError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let word = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().expect("header word"));
    let version = word(4);
    if version != TRACE_FORMAT_VERSION {
        return Err(TraceDecodeError::VersionMismatch { found: version });
    }
    let key = u64::from_le_bytes(bytes[8..16].try_into().expect("header key"));
    let flags = word(16);
    if flags > 1 {
        return Err(TraceDecodeError::Corrupt);
    }
    let cores = word(20) as usize;
    let warps = word(24) as usize;
    let launches = word(28) as usize;
    let payload_len = word(32) as usize;
    let digest = u64::from_le_bytes(bytes[36..44].try_into().expect("header digest"));
    if cores == 0 || warps == 0 || cores.checked_mul(warps).is_none() {
        return Err(TraceDecodeError::Corrupt);
    }
    let payload =
        bytes.get(HEADER_LEN..HEADER_LEN + payload_len).ok_or(TraceDecodeError::Truncated)?;
    if fnv64(payload) != digest {
        return Err(TraceDecodeError::DigestMismatch);
    }

    let mut r = Reader { bytes: payload, pos: 0 };
    let mut trace = RecordedTrace {
        cores,
        warps,
        tainted: flags & 1 != 0,
        launches: Vec::with_capacity(launches),
    };
    for _ in 0..launches {
        let mut streams = Vec::with_capacity(cores * warps);
        for _ in 0..cores * warps {
            let count = r.u32()? as usize;
            let mut stream = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                stream.push(r.event()?);
            }
            streams.push(stream);
        }
        trace.launches.push(LaunchRecord::from_streams(warps, streams));
    }
    if r.pos != payload.len() {
        // Trailing garbage protected by the digest would mean the writer
        // and reader disagree on the structure.
        return Err(TraceDecodeError::Corrupt);
    }
    Ok((key, trace))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RecordedTrace {
        let mut rec = LaunchRecord::new(2, 2);
        rec.push(0, 0, WarpEvent::Ctl { next_pc: 0x8000_0010, tmask: 0xF });
        rec.push(0, 0, WarpEvent::MemSpan { addr0: 0x1000, last: 0x103C, store: false });
        rec.push(0, 1, WarpEvent::Wspawn { count: 2, target: 0x8000_0000 });
        rec.push(1, 0, WarpEvent::Bar { id: 0, count: 2 });
        rec.push(1, 1, WarpEvent::MemLanes { addrs: vec![0x2000, 0x2100, 0x2040], store: true });
        rec.push(1, 1, WarpEvent::Halt);
        let mut second = LaunchRecord::new(2, 2);
        second.push(0, 0, WarpEvent::Halt);
        RecordedTrace { cores: 2, warps: 2, tainted: false, launches: vec![rec, second] }
    }

    #[test]
    fn roundtrip_is_lossless() {
        let trace = sample();
        let bytes = encode_trace(0xDEAD_BEEF_0123_4567, &trace);
        let (key, decoded) = decode_trace(&bytes).unwrap();
        assert_eq!(key, 0xDEAD_BEEF_0123_4567);
        assert_eq!(decoded, trace);
    }

    #[test]
    fn tainted_flag_survives() {
        let mut trace = sample();
        trace.tainted = true;
        let (_, decoded) = decode_trace(&encode_trace(1, &trace)).unwrap();
        assert!(decoded.tainted);
    }

    #[test]
    fn header_golden_bytes() {
        // Pin the exact header layout: any byte-level drift is a format
        // change and must bump TRACE_FORMAT_VERSION.
        let bytes = encode_trace(0x0102_0304_0506_0708, &sample());
        assert_eq!(&bytes[..4], b"VXTR");
        assert_eq!(bytes[4..8], 1u32.to_le_bytes());
        assert_eq!(bytes[8..16], 0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(bytes[16..20], 0u32.to_le_bytes()); // untainted
        assert_eq!(bytes[20..24], 2u32.to_le_bytes()); // cores
        assert_eq!(bytes[24..28], 2u32.to_le_bytes()); // warps
        assert_eq!(bytes[28..32], 2u32.to_le_bytes()); // launches
                                                       // Golden payload digest: pins the event encoding end to end.
        let payload_len = u32::from_le_bytes(bytes[32..36].try_into().unwrap()) as usize;
        assert_eq!(HEADER_LEN + payload_len, bytes.len());
        let digest = u64::from_le_bytes(bytes[36..44].try_into().unwrap());
        assert_eq!(digest, fnv64(&bytes[HEADER_LEN..]));
        assert_eq!(digest, 0xdad9_d81e_c36d_fee0, "payload encoding drifted");
    }

    #[test]
    fn foreign_versions_are_rejected() {
        let mut bytes = encode_trace(7, &sample());
        bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
        assert_eq!(
            decode_trace(&bytes).unwrap_err(),
            TraceDecodeError::VersionMismatch { found: 2 }
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode_trace(7, &sample());
        bytes[0] = b'X';
        assert_eq!(decode_trace(&bytes).unwrap_err(), TraceDecodeError::BadMagic);
        assert_eq!(decode_trace(b"XO").unwrap_err(), TraceDecodeError::Truncated);
    }

    #[test]
    fn every_truncation_point_fails_cleanly() {
        let bytes = encode_trace(7, &sample());
        for len in 0..bytes.len() {
            let err = decode_trace(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, TraceDecodeError::Truncated | TraceDecodeError::DigestMismatch),
                "prefix of {len} bytes: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_is_detected() {
        let mut bytes = encode_trace(7, &sample());
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        assert_eq!(decode_trace(&bytes).unwrap_err(), TraceDecodeError::DigestMismatch);
    }
}
