//! The queryable trace container.

use vortex_sim::Cycle;
use vortex_sim::{IssueEvent, VecTraceSink};

/// An ordered collection of issue events from one or more launches.
///
/// # Examples
///
/// ```
/// use vortex_trace::Trace;
/// let trace = Trace::from_events(Vec::new());
/// assert_eq!(trace.duration(), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    events: Vec<IssueEvent>,
}

impl Trace {
    /// Wraps raw events (kept in arrival order).
    pub fn from_events(events: Vec<IssueEvent>) -> Self {
        Trace { events }
    }

    /// Consumes a [`VecTraceSink`].
    pub fn from_sink(sink: VecTraceSink) -> Self {
        Trace::from_events(sink.into_events())
    }

    /// All events.
    pub fn events(&self) -> &[IssueEvent] {
        &self.events
    }

    /// Number of issue events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// First issue cycle, if any.
    pub fn start(&self) -> Option<Cycle> {
        self.events.iter().map(|e| e.cycle).min()
    }

    /// Last issue cycle, if any.
    pub fn end(&self) -> Option<Cycle> {
        self.events.iter().map(|e| e.cycle).max()
    }

    /// Span between the first and last issue (0 when empty).
    pub fn duration(&self) -> Cycle {
        match (self.start(), self.end()) {
            (Some(s), Some(e)) => e - s + 1,
            _ => 0,
        }
    }

    /// Cores that issued at least one instruction, ascending.
    pub fn cores(&self) -> Vec<usize> {
        let mut cores: Vec<usize> = self.events.iter().map(|e| e.core).collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Warps of `core` that issued at least one instruction, ascending.
    pub fn warps(&self, core: usize) -> Vec<usize> {
        let mut warps: Vec<usize> =
            self.events.iter().filter(|e| e.core == core).map(|e| e.warp).collect();
        warps.sort_unstable();
        warps.dedup();
        warps
    }

    /// Events of one warp, in issue order.
    pub fn warp_events(&self, core: usize, warp: usize) -> impl Iterator<Item = &IssueEvent> {
        self.events.iter().filter(move |e| e.core == core && e.warp == warp)
    }

    /// Mean active lanes per issue, normalised by `threads` (0..=1).
    pub fn lane_utilization(&self, threads: usize) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        let lanes: u64 = self.events.iter().map(|e| u64::from(e.active_lanes())).sum();
        lanes as f64 / (self.events.len() as f64 * threads as f64)
    }
}

impl From<VecTraceSink> for Trace {
    fn from(sink: VecTraceSink) -> Self {
        Trace::from_sink(sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::Instr;

    fn ev(cycle: Cycle, core: usize, warp: usize, tmask: u32) -> IssueEvent {
        IssueEvent { cycle, core, warp, pc: 0x8000_0000, tmask, instr: Instr::Join }
    }

    #[test]
    fn span_and_indexing() {
        let t = Trace::from_events(vec![ev(5, 0, 0, 0xF), ev(9, 0, 1, 0x3), ev(7, 1, 0, 0x1)]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.start(), Some(5));
        assert_eq!(t.end(), Some(9));
        assert_eq!(t.duration(), 5);
        assert_eq!(t.cores(), vec![0, 1]);
        assert_eq!(t.warps(0), vec![0, 1]);
        assert_eq!(t.warp_events(0, 1).count(), 1);
    }

    #[test]
    fn utilization_counts_lanes() {
        let t = Trace::from_events(vec![ev(0, 0, 0, 0xF), ev(1, 0, 0, 0x1)]);
        // (4 + 1) / (2 * 4)
        assert!((t.lane_utilization(4) - 5.0 / 8.0).abs() < 1e-12);
        assert_eq!(Trace::default().lane_utilization(4), 0.0);
    }
}
