//! ASCII timeline rendering — the paper's Fig. 1 panels in a terminal.

use vortex_asm::Program;

use crate::sections::{section_letter, SectionLegend};
use crate::trace::Trace;

/// Rendering options for [`render_timeline`].
#[derive(Copy, Clone, Debug)]
pub struct TimelineOptions {
    /// Number of time bins (columns).
    pub width: usize,
    /// Also render a per-warp active-lane-count row.
    pub show_lane_counts: bool,
}

impl Default for TimelineOptions {
    fn default() -> Self {
        TimelineOptions { width: 96, show_lane_counts: true }
    }
}

/// A rendered timeline, one pair of rows per warp.
#[derive(Clone, Debug)]
pub struct Timeline {
    header: String,
    legend: String,
    rows: Vec<String>,
}

impl Timeline {
    /// The full plot as one string.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header);
        out.push('\n');
        out.push_str(&self.legend);
        out.push('\n');
        for row in &self.rows {
            out.push_str(row);
            out.push('\n');
        }
        out
    }

    /// The per-warp rows.
    pub fn rows(&self) -> &[String] {
        &self.rows
    }
}

impl std::fmt::Display for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// Renders the issue activity of one core as warp rows over binned time.
///
/// Each column is `duration / width` cycles. The section row shows the
/// dominant code section per bin (see [`SectionLegend`]); the count row
/// shows the maximum number of active lanes per bin in base-32 (`1`–`9`,
/// then `a`–`w`), `.` meaning idle. This carries the same information as
/// the paper's Fig. 1: *when* each warp issued, *what phase* of the code
/// it was in, and *how many threads* were enabled.
pub fn render_timeline(
    trace: &Trace,
    program: &Program,
    core: usize,
    title: &str,
    options: TimelineOptions,
) -> Timeline {
    let width = options.width.max(8);
    let start = trace.start().unwrap_or(0);
    let duration = trace.duration().max(1);
    let bin_of = |cycle: u64| -> usize {
        (((cycle - start) as u128 * width as u128 / duration as u128) as usize).min(width - 1)
    };

    let header = format!(
        "{title} — core {core}: {} issues over {} cycles (cycles {}..{})",
        trace.events().iter().filter(|e| e.core == core).count(),
        duration,
        start,
        start + duration - 1,
    );
    let legend = format!("sections: {}   lanes: 1-9,a-w   .=idle", {
        SectionLegend::for_program(program).to_line()
    });

    let mut rows = Vec::new();
    for warp in trace.warps(core) {
        let mut section_bins: Vec<Option<char>> = vec![None; width];
        let mut lane_bins: Vec<u32> = vec![0; width];
        for event in trace.warp_events(core, warp) {
            let bin = bin_of(event.cycle);
            // Last event in the bin wins for the section (cheap dominant).
            section_bins[bin] = Some(section_letter(program, event.pc));
            lane_bins[bin] = lane_bins[bin].max(event.active_lanes());
        }
        let section_row: String = section_bins.iter().map(|slot| slot.unwrap_or('.')).collect();
        rows.push(format!("w{warp:<2}|{section_row}|"));
        if options.show_lane_counts {
            let count_row: String = lane_bins
                .iter()
                .map(|&n| match n {
                    0 => '.',
                    1..=9 => char::from_digit(n, 10).expect("single digit"),
                    _ => char::from_u32('a' as u32 + n - 10).unwrap_or('+'),
                })
                .collect();
            rows.push(format!("  #|{count_row}|"));
        }
    }
    Timeline { header, legend, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_asm::Assembler;
    use vortex_isa::{reg, Instr};
    use vortex_sim::IssueEvent;

    fn tiny_program() -> Program {
        let mut a = Assembler::new(0);
        a.section("k.dispatch");
        a.nop();
        a.section("k.body");
        a.nop();
        a.assemble().unwrap()
    }

    fn ev(cycle: u64, warp: usize, pc: u32, tmask: u32) -> IssueEvent {
        IssueEvent { cycle, core: 0, warp, pc, tmask, instr: Instr::Fence }
    }

    #[test]
    fn renders_rows_per_warp() {
        let program = tiny_program();
        let trace =
            Trace::from_events(vec![ev(0, 0, 0x0, 0xF), ev(10, 0, 0x4, 0xF), ev(5, 1, 0x4, 0x3)]);
        let timeline = render_timeline(
            &trace,
            &program,
            0,
            "test",
            TimelineOptions { width: 20, show_lane_counts: true },
        );
        assert_eq!(timeline.rows().len(), 4); // 2 warps x 2 rows
        let text = timeline.to_text();
        assert!(text.contains("d"), "dispatch letter shown: {text}");
        assert!(text.contains("b"), "body letter shown: {text}");
        assert!(text.contains('4'), "4 active lanes shown: {text}");
        assert!(text.contains('2'), "2 active lanes shown: {text}");
    }

    #[test]
    fn empty_core_renders_header_only() {
        let program = tiny_program();
        let trace = Trace::from_events(vec![]);
        let timeline = render_timeline(&trace, &program, 0, "empty", TimelineOptions::default());
        assert!(timeline.rows().is_empty());
        assert!(timeline.to_text().contains("0 issues"));
    }

    #[test]
    fn wide_masks_use_letters() {
        let program = tiny_program();
        let trace = Trace::from_events(vec![ev(0, 0, 0x0, u32::MAX)]);
        let timeline = render_timeline(
            &trace,
            &program,
            0,
            "wide",
            TimelineOptions { width: 8, show_lane_counts: true },
        );
        // 32 lanes -> 'w'
        assert!(timeline.to_text().contains('w'));
    }

    #[test]
    fn reg_import_is_used() {
        // Silence potential unused warnings for the helper import.
        let _ = reg::ZERO;
    }
}
