//! Aggregate statistics computed from a trace.

use std::collections::BTreeMap;

use vortex_asm::Program;
use vortex_sim::Cycle;

use crate::trace::Trace;

/// Per-section and per-warp aggregates for one trace — the numbers the
/// paper reads off its Fig. 1 panels (how much time goes to dispatch
/// overhead vs. kernel body, and how many spawn rounds ran).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Issue counts per section kind (`dispatch`, `body`, …).
    pub per_section: BTreeMap<String, u64>,
    /// Total issues.
    pub instructions: u64,
    /// Number of in-kernel dispatch rounds observed (`vx_wspawn` issues,
    /// plus one for single-warp rounds detected by sync-section visits).
    pub wspawns: u64,
    /// Barrier instructions issued.
    pub barriers: u64,
    /// Span from first to last issue.
    pub duration: Cycle,
}

impl TraceStats {
    /// Computes statistics for `trace` against the program that produced
    /// it (for section attribution).
    pub fn compute(trace: &Trace, program: &Program) -> Self {
        let mut per_section: BTreeMap<String, u64> = BTreeMap::new();
        let mut wspawns = 0;
        let mut barriers = 0;
        for event in trace.events() {
            let name = program
                .section_at(event.pc)
                .map(|s| s.name.rsplit('.').next().unwrap_or(&s.name).to_owned())
                .unwrap_or_else(|| "?".to_owned());
            *per_section.entry(name).or_default() += 1;
            match event.instr {
                vortex_isa::Instr::Wspawn { .. } => wspawns += 1,
                vortex_isa::Instr::Bar { .. } => barriers += 1,
                _ => {}
            }
        }
        TraceStats {
            per_section,
            instructions: trace.len() as u64,
            wspawns,
            barriers,
            duration: trace.duration(),
        }
    }

    /// Fraction of issues attributed to the kernel body (useful work).
    pub fn body_fraction(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        let body = self.per_section.get("body").copied().unwrap_or(0);
        body as f64 / self.instructions as f64
    }

    /// Fraction of issues that are mapping overhead (everything that is
    /// not body).
    pub fn overhead_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1.0 - self.body_fraction()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_asm::Assembler;
    use vortex_isa::{reg, Instr};
    use vortex_sim::IssueEvent;

    #[test]
    fn sections_and_rounds_are_counted() {
        let mut a = Assembler::new(0);
        a.section("k.dispatch");
        a.vx_wspawn(reg::T0, reg::T1); // 0x0
        a.section("k.body");
        a.nop(); // 0x4
        a.nop(); // 0x8
        a.section("k.sync");
        a.vx_bar(reg::T0, reg::T1); // 0xC
        let p = a.assemble().unwrap();

        let mk = |cycle, pc, instr| IssueEvent { cycle, core: 0, warp: 0, pc, tmask: 1, instr };
        let trace = Trace::from_events(vec![
            mk(0, 0x0, Instr::Wspawn { rs1: reg::T0, rs2: reg::T1 }),
            mk(1, 0x4, Instr::Fence),
            mk(2, 0x8, Instr::Fence),
            mk(3, 0xC, Instr::Bar { rs1: reg::T0, rs2: reg::T1 }),
        ]);
        let stats = TraceStats::compute(&trace, &p);
        assert_eq!(stats.instructions, 4);
        assert_eq!(stats.wspawns, 1);
        assert_eq!(stats.barriers, 1);
        assert_eq!(stats.per_section.get("body"), Some(&2));
        assert!((stats.body_fraction() - 0.5).abs() < 1e-12);
        assert!((stats.overhead_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(stats.duration, 4);
    }
}
