//! Mapping instruction addresses to semantic section tags.

use vortex_asm::Program;

/// The canonical single-letter codes for the harness's section kinds,
/// used in timeline rendering (the paper's Fig. 1 tags the same phases).
const KIND_LETTERS: &[(&str, char)] = &[
    ("dispatch", 'd'),
    ("spawn", 's'),
    ("worker", 'w'),
    ("body", 'b'),
    ("sync", 'y'),
    ("exit", 'x'),
];

/// Single-letter tag for the section containing `pc` (`'.'` when the
/// address has no section).
///
/// Section names of the form `"<kernel>.<kind>"` map by kind; other names
/// map to their first character.
pub fn section_letter(program: &Program, pc: u32) -> char {
    match program.section_at(pc) {
        None => '.',
        Some(section) => {
            let kind = section.name.rsplit('.').next().unwrap_or(&section.name);
            KIND_LETTERS
                .iter()
                .find(|(name, _)| *name == kind)
                .map(|&(_, letter)| letter)
                .or_else(|| kind.chars().next())
                .unwrap_or('?')
        }
    }
}

/// A human-readable legend for the section letters present in a program.
#[derive(Clone, Debug)]
pub struct SectionLegend {
    entries: Vec<(char, String)>,
}

impl SectionLegend {
    /// Builds the legend from a program's section table.
    pub fn for_program(program: &Program) -> Self {
        let mut entries: Vec<(char, String)> = Vec::new();
        for section in program.sections() {
            let letter = section_letter(program, section.start);
            if !entries.iter().any(|(l, _)| *l == letter) {
                let kind = section.name.rsplit('.').next().unwrap_or(&section.name).to_owned();
                entries.push((letter, kind));
            }
        }
        SectionLegend { entries }
    }

    /// `(letter, kind)` pairs in program order.
    pub fn entries(&self) -> &[(char, String)] {
        &self.entries
    }

    /// Renders `d=dispatch s=spawn …`.
    pub fn to_line(&self) -> String {
        self.entries.iter().map(|(l, name)| format!("{l}={name}")).collect::<Vec<_>>().join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_asm::Assembler;
    use vortex_isa::reg;

    fn program_with_sections() -> Program {
        let mut a = Assembler::new(0x1000);
        a.section("k.dispatch");
        a.nop();
        a.section("k.body");
        a.nop();
        a.nop();
        a.section("k.exit");
        a.vx_tmc(reg::ZERO);
        a.assemble().unwrap()
    }

    #[test]
    fn letters_follow_kind() {
        let p = program_with_sections();
        assert_eq!(section_letter(&p, 0x1000), 'd');
        assert_eq!(section_letter(&p, 0x1004), 'b');
        assert_eq!(section_letter(&p, 0x1008), 'b');
        assert_eq!(section_letter(&p, 0x100C), 'x');
        assert_eq!(section_letter(&p, 0x2000), '.');
    }

    #[test]
    fn legend_lists_each_kind_once() {
        let p = program_with_sections();
        let legend = SectionLegend::for_program(&p);
        let line = legend.to_line();
        assert!(line.contains("d=dispatch"));
        assert!(line.contains("b=body"));
        assert!(line.contains("x=exit"));
        assert_eq!(legend.entries().len(), 3);
    }
}
