//! Execution-trace analysis and rendering — the paper's Figure 1.
//!
//! The paper's methodology is built on *trace observations*: per-issue
//! records of timestamp, PC, warp and active thread mask, with instruction
//! addresses tagged by semantic code section. This crate turns the raw
//! [`IssueEvent`] stream of the simulator into:
//!
//! * a queryable [`Trace`] (spans, per-warp streams, occupancy),
//! * [`TraceStats`] (per-section instruction counts, dispatch-round
//!   counts, lane utilisation), and
//! * an ASCII [`Timeline`] — warp rows over binned time, showing the
//!   dominant code section and the number of active lanes per bin, which
//!   is exactly the information content of the paper's Fig. 1 panels.
//!
//! # Examples
//!
//! ```
//! use vortex_trace::Trace;
//! use vortex_sim::{IssueEvent, VecTraceSink};
//!
//! let trace = Trace::from_events(Vec::new());
//! assert!(trace.is_empty());
//! ```

#![forbid(unsafe_code)]

mod format;
mod render;
mod sections;
mod stats;
mod trace;

pub use format::{decode_trace, encode_trace, TraceDecodeError, TRACE_FORMAT_VERSION};
pub use render::{render_timeline, Timeline, TimelineOptions};
pub use sections::{section_letter, SectionLegend};
pub use stats::TraceStats;
pub use trace::Trace;

pub use vortex_sim::{IssueEvent, TraceSink, VecTraceSink};
