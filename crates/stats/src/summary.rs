//! Ratio-distribution summaries (the data tables under each Fig. 2 panel).

/// Summary of a set of `baseline / ours` cycle ratios.
///
/// `avg` > 1 means the tuned mapping wins on average; `worst` is the
/// single most unfavourable configuration; `pct_below_one` is the paper's
/// "worse: x%" annotation (fraction of configurations where the baseline
/// beat the tuned mapping).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct RatioSummary {
    /// Arithmetic mean ratio.
    pub avg: f64,
    /// Minimum ratio (worst case for the tuned mapping).
    pub worst: f64,
    /// Maximum ratio (best case).
    pub best: f64,
    /// Median ratio.
    pub median: f64,
    /// Fraction of ratios `< 1` in `0..=1`.
    pub pct_below_one: f64,
    /// Sample count.
    pub count: usize,
}

impl RatioSummary {
    /// Computes the summary; returns a zeroed summary for empty input.
    pub fn from_ratios(ratios: impl IntoIterator<Item = f64>) -> Self {
        let mut values: Vec<f64> = ratios.into_iter().filter(|r| r.is_finite()).collect();
        if values.is_empty() {
            return RatioSummary {
                avg: 0.0,
                worst: 0.0,
                best: 0.0,
                median: 0.0,
                pct_below_one: 0.0,
                count: 0,
            };
        }
        values.sort_by(|a, b| a.total_cmp(b));
        let count = values.len();
        let sum: f64 = values.iter().sum();
        let below = values.iter().filter(|&&r| r < 1.0).count();
        let median = if count % 2 == 1 {
            values[count / 2]
        } else {
            (values[count / 2 - 1] + values[count / 2]) / 2.0
        };
        RatioSummary {
            avg: sum / count as f64,
            worst: values[0],
            best: values[count - 1],
            median,
            pct_below_one: below as f64 / count as f64,
            count,
        }
    }

    /// Renders the paper's three-line annotation
    /// (`avg: … / worse: …% / worst: …`).
    pub fn annotation(&self) -> String {
        format!(
            "avg: {:.2}  worse: {:.1}%  worst: {:.2}",
            self.avg,
            self.pct_below_one * 100.0,
            self.worst
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = RatioSummary::from_ratios([1.0, 2.0, 3.0, 0.5]);
        assert_eq!(s.count, 4);
        assert!((s.avg - 6.5 / 4.0).abs() < 1e-12);
        assert_eq!(s.worst, 0.5);
        assert_eq!(s.best, 3.0);
        assert!((s.median - 1.5).abs() < 1e-12);
        assert!((s.pct_below_one - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zeroed() {
        let s = RatioSummary::from_ratios(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.avg, 0.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let s = RatioSummary::from_ratios([1.0, f64::INFINITY, f64::NAN, 3.0]);
        assert_eq!(s.count, 2);
        assert!((s.avg - 2.0).abs() < 1e-12);
    }

    #[test]
    fn annotation_matches_paper_format() {
        let s = RatioSummary::from_ratios([1.42, 1.42]);
        let a = s.annotation();
        assert!(a.contains("avg: 1.42"));
        assert!(a.contains("worse: 0.0%"));
        assert!(a.contains("worst: 1.42"));
    }

    #[test]
    fn odd_median() {
        let s = RatioSummary::from_ratios([3.0, 1.0, 2.0]);
        assert_eq!(s.median, 2.0);
    }
}
