//! Distribution binning and glyph rendering (the violin bodies of Fig. 2).

/// A binned ratio distribution over a fixed range, with overflow/underflow
/// accounting — the data behind one side of a Fig. 2 violin.
#[derive(Clone, Debug, PartialEq)]
pub struct Violin {
    lo: f64,
    hi: f64,
    bins: Vec<u32>,
    overflow: u32,
    total: u32,
}

impl Violin {
    /// Bins `values` into `bins` equal-width cells over `[lo, hi)`.
    /// Values `>= hi` are counted as overflow (the paper clips at 4).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn from_values(
        values: impl IntoIterator<Item = f64>,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "range must be non-empty");
        let mut v = Violin { lo, hi, bins: vec![0; bins], overflow: 0, total: 0 };
        let width = (hi - lo) / bins as f64;
        for x in values {
            if !x.is_finite() {
                continue;
            }
            v.total += 1;
            if x >= hi {
                v.overflow += 1;
            } else {
                let idx = (((x - lo) / width).floor().max(0.0) as usize).min(bins - 1);
                v.bins[idx] += 1;
            }
        }
        v
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// Values clipped at the top of the range (the paper's "results > 4
    /// are omitted").
    pub fn overflow(&self) -> u32 {
        self.overflow
    }

    /// Total finite samples.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// The bin index containing `value`, if inside the range.
    pub fn bin_of(&self, value: f64) -> Option<usize> {
        if value < self.lo || value >= self.hi {
            return None;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        Some((((value - self.lo) / width) as usize).min(self.bins.len() - 1))
    }

    /// Renders the density as a row of glyphs (` ▁▂▃▄▅▆▇█`), normalised to
    /// the modal bin.
    pub fn render(&self) -> String {
        const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let peak = self.bins.iter().copied().max().unwrap_or(0);
        if peak == 0 {
            return " ".repeat(self.bins.len());
        }
        self.bins
            .iter()
            .map(|&count| {
                let level = (count as usize * (GLYPHS.len() - 1)).div_ceil(peak as usize);
                GLYPHS[level.min(GLYPHS.len() - 1)]
            })
            .collect()
    }
}

/// Renders one labelled violin row: density glyphs, a `|` marker at ratio
/// 1 (the paper's bold red line) and the overflow share.
///
/// # Examples
///
/// ```
/// use vortex_stats::render_violin_row;
/// let row = render_violin_row("vecadd  lws=1/ours", [1.0f64, 1.4, 1.4, 2.0], 40);
/// assert!(row.contains("vecadd"));
/// ```
pub fn render_violin_row(
    label: &str,
    values: impl IntoIterator<Item = f64>,
    bins: usize,
) -> String {
    let violin = Violin::from_values(values, 0.0, 4.0, bins);
    let glyphs = violin.render();
    // Place the ratio-1 marker.
    let marker_bin = violin.bin_of(1.0).unwrap_or(0);
    let mut with_marker = String::new();
    for (i, g) in glyphs.chars().enumerate() {
        if i == marker_bin {
            with_marker.push('|');
        } else {
            with_marker.push(g);
        }
    }
    let over = if violin.overflow() > 0 {
        format!("  (+{} > 4.0)", violin.overflow())
    } else {
        String::new()
    };
    format!("{label:<28} 0[{with_marker}]4{over}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_counts_and_overflow() {
        let v = Violin::from_values([0.1, 0.9, 1.1, 3.9, 4.0, 7.0], 0.0, 4.0, 4);
        assert_eq!(v.bins(), &[2, 1, 0, 1]);
        assert_eq!(v.overflow(), 2);
        assert_eq!(v.total(), 6);
    }

    #[test]
    fn bin_of_places_values() {
        let v = Violin::from_values(std::iter::empty(), 0.0, 4.0, 40);
        assert_eq!(v.bin_of(0.0), Some(0));
        assert_eq!(v.bin_of(1.0), Some(10));
        assert_eq!(v.bin_of(3.999), Some(39));
        assert_eq!(v.bin_of(4.0), None);
        assert_eq!(v.bin_of(-0.1), None);
    }

    #[test]
    fn render_peaks_at_mode() {
        let values = vec![1.0; 50].into_iter().chain(vec![2.0; 5]);
        let v = Violin::from_values(values, 0.0, 4.0, 8);
        let glyphs = v.render();
        // Mode bin (1.0 -> bin 2) gets the tallest glyph.
        assert_eq!(glyphs.chars().nth(2), Some('█'));
    }

    #[test]
    fn empty_render_is_blank() {
        let v = Violin::from_values(std::iter::empty(), 0.0, 4.0, 5);
        assert_eq!(v.render(), "     ");
    }

    #[test]
    fn row_contains_marker_and_overflow() {
        let row = render_violin_row("test", [0.5, 1.5, 9.0], 40);
        assert!(row.contains('|'), "{row}");
        assert!(row.contains("+1 > 4.0"), "{row}");
    }
}
