//! Distribution statistics and ASCII rendering for the validation
//! campaign — the paper's Figure 2.
//!
//! Fig. 2 shows, per kernel, the *distribution* over 450 hardware
//! configurations of the cycle ratio `baseline / ours`, annotated with the
//! average, the worst result and the share of configurations where the
//! baseline wins (`ratio < 1`). This crate computes those summaries
//! ([`RatioSummary`]), bins the distribution ([`Violin`]) and renders it
//! as a row of density glyphs clipped at ratio 4 — mirroring the paper's
//! "results > 4 are omitted for better visual representation".
//!
//! # Examples
//!
//! ```
//! use vortex_stats::RatioSummary;
//! let s = RatioSummary::from_ratios([2.0, 1.0, 0.5]);
//! assert_eq!(s.worst, 0.5);
//! assert_eq!(s.count, 3);
//! assert!((s.avg - 3.5 / 3.0).abs() < 1e-12);
//! assert!((s.pct_below_one - 1.0 / 3.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

mod summary;
mod table;
mod violin;

pub use summary::RatioSummary;
pub use table::Table;
pub use violin::{render_violin_row, Violin};
