//! Plain-text aligned tables for experiment reports.

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use vortex_stats::Table;
/// let mut t = Table::new(vec!["kernel", "avg", "worst"]);
/// t.row(vec!["vecadd".into(), "1.42".into(), "0.94".into()]);
/// let text = t.to_text();
/// assert!(text.contains("kernel"));
/// assert!(text.contains("1.42"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table { headers: headers.into_iter().map(str::to_owned).collect(), rows: Vec::new() }
    }

    /// Appends a row; missing cells render empty, extra cells are kept.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let cols = self.headers.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders with aligned columns and a header separator.
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!("{cell:<width$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_owned()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("|");
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for i in 0..self.headers.len() {
                let empty = String::new();
                let cell = row.get(i).unwrap_or(&empty);
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_columns() {
        let mut t = Table::new(vec!["a", "long_header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a       "));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    fn markdown_shape() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["x".into(), "1".into()]);
        let md = t.to_markdown();
        assert_eq!(md.lines().count(), 3);
        assert!(md.lines().nth(1).unwrap().contains("---"));
    }

    #[test]
    fn missing_cells_render_empty() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1".into()]);
        let text = t.to_text();
        assert!(text.contains('1'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
