//! The persistent, content-addressed campaign result store.
//!
//! A campaign row — one kernel on one device configuration under the
//! three mapping policies — is a pure function of *(program words,
//! dataset, configuration, policy set, engine semantics)*. This module
//! stores rows on disk keyed by a canonical FNV-1a/64 digest of exactly
//! those inputs ([`campaign_key`]), so a sweep that has run once never
//! runs again: repeated campaigns, policy studies and CI jobs simulate
//! only the delta.
//!
//! Layout: one JSON-lines shard per kernel (`<dir>/<kernel>.jsonl`), in
//! the same hand-rolled serde-free dialect as the probe shards. Every
//! row carries **all** raw `MemStats`/`DispatchStats` counters (not the
//! derived rates), so results reassembled from the store merge exactly
//! like freshly simulated ones. Writes are atomic (tmp-file + rename via
//! [`crate::persist::atomic_write`]); loads skip truncated or foreign lines, so
//! a store that survived a kill simply re-derives the lost tail.
//!
//! The cache is process-wide opt-in: binaries take a `--cache DIR` flag,
//! and the `VORTEX_CAMPAIGN_CACHE=0` environment escape hatch disables
//! all reuse (every lookup misses, nothing is persisted) without touching
//! command lines. Invalidation is by key construction: the engine
//! semantics version ([`vortex_core::ENGINE_SEMANTICS_VERSION`]) is
//! folded into every digest, so rows written by a semantically different
//! engine can never be returned.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vortex_asm::Program;
use vortex_core::ENGINE_SEMANTICS_VERSION as SEMVER;
use vortex_core::{digest_device_config, digest_program, DispatchStats, Fnv64};
use vortex_sim::{CacheStats, DeviceConfig, MemStats};

use crate::campaign::{ConfigRow, Scale};
use crate::persist::atomic_write;

/// Computes the content key of one campaign row: the digest of every
/// input the row's cycles and counters are a function of.
///
/// The dataset is identified by `(kernel name, scale)` — kernel inputs
/// are generated from fixed per-kernel seeds, so name and scale pin the
/// exact bytes uploaded to the device. The mapping policy set of a
/// [`ConfigRow`] is the fixed `naive1+fixed32+auto` triple and is folded
/// in literally, so future row shapes cannot alias today's.
pub fn campaign_key(kernel: &str, scale: Scale, program: &Program, config: &DeviceConfig) -> u64 {
    campaign_key_from_digest(kernel, scale, digest_program(program), config)
}

/// [`campaign_key`] with the program digest precomputed (one assembly
/// serves a whole sweep).
pub fn campaign_key_from_digest(
    kernel: &str,
    scale: Scale,
    program_digest: u64,
    config: &DeviceConfig,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(SEMVER);
    h.write_str(kernel);
    h.write_str(scale.tag());
    h.write_u64(program_digest);
    h.write_u64(digest_device_config(config));
    h.write_str("naive1+fixed32+auto");
    h.finish()
}

/// Whether campaign caching is enabled in this environment
/// (`VORTEX_CAMPAIGN_CACHE=0` is the escape hatch — see the README's
/// campaign-cache section).
pub fn cache_enabled_by_env() -> bool {
    std::env::var("VORTEX_CAMPAIGN_CACHE").map(|v| v != "0").unwrap_or(true)
}

/// Transport counters of one cache handle: what the store did for this
/// process (all raw sums, so shard reports merge exactly).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups answered from the store (simulations avoided).
    pub hits: u64,
    /// Lookups that found nothing (simulations performed by the caller).
    pub misses: u64,
    /// Rows appended by this process.
    pub insertions: u64,
    /// Bytes of shard data read at open time.
    pub bytes_read: u64,
    /// Bytes of shard data written (each atomic flush counts its full
    /// shard rewrite).
    pub bytes_written: u64,
    /// Rows currently resident (all kernels).
    pub entries: u64,
}

/// One kernel's shard: rows by key, ordered so flushed files are
/// deterministic.
#[derive(Debug, Default)]
struct Shard {
    rows: BTreeMap<u64, StoredRow>,
    dirty: bool,
}

#[derive(Debug)]
struct Inner {
    shards: HashMap<String, Shard>,
    hits: u64,
    misses: u64,
    insertions: u64,
    bytes_read: u64,
    bytes_written: u64,
}

/// A handle on an on-disk campaign result store (see the module docs).
///
/// Thread-safe: campaign workers share one handle across threads; all
/// state is behind one mutex (lookups and inserts are microseconds
/// against multi-millisecond simulations).
#[derive(Debug)]
pub struct CampaignCache {
    dir: PathBuf,
    enabled: bool,
    /// Flush the affected shard synchronously on every insert. The
    /// resumable driver turns this on so a kill between two
    /// configurations loses at most the in-flight one; batch probes leave
    /// it off and flush once per kernel.
    autoflush: bool,
    inner: Mutex<Inner>,
}

impl CampaignCache {
    /// Opens (creating if necessary) the store at `dir` and loads every
    /// shard. Unreadable lines — truncated tails from a killed writer,
    /// rows from another engine-semantics version — are skipped.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-read errors (a *corrupt*
    /// store never errors; a *missing or unreadable* one does).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut inner = Inner {
            shards: HashMap::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            bytes_read: 0,
            bytes_written: 0,
        };
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            let Some(name) = shard_kernel_name(&path) else { continue };
            let text = std::fs::read_to_string(&path)?;
            inner.bytes_read += text.len() as u64;
            let mut shard = Shard::default();
            for line in text.lines() {
                if let Some((key, row)) = StoredRow::parse_line(line) {
                    shard.rows.insert(key, row);
                }
            }
            inner.shards.insert(name, shard);
        }
        Ok(CampaignCache {
            dir,
            enabled: cache_enabled_by_env(),
            autoflush: false,
            inner: Mutex::new(inner),
        })
    }

    /// Enables per-insert synchronous flushing (see the field docs).
    pub fn with_autoflush(mut self, autoflush: bool) -> Self {
        self.autoflush = autoflush;
        self
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether lookups can hit (false under `VORTEX_CAMPAIGN_CACHE=0`).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Fetches the stored row for `key`, counting a hit or miss. The
    /// caller's `config` becomes the returned row's configuration (it is
    /// part of the key's preimage); a stored topology mismatch — only
    /// possible on a digest collision — is treated as a miss.
    pub fn lookup(&self, kernel: &str, key: u64, config: &DeviceConfig) -> Option<ConfigRow> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let row = inner
            .shards
            .get(kernel)
            .and_then(|s| s.rows.get(&key))
            .filter(|r| r.topo == config.topology_name())
            .map(|r| r.to_config_row(*config));
        match row {
            Some(row) => {
                inner.hits += 1;
                Some(row)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// [`lookup`](CampaignCache::lookup) without touching the hit/miss
    /// counters — for assembling final results from rows already known
    /// to be present.
    pub fn get(&self, kernel: &str, key: u64, config: &DeviceConfig) -> Option<ConfigRow> {
        if !self.enabled {
            return None;
        }
        let inner = self.inner.lock().expect("cache lock");
        inner
            .shards
            .get(kernel)
            .and_then(|s| s.rows.get(&key))
            .filter(|r| r.topo == config.topology_name())
            .map(|r| r.to_config_row(*config))
    }

    /// Whether `key` is resident (no counter traffic).
    pub fn contains(&self, kernel: &str, key: u64) -> bool {
        if !self.enabled {
            return false;
        }
        let inner = self.inner.lock().expect("cache lock");
        inner.shards.get(kernel).is_some_and(|s| s.rows.contains_key(&key))
    }

    /// Stores a freshly simulated row. With autoflush on, the kernel's
    /// shard is atomically rewritten before this returns (I/O failures
    /// degrade to in-memory-only with a warning — simulation results are
    /// never discarded over a persistence error).
    pub fn insert(&self, kernel: &str, key: u64, row: &ConfigRow) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        let shard = inner.shards.entry(kernel.to_owned()).or_default();
        shard.rows.insert(key, StoredRow::of_config_row(row));
        shard.dirty = true;
        inner.insertions += 1;
        if self.autoflush {
            if let Err(e) = flush_kernel(&self.dir, &mut inner, kernel) {
                eprintln!("campaign cache: flushing {kernel} shard failed: {e}");
            }
        }
    }

    /// Atomically rewrites every dirty shard.
    ///
    /// # Errors
    ///
    /// Propagates the first I/O failure; remaining dirty shards keep
    /// their data in memory and stay flushable.
    pub fn flush(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("cache lock");
        let kernels: Vec<String> =
            inner.shards.iter().filter(|(_, s)| s.dirty).map(|(k, _)| k.clone()).collect();
        for kernel in kernels {
            flush_kernel(&self.dir, &mut inner, &kernel)?;
        }
        Ok(())
    }

    /// This handle's transport counters.
    pub fn counters(&self) -> CacheCounters {
        let inner = self.inner.lock().expect("cache lock");
        CacheCounters {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            bytes_read: inner.bytes_read,
            bytes_written: inner.bytes_written,
            entries: inner.shards.values().map(|s| s.rows.len() as u64).sum(),
        }
    }

    /// Absorbs every row of the store at `dir` into this handle — the
    /// multi-process campaign merge: each worker process writes a
    /// private store, and the parent absorbs them so the final sweep
    /// assembles entirely from residency. Rows already present win on
    /// key collision (same key ⇒ same content by construction, so the
    /// choice is immaterial); foreign-semver and truncated lines are
    /// skipped exactly as in [`open`](CampaignCache::open). Returns the
    /// number of rows newly added.
    ///
    /// # Errors
    ///
    /// Propagates directory- and file-read errors on `dir`.
    pub fn absorb_dir(&self, dir: &Path) -> io::Result<usize> {
        if !self.enabled {
            return Ok(0);
        }
        let mut added = 0;
        let mut inner = self.inner.lock().expect("cache lock");
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = shard_kernel_name(&path) else { continue };
            let text = std::fs::read_to_string(&path)?;
            inner.bytes_read += text.len() as u64;
            let shard = inner.shards.entry(name).or_default();
            for line in text.lines() {
                if let Some((key, row)) = StoredRow::parse_line(line) {
                    if let std::collections::btree_map::Entry::Vacant(slot) = shard.rows.entry(key)
                    {
                        slot.insert(row);
                        shard.dirty = true;
                        added += 1;
                    }
                }
            }
        }
        inner.insertions += added as u64;
        Ok(added)
    }

    /// Resident row count per kernel, sorted by kernel name (store
    /// inspection — the `throughput --cache` summary).
    pub fn entries_by_kernel(&self) -> Vec<(String, usize)> {
        let inner = self.inner.lock().expect("cache lock");
        let mut out: Vec<(String, usize)> =
            inner.shards.iter().map(|(k, s)| (k.clone(), s.rows.len())).collect();
        out.sort();
        out
    }
}

/// Rewrites one kernel's shard file atomically and clears its dirty bit.
fn flush_kernel(dir: &Path, inner: &mut Inner, kernel: &str) -> io::Result<()> {
    let Some(shard) = inner.shards.get_mut(kernel) else { return Ok(()) };
    let mut text = String::new();
    for (key, row) in &shard.rows {
        row.render_line(*key, &mut text);
    }
    atomic_write(&dir.join(format!("{kernel}.jsonl")), &text)?;
    shard.dirty = false;
    inner.bytes_written += text.len() as u64;
    Ok(())
}

/// `<dir>/<kernel>.jsonl` → `kernel` (anything else is not a shard).
fn shard_kernel_name(path: &Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let kernel = name.strip_suffix(".jsonl")?;
    if kernel.is_empty() {
        None
    } else {
        Some(kernel.to_owned())
    }
}

/// One stored campaign row: everything a [`ConfigRow`] carries except
/// the device configuration (which is the lookup key's preimage and is
/// supplied by the caller on a hit). All counters are raw.
#[derive(Clone, Debug, PartialEq)]
struct StoredRow {
    topo: String,
    cycles_naive: u64,
    cycles_fixed: u64,
    cycles_auto: u64,
    lws_auto: u32,
    dram_utilization: f64,
    mem: MemStats,
    dispatch: DispatchStats,
    instructions: u64,
    port_accesses: u64,
    port_stall_slots: u64,
}

impl StoredRow {
    fn of_config_row(row: &ConfigRow) -> Self {
        StoredRow {
            topo: row.config.topology_name(),
            cycles_naive: row.cycles_naive,
            cycles_fixed: row.cycles_fixed,
            cycles_auto: row.cycles_auto,
            lws_auto: row.lws_auto,
            dram_utilization: row.dram_utilization,
            mem: row.mem,
            dispatch: row.dispatch,
            instructions: row.instructions,
            port_accesses: row.port_accesses,
            port_stall_slots: row.port_stall_slots,
        }
    }

    fn to_config_row(&self, config: DeviceConfig) -> ConfigRow {
        ConfigRow {
            config,
            cycles_naive: self.cycles_naive,
            cycles_fixed: self.cycles_fixed,
            cycles_auto: self.cycles_auto,
            lws_auto: self.lws_auto,
            dram_utilization: self.dram_utilization,
            mem: self.mem,
            dispatch: self.dispatch,
            instructions: self.instructions,
            port_accesses: self.port_accesses,
            port_stall_slots: self.port_stall_slots,
        }
    }

    /// Appends this row as one JSON line. `dram_utilization` uses Rust's
    /// shortest-roundtrip float formatting, so the parsed value is
    /// bit-exact — warm results must be byte-identical to cold ones.
    fn render_line(&self, key: u64, out: &mut String) {
        use std::fmt::Write;
        let m = &self.mem;
        let d = &self.dispatch;
        writeln!(
            out,
            "{{\"key\": \"{key:016x}\", \"semver\": {SEMVER}, \"topo\": \"{}\", \
             \"cycles_naive\": {}, \"cycles_fixed\": {}, \"cycles_auto\": {}, \
             \"lws_auto\": {}, \"dram_utilization\": {}, \
             \"loads\": {}, \"stores\": {}, \
             \"l1_hits\": {}, \"l1_misses\": {}, \"l1_evictions\": {}, \
             \"l2_hits\": {}, \"l2_misses\": {}, \"l2_evictions\": {}, \
             \"dram_requests\": {}, \
             \"launches\": {}, \"dispatch_rounds\": {}, \"round_tasks\": {}, \
             \"instructions\": {}, \"fused_instructions\": {}, \"fused_blocks\": {}, \
             \"issued_instructions\": {}, \
             \"port_accesses\": {}, \"port_stall_slots\": {}}}",
            self.topo,
            self.cycles_naive,
            self.cycles_fixed,
            self.cycles_auto,
            self.lws_auto,
            self.dram_utilization,
            m.loads,
            m.stores,
            m.l1.hits,
            m.l1.misses,
            m.l1.evictions,
            m.l2.hits,
            m.l2.misses,
            m.l2.evictions,
            m.dram_requests,
            d.launches,
            d.rounds,
            d.round_tasks,
            d.instructions,
            d.fused_instructions,
            d.fused_blocks,
            self.instructions,
            self.port_accesses,
            self.port_stall_slots,
        )
        .expect("writing to String cannot fail");
    }

    /// Parses one shard line. Returns `None` for anything unusable — a
    /// truncated tail, a foreign semantics version, a malformed field —
    /// so a damaged store degrades to extra simulation, never to an
    /// error or a wrong result.
    fn parse_line(line: &str) -> Option<(u64, StoredRow)> {
        if !(line.starts_with('{') && line.ends_with('}')) {
            return None;
        }
        fn field<T: std::str::FromStr>(obj: &str, key: &str) -> Option<T> {
            let pat = format!("\"{key}\": ");
            let at = obj.find(&pat)?;
            let rest = &obj[at + pat.len()..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().trim_matches('"').parse().ok()
        }
        let semver: u32 = field(line, "semver")?;
        if semver != SEMVER {
            return None;
        }
        let key = u64::from_str_radix(&field::<String>(line, "key")?, 16).ok()?;
        let mem = MemStats {
            loads: field(line, "loads")?,
            stores: field(line, "stores")?,
            l1: CacheStats {
                hits: field(line, "l1_hits")?,
                misses: field(line, "l1_misses")?,
                evictions: field(line, "l1_evictions")?,
            },
            l2: CacheStats {
                hits: field(line, "l2_hits")?,
                misses: field(line, "l2_misses")?,
                evictions: field(line, "l2_evictions")?,
            },
            dram_requests: field(line, "dram_requests")?,
        };
        let dispatch = DispatchStats {
            launches: field(line, "launches")?,
            rounds: field(line, "dispatch_rounds")?,
            round_tasks: field(line, "round_tasks")?,
            instructions: field(line, "instructions")?,
            fused_instructions: field(line, "fused_instructions")?,
            fused_blocks: field(line, "fused_blocks")?,
        };
        Some((
            key,
            StoredRow {
                topo: field(line, "topo")?,
                cycles_naive: field(line, "cycles_naive")?,
                cycles_fixed: field(line, "cycles_fixed")?,
                cycles_auto: field(line, "cycles_auto")?,
                lws_auto: field(line, "lws_auto")?,
                dram_utilization: field(line, "dram_utilization")?,
                mem,
                dispatch,
                // Issued-instruction and port counters post-date the
                // store format; rows written before they existed parse
                // as zero (the counters were zero-reported then, so
                // merges stay exact).
                instructions: field(line, "issued_instructions").unwrap_or(0),
                port_accesses: field(line, "port_accesses").unwrap_or(0),
                port_stall_slots: field(line, "port_stall_slots").unwrap_or(0),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_row(topo: &str, scale: u64) -> ConfigRow {
        let config: DeviceConfig = topo.parse().unwrap();
        let mem = MemStats {
            loads: 11 * scale,
            stores: 5 * scale,
            l1: CacheStats { hits: 100 * scale, misses: 10 * scale, evictions: 2 * scale },
            l2: CacheStats { hits: 8 * scale, misses: 2 * scale, evictions: scale },
            dram_requests: 3 * scale,
        };
        ConfigRow {
            config,
            cycles_naive: 1000 * scale,
            cycles_fixed: 900 * scale,
            cycles_auto: 800 * scale,
            lws_auto: 4,
            dram_utilization: 0.123456789012345,
            mem,
            dispatch: DispatchStats {
                launches: scale,
                rounds: 4 * scale,
                round_tasks: 32 * scale,
                instructions: 1000 * scale,
                fused_instructions: 40 * scale,
                fused_blocks: 8 * scale,
            },
            instructions: 3500 * scale,
            port_accesses: 60 * scale,
            port_stall_slots: 7 * scale,
        }
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vortex_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn row_roundtrips_bit_exactly_through_a_line() {
        let row = sample_row("4c8w16t", 3);
        let stored = StoredRow::of_config_row(&row);
        let mut line = String::new();
        stored.render_line(0xdead_beef_0123_4567, &mut line);
        let (key, parsed) = StoredRow::parse_line(line.trim_end()).unwrap();
        assert_eq!(key, 0xdead_beef_0123_4567);
        assert_eq!(parsed, stored);
        // f64 exactness is the load-bearing part: bit-identical, not close.
        assert_eq!(parsed.dram_utilization.to_bits(), row.dram_utilization.to_bits());
    }

    #[test]
    fn foreign_semver_and_garbage_lines_are_skipped() {
        let row = sample_row("1c2w2t", 1);
        let mut line = String::new();
        StoredRow::of_config_row(&row).render_line(1, &mut line);
        let foreign = line.replace(&format!("\"semver\": {SEMVER}"), "\"semver\": 999999");
        assert!(StoredRow::parse_line(foreign.trim_end()).is_none());
        assert!(StoredRow::parse_line("").is_none());
        assert!(StoredRow::parse_line("{\"key\": \"0000000000000001\", \"semv").is_none());
        assert!(StoredRow::parse_line("not json at all").is_none());
    }

    #[test]
    fn store_roundtrips_and_counts() {
        let dir = temp_store("roundtrip");
        let cache = CampaignCache::open(&dir).unwrap();
        let row = sample_row("2c4w8t", 2);
        let key = 42u64;
        assert!(cache.lookup("vecadd", key, &row.config).is_none());
        cache.insert("vecadd", key, &row);
        cache.flush().unwrap();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions, c.entries), (0, 1, 1, 1));
        assert!(c.bytes_written > 0);

        // A fresh handle reads the flushed shard back, bit-exact.
        let reopened = CampaignCache::open(&dir).unwrap();
        let hit = reopened.lookup("vecadd", key, &row.config).expect("persisted row");
        assert_eq!(hit.cycles_auto, row.cycles_auto);
        assert_eq!(hit.dram_utilization.to_bits(), row.dram_utilization.to_bits());
        assert_eq!(hit.mem, row.mem);
        assert_eq!(hit.dispatch, row.dispatch);
        assert_eq!(reopened.counters().bytes_read, cache.counters().bytes_written);
        // Wrong key and wrong kernel miss.
        assert!(reopened.lookup("vecadd", 43, &row.config).is_none());
        assert!(reopened.lookup("relu", key, &row.config).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_shard_tail_degrades_to_a_miss() {
        let dir = temp_store("truncated");
        let cache = CampaignCache::open(&dir).unwrap();
        cache.insert("vecadd", 1, &sample_row("1c2w2t", 1));
        cache.insert("vecadd", 2, &sample_row("1c2w4t", 2));
        cache.flush().unwrap();
        // Simulate a kill mid-write of the final line.
        let path = dir.join("vecadd.jsonl");
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 40]).unwrap();
        let reopened = CampaignCache::open(&dir).unwrap();
        assert_eq!(reopened.counters().entries, 1, "only the intact line survives");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn campaign_keys_separate_all_inputs() {
        let program =
            crate::campaign::kernel_factories(Scale::Sweep)[0].make_kernel().build().unwrap();
        let c1: DeviceConfig = "1c2w2t".parse().unwrap();
        let c2: DeviceConfig = "1c2w4t".parse().unwrap();
        let k = |kernel: &str, scale, config| campaign_key(kernel, scale, &program, config);
        let base = k("vecadd", Scale::Sweep, &c1);
        assert_eq!(base, k("vecadd", Scale::Sweep, &c1), "stable across calls");
        assert_ne!(base, k("vecadd", Scale::Sweep, &c2), "config must re-key");
        assert_ne!(base, k("relu", Scale::Sweep, &c1), "kernel name must re-key");
        assert_ne!(base, k("vecadd", Scale::Paper, &c1), "dataset scale must re-key");
    }

    #[test]
    fn env_escape_hatch_reports_disabled() {
        // The env var is process-global, so only exercise the pure logic.
        assert!(cache_enabled_by_env() || std::env::var("VORTEX_CAMPAIGN_CACHE").is_ok());
    }
}
