//! The resumable sweep driver: a crash-safe work queue over the
//! campaign grid, backed by the content-addressed result store.
//!
//! [`run_queue`] generalises the probe's `--shard K/M` + `--merge` flow:
//! instead of partitioning the grid *spatially* across processes, the
//! queue partitions it *temporally* across invocations. Every (kernel,
//! configuration) pair of the sweep becomes a work item identified by its
//! [`campaign_key`](crate::cache::campaign_key); an item is **done** iff
//! its row is resident in the store — the store is the single source of
//! truth, the manifest under the queue directory is a spec guard and
//! crash record. An invocation may stop at any point (a `budget` cap, a
//! crash, a kill): the store has every finished row (the cache runs in
//! autoflush mode, so at most the in-flight configuration is lost) and a
//! `resume: true` invocation picks up exactly the remainder. When the
//! last item lands, the driver assembles the full campaign report from
//! the store — byte-identical (modulo wall-clock and cache-transport
//! fields, see [`strip_run_metadata`](crate::persist::strip_run_metadata))
//! to what a single uninterrupted run would have produced, because rows
//! carry raw counters and reassembly is pure summation.
//!
//! The manifest (`<dir>/manifest.jsonl`) opens with a header holding the
//! digest of the queue spec — grid, kernels, scale, shard, engine
//! semantics. Resuming under a different spec is refused rather than
//! silently merging incompatible sweeps; re-running cold under a new spec
//! simply rewrites the manifest. All manifest writes are atomic.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

use vortex_core::{digest_program, Fnv64, ENGINE_SEMANTICS_VERSION as SEMVER};
use vortex_kernels::KernelError;
use vortex_sim::DeviceConfig;

use crate::cache::{campaign_key_from_digest, CacheCounters, CampaignCache};
use crate::campaign::{kernel_factories, run_campaign_cached_traced, CampaignResult, Scale};
use crate::persist::atomic_write;
use crate::probe::{render_json, KernelRow, ProbeFile};
use crate::tracestore::TraceStore;

/// What to sweep: the full description of a work queue. Two invocations
/// with the same spec (and the same engine semantics) describe the same
/// queue and may resume each other; `jobs`, `budget` and `resume` are
/// execution parameters, not queue identity, and may differ freely
/// between invocations.
#[derive(Debug)]
pub struct QueueSpec {
    /// Queue directory (holds `manifest.jsonl`).
    pub dir: PathBuf,
    /// Result-store directory (see [`CampaignCache`]).
    pub cache_dir: PathBuf,
    /// Kernel-name filter (`None` = all nine paper kernels).
    pub kernels: Option<Vec<String>>,
    /// The configuration grid (pre-subsampling already applied).
    pub configs: Vec<DeviceConfig>,
    /// Dataset scale.
    pub scale: Scale,
    /// Optional strided shard `K/M` of the grid (1-based `K`).
    pub shard: Option<(usize, usize)>,
    /// Worker threads per kernel campaign.
    pub jobs: usize,
    /// Stop after simulating this many configurations (across kernels).
    /// `None` = run the whole remainder.
    pub budget: Option<usize>,
    /// Optional trace-store directory for record/replay (docs/TRACE.md).
    /// An execution parameter like `jobs`: it changes how rows are
    /// produced, never what they contain, so it stays out of the queue's
    /// spec digest.
    pub trace_dir: Option<PathBuf>,
    /// Require an existing manifest with a matching spec digest instead
    /// of starting (or restarting) the queue from scratch.
    pub resume: bool,
}

impl QueueSpec {
    /// The grid this queue actually covers (shard applied, strided).
    fn sharded_configs(&self) -> Vec<DeviceConfig> {
        match self.shard {
            None => self.configs.clone(),
            Some((k, m)) => self
                .configs
                .iter()
                .copied()
                .enumerate()
                .filter(|(i, _)| i % m == k - 1)
                .map(|(_, c)| c)
                .collect(),
        }
    }
}

/// One (kernel, configuration) unit of work.
struct WorkItem {
    kernel: &'static str,
    config: DeviceConfig,
    key: u64,
}

/// What one [`run_queue`] invocation did.
#[derive(Debug)]
pub struct QueueOutcome {
    /// Configurations simulated by this invocation.
    pub simulated: usize,
    /// Items that were already done (resident in the store) on entry.
    pub reused: usize,
    /// Items still pending when this invocation returned (nonzero only
    /// after a budget stop).
    pub remaining: usize,
    /// Whether the whole queue is now done.
    pub complete: bool,
    /// The assembled full-campaign probe JSON — present iff `complete`.
    pub result_json: Option<String>,
    /// The store handle's transport counters.
    pub counters: CacheCounters,
}

/// Driver failures. Kernel and I/O problems pass through; the
/// queue-integrity refusals get their own variants so callers (and the
/// CLI) can say precisely what went wrong.
#[derive(Debug)]
pub enum DriverError {
    /// Manifest or store I/O failed.
    Io(io::Error),
    /// A kernel campaign failed (assembly, launch, verification).
    Kernel(KernelError),
    /// `resume` was requested but no manifest exists at the path.
    NoManifest(PathBuf),
    /// `resume` was requested but the manifest's spec digest does not
    /// match this invocation's spec (different grid, kernels, scale,
    /// shard or engine semantics).
    SpecMismatch {
        /// Digest of the spec being resumed with.
        expected: u64,
        /// Digest recorded in the manifest.
        found: u64,
    },
    /// `resume` was requested with caching disabled
    /// (`VORTEX_CAMPAIGN_CACHE=0`) — without the store there is no
    /// done-ness to resume from.
    CacheDisabled,
    /// The manifest or store contents are unusable (message says how).
    Corrupt(String),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Io(e) => write!(f, "queue I/O: {e}"),
            DriverError::Kernel(e) => write!(f, "kernel campaign failed: {e}"),
            DriverError::NoManifest(p) => {
                write!(f, "--resume: no manifest at {} (run without --resume first)", p.display())
            }
            DriverError::SpecMismatch { expected, found } => write!(
                f,
                "--resume: manifest spec {found:016x} does not match this invocation's spec \
                 {expected:016x} (grid, kernels, scale, shard and engine semantics must match)"
            ),
            DriverError::CacheDisabled => {
                write!(f, "--resume requires the campaign cache (VORTEX_CAMPAIGN_CACHE=0 is set)")
            }
            DriverError::Corrupt(msg) => write!(f, "queue state unusable: {msg}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<io::Error> for DriverError {
    fn from(e: io::Error) -> Self {
        DriverError::Io(e)
    }
}

impl From<KernelError> for DriverError {
    fn from(e: KernelError) -> Self {
        DriverError::Kernel(e)
    }
}

/// Runs (or resumes) the work queue described by `spec`. See the module
/// docs for the execution model.
///
/// With caching disabled via the environment the driver degenerates to a
/// plain uncached sweep: everything is simulated, nothing persists, and
/// `resume` is refused.
///
/// # Errors
///
/// See [`DriverError`].
pub fn run_queue(spec: &QueueSpec) -> Result<QueueOutcome, DriverError> {
    let cache = CampaignCache::open(&spec.cache_dir)?.with_autoflush(true);
    if spec.resume && !cache.is_enabled() {
        return Err(DriverError::CacheDisabled);
    }
    let traces = spec.trace_dir.as_deref().map(TraceStore::open).transpose()?;

    let factories: Vec<_> = kernel_factories(spec.scale)
        .into_iter()
        .filter(|f| spec.kernels.as_ref().is_none_or(|ws| ws.iter().any(|w| w == f.name)))
        .collect();
    let configs = spec.sharded_configs();

    // The queue: kernel-major, grid order — the same order a plain
    // campaign reports in.
    let mut items: Vec<WorkItem> = Vec::with_capacity(factories.len() * configs.len());
    for factory in &factories {
        let program = factory.make_kernel().build().map_err(KernelError::from)?;
        let pdig = digest_program(&program);
        for config in &configs {
            let key = campaign_key_from_digest(factory.name, factory.scale, pdig, config);
            items.push(WorkItem { kernel: factory.name, config: *config, key });
        }
    }
    let spec_digest = digest_spec(spec, &items);

    let manifest_path = spec.dir.join("manifest.jsonl");
    if spec.resume {
        let found = read_manifest_spec(&manifest_path)?;
        if found != spec_digest {
            return Err(DriverError::SpecMismatch { expected: spec_digest, found });
        }
    }

    // Done-ness is store membership — the manifest's flags are only a
    // crash record for humans; a row that reached the store counts even
    // if the process died before rewriting the manifest.
    let done: Vec<bool> = items.iter().map(|it| cache.contains(it.kernel, it.key)).collect();
    let reused = done.iter().filter(|d| **d).count();
    write_manifest(&manifest_path, spec_digest, &items, &done)?;

    let pending: Vec<usize> =
        done.iter().enumerate().filter(|(_, d)| !**d).map(|(i, _)| i).collect();
    let take = spec.budget.unwrap_or(pending.len()).min(pending.len());
    let selected = &pending[..take];

    // Simulate the selected remainder, kernel by kernel. With the cache
    // in autoflush mode every finished configuration is durable before
    // the next one starts.
    let wall = Instant::now();
    let mut simulated = 0usize;
    let mut kernel_seconds: Vec<f64> = vec![0.0; factories.len()];
    let mut kernel_simulated: Vec<usize> = vec![0usize; factories.len()];
    let mut disabled_results: Vec<Option<CampaignResult>> = Vec::new();
    disabled_results.resize_with(factories.len(), || None);
    for (fi, factory) in factories.iter().enumerate() {
        let batch: Vec<DeviceConfig> = selected
            .iter()
            .filter(|&&i| items[i].kernel == factory.name)
            .map(|&i| items[i].config)
            .collect();
        if batch.is_empty() {
            continue;
        }
        let start = Instant::now();
        let result =
            run_campaign_cached_traced(factory, &batch, spec.jobs, Some(&cache), traces.as_ref())?;
        kernel_seconds[fi] = start.elapsed().as_secs_f64();
        kernel_simulated[fi] = batch.len();
        simulated += batch.len();
        if !cache.is_enabled() {
            disabled_results[fi] = Some(result);
        }
    }

    let done_after: Vec<bool> = if cache.is_enabled() {
        items.iter().map(|it| cache.contains(it.kernel, it.key)).collect()
    } else {
        // Nothing persists without the store; the degenerate sweep is
        // complete exactly when this invocation covered every item.
        items.iter().enumerate().map(|(i, _)| done[i] || selected.contains(&i)).collect()
    };
    write_manifest(&manifest_path, spec_digest, &items, &done_after)?;
    let remaining = done_after.iter().filter(|d| !**d).count();
    let complete = remaining == 0 && !items.is_empty();

    let result_json = if complete {
        let mut rows: Vec<KernelRow> = Vec::with_capacity(factories.len());
        for (fi, factory) in factories.iter().enumerate() {
            let kernel_rows: Vec<_> = if cache.is_enabled() {
                items
                    .iter()
                    .filter(|it| it.kernel == factory.name)
                    .map(|it| {
                        cache.get(it.kernel, it.key, &it.config).ok_or_else(|| {
                            DriverError::Corrupt(format!(
                                "store row for {} on {} vanished after completion",
                                it.kernel,
                                it.config.topology_name()
                            ))
                        })
                    })
                    .collect::<Result<_, _>>()?
            } else {
                disabled_results[fi].take().map(|r| r.rows).unwrap_or_default()
            };
            let result = CampaignResult {
                kernel: factory.name,
                rows: kernel_rows,
                trace_records: 0,
                trace_replays: 0,
            };
            let (port_accesses, port_stall_slots) = result.total_ports();
            rows.push(KernelRow {
                name: factory.name.to_owned(),
                configs: result.rows.len(),
                seconds: kernel_seconds[fi],
                util: result.mean_dram_utilization(),
                mem: result.total_mem(),
                dispatch: result.total_dispatch(),
                instructions: result.total_instructions(),
                cache_hits: (configs.len() - kernel_simulated[fi]) as u64,
                cache_misses: kernel_simulated[fi] as u64,
                port_accesses,
                port_stall_slots,
                trace_records: result.trace_records,
                trace_replays: result.trace_replays,
            });
        }
        let file = ProbeFile {
            configs: configs.len(),
            jobs: spec.jobs,
            total_seconds: wall.elapsed().as_secs_f64(),
            shard: spec.shard,
            cache_bytes_read: 0,
            cache_bytes_written: 0,
            rows,
        }
        .with_cache_totals(&cache.counters());
        Some(render_json(&file))
    } else {
        None
    };

    Ok(QueueOutcome {
        simulated,
        reused,
        remaining,
        complete,
        result_json,
        counters: cache.counters(),
    })
}

/// The queue-identity digest: engine semantics, scale, shard and every
/// item's kernel and campaign key (which already binds program words,
/// dataset, configuration and policy set).
fn digest_spec(spec: &QueueSpec, items: &[WorkItem]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(SEMVER);
    h.write_str(spec.scale.tag());
    let (k, m) = spec.shard.unwrap_or((0, 0));
    h.write_usize(k);
    h.write_usize(m);
    h.write_usize(items.len());
    for item in items {
        h.write_str(item.kernel);
        h.write_u64(item.key);
    }
    h.finish()
}

/// Atomically rewrites the manifest: a spec header plus one line per
/// item with its current done flag.
fn write_manifest(
    path: &Path,
    spec_digest: u64,
    items: &[WorkItem],
    done: &[bool],
) -> io::Result<()> {
    use std::fmt::Write;
    let mut text = String::new();
    writeln!(
        text,
        "{{\"spec\": \"{spec_digest:016x}\", \"semver\": {SEMVER}, \"items\": {}}}",
        items.len()
    )
    .expect("writing to String cannot fail");
    for (item, done) in items.iter().zip(done) {
        writeln!(
            text,
            "{{\"kernel\": \"{}\", \"topo\": \"{}\", \"key\": \"{:016x}\", \"done\": {}}}",
            item.kernel,
            item.config.topology_name(),
            item.key,
            u8::from(*done)
        )
        .expect("writing to String cannot fail");
    }
    atomic_write(path, &text)
}

/// Reads the spec digest out of a manifest header.
fn read_manifest_spec(path: &Path) -> Result<u64, DriverError> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            return Err(DriverError::NoManifest(path.to_path_buf()))
        }
        Err(e) => return Err(DriverError::Io(e)),
    };
    let header = text.lines().next().unwrap_or("");
    let spec = header
        .find("\"spec\": \"")
        .map(|at| &header[at + 9..])
        .and_then(|rest| rest.split('"').next())
        .and_then(|hex| u64::from_str_radix(hex, 16).ok());
    spec.ok_or_else(|| {
        DriverError::Corrupt(format!("manifest header at {} has no spec digest", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_queue(tag: &str) -> (PathBuf, PathBuf) {
        let base = std::env::temp_dir().join(format!("vortex_queue_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        (base.join("queue"), base.join("store"))
    }

    fn tiny_spec(dir: &Path, store: &Path) -> QueueSpec {
        QueueSpec {
            dir: dir.to_path_buf(),
            cache_dir: store.to_path_buf(),
            kernels: Some(vec!["vecadd".into(), "relu".into()]),
            configs: vec![
                DeviceConfig::with_topology(1, 2, 2),
                DeviceConfig::with_topology(1, 2, 4),
                DeviceConfig::with_topology(2, 2, 2),
            ],
            scale: Scale::Sweep,
            shard: None,
            jobs: 2,
            budget: None,
            trace_dir: None,
            resume: false,
        }
    }

    #[test]
    fn budget_stop_then_resume_matches_cold_run_exactly() {
        let (qa, sa) = temp_queue("resume_a");
        let (qb, sb) = temp_queue("resume_b");

        // Cold uninterrupted run: 2 kernels × 3 configs.
        let cold = run_queue(&tiny_spec(&qa, &sa)).unwrap();
        assert!(cold.complete);
        assert_eq!((cold.simulated, cold.reused, cold.remaining), (6, 0, 0));
        let cold_json = cold.result_json.expect("complete queue yields a report");

        // Same queue elsewhere, killed by budget after 2 configurations.
        let mut spec = tiny_spec(&qb, &sb);
        spec.budget = Some(2);
        let first = run_queue(&spec).unwrap();
        assert!(!first.complete);
        assert_eq!((first.simulated, first.reused, first.remaining), (2, 0, 4));
        assert!(first.result_json.is_none());

        // Resume must simulate exactly the remainder…
        spec.budget = None;
        spec.resume = true;
        let second = run_queue(&spec).unwrap();
        assert!(second.complete);
        assert_eq!((second.simulated, second.reused, second.remaining), (4, 2, 0));
        // …and the assembled report must match the cold run on every
        // simulation-derived byte.
        let resumed_json = second.result_json.unwrap();
        assert_eq!(
            crate::persist::strip_run_metadata(&resumed_json),
            crate::persist::strip_run_metadata(&cold_json),
            "resumed queue must reassemble the cold-run report"
        );
        for dir in [&qa, &qb] {
            std::fs::remove_dir_all(dir.parent().unwrap()).unwrap();
        }
    }

    #[test]
    fn resume_guards_manifest_presence_and_spec() {
        let (queue, store) = temp_queue("guards");
        let mut spec = tiny_spec(&queue, &store);
        spec.resume = true;
        match run_queue(&spec) {
            Err(DriverError::NoManifest(_)) => {}
            other => panic!("expected NoManifest, got {other:?}"),
        }

        spec.resume = false;
        let cold = run_queue(&spec).unwrap();
        assert!(cold.complete);

        // A different grid under --resume must be refused.
        spec.resume = true;
        spec.configs.push(DeviceConfig::with_topology(2, 2, 4));
        match run_queue(&spec) {
            Err(DriverError::SpecMismatch { .. }) => {}
            other => panic!("expected SpecMismatch, got {other:?}"),
        }

        // The matching spec resumes cleanly and is a pure cache replay.
        spec.configs.pop();
        let warm = run_queue(&spec).unwrap();
        assert!(warm.complete);
        assert_eq!((warm.simulated, warm.reused), (0, 6));
        std::fs::remove_dir_all(queue.parent().unwrap()).unwrap();
    }

    #[test]
    fn single_grid_change_simulates_exactly_the_delta() {
        let (queue, store) = temp_queue("delta");
        let spec = tiny_spec(&queue, &store);
        assert!(run_queue(&spec).unwrap().complete);

        // One added configuration re-simulates one item per kernel.
        let mut grown = tiny_spec(&queue, &store);
        grown.configs.push(DeviceConfig::with_topology(2, 2, 4));
        let out = run_queue(&grown).unwrap();
        assert!(out.complete);
        assert_eq!((out.simulated, out.reused), (2, 6));
        std::fs::remove_dir_all(queue.parent().unwrap()).unwrap();
    }

    #[test]
    fn truncated_store_line_is_resimulated() {
        let (queue, store) = temp_queue("truncated");
        let spec = tiny_spec(&queue, &store);
        assert!(run_queue(&spec).unwrap().complete);

        // Damage the tail of one shard, as a kill mid-write would.
        let shard = store.join("vecadd.jsonl");
        let text = std::fs::read_to_string(&shard).unwrap();
        std::fs::write(&shard, &text[..text.len() - 25]).unwrap();

        let out = run_queue(&spec).unwrap();
        assert!(out.complete);
        assert_eq!((out.simulated, out.reused), (1, 5), "only the damaged row re-runs");
        std::fs::remove_dir_all(queue.parent().unwrap()).unwrap();
    }
}
