//! Crash-safe file persistence shared by the campaign cache, the
//! resumable driver and the probe binaries.
//!
//! Every artefact this crate writes — probe JSONs, cache shards, work
//! manifests — goes through [`atomic_write`]: the content lands in a
//! sibling temporary file first and is atomically renamed over the
//! destination, so a killed process can never leave a truncated or
//! half-updated file behind (the old content, if any, stays intact until
//! the rename). This is the write half of the store's durability story;
//! the read half is the loaders' tolerance for files that predate a
//! crash (they simply re-derive whatever is missing).

use std::io;
use std::path::Path;

/// Writes `content` to `path` atomically: a unique sibling `*.tmp` file
/// is written, flushed and renamed over the destination. On any error
/// the temporary file is removed and the destination is untouched.
///
/// # Errors
///
/// Propagates the underlying I/O error (creating, writing, persisting or
/// renaming the temporary file).
pub fn atomic_write(path: &Path, content: &str) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    // Unique per process so concurrent writers (CI shards pointed at a
    // shared directory) cannot clobber each other's staging files.
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = std::fs::write(&tmp, content).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// [`atomic_write`] for binary artefacts (trace files): same unique
/// sibling staging file, same rename, same cleanup on failure.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn atomic_write_bytes(path: &Path, content: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".{}.tmp", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = std::fs::write(&tmp, content).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Blanks the run-specific transport fields of a probe or tune JSON —
/// wall-clock seconds and store hit/miss/byte counters — leaving only
/// the simulation-derived content. Two runs of the same campaign must
/// agree byte-for-byte on the stripped form no matter how the work was
/// split between simulation and cache hits; this is the comparison the
/// cold→warm CI gates and the resume tests make.
pub fn strip_run_metadata(json: &str) -> String {
    let mut out = json.to_owned();
    for key in [
        "seconds",
        "total_seconds",
        "cache_hits",
        "cache_misses",
        "cache_bytes_read",
        "cache_bytes_written",
        "store_hits",
        "store_misses",
        "probes_simulated",
        "probes_cached",
        "gt_simulated",
        "gt_cached",
        "trace_records",
        "trace_replays",
        // Derived from wall-clock seconds at render time, so it differs
        // between cold and warm runs exactly as `seconds` does.
        "host_ns_per_instr",
    ] {
        out = blank_numeric_field(&out, key);
    }
    out
}

/// Replaces every `"key": <number>` occurrence with `"key": 0`.
fn blank_numeric_field(text: &str, key: &str) -> String {
    let pat = format!("\"{key}\": ");
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(at) = rest.find(&pat) {
        let value_start = at + pat.len();
        out.push_str(&rest[..value_start]);
        let tail = &rest[value_start..];
        let end = tail
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(tail.len());
        out.push('0');
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("vortex_persist_{}", std::process::id()));
        let path = dir.join("out.json");
        atomic_write(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "staging files must not survive a successful write");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn strip_blanks_timing_and_cache_fields_only() {
        let json = "{\n  \"total_seconds\": 12.375,\n  \"cache_bytes_read\": 123,\n  \
                    \"kernels\": [\n    {\"name\": \"vecadd\", \"configs\": 10, \
                    \"seconds\": 1.500, \"cache_hits\": 4, \"cache_misses\": 6, \
                    \"l1_hits\": 77, \"port_accesses\": 31, \
                    \"host_ns_per_instr\": 52.125}\n  ]\n}\n";
        let stripped = strip_run_metadata(json);
        assert!(stripped.contains("\"total_seconds\": 0,"));
        assert!(stripped.contains("\"seconds\": 0,"));
        assert!(stripped.contains("\"cache_hits\": 0,"));
        assert!(stripped.contains("\"cache_misses\": 0,"));
        assert!(stripped.contains("\"cache_bytes_read\": 0,"));
        assert!(stripped.contains("\"host_ns_per_instr\": 0"));
        assert!(stripped.contains("\"l1_hits\": 77"), "simulation counters must survive");
        assert!(stripped.contains("\"port_accesses\": 31"), "port counters must survive");
        assert!(stripped.contains("\"configs\": 10"), "config counts must survive");
    }
}
