//! The 450-configuration hardware sweep of the paper's §3.

use vortex_sim::DeviceConfig;

/// Core counts of the sweep grid (18 values spanning 1..64).
pub const CORE_STEPS: [usize; 18] =
    [1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 28, 32, 40, 48, 56, 64];

/// Warp counts of the sweep grid.
pub const WARP_STEPS: [usize; 5] = [2, 4, 8, 16, 32];

/// Thread counts of the sweep grid.
pub const THREAD_STEPS: [usize; 5] = [2, 4, 8, 16, 32];

/// The full sweep: 18 × 5 × 5 = **450 configurations** spanning `1c2w2t`
/// to `64c32w32t`, matching the paper's §3 ("450 different hardware GPU
/// configurations, spanning from 1 core, 2 warps, and 2 threads to
/// 64c32w32t"). The exact grid is not given in the paper; this
/// reconstruction keeps the corner points and the cardinality.
pub fn paper_sweep() -> Vec<DeviceConfig> {
    let mut configs = Vec::with_capacity(450);
    for &cores in &CORE_STEPS {
        for &warps in &WARP_STEPS {
            for &threads in &THREAD_STEPS {
                configs.push(DeviceConfig::with_topology(cores, warps, threads));
            }
        }
    }
    configs
}

/// Deterministically subsamples `configs` down to at most `n` entries,
/// keeping the first and last and spreading the rest evenly.
pub fn subsample(configs: &[DeviceConfig], n: usize) -> Vec<DeviceConfig> {
    if n == 0 || configs.is_empty() {
        return Vec::new();
    }
    if n >= configs.len() {
        return configs.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let idx = i * (configs.len() - 1) / (n - 1).max(1);
        out.push(configs[idx]);
    }
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_exactly_450_configs() {
        let sweep = paper_sweep();
        assert_eq!(sweep.len(), 450);
    }

    #[test]
    fn sweep_spans_the_paper_corners() {
        let sweep = paper_sweep();
        let names: Vec<String> = sweep.iter().map(|c| c.topology_name()).collect();
        assert!(names.contains(&"1c2w2t".to_owned()));
        assert!(names.contains(&"64c32w32t".to_owned()));
    }

    #[test]
    fn sweep_has_no_duplicates() {
        let sweep = paper_sweep();
        let mut names: Vec<String> = sweep.iter().map(|c| c.topology_name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 450);
    }

    #[test]
    fn subsample_keeps_extremes() {
        let sweep = paper_sweep();
        let sub = subsample(&sweep, 10);
        assert!(sub.len() <= 10 && sub.len() >= 2);
        assert_eq!(sub.first().unwrap().topology_name(), "1c2w2t");
        assert_eq!(sub.last().unwrap().topology_name(), "64c32w32t");
        assert_eq!(subsample(&sweep, 1000).len(), 450);
        assert!(subsample(&sweep, 0).is_empty());
    }

    #[test]
    fn hp_range_matches_paper() {
        let sweep = paper_sweep();
        let min = sweep.iter().map(|c| c.hardware_parallelism()).min().unwrap();
        let max = sweep.iter().map(|c| c.hardware_parallelism()).max().unwrap();
        assert_eq!(min, 4); // 1c2w2t
        assert_eq!(max, 65536); // 64c32w32t
    }
}
