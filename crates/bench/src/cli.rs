//! Minimal flag parsing shared by the experiment binaries.

use std::collections::HashMap;

/// Parsed `--key value` flags and bare positional arguments.
///
/// # Examples
///
/// ```
/// use vortex_bench::cli::Flags;
/// let flags = Flags::parse(["--configs", "32", "--paper-scale"].map(String::from));
/// assert_eq!(flags.get_usize("configs", 450), 32);
/// assert!(flags.has("paper-scale"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Flags {
    /// Parses an iterator of arguments (without the program name).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut switches = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let takes_value = iter.peek().map(|next| !next.starts_with("--")).unwrap_or(false);
                if takes_value {
                    values.insert(key.to_owned(), iter.next().expect("peeked"));
                } else {
                    switches.push(key.to_owned());
                }
            }
        }
        Flags { values, switches }
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Flags::parse(std::env::args().skip(1))
    }

    /// Whether a bare `--flag` switch was given.
    pub fn has(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// A `--key value` as usize, with a default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.values.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A `--key value` as string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A comma-separated `--key a,b,c` list.
    pub fn get_list(&self, key: &str) -> Option<Vec<String>> {
        self.values.get(key).map(|v| v.split(',').map(|s| s.trim().to_owned()).collect())
    }
}

/// Default worker-thread count: the machine's parallelism.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_flags_parse() {
        let f = Flags::parse(
            ["--jobs", "8", "--csv", "out.csv", "--verbose", "--kernels", "vecadd,relu"]
                .map(String::from),
        );
        assert_eq!(f.get_usize("jobs", 1), 8);
        assert_eq!(f.get_str("csv"), Some("out.csv"));
        assert!(f.has("verbose"));
        assert_eq!(f.get_list("kernels").unwrap(), vec!["vecadd", "relu"]);
        assert!(!f.has("missing"));
        assert_eq!(f.get_usize("missing", 7), 7);
    }

    #[test]
    fn trailing_switch_is_a_switch() {
        let f = Flags::parse(["--paper-scale"].map(String::from));
        assert!(f.has("paper-scale"));
    }
}
