//! The probe JSON dialect: the machine-readable campaign/throughput
//! report shared by `speed_probe`, the resumable `campaign` driver and
//! the committed `BENCH_*.json` baselines.
//!
//! One file is a flat object: grid metadata (`configs`, `jobs`,
//! `total_seconds`, optional `shard`), the cache transport totals of the
//! producing process (`cache_bytes_read`/`cache_bytes_written`), and a
//! `kernels` array of per-kernel rows. Rows carry **raw counters only**
//! (hits, misses, rounds, instructions, cache hits/misses …) — derived
//! rates are computed at display time — so shard files produced by
//! independent processes merge into exactly the numbers a single-process
//! run would have produced ([`merge_probe_files`]).
//!
//! Everything here is serde-free by standing constraint; the parser is a
//! by-key scalar extractor over the exact dialect [`render_json`]
//! writes, with missing newer-generation counters defaulting to zero so
//! every committed baseline since PR 1 still parses and merges.

use vortex_core::DispatchStats;
use vortex_sim::MemStats;

use crate::cache::CacheCounters;

/// One kernel row of a probe JSON (also the in-memory accumulator).
#[derive(Clone, Debug, Default)]
pub struct KernelRow {
    /// Kernel name.
    pub name: String,
    /// Configurations measured by the producing process.
    pub configs: usize,
    /// Wall-clock seconds spent on this kernel.
    pub seconds: f64,
    /// Mean DRAM utilisation of the auto runs.
    pub util: f64,
    /// Auto-run memory counters summed over the measured configurations
    /// (only hits/misses and `dram_requests` are serialised).
    pub mem: MemStats,
    /// Auto-run dispatch-round counters summed over the measured
    /// configurations (launches, rounds, tasks — raw sums).
    pub dispatch: DispatchStats,
    /// Instructions the device actually issued across the executed
    /// policy runs of the measured configurations (dispatch prologues
    /// and autotune probe launches included — everything the host paid
    /// to simulate; raw sum, exact to merge). Distinct from the
    /// launch-attributed `dispatch.instructions`. Zero in pre-PR9 files.
    pub instructions: u64,
    /// Configurations answered from the campaign result store.
    pub cache_hits: u64,
    /// Configurations actually simulated (store misses; the whole count
    /// when no cache is attached).
    pub cache_misses: u64,
    /// SIMT memory-port accesses of the auto runs (batched accesses that
    /// carried at least one line — raw sum, exact to merge).
    pub port_accesses: u64,
    /// Extra L1 port slots beyond the first each access occupied (the
    /// cycles memory ports stayed blocked serialising uncoalesced lines
    /// — raw sum, exact to merge).
    pub port_stall_slots: u64,
    /// Policy runs measured by executing and recording a trace (zero
    /// without a trace store attached, and in pre-PR10 files — a
    /// transport counter, exact to merge).
    pub trace_records: u64,
    /// Policy runs measured by replaying a stored trace.
    pub trace_replays: u64,
}

impl KernelRow {
    /// Host nanoseconds spent per simulated instruction — the simulator
    /// cost metric the big-topology scaling work tracks. Derived from the
    /// raw `seconds` and instruction counters at display/render time, so
    /// merged shard files recompute it from the exact sums. The
    /// denominator is [`instructions`](KernelRow::instructions) (every
    /// instruction the host simulated during the timed interval); rows
    /// parsed from pre-PR9 files fall back to the launch-attributed
    /// dispatch count, the closest raw counter those files carry.
    pub fn host_ns_per_instr(&self) -> f64 {
        let instrs =
            if self.instructions != 0 { self.instructions } else { self.dispatch.instructions };
        if instrs == 0 {
            return 0.0;
        }
        self.seconds * 1e9 / instrs as f64
    }
}

/// A parsed (or to-be-rendered) probe file.
#[derive(Clone, Debug, Default)]
pub struct ProbeFile {
    /// Configurations in the producing process's grid share.
    pub configs: usize,
    /// Worker threads used.
    pub jobs: usize,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Shard designator (`K/M`), if the file covers a grid share.
    pub shard: Option<(usize, usize)>,
    /// Campaign-store bytes read by the producing process.
    pub cache_bytes_read: u64,
    /// Campaign-store bytes written by the producing process.
    pub cache_bytes_written: u64,
    /// Per-kernel rows.
    pub rows: Vec<KernelRow>,
}

impl ProbeFile {
    /// Stamps the store transport totals onto the file.
    pub fn with_cache_totals(mut self, counters: &CacheCounters) -> Self {
        self.cache_bytes_read = counters.bytes_read;
        self.cache_bytes_written = counters.bytes_written;
        self
    }
}

/// Renders the probe JSON (hand-rolled — the build environment has no
/// serde): a flat object that downstream tooling can diff across PRs.
pub fn render_json(file: &ProbeFile) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"configs\": {},\n", file.configs));
    if let Some((k, m)) = file.shard {
        out.push_str(&format!("  \"shard\": \"{k}/{m}\",\n"));
    }
    out.push_str(&format!("  \"jobs\": {},\n", file.jobs));
    out.push_str(&format!("  \"total_seconds\": {:.3},\n", file.total_seconds));
    out.push_str(&format!("  \"cache_bytes_read\": {},\n", file.cache_bytes_read));
    out.push_str(&format!("  \"cache_bytes_written\": {},\n", file.cache_bytes_written));
    out.push_str("  \"kernels\": [\n");
    for (i, row) in file.rows.iter().enumerate() {
        let comma = if i + 1 == file.rows.len() { "" } else { "," };
        let m = &row.mem;
        let d = &row.dispatch;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"configs\": {}, \"seconds\": {:.3}, \
             \"mean_dram_utilization\": {:.4}, \"l1_hits\": {}, \"l1_misses\": {}, \
             \"l2_hits\": {}, \"l2_misses\": {}, \"dram_requests\": {}, \
             \"launches\": {}, \"dispatch_rounds\": {}, \"round_tasks\": {}, \
             \"instructions\": {}, \"fused_instructions\": {}, \"fused_blocks\": {}, \
             \"issued_instructions\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"port_accesses\": {}, \"port_stall_slots\": {}, \
             \"trace_records\": {}, \"trace_replays\": {}, \
             \"host_ns_per_instr\": {:.3}}}{comma}\n",
            row.name,
            row.configs,
            row.seconds,
            row.util,
            m.l1.hits,
            m.l1.misses,
            m.l2.hits,
            m.l2.misses,
            m.dram_requests,
            d.launches,
            d.rounds,
            d.round_tasks,
            d.instructions,
            d.fused_instructions,
            d.fused_blocks,
            row.instructions,
            row.cache_hits,
            row.cache_misses,
            row.port_accesses,
            row.port_stall_slots,
            row.trace_records,
            row.trace_replays,
            row.host_ns_per_instr(),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the exact JSON [`render_json`] writes. Counters absent from
/// older file generations (pre-PR4 memory, pre-PR5 dispatch, pre-PR6
/// fusion, pre-PR7 cache, pre-PR9 port) default to zero, so every
/// committed baseline still parses and merges.
///
/// # Errors
///
/// A message naming the first missing or unparsable required field.
pub fn parse_probe_json(text: &str) -> Result<ProbeFile, String> {
    fn field<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
        let pat = format!("\"{key}\":");
        let at = obj.find(&pat).ok_or_else(|| format!("missing key {key}"))?;
        let rest = obj[at + pat.len()..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        rest[..end]
            .trim()
            .trim_matches('"')
            .parse()
            .map_err(|_| format!("unparsable value for {key}"))
    }
    fn counter(obj: &str, key: &str) -> u64 {
        field(obj, key).unwrap_or(0)
    }

    let kernels_at = text.find("\"kernels\"").ok_or("missing kernels array")?;
    let head = &text[..kernels_at];
    let mut file = ProbeFile {
        configs: field(head, "configs")?,
        jobs: field(head, "jobs")?,
        total_seconds: field(head, "total_seconds")?,
        shard: field::<String>(head, "shard").ok().and_then(|s| crate::parse_shard(&s)),
        cache_bytes_read: counter(head, "cache_bytes_read"),
        cache_bytes_written: counter(head, "cache_bytes_written"),
        rows: Vec::new(),
    };
    for obj in text[kernels_at..].split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        if !obj.contains("\"name\"") {
            continue;
        }
        let mut mem = MemStats::default();
        mem.l1.hits = counter(obj, "l1_hits");
        mem.l1.misses = counter(obj, "l1_misses");
        mem.l2.hits = counter(obj, "l2_hits");
        mem.l2.misses = counter(obj, "l2_misses");
        mem.dram_requests = counter(obj, "dram_requests");
        let dispatch = DispatchStats {
            launches: counter(obj, "launches"),
            rounds: counter(obj, "dispatch_rounds"),
            round_tasks: counter(obj, "round_tasks"),
            instructions: counter(obj, "instructions"),
            fused_instructions: counter(obj, "fused_instructions"),
            fused_blocks: counter(obj, "fused_blocks"),
        };
        file.rows.push(KernelRow {
            name: field(obj, "name")?,
            configs: field(obj, "configs")?,
            seconds: field(obj, "seconds")?,
            util: field(obj, "mean_dram_utilization")?,
            mem,
            dispatch,
            instructions: counter(obj, "issued_instructions"),
            cache_hits: counter(obj, "cache_hits"),
            cache_misses: counter(obj, "cache_misses"),
            // `host_ns_per_instr` is derived, not parsed: the renderer
            // recomputes it from the summed raw counters.
            port_accesses: counter(obj, "port_accesses"),
            port_stall_slots: counter(obj, "port_stall_slots"),
            trace_records: counter(obj, "trace_records"),
            trace_replays: counter(obj, "trace_replays"),
        });
    }
    Ok(file)
}

/// Merges shard probe JSONs: per-kernel configuration counts, seconds
/// and every raw counter (memory, dispatch, fusion, cache) are summed;
/// mean DRAM utilisation is weighted by configuration count; shard
/// totals sum into `total_seconds`. Shards partition the grid, so the
/// sums reconstruct exactly the full-grid values.
///
/// # Errors
///
/// The first unreadable or unparsable input file.
pub fn merge_probe_files(paths: &[String]) -> Result<String, String> {
    if paths.is_empty() {
        return Err("no input files".into());
    }
    let mut merged = ProbeFile::default();
    let mut rows: Vec<KernelRow> = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        // Older probe files lack newer counter generations; their rows
        // merge as zeros, so the merged sums under-cover the grid. Flag
        // it rather than silently reporting partial counters as if they
        // were the whole sweep.
        for (marker, what) in [
            ("\"l1_hits\"", "memory counters (pre-PR4 format); merged hit/miss/DRAM"),
            ("\"dispatch_rounds\"", "dispatch counters (pre-PR5 format); merged launch/round/task"),
            ("\"fused_instructions\"", "fusion counters (pre-PR6 format); merged instr/fused"),
            ("\"cache_hits\"", "cache counters (pre-PR7 format); merged hit/miss/bytes"),
            ("\"port_accesses\"", "port counters (pre-PR9 format); merged access/stall"),
            ("\"trace_records\"", "trace counters (pre-PR10 format); merged record/replay"),
        ] {
            if !text.contains(marker) {
                eprintln!("note: {path} has no {what} counters cover only the newer shards");
            }
        }
        let file = parse_probe_json(&text).map_err(|e| format!("{path}: {e}"))?;
        merged.jobs = merged.jobs.max(file.jobs);
        merged.total_seconds += file.total_seconds;
        merged.cache_bytes_read += file.cache_bytes_read;
        merged.cache_bytes_written += file.cache_bytes_written;
        for row in file.rows {
            match rows.iter_mut().find(|m| m.name == row.name) {
                Some(m) => {
                    let n = (m.configs + row.configs) as f64;
                    m.util = (m.util * m.configs as f64 + row.util * row.configs as f64) / n;
                    m.configs += row.configs;
                    m.seconds += row.seconds;
                    m.mem.accumulate(&row.mem);
                    m.dispatch.accumulate(&row.dispatch);
                    m.instructions += row.instructions;
                    m.cache_hits += row.cache_hits;
                    m.cache_misses += row.cache_misses;
                    m.port_accesses += row.port_accesses;
                    m.port_stall_slots += row.port_stall_slots;
                    m.trace_records += row.trace_records;
                    m.trace_replays += row.trace_replays;
                }
                None => rows.push(row),
            }
        }
    }
    merged.configs = rows.iter().map(|m| m.configs).max().unwrap_or(0);
    merged.rows = rows;
    Ok(render_json(&merged))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, configs: usize, seconds: f64, util: f64, scale: u64) -> KernelRow {
        let mut mem = MemStats::default();
        mem.l1.hits = 100 * scale;
        mem.l1.misses = 10 * scale;
        mem.l2.hits = 8 * scale;
        mem.l2.misses = 2 * scale;
        mem.dram_requests = 3 * scale;
        let dispatch = DispatchStats {
            launches: 5 * scale,
            rounds: 20 * scale,
            round_tasks: 160 * scale,
            instructions: 1000 * scale,
            fused_instructions: 400 * scale,
            fused_blocks: 80 * scale,
        };
        KernelRow {
            name: name.to_owned(),
            configs,
            seconds,
            util,
            mem,
            dispatch,
            instructions: 5000 * scale,
            cache_hits: 2 * scale,
            cache_misses: 7 * scale,
            port_accesses: 60 * scale,
            port_stall_slots: 9 * scale,
            trace_records: 4 * scale,
            trace_replays: 11 * scale,
        }
    }

    fn file(rows: Vec<KernelRow>, configs: usize, total: f64, shard: (usize, usize)) -> ProbeFile {
        ProbeFile {
            configs,
            jobs: 1,
            total_seconds: total,
            shard: Some(shard),
            cache_bytes_read: 64,
            cache_bytes_written: 128,
            rows,
        }
    }

    #[test]
    fn probe_json_roundtrips_through_the_parser() {
        let rows = vec![row("vecadd", 10, 1.5, 0.25, 1), row("gauss", 10, 2.0, 0.10, 2)];
        let json = render_json(&file(rows, 10, 3.5, (1, 2)));
        let parsed = parse_probe_json(&json).unwrap();
        assert_eq!(parsed.jobs, 1);
        assert_eq!(parsed.shard, Some((1, 2)));
        assert!((parsed.total_seconds - 3.5).abs() < 1e-9);
        assert_eq!((parsed.cache_bytes_read, parsed.cache_bytes_written), (64, 128));
        assert_eq!(parsed.rows.len(), 2);
        assert_eq!(parsed.rows[0].name, "vecadd");
        assert_eq!(parsed.rows[0].configs, 10);
        assert!((parsed.rows[1].seconds - 2.0).abs() < 1e-9);
        assert_eq!(parsed.rows[0].mem.l1.hits, 100);
        assert_eq!(parsed.rows[1].mem.dram_requests, 6);
        assert_eq!(parsed.rows[0].dispatch.launches, 5);
        assert_eq!(parsed.rows[1].dispatch.rounds, 40);
        assert_eq!(parsed.rows[1].dispatch.round_tasks, 320);
        assert_eq!(parsed.rows[0].dispatch.instructions, 1000);
        assert_eq!(parsed.rows[1].dispatch.fused_instructions, 800);
        assert_eq!(parsed.rows[1].dispatch.fused_blocks, 160);
        assert_eq!((parsed.rows[0].cache_hits, parsed.rows[0].cache_misses), (2, 7));
        assert_eq!((parsed.rows[1].cache_hits, parsed.rows[1].cache_misses), (4, 14));
        assert_eq!((parsed.rows[0].port_accesses, parsed.rows[0].port_stall_slots), (60, 9));
        assert_eq!((parsed.rows[1].port_accesses, parsed.rows[1].port_stall_slots), (120, 18));
        assert_eq!(parsed.rows[0].instructions, 5000);
        assert_eq!(parsed.rows[1].instructions, 10000);
        assert_eq!((parsed.rows[0].trace_records, parsed.rows[0].trace_replays), (4, 11));
        assert_eq!((parsed.rows[1].trace_records, parsed.rows[1].trace_replays), (8, 22));
    }

    #[test]
    fn host_ns_per_instr_derives_from_raw_counters() {
        let r = row("vecadd", 10, 2.0, 0.25, 1); // 5000 issued instructions in 2 s
        assert!((r.host_ns_per_instr() - 4e5).abs() < 1e-3);
        assert_eq!(KernelRow::default().host_ns_per_instr(), 0.0);
        // Pre-PR9 rows carry no issued count; the launch-attributed
        // dispatch count is the fallback denominator.
        let mut old = row("vecadd", 10, 2.0, 0.25, 1);
        old.instructions = 0; // 1000 dispatch instructions in 2 s
        assert!((old.host_ns_per_instr() - 2e6).abs() < 1e-3);
        let json = render_json(&file(vec![r], 10, 2.0, (1, 1)));
        assert!(json.contains("\"host_ns_per_instr\": 400000.000"));
        assert!(json.contains("\"issued_instructions\": 5000"));
    }

    #[test]
    fn parser_defaults_missing_counters_to_zero() {
        // The pre-PR4 row shape (no memory counters) must keep parsing so
        // committed BENCH_PR1..3 baselines and old shard files merge.
        let json = "{\n  \"configs\": 10,\n  \"jobs\": 1,\n  \"total_seconds\": 3.500,\n  \
                    \"kernels\": [\n    {\"name\": \"vecadd\", \"configs\": 10, \
                    \"seconds\": 1.500, \"mean_dram_utilization\": 0.2500}\n  ]\n}\n";
        let parsed = parse_probe_json(json).unwrap();
        assert_eq!(parsed.rows.len(), 1);
        assert_eq!(parsed.rows[0].mem.l1.hits, 0);
        assert_eq!(parsed.rows[0].mem.dram_requests, 0);
        assert_eq!(parsed.rows[0].dispatch, DispatchStats::default());
        assert_eq!((parsed.rows[0].cache_hits, parsed.rows[0].cache_misses), (0, 0));
        assert_eq!((parsed.cache_bytes_read, parsed.cache_bytes_written), (0, 0));
        assert_eq!((parsed.rows[0].port_accesses, parsed.rows[0].port_stall_slots), (0, 0));
        assert_eq!((parsed.rows[0].trace_records, parsed.rows[0].trace_replays), (0, 0));
    }

    #[test]
    fn pre_pr10_files_parse_and_merge_with_zero_trace_counters() {
        // A PR9-era shard (every counter generation except the trace
        // pair) must parse with zero trace counters and merge them as
        // zeros against a PR10 shard.
        let mut old = row("vecadd", 6, 1.0, 0.2, 1);
        old.trace_records = 0;
        old.trace_replays = 0;
        let old_json = render_json(&file(vec![old], 6, 1.0, (1, 2)))
            .replace("\"trace_records\": 0, \"trace_replays\": 0, ", "");
        assert!(!old_json.contains("trace_records"), "synthesised pre-PR10 shape");
        let parsed = parse_probe_json(&old_json).unwrap();
        assert_eq!((parsed.rows[0].trace_records, parsed.rows[0].trace_replays), (0, 0));

        let new_json = render_json(&file(vec![row("vecadd", 4, 3.0, 0.4, 3)], 4, 3.0, (2, 2)));
        let dir = std::env::temp_dir().join("speed_probe_prepr10_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (pa, pb) = (dir.join("old.json"), dir.join("new.json"));
        std::fs::write(&pa, old_json).unwrap();
        std::fs::write(&pb, new_json).unwrap();
        let merged = merge_probe_files(&[
            pa.to_string_lossy().into_owned(),
            pb.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let m = &parse_probe_json(&merged).unwrap().rows[0];
        assert_eq!((m.trace_records, m.trace_replays), (12, 33), "old shard contributes zeros");
        assert_eq!(m.mem.l1.hits, 400, "other counters still sum across generations");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_sums_disjoint_shards() {
        let a = render_json(&file(vec![row("vecadd", 6, 1.0, 0.2, 1)], 6, 1.0, (1, 2)));
        let b = render_json(&file(vec![row("vecadd", 4, 3.0, 0.4, 3)], 4, 3.0, (2, 2)));
        let dir = std::env::temp_dir().join("speed_probe_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (pa, pb) = (dir.join("a.json"), dir.join("b.json"));
        std::fs::write(&pa, a).unwrap();
        std::fs::write(&pb, b).unwrap();
        let merged = merge_probe_files(&[
            pa.to_string_lossy().into_owned(),
            pb.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let parsed = parse_probe_json(&merged).unwrap();
        assert!((parsed.total_seconds - 4.0).abs() < 1e-9);
        assert_eq!(parsed.rows.len(), 1);
        let m = &parsed.rows[0];
        assert_eq!(m.configs, 10);
        assert!((m.seconds - 4.0).abs() < 1e-9);
        // util weighted by configs: (0.2*6 + 0.4*4) / 10 = 0.28
        assert!((m.util - 0.28).abs() < 1e-6);
        // Raw memory counters sum exactly: scales 1 + 3 = 4.
        assert_eq!(m.mem.l1.hits, 400);
        assert_eq!(m.mem.l2.misses, 8);
        assert_eq!(m.mem.dram_requests, 12);
        // Raw dispatch counters sum exactly too.
        assert_eq!(m.dispatch.launches, 20);
        assert_eq!(m.dispatch.rounds, 80);
        assert_eq!(m.dispatch.round_tasks, 640);
        // And the fusion counters: scales 1 + 3 = 4.
        assert_eq!(m.dispatch.instructions, 4000);
        assert_eq!(m.dispatch.fused_instructions, 1600);
        assert_eq!(m.dispatch.fused_blocks, 320);
        // And the campaign-cache counters, per-row and top-level.
        assert_eq!((m.cache_hits, m.cache_misses), (8, 28));
        assert_eq!(parsed.cache_bytes_read, 128);
        assert_eq!(parsed.cache_bytes_written, 256);
        // And the port-contention counters: scales 1 + 3 = 4.
        assert_eq!((m.port_accesses, m.port_stall_slots), (240, 36));
        // And the issued-instruction denominator.
        assert_eq!(m.instructions, 20000);
        // And the trace record/replay counters: scales 1 + 3 = 4.
        assert_eq!((m.trace_records, m.trace_replays), (16, 44));
    }
}
