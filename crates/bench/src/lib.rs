//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Fig. 1 (vecadd traces under 4 lws values) | `fig1_traces` |
//! | Fig. 2 (violin plots over 450 configurations, 9 kernels) | `fig2_violins` |
//! | §3 headline (1.3× / 3.7× for the math kernels) | `headline` |
//! | §2 scenario analysis (three mapping regimes) | `scenarios_table` |
//! | Ablations (tuner variants, dispatch-overhead sensitivity) | `ablations` |
//!
//! The library half of this crate (the [`sweep`] generator and the
//! [`campaign`] runner) is shared by the binaries, the Criterion benches
//! and the integration tests.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod cli;
pub mod sweep;

pub use campaign::{
    kernel_factories, run_campaign, CampaignResult, ConfigRow, KernelFactory, Scale,
};
pub use sweep::{paper_sweep, subsample};
