//! Experiment harness: regenerates every table and figure of the paper.
//!
//! | Paper artefact | Binary |
//! |---|---|
//! | Fig. 1 (vecadd traces under 4 lws values) | `fig1_traces` |
//! | Fig. 2 (violin plots over 450 configurations, 9 kernels) | `fig2_violins` |
//! | §3 headline (1.3× / 3.7× for the math kernels) | `headline` |
//! | §2 scenario analysis (three mapping regimes) | `scenarios_table` |
//! | Ablations (tuner variants, dispatch-overhead sensitivity) | `ablations` |
//!
//! The library half of this crate (the [`sweep`] generator and the
//! [`campaign`] runner) is shared by the binaries, the Criterion benches
//! and the integration tests.

#![forbid(unsafe_code)]

pub mod cache;
pub mod campaign;
pub mod cli;
pub mod driver;
pub mod persist;
pub mod probe;
pub mod sweep;
pub mod tracestore;
pub mod tune;

pub use cache::{cache_enabled_by_env, campaign_key, CacheCounters, CampaignCache};
pub use campaign::{
    kernel_factories, run_campaign, run_campaign_cached, CampaignResult, ConfigRow, KernelFactory,
    Scale,
};
pub use persist::{atomic_write, strip_run_metadata};
pub use probe::{merge_probe_files, parse_probe_json, render_json, KernelRow, ProbeFile};
pub use sweep::{paper_sweep, subsample};
pub use tracestore::{trace_key, TraceStore};
pub use tune::{
    evaluate_tune, merge_tune_files, parse_tune_json, render_tune_json, run_tune_evaluation,
    tune_key, TuneFile, TuneRow,
};

/// Parses a `"K/M"` shard designator (1-based `K`).
pub fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (k, m) = s.split_once('/')?;
    let (k, m) = (k.trim().parse().ok()?, m.trim().parse().ok()?);
    if k >= 1 && k <= m {
        Some((k, m))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::parse_shard;

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(parse_shard("1/2"), Some((1, 2)));
        assert_eq!(parse_shard("3/3"), Some((3, 3)));
        assert_eq!(parse_shard("0/2"), None);
        assert_eq!(parse_shard("4/3"), None);
        assert_eq!(parse_shard("nope"), None);
    }
}
