//! Running kernels across configurations and policies, collecting the
//! cycle ratios of the paper's Fig. 2.

use std::sync::Mutex;

use vortex_core::{DispatchStats, LwsPolicy, Runtime};
use vortex_kernels::{
    record_kernel_prepared, replay_kernel_prepared, run_kernel_prepared, Gauss, GcnAggr, GcnLayer,
    Kernel, KernelError, Knn, Reduce, Relu, ResnetLayer, RunOutcome, Saxpy, Sgemm, VecAdd,
};
use vortex_sim::{DeviceConfig, MemStats, RecordedTrace};

use crate::tracestore::{trace_key, TraceStore};

/// Workload sizing: the paper's exact sizes or the reduced sweep sizes.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Fig. 2 sizes (sgemm 256×16×144, gauss 360×360, knn 42 764, …).
    Paper,
    /// Reduced sizes for the full 450-configuration campaign.
    Sweep,
}

impl Scale {
    /// Canonical tag folded into campaign cache keys: together with the
    /// kernel name it pins the dataset (inputs are generated from fixed
    /// per-kernel seeds at a size chosen by the scale).
    pub fn tag(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Sweep => "sweep",
        }
    }
}

/// A named constructor for fresh kernel instances (each worker thread
/// builds its own, so runs stay independent and deterministic).
pub struct KernelFactory {
    /// Kernel name (matches the paper's figure labels).
    pub name: &'static str,
    /// The dataset scale the instances are built at (part of the
    /// campaign cache key — see [`crate::cache::campaign_key`]).
    pub scale: Scale,
    /// Builds a fresh instance.
    pub make: Box<dyn Fn() -> Box<dyn Kernel> + Send + Sync>,
}

impl KernelFactory {
    /// Builds a fresh kernel instance.
    pub fn make_kernel(&self) -> Box<dyn Kernel> {
        (self.make)()
    }
}

/// The ten workload kernels at the chosen scale.
pub fn kernel_factories(scale: Scale) -> Vec<KernelFactory> {
    fn f(
        name: &'static str,
        make: impl Fn() -> Box<dyn Kernel> + Send + Sync + 'static,
    ) -> KernelFactory {
        // The dataset scale is stamped on below, once, for all entries.
        KernelFactory { name, scale: Scale::Sweep, make: Box::new(make) }
    }
    let mut factories = match scale {
        Scale::Paper => vec![
            f("vecadd", || Box::new(VecAdd::paper())),
            f("relu", || Box::new(Relu::paper())),
            f("saxpy", || Box::new(Saxpy::paper())),
            f("sgemm", || Box::new(Sgemm::paper())),
            f("gauss", || Box::new(Gauss::paper())),
            f("knn", || Box::new(Knn::paper())),
            f("gcn_aggr", || Box::new(GcnAggr::paper())),
            f("gcn_layer", || Box::new(GcnLayer::paper())),
            f("resnet_layer", || Box::new(ResnetLayer::paper())),
            f("reduce", || Box::new(Reduce::paper())),
        ],
        Scale::Sweep => vec![
            f("vecadd", || Box::new(VecAdd::paper())),
            f("relu", || Box::new(Relu::paper())),
            f("saxpy", || Box::new(Saxpy::paper())),
            f("sgemm", || Box::new(Sgemm::sweep())),
            f("gauss", || Box::new(Gauss::sweep())),
            f("knn", || Box::new(Knn::sweep())),
            f("gcn_aggr", || Box::new(GcnAggr::sweep())),
            f("gcn_layer", || Box::new(GcnLayer::sweep())),
            f("resnet_layer", || Box::new(ResnetLayer::sweep())),
            f("reduce", || Box::new(Reduce::paper())), // already small enough
        ],
    };
    for factory in &mut factories {
        factory.scale = scale;
    }
    factories
}

/// Measurements of one kernel on one configuration under the three
/// mapping policies of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigRow {
    /// The hardware configuration.
    pub config: DeviceConfig,
    /// Cycles under `lws = 1`.
    pub cycles_naive: u64,
    /// Cycles under `lws = 32`.
    pub cycles_fixed: u64,
    /// Cycles under the paper's Eq. 1 policy.
    pub cycles_auto: u64,
    /// The lws Eq. 1 resolved to.
    pub lws_auto: u32,
    /// DRAM utilisation of the auto run (memory-boundedness marker).
    pub dram_utilization: f64,
    /// Memory-hierarchy counters of the auto run (L1/L2 hits and misses,
    /// DRAM line requests) — what the batched transaction pipeline
    /// actually did, so a throughput change is attributable to a
    /// hit-rate or traffic change.
    pub mem: MemStats,
    /// Dispatch-round and occupancy counters of the auto run (launches,
    /// rounds, tasks — raw sums, so shard merges stay exact).
    pub dispatch: DispatchStats,
    /// Instructions the device actually issued across the policy runs
    /// executed for this row (policies deduplicated into a shared run are
    /// counted once, matching the host seconds actually spent). The raw
    /// denominator of host-ns-per-simulated-instruction: unlike the
    /// launch-attributed [`dispatch`](ConfigRow::dispatch) count it
    /// includes dispatch prologues and autotune probe launches — work the
    /// host genuinely simulates. Exact to merge.
    pub instructions: u64,
    /// SIMT memory-port accesses of the auto run (batched accesses that
    /// carried ≥ 1 line) — raw sum, exact to merge.
    pub port_accesses: u64,
    /// Extra L1 port slots beyond the first per access of the auto run
    /// (port serialisation under uncoalesced access) — raw sum.
    pub port_stall_slots: u64,
}

impl ConfigRow {
    /// `lws=1 cycles ÷ ours cycles` (left/yellow side of a Fig. 2 violin).
    pub fn ratio_naive(&self) -> f64 {
        self.cycles_naive as f64 / self.cycles_auto as f64
    }

    /// `lws=32 cycles ÷ ours cycles` (right/blue side of a Fig. 2 violin).
    pub fn ratio_fixed(&self) -> f64 {
        self.cycles_fixed as f64 / self.cycles_auto as f64
    }
}

/// All measurements of one kernel across a configuration sweep.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Kernel name.
    pub kernel: &'static str,
    /// One row per configuration, in sweep order.
    pub rows: Vec<ConfigRow>,
    /// Policy runs measured by executing (and, with a trace store,
    /// recording) — a transport counter like the cache hit counts, not
    /// simulation content, so shard merges sum it.
    pub trace_records: u64,
    /// Policy runs measured by replaying a stored trace.
    pub trace_replays: u64,
}

impl CampaignResult {
    /// The `lws=1/ours` ratio across configurations.
    pub fn naive_ratios(&self) -> Vec<f64> {
        self.rows.iter().map(ConfigRow::ratio_naive).collect()
    }

    /// The `lws=32/ours` ratio across configurations.
    pub fn fixed_ratios(&self) -> Vec<f64> {
        self.rows.iter().map(ConfigRow::ratio_fixed).collect()
    }

    /// Mean DRAM utilisation across configurations (≥ ~0.5 marks the
    /// paper's *memory bound* kernels).
    pub fn mean_dram_utilization(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.dram_utilization).sum::<f64>() / self.rows.len() as f64
    }

    /// Memory-hierarchy counters summed over all configurations' auto
    /// runs (see [`ConfigRow::mem`]).
    pub fn total_mem(&self) -> MemStats {
        let mut total = MemStats::default();
        for row in &self.rows {
            total.accumulate(&row.mem);
        }
        total
    }

    /// Dispatch-round counters summed over all configurations' auto runs
    /// (see [`ConfigRow::dispatch`]).
    pub fn total_dispatch(&self) -> DispatchStats {
        let mut total = DispatchStats::default();
        for row in &self.rows {
            total.accumulate(&row.dispatch);
        }
        total
    }

    /// Issued instructions summed over all configurations' executed runs
    /// (see [`ConfigRow::instructions`]).
    pub fn total_instructions(&self) -> u64 {
        self.rows.iter().map(|r| r.instructions).sum()
    }

    /// SIMT memory-port counters `(accesses, stall_slots)` summed over
    /// all configurations' auto runs (see [`ConfigRow::port_accesses`]).
    pub fn total_ports(&self) -> (u64, u64) {
        let mut accesses = 0;
        let mut stalls = 0;
        for row in &self.rows {
            accesses += row.port_accesses;
            stalls += row.port_stall_slots;
        }
        (accesses, stalls)
    }
}

/// Runs one kernel over `configs` under the three policies, in parallel
/// across `jobs` worker threads. Results are returned in sweep order and
/// every run is verified against the host reference.
///
/// Each worker assembles the kernel program **once** and reuses one
/// [`Runtime`] (device included) across the three policies of each
/// configuration via [`Runtime::reset`] — and across consecutive sweep
/// entries when they are equal (subsampling can repeat a configuration;
/// the 450-point paper sweep itself has pairwise-distinct topologies, so
/// there the device is rebuilt once per configuration). Nothing else is
/// rebuilt on the per-measurement path.
///
/// # Errors
///
/// Propagates the first kernel failure (assembly, launch, wrong results).
pub fn run_campaign(
    factory: &KernelFactory,
    configs: &[DeviceConfig],
    jobs: usize,
) -> Result<CampaignResult, KernelError> {
    run_campaign_cached(factory, configs, jobs, None)
}

/// [`run_campaign`] backed by the persistent content-addressed result
/// store: each configuration's [`campaign_key`](crate::cache::campaign_key)
/// is consulted before simulating — hits return the stored row (with all
/// raw counters, so downstream merges stay exact) and skip the device
/// entirely; misses simulate as usual and are appended to the store.
/// With no cache (or a disabled one) this is exactly [`run_campaign`].
///
/// The caller owns flushing: batch probes flush once per kernel, the
/// resumable driver puts the cache in autoflush mode instead.
///
/// # Errors
///
/// Propagates the first kernel failure (assembly, launch, wrong results).
pub fn run_campaign_cached(
    factory: &KernelFactory,
    configs: &[DeviceConfig],
    jobs: usize,
    cache: Option<&crate::cache::CampaignCache>,
) -> Result<CampaignResult, KernelError> {
    run_campaign_cached_traced(factory, configs, jobs, cache, None)
}

/// [`run_campaign_cached`] with semantics-free trace record/replay: with
/// a [`TraceStore`], the first execution of a (kernel, per-phase mapping,
/// topology) records its architectural event streams, and every later
/// configuration sharing that [`trace_key`] — same topology under a
/// different timing or memory-hierarchy model — is *replayed*: the full
/// scheduling and memory-timing walk runs, but decode-execute of row
/// kernels is skipped, producing bit-identical rows faster. Replay rows
/// skip host-side result verification (a replay computes no values);
/// every recorded row is verified as usual.
///
/// The returned [`CampaignResult::trace_records`]/`trace_replays` count
/// this campaign's policy runs by how they were measured (deduplicated
/// policies count once, cache hits count zero times).
///
/// # Errors
///
/// Propagates the first kernel failure (assembly, launch, wrong results).
pub fn run_campaign_cached_traced(
    factory: &KernelFactory,
    configs: &[DeviceConfig],
    jobs: usize,
    cache: Option<&crate::cache::CampaignCache>,
    traces: Option<&TraceStore>,
) -> Result<CampaignResult, KernelError> {
    let jobs = jobs.max(1);
    // One assembly on the caller thread pins the program digest for key
    // derivation; workers still assemble their own copy for simulation.
    let pdig: Option<u64> = if cache.is_some() || traces.is_some() {
        let program = factory.make_kernel().build()?;
        Some(vortex_core::digest_program(&program))
    } else {
        None
    };
    let keys: Vec<u64> = match (cache, pdig) {
        (Some(_), Some(pdig)) => configs
            .iter()
            .map(|c| crate::cache::campaign_key_from_digest(factory.name, factory.scale, pdig, c))
            .collect(),
        _ => Vec::new(),
    };
    let trace_ctx: Option<TraceCtx> = match (traces, pdig) {
        (Some(store), Some(pdig)) => Some(TraceCtx {
            store,
            kernel: factory.name,
            scale: factory.scale,
            program_digest: pdig,
        }),
        _ => None,
    };
    let records = std::sync::atomic::AtomicU64::new(0);
    let replays = std::sync::atomic::AtomicU64::new(0);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let rows: Mutex<Vec<Option<ConfigRow>>> = Mutex::new(vec![None; configs.len()]);
    let failure: Mutex<Option<KernelError>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut kernel = (factory.make)();
                let program = match kernel.build() {
                    Ok(p) => p,
                    Err(e) => {
                        *failure.lock().expect("failure lock") = Some(e.into());
                        return;
                    }
                };
                let mut rt: Option<Runtime> = None;
                let mut memo = TraceMemo::default();
                loop {
                    if failure.lock().expect("failure lock").is_some() {
                        return;
                    }
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(config) = configs.get(idx) else { return };
                    // Store first: a hit is a finished, verified row.
                    if let Some(cache) = cache {
                        if let Some(row) = cache.lookup(factory.name, keys[idx], config) {
                            rows.lock().expect("rows lock")[idx] = Some(row);
                            continue;
                        }
                    }
                    // Reuse the worker's runtime whenever the configuration
                    // carries over (always true for the three policies,
                    // sometimes for repeated subsample entries); rebuild
                    // only when the device shape actually changes.
                    let rt = match rt {
                        Some(ref mut r) if r.device().config() == config => r,
                        _ => {
                            let mut fresh = Runtime::new(*config);
                            fresh.load_program(&program);
                            rt.insert(fresh)
                        }
                    };
                    let measured = measure_config(
                        kernel.as_mut(),
                        &program,
                        rt,
                        config,
                        trace_ctx.as_ref(),
                        &mut memo,
                        (&records, &replays),
                    );
                    match measured {
                        Ok(row) => {
                            if let Some(cache) = cache {
                                cache.insert(factory.name, keys[idx], &row);
                            }
                            rows.lock().expect("rows lock")[idx] = Some(row);
                        }
                        Err(e) => {
                            *failure.lock().expect("failure lock") = Some(e);
                            return;
                        }
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let rows = rows
        .into_inner()
        .expect("rows lock")
        .into_iter()
        .map(|r| r.expect("all configs measured"))
        .collect();
    Ok(CampaignResult {
        kernel: factory.name,
        rows,
        trace_records: records.into_inner(),
        trace_replays: replays.into_inner(),
    })
}

/// Everything a worker needs to derive [`trace_key`]s and talk to the
/// shared [`TraceStore`].
struct TraceCtx<'a> {
    store: &'a TraceStore,
    kernel: &'static str,
    scale: Scale,
    program_digest: u64,
}

/// A worker's small cache of decoded traces. Micro-architecture sweeps
/// (`--uarch`) visit every timing/geometry variant of one topology
/// back-to-back, and all variants share the topology's trace keys — so
/// without this, each variant re-reads and re-decodes the same
/// multi-megabyte files. Capacity 4 covers the three policy signatures
/// of the current topology plus one straggler; a freshly *recorded*
/// trace is memoised too, so the variants following a cold record
/// replay from memory without touching the store at all.
#[derive(Default)]
struct TraceMemo {
    entries: Vec<(u64, RecordedTrace)>,
}

impl TraceMemo {
    const CAP: usize = 4;

    fn get(&self, key: u64) -> Option<&RecordedTrace> {
        self.entries.iter().find(|(k, _)| *k == key).map(|(_, t)| t)
    }

    fn insert(&mut self, key: u64, trace: RecordedTrace) {
        self.entries.retain(|(k, _)| *k != key);
        if self.entries.len() >= Self::CAP {
            self.entries.remove(0);
        }
        self.entries.push((key, trace));
    }
}

/// Measures one kernel on one configuration under all three policies,
/// reusing the caller's prepared runtime for all three runs.
///
/// Policies that resolve to the same `lws` for every phase produce
/// launch-for-launch identical simulations (the runtime is reset to the
/// same cold state each run and kernels are deterministic), so such runs
/// are executed once and shared. On large topologies `Auto` degenerates
/// to `lws = 1` (`hp ≥ gws`), which makes this a substantial fraction of
/// the paper sweep.
fn measure_config(
    kernel: &mut dyn Kernel,
    program: &vortex_asm::Program,
    rt: &mut Runtime,
    config: &DeviceConfig,
    traces: Option<&TraceCtx<'_>>,
    memo: &mut TraceMemo,
    counters: (&std::sync::atomic::AtomicU64, &std::sync::atomic::AtomicU64),
) -> Result<ConfigRow, KernelError> {
    let phases = kernel.phases();
    let resolve = |policy: LwsPolicy| -> Vec<u32> {
        phases.iter().map(|p| policy.lws_for(p.gws, config)).collect()
    };
    let sig_naive = resolve(LwsPolicy::Naive1);
    let sig_fixed = resolve(LwsPolicy::Fixed32);
    let sig_auto = resolve(LwsPolicy::Auto);

    // One policy run, measured by replay when the store holds a matching
    // trace, by execute-and-record otherwise. The (records, replays)
    // counters tick per run actually performed.
    let mut run = |policy: LwsPolicy, sig: &[u32]| -> Result<RunOutcome, KernelError> {
        let Some(t) = traces else {
            return run_kernel_prepared(kernel, program, rt, policy);
        };
        let phase_lws: Vec<(u32, u32)> =
            phases.iter().zip(sig).map(|(p, &lws)| (p.gws, lws)).collect();
        let key = trace_key(t.kernel, t.scale, t.program_digest, config, &phase_lws);
        if memo.get(key).is_none() {
            if let Some(rec) = t.store.load(key) {
                memo.insert(key, rec);
            }
        }
        if let Some(rec) = memo.get(key) {
            // A structurally divergent stored trace (which keying should
            // make impossible) degrades to re-recording, never to a
            // wrong row.
            if let Ok(out) = replay_kernel_prepared(kernel, program, rt, policy, rec) {
                counters.1.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                t.store.note_replay();
                return Ok(out);
            }
        }
        let (out, rec) = record_kernel_prepared(kernel, program, rt, policy)?;
        // Persisting is best-effort: an unwritable store costs later
        // replays, not correctness.
        let _ = t.store.save(key, &rec);
        memo.insert(key, rec);
        counters.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        t.store.note_record();
        Ok(out)
    };

    let naive = run(LwsPolicy::Naive1, &sig_naive)?;
    let mut instructions = naive.instructions;
    let fixed = if sig_fixed == sig_naive {
        naive.clone()
    } else {
        let run = run(LwsPolicy::Fixed32, &sig_fixed)?;
        instructions += run.instructions;
        run
    };
    let auto = if sig_auto == sig_naive {
        naive.clone()
    } else if sig_auto == sig_fixed {
        fixed.clone()
    } else {
        let run = run(LwsPolicy::Auto, &sig_auto)?;
        instructions += run.instructions;
        run
    };
    Ok(ConfigRow {
        config: *config,
        cycles_naive: naive.cycles,
        cycles_fixed: fixed.cycles,
        cycles_auto: auto.cycles,
        lws_auto: auto.reports.first().map_or(1, |r| r.lws),
        dram_utilization: auto.dram_utilization,
        mem: auto.mem,
        dispatch: auto.dispatch,
        instructions,
        port_accesses: auto.port_accesses,
        port_stall_slots: auto.port_stall_slots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{paper_sweep, subsample};

    #[test]
    fn tiny_campaign_produces_ordered_rows() {
        let configs = subsample(&paper_sweep(), 4);
        let factories = kernel_factories(Scale::Sweep);
        let vecadd = &factories[0];
        let result = run_campaign(vecadd, &configs, 2).unwrap();
        assert_eq!(result.kernel, "vecadd");
        assert_eq!(result.rows.len(), configs.len());
        for (row, config) in result.rows.iter().zip(&configs) {
            assert_eq!(row.config.topology_name(), config.topology_name());
            assert!(row.cycles_auto > 0);
        }
    }

    #[test]
    fn cached_campaign_reproduces_uncached_rows_exactly() {
        let configs =
            vec![DeviceConfig::with_topology(1, 2, 2), DeviceConfig::with_topology(2, 2, 4)];
        let factories = kernel_factories(Scale::Sweep);
        let vecadd = &factories[0];
        let dir =
            std::env::temp_dir().join(format!("vortex_campaign_cache_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = crate::cache::CampaignCache::open(&dir).unwrap();

        let plain = run_campaign(vecadd, &configs, 2).unwrap();
        let cold = run_campaign_cached(vecadd, &configs, 2, Some(&cache)).unwrap();
        let c = cache.counters();
        assert_eq!((c.hits, c.misses, c.insertions), (0, 2, 2));
        cache.flush().unwrap();

        // Same handle and a reopened handle must both replay the rows
        // bit-exactly (the f64 utilisation included).
        let warm = run_campaign_cached(vecadd, &configs, 2, Some(&cache)).unwrap();
        assert_eq!(cache.counters().hits, 2);
        let reopened = crate::cache::CampaignCache::open(&dir).unwrap();
        let persisted = run_campaign_cached(vecadd, &configs, 2, Some(&reopened)).unwrap();
        let rc = reopened.counters();
        assert_eq!((rc.hits, rc.misses, rc.insertions, rc.entries), (2, 0, 0, 2));
        assert!(rc.bytes_read > 0, "a reopened store must have read its shards");
        for other in [&cold, &warm, &persisted] {
            assert_eq!(plain.rows, other.rows, "cache must be result-transparent");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traced_campaign_replays_bit_identically() {
        // Two timing variants of one topology: the first records, the
        // second replays, and every row equals the plain execute run.
        let base = DeviceConfig::with_topology(2, 2, 4);
        let mut slow = base;
        slow.timing.mul = 9;
        slow.timing.fpu = 11;
        slow.mem.l2_latency += 5;
        let configs = vec![base, slow];
        let factories = kernel_factories(Scale::Sweep);
        let saxpy = factories.iter().find(|f| f.name == "saxpy").unwrap();
        let dir =
            std::env::temp_dir().join(format!("vortex_campaign_trace_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = crate::tracestore::TraceStore::open(&dir).unwrap();

        let plain = run_campaign(saxpy, &configs, 1).unwrap();
        assert_eq!((plain.trace_records, plain.trace_replays), (0, 0));
        let traced = run_campaign_cached_traced(saxpy, &configs, 1, None, Some(&store)).unwrap();
        assert_eq!(plain.rows, traced.rows, "replayed rows must be bit-identical");
        assert!(traced.trace_records > 0, "first topology visit must record");
        assert!(traced.trace_replays > 0, "the re-timed variant must replay");

        // A second pass over the same sweep replays everything.
        let rerun = run_campaign_cached_traced(saxpy, &configs, 1, None, Some(&store)).unwrap();
        assert_eq!(plain.rows, rerun.rows);
        assert_eq!(rerun.trace_records, 0, "warm store must not re-record");
        assert_eq!(store.counters().0, traced.trace_records, "store sums handle lifetime");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ratios_are_positive() {
        let configs = vec![DeviceConfig::with_topology(1, 2, 4)];
        let factories = kernel_factories(Scale::Sweep);
        let result = run_campaign(&factories[0], &configs, 1).unwrap();
        assert!(result.naive_ratios()[0] > 0.0);
        assert!(result.fixed_ratios()[0] > 0.0);
    }
}
