//! Regenerates the paper's **§2 scenario analysis**: the three mapping
//! regimes that arise from the relation between `lws` and `gws / hp`,
//! demonstrated — like the paper's running example — with a 128-element
//! vecadd on a 1-core, 2-warp, 4-thread device.
//!
//! ```text
//! cargo run --release -p vortex-bench --bin scenarios_table
//! cargo run --release -p vortex-bench --bin scenarios_table -- --topo 2c4w8t --n 1024
//! ```

use vortex_bench::cli::Flags;
use vortex_core::{LwsPolicy, MappingScenario, WorkMapping};
use vortex_kernels::{run_kernel, VecAdd};
use vortex_sim::DeviceConfig;
use vortex_stats::Table;

fn main() {
    let flags = Flags::from_env();
    let n = flags.get_usize("n", 128) as u32;
    let config: DeviceConfig =
        flags.get_str("topo").unwrap_or("1c2w4t").parse().expect("valid topology");
    let hp = config.hardware_parallelism();

    println!("§2 scenario analysis — vecadd gws={n} on {} (hp = {hp})\n", config.topology_name());

    let mut table =
        Table::new(vec!["lws", "n_tasks", "rounds", "scenario", "tail util", "cycles", "vs best"]);
    let lws_values: Vec<u32> = {
        let mut v = vec![1u32];
        let mut x = 2;
        while x <= n {
            v.push(x);
            x *= 2;
        }
        v
    };
    let mut measured = Vec::new();
    for &lws in &lws_values {
        let mut kernel = VecAdd::new(n);
        let outcome =
            run_kernel(&mut kernel, &config, LwsPolicy::Explicit(lws)).unwrap_or_else(|e| {
                eprintln!("lws={lws}: {e}");
                std::process::exit(1);
            });
        let plan = WorkMapping::plan(n, lws, &config);
        measured.push((lws, plan, outcome.cycles));
    }
    let best = measured.iter().map(|(_, _, c)| *c).min().expect("non-empty");
    for (lws, plan, cycles) in &measured {
        table.row(vec![
            lws.to_string(),
            plan.n_tasks().to_string(),
            plan.rounds().to_string(),
            match plan.scenario() {
                MappingScenario::MultiCall => "lws < gws/hp (multi-call)".to_owned(),
                MappingScenario::ExactFit => "lws = gws/hp (exact fit)".to_owned(),
                MappingScenario::Underfilled => "lws > gws/hp (under-filled)".to_owned(),
            },
            format!("{:.2}", plan.tail_utilization()),
            cycles.to_string(),
            format!("{:.2}x", *cycles as f64 / best as f64),
        ]);
    }
    println!("{}", table.to_text());

    let eq1 = LwsPolicy::Auto.lws_for(n, &config);
    println!("Eq. 1 resolves to lws = {eq1} at runtime (gws/hp = {}/{hp})", n);
}
