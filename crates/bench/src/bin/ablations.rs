//! Ablation studies for the design choices DESIGN.md calls out (these go
//! beyond the paper; they quantify how much each mechanism contributes):
//!
//! 1. **Tuner rounding** — Eq. 1 with floor (paper) vs ceiling division.
//! 2. **Dispatch overhead sensitivity** — how the lws=1 penalty scales
//!    with the host-side per-launch cost.
//! 3. **L1 banking** — serialised vs banked uncoalesced accesses.
//! 4. **DRAM channels** — bandwidth scaling of the memory-bound kernels.
//!
//! ```text
//! cargo run --release -p vortex-bench --bin ablations
//! ```

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::{paper_sweep, subsample};
use vortex_core::LwsPolicy;
use vortex_kernels::{run_kernel, Kernel as _, Knn, VecAdd};
use vortex_sim::DeviceConfig;
use vortex_stats::{RatioSummary, Table};

fn main() {
    let flags = Flags::from_env();
    let jobs = flags.get_usize("jobs", default_jobs());
    let _ = jobs;
    let configs = subsample(&paper_sweep(), flags.get_usize("configs", 24));

    tuner_rounding(&configs);
    dispatch_overhead(&configs);
    l1_banking(&configs);
    dram_channels(&configs);
}

/// Ablation 1: floor (Eq. 1) vs ceiling rounding of `gws / hp`.
fn tuner_rounding(configs: &[DeviceConfig]) {
    println!("── ablation 1: Eq.1 rounding (vecadd, gws=4096) ──");
    let mut ratios = Vec::new();
    for config in configs {
        let mut k = VecAdd::paper();
        let floor = run_kernel(&mut k, config, LwsPolicy::Auto).expect("auto run");
        let mut k = VecAdd::paper();
        let ceil = run_kernel(&mut k, config, LwsPolicy::AutoCeil).expect("auto-ceil run");
        ratios.push(floor.cycles as f64 / ceil.cycles as f64);
    }
    let s = RatioSummary::from_ratios(ratios);
    println!(
        "floor/ceil cycle ratio: avg {:.3}, median {:.3}, range [{:.2}, {:.2}]",
        s.avg, s.median, s.worst, s.best
    );
    println!("(>1 means ceiling rounding is faster on that configuration)\n");
}

/// Ablation 2: the lws=1 penalty as a function of host dispatch overhead.
fn dispatch_overhead(configs: &[DeviceConfig]) {
    println!("── ablation 2: host dispatch overhead sensitivity (vecadd) ──");
    let mut table = Table::new(vec!["overhead (cycles)", "avg lws=1/ours"]);
    for overhead in [0u64, 256, 1024, 4096] {
        let mut ratios = Vec::new();
        for config in configs {
            let cycles = |policy: LwsPolicy| -> u64 {
                let mut kernel = VecAdd::paper();
                let program = kernel.build().expect("assembles");
                let mut rt = vortex_core::Runtime::new(*config).with_dispatch_overhead(overhead);
                rt.load_program(&program);
                kernel.setup(&mut rt).expect("setup");
                let report = rt
                    .launch(&vortex_core::LaunchParams::new(4096).policy(policy), None)
                    .expect("launch");
                report.cycles
            };
            ratios.push(cycles(LwsPolicy::Naive1) as f64 / cycles(LwsPolicy::Auto) as f64);
        }
        let s = RatioSummary::from_ratios(ratios);
        table.row(vec![overhead.to_string(), format!("{:.2}", s.avg)]);
    }
    println!("{}", table.to_text());
}

/// Ablation 3: L1 bank count (uncoalesced access serialisation).
fn l1_banking(configs: &[DeviceConfig]) {
    println!("── ablation 3: L1 banks (vecadd, auto mapping) ──");
    let mut table = Table::new(vec!["l1 banks", "mean cycles (auto)"]);
    for banks in [1u32, 4, 32] {
        let mut total = 0u64;
        for config in configs {
            let mut cfg = *config;
            cfg.mem.l1_banks = banks;
            let mut k = VecAdd::paper();
            total += run_kernel(&mut k, &cfg, LwsPolicy::Auto).expect("run").cycles;
        }
        table.row(vec![banks.to_string(), (total / configs.len() as u64).to_string()]);
    }
    println!("{}", table.to_text());
}

/// Ablation 4: DRAM channel count (bandwidth) on a memory-bound kernel.
fn dram_channels(configs: &[DeviceConfig]) {
    println!("── ablation 4: DRAM channels (knn, auto mapping) ──");
    let mut table = Table::new(vec!["channels", "mean cycles (auto)", "mean dram util"]);
    for channels in [1u32, 2, 4, 8] {
        let mut total = 0u64;
        let mut util = 0.0;
        for config in configs {
            let mut cfg = *config;
            cfg.mem.dram.channels = channels;
            let mut k = Knn::sweep();
            let outcome = run_kernel(&mut k, &cfg, LwsPolicy::Auto).expect("run");
            total += outcome.cycles;
            util += outcome.dram_utilization;
        }
        table.row(vec![
            channels.to_string(),
            (total / configs.len() as u64).to_string(),
            format!("{:.2}", util / configs.len() as f64),
        ]);
    }
    println!("{}", table.to_text());
}
