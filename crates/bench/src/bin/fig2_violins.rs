//! Regenerates **Figure 2** of the paper: per-kernel distributions of the
//! cycle ratio between the baseline mappings (`lws=1`, `lws=32`) and the
//! hardware-aware runtime mapping (Eq. 1), across the 450-configuration
//! hardware sweep.
//!
//! ```text
//! cargo run --release -p vortex-bench --bin fig2_violins            # sweep scale, 450 configs
//! cargo run --release -p vortex-bench --bin fig2_violins -- --configs 60
//! cargo run --release -p vortex-bench --bin fig2_violins -- --paper-scale --kernels vecadd,relu
//! cargo run --release -p vortex-bench --bin fig2_violins -- --csv fig2.csv
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::{kernel_factories, paper_sweep, run_campaign, subsample, Scale};
use vortex_stats::{render_violin_row, RatioSummary, Table};

fn main() {
    let flags = Flags::from_env();
    let jobs = flags.get_usize("jobs", default_jobs());
    let n_configs = flags.get_usize("configs", 450);
    let bins = flags.get_usize("bins", 48);
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    let wanted = flags.get_list("kernels");

    let configs = subsample(&paper_sweep(), n_configs);
    println!(
        "Figure 2 reproduction — {} configurations ({} scale), {} jobs",
        configs.len(),
        if scale == Scale::Paper { "paper" } else { "sweep" },
        jobs
    );
    println!("ratio = baseline cycles / ours cycles  (>1 means the runtime mapping wins)\n");

    let mut table =
        Table::new(vec!["kernel", "side", "avg", "worse%", "worst", "best", "median", "bound"]);
    let mut csv = String::from(
        "kernel,topology,hp,cycles_lws1,cycles_lws32,cycles_auto,lws_auto,dram_util\n",
    );
    let mut math_naive: Vec<f64> = Vec::new();
    let mut math_fixed: Vec<f64> = Vec::new();

    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let start = Instant::now();
        let result = run_campaign(&factory, &configs, jobs).unwrap_or_else(|e| {
            eprintln!("campaign failed for {}: {e}", factory.name);
            std::process::exit(1);
        });
        let naive = result.naive_ratios();
        let fixed = result.fixed_ratios();
        let boundness = if result.mean_dram_utilization() > 0.1 { "memory" } else { "compute" };

        println!("── {} ({boundness} bound, {:.1?}) ──", factory.name, start.elapsed());
        println!(
            "{}",
            render_violin_row(
                &format!("{} lws=1 /ours", factory.name),
                naive.iter().copied(),
                bins
            )
        );
        println!(
            "{}",
            render_violin_row(
                &format!("{} lws=32/ours", factory.name),
                fixed.iter().copied(),
                bins
            )
        );
        let s1 = RatioSummary::from_ratios(naive.iter().copied());
        let s32 = RatioSummary::from_ratios(fixed.iter().copied());
        println!("  lws=1 /ours  {}", s1.annotation());
        println!("  lws=32/ours  {}\n", s32.annotation());

        for (summary, side) in [(s1, "lws=1/ours"), (s32, "lws=32/ours")] {
            table.row(vec![
                factory.name.to_owned(),
                side.to_owned(),
                format!("{:.2}", summary.avg),
                format!("{:.1}", summary.pct_below_one * 100.0),
                format!("{:.2}", summary.worst),
                format!("{:.2}", summary.best),
                format!("{:.2}", summary.median),
                boundness.to_owned(),
            ]);
        }
        if matches!(factory.name, "vecadd" | "relu" | "saxpy" | "sgemm") {
            math_naive.extend_from_slice(&naive);
            math_fixed.extend_from_slice(&fixed);
        }
        for row in &result.rows {
            let _ = writeln!(
                csv,
                "{},{},{},{},{},{},{},{:.4}",
                factory.name,
                row.config.topology_name(),
                row.config.hardware_parallelism(),
                row.cycles_naive,
                row.cycles_fixed,
                row.cycles_auto,
                row.lws_auto,
                row.dram_utilization
            );
        }
    }

    println!("{}", table.to_text());
    if !math_naive.is_empty() {
        let n = RatioSummary::from_ratios(math_naive);
        let f = RatioSummary::from_ratios(math_fixed);
        println!(
            "math kernels aggregate: {:.2}x over lws=1, {:.2}x over lws=32  (paper reports 1.3x / 3.7x)",
            n.avg, f.avg
        );
    }
    if let Some(path) = flags.get_str("csv") {
        std::fs::write(path, csv).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("per-configuration data written to {path}");
    }
}
