//! Quick calibration probe: wall-clock cost of one kernel's full
//! 450-configuration campaign (not a paper artefact; used to size the
//! default sweep parameters honestly and to track simulator throughput
//! across PRs).
//!
//! ```text
//! cargo run --release -p vortex-bench --bin speed_probe
//! cargo run --release -p vortex-bench --bin speed_probe -- --configs 20
//! cargo run --release -p vortex-bench --bin speed_probe -- --json BENCH.json
//! ```
//!
//! With `--json PATH` the per-kernel wall times are also written as a
//! machine-readable file (atomically — a killed probe never leaves a
//! truncated JSON); the committed `BENCH_*.json` baselines in the
//! repository root are produced this way (see README). Since PR 4 each
//! kernel row also records the memory-side counters of its auto runs
//! (L1/L2 hits and misses, DRAM line requests), so a throughput change is
//! attributable to the memory hierarchy — the stdout table prints them as
//! hit rates. Since PR 5 each row additionally records the dispatch-round
//! counters (`launches`, `dispatch_rounds`, `round_tasks` — raw sums, so
//! shard merges stay exact); the stdout table prints them as rounds per
//! launch and mean busy lanes per round, the occupancy profile of the
//! launch pipeline. Since PR 6 each row also records the block-fusion
//! counters (`instructions`, `fused_instructions`, `fused_blocks` — raw
//! sums again), so the fused share of the instruction stream is
//! attributable per kernel. Since PR 9 each row records the SIMT
//! memory-port contention counters (`port_accesses`,
//! `port_stall_slots` — raw sums) and a derived `host_ns_per_instr`
//! field (host seconds per simulated instruction, the metric the
//! big-topology scaling gate tracks — recomputed from the raw sums on
//! merge, and blanked by the stripped-comparison gates like every other
//! wall-clock-derived field). `--topos 16c16w16t,256c4w8tx16` replaces
//! the subsampled sweep grid with an explicit topology list, which is
//! how the committed 16-core vs 256-core scaling baselines pin their
//! configurations.
//!
//! ## Trace record/replay (PR 10)
//!
//! `--trace-dir DIR` attaches the keyed trace store (docs/TRACE.md): the
//! first policy run of a (kernel, mapping, topology) executes normally
//! and records its architectural event streams; every later
//! configuration sharing that key — the same topology under a different
//! timing or memory model — replays the stored trace, skipping
//! decode-execute while producing bit-identical rows. `--uarch M`
//! expands every grid topology into `M` deterministic micro-architecture
//! variants (variant 0 is the unmodified base; the others perturb
//! functional-unit latencies, cache geometry and DRAM parameters but
//! never the topology), which is the sweep shape replay accelerates:
//! one record serves `M - 1` replays. Since PR 10 each row records
//! `trace_records`/`trace_replays` (raw sums, exact on shard merge;
//! zero without `--trace-dir`).
//!
//! ## Campaign cache
//!
//! `--cache DIR` attaches the persistent content-addressed result store
//! (see the README's campaign-cache section): configurations whose
//! results are already in the store are answered without simulating, and
//! freshly simulated ones are persisted for the next run. Since PR 7 each
//! row records `cache_hits`/`cache_misses` (misses = configurations this
//! process actually simulated; without `--cache` every configuration is a
//! miss), and the file header records the store bytes moved. The JSON is
//! byte-identical between a cold and a warm run apart from wall-clock and
//! cache-transport fields — the cold→warm CI gate diffs the stripped
//! forms.
//!
//! ## Sharding
//!
//! `--shard K/M` (1-based `K`) deterministically splits the configuration
//! grid into `M` strided shards and measures only the `K`-th — the same
//! grid is reassembled no matter how the shards are distributed over
//! processes or CI jobs. Shard JSONs record their own measured counts and
//! are recombined with `--merge`:
//!
//! ```text
//! speed_probe --shard 1/2 --json s1.json   # process or CI job 1
//! speed_probe --shard 2/2 --json s2.json   # process or CI job 2
//! speed_probe --merge s1.json,s2.json --json BENCH.json
//! ```
//!
//! A merged file sums per-kernel configuration counts, seconds and every
//! raw counter — memory, dispatch, fusion, cache (shards partition the
//! grid, so sums reconstruct the full-grid values), weights mean DRAM
//! utilisation by configuration count, and sums the shard totals into
//! `total_seconds`.

use std::path::Path;
use std::time::Instant;

use vortex_bench::campaign::run_campaign_cached_traced;
use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::probe::{merge_probe_files, render_json, KernelRow, ProbeFile};
use vortex_bench::{
    atomic_write, kernel_factories, paper_sweep, parse_shard, CampaignCache, Scale, TraceStore,
};
use vortex_sim::DeviceConfig;

/// Deterministic micro-architecture variant `v` of `base`: perturbs
/// pipeline latencies, cache geometry and DRAM parameters — everything
/// replay re-times — while leaving the topology (and therefore the
/// trace key) untouched. Variant 0 is `base` itself.
fn uarch_variant(base: &DeviceConfig, v: usize) -> DeviceConfig {
    let mut c = *base;
    if v == 0 {
        return c;
    }
    let k = v as u64;
    c.timing.alu = 1 + (k & 1);
    c.timing.mul = 2 + k % 5;
    c.timing.div = 12 + 2 * (k % 4);
    c.timing.fpu = 3 + k % 4;
    c.timing.fdiv = 12 + 3 * (k % 3);
    c.timing.fsqrt = 16 + 4 * (k % 3);
    c.timing.branch_bubble = 1 + k % 3;
    c.timing.wspawn = 8 + 4 * (k % 4);
    c.timing.barrier = 2 + k % 4;
    c.mem.l1_latency = 1 + k % 3;
    c.mem.l2_latency = 12 + 6 * (k % 4);
    c.mem.l2_interval = 1 + k % 2;
    c.mem.l1.size_bytes = (8 * 1024) << (k % 3);
    c.mem.l1.ways = 2 << (k % 3);
    c.mem.l2.size_bytes = (128 * 1024) << (k % 3);
    c.mem.dram.latency = 60 + 30 * (k % 4);
    c.mem.dram.interval = 1 + k % 3;
    c.mem.dram.channels = 2 << (k % 3);
    c
}

fn main() {
    let flags = Flags::from_env();

    if let Some(inputs) = flags.get_list("merge") {
        let Some(out) = flags.get_str("json") else {
            eprintln!("--merge requires --json OUT for the merged file");
            std::process::exit(2);
        };
        match merge_probe_files(&inputs) {
            Ok(json) => {
                if let Err(e) = atomic_write(Path::new(out), &json) {
                    eprintln!("writing {out}: {e}");
                    std::process::exit(1);
                }
                println!("merged {} shard files into {out}", inputs.len());
            }
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let jobs = flags.get_usize("jobs", default_jobs());
    let n = flags.get_usize("configs", 450);
    let mut configs = match flags.get_list("topos") {
        // Explicit topology list: probe exactly these configurations
        // (the big-topology scaling comparisons pin the grid this way).
        Some(topos) => topos
            .iter()
            .map(|t| match t.parse::<DeviceConfig>() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid --topos entry `{t}`: {e}");
                    std::process::exit(2);
                }
            })
            .collect(),
        None => vortex_bench::subsample(&paper_sweep(), n),
    };
    let shard = flags.get_str("shard").map(|s| match parse_shard(s) {
        Some(km) => km,
        None => {
            eprintln!("invalid --shard `{s}` (expected K/M with 1 <= K <= M)");
            std::process::exit(2);
        }
    });
    if let Some((k, m)) = shard {
        // Strided split: deterministic, and every shard sees the same
        // small-to-large topology spread (a prefix split would give one
        // shard all the slow many-core configurations).
        configs = configs
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % m == k - 1)
            .map(|(_, c)| c)
            .collect();
    }
    let uarch = flags.get_usize("uarch", 1).max(1);
    if uarch > 1 {
        // Expand after sharding so every shard holds each of its
        // topologies' full variant families — a shard's records serve
        // its own replays and the merged counters sum exactly.
        configs = configs.iter().flat_map(|c| (0..uarch).map(|v| uarch_variant(c, v))).collect();
    }
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    let cache = flags.get_str("cache").map(|dir| match CampaignCache::open(dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("opening campaign cache {dir}: {e}");
            std::process::exit(1);
        }
    });
    let traces = flags.get_str("trace-dir").map(|dir| match TraceStore::open(Path::new(dir)) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("opening trace store {dir}: {e}");
            std::process::exit(1);
        }
    });
    let wanted = flags.get_list("kernels");
    let mut rows: Vec<KernelRow> = Vec::new();
    let wall = Instant::now();
    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let before = cache.as_ref().map(|c| c.counters()).unwrap_or_default();
        let start = Instant::now();
        let result =
            run_campaign_cached_traced(&factory, &configs, jobs, cache.as_ref(), traces.as_ref())
                .unwrap_or_else(|e| {
                    eprintln!("{}: {e}", factory.name);
                    std::process::exit(1);
                });
        let dt = start.elapsed();
        let after = cache.as_ref().map(|c| c.counters()).unwrap_or_default();
        let (hits, misses) = match cache {
            Some(_) => (after.hits - before.hits, after.misses - before.misses),
            // No store attached: every configuration was simulated.
            None => (0, result.rows.len() as u64),
        };
        let mem = result.total_mem();
        let dispatch = result.total_dispatch();
        let (port_accesses, port_stall_slots) = result.total_ports();
        let row = KernelRow {
            name: factory.name.to_owned(),
            configs: result.rows.len(),
            seconds: dt.as_secs_f64(),
            util: result.mean_dram_utilization(),
            mem,
            dispatch,
            instructions: result.total_instructions(),
            cache_hits: hits,
            cache_misses: misses,
            port_accesses,
            port_stall_slots,
            trace_records: result.trace_records,
            trace_replays: result.trace_replays,
        };
        println!(
            "{:<13} {:>4} configs x3 policies: {:>8.2?}  (dram util {:.2}, L1 {:>5.1}%, \
             L2 {:>5.1}%, {} DRAM reqs, {:.1} rnds/launch, {:.1} lanes/rnd, \
             fused {:>4.1}%, {:.1} instr/blk, {:.1} stall/acc, {:.0} ns/instr, \
             cache {hits}h/{misses}m, trace {}rec/{}rep)",
            factory.name,
            result.rows.len(),
            dt,
            result.mean_dram_utilization(),
            row.mem.l1.hit_rate() * 100.0,
            row.mem.l2.hit_rate() * 100.0,
            row.mem.dram_requests,
            row.dispatch.rounds_per_launch(),
            row.dispatch.mean_lanes_per_round(),
            row.dispatch.fused_share() * 100.0,
            row.dispatch.mean_fused_block_len(),
            if port_accesses == 0 { 0.0 } else { port_stall_slots as f64 / port_accesses as f64 },
            row.host_ns_per_instr(),
            result.trace_records,
            result.trace_replays,
        );
        rows.push(row);
    }
    let total = wall.elapsed().as_secs_f64();
    println!("{:<13} total: {total:.2}s", "");

    let mut file = ProbeFile {
        configs: configs.len(),
        jobs,
        total_seconds: total,
        shard,
        cache_bytes_read: 0,
        cache_bytes_written: 0,
        rows,
    };
    if let Some(cache) = &cache {
        if let Err(e) = cache.flush() {
            eprintln!("flushing campaign cache: {e}");
            std::process::exit(1);
        }
        let c = cache.counters();
        file = file.with_cache_totals(&c);
        let state = if cache.is_enabled() { "" } else { " (disabled by VORTEX_CAMPAIGN_CACHE=0)" };
        println!(
            "campaign cache{state}: {} hits, {} misses, {} rows resident, {}B read, {}B written",
            c.hits, c.misses, c.entries, c.bytes_read, c.bytes_written
        );
    }

    if let Some(store) = &traces {
        let (rec, rep) = store.counters();
        println!("trace store: {rec} runs recorded, {rep} replayed ({})", store.dir().display());
    }

    if let Some(path) = flags.get_str("json") {
        if let Err(e) = atomic_write(Path::new(path), &render_json(&file)) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
