//! Quick calibration probe: wall-clock cost of one kernel's full
//! 450-configuration campaign (not a paper artefact; used to size the
//! default sweep parameters honestly and to track simulator throughput
//! across PRs).
//!
//! ```text
//! cargo run --release -p vortex-bench --bin speed_probe
//! cargo run --release -p vortex-bench --bin speed_probe -- --configs 20
//! cargo run --release -p vortex-bench --bin speed_probe -- --json BENCH.json
//! ```
//!
//! With `--json PATH` the per-kernel wall times are also written as a
//! machine-readable file; the committed `BENCH_*.json` baselines in the
//! repository root are produced this way (see README).

use std::time::Instant;

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::{kernel_factories, paper_sweep, run_campaign, Scale};

fn main() {
    let flags = Flags::from_env();
    let jobs = flags.get_usize("jobs", default_jobs());
    let n = flags.get_usize("configs", 450);
    let configs = vortex_bench::subsample(&paper_sweep(), n);
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    let wanted = flags.get_list("kernels");
    let mut rows: Vec<(&'static str, usize, f64, f64)> = Vec::new();
    let wall = Instant::now();
    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let start = Instant::now();
        let result = run_campaign(&factory, &configs, jobs).unwrap_or_else(|e| {
            eprintln!("{}: {e}", factory.name);
            std::process::exit(1);
        });
        let dt = start.elapsed();
        println!(
            "{:<13} {:>4} configs x3 policies: {:>8.2?}  (mean dram util {:.2})",
            factory.name,
            result.rows.len(),
            dt,
            result.mean_dram_utilization(),
        );
        rows.push((
            factory.name,
            result.rows.len(),
            dt.as_secs_f64(),
            result.mean_dram_utilization(),
        ));
    }
    let total = wall.elapsed().as_secs_f64();
    println!("{:<13} total: {total:.2}s", "");

    if let Some(path) = flags.get_str("json") {
        let json = render_json(&rows, n, jobs, total);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

/// Hand-rolled JSON (the build environment has no serde): a flat object
/// that downstream tooling can diff across PRs.
fn render_json(rows: &[(&str, usize, f64, f64)], configs: usize, jobs: usize, total: f64) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"configs\": {configs},\n"));
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, (name, n, secs, util)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"name\": \"{name}\", \"configs\": {n}, \"seconds\": {secs:.3}, \
             \"mean_dram_utilization\": {util:.4}}}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
