//! Quick calibration probe: wall-clock cost of one kernel's full
//! 450-configuration campaign (not a paper artefact; used to size the
//! default sweep parameters honestly).

use std::time::Instant;

use vortex_bench::{kernel_factories, paper_sweep, run_campaign, Scale};
use vortex_bench::cli::{default_jobs, Flags};

fn main() {
    let flags = Flags::from_env();
    let jobs = flags.get_usize("jobs", default_jobs());
    let n = flags.get_usize("configs", 450);
    let configs = vortex_bench::subsample(&paper_sweep(), n);
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    let wanted = flags.get_list("kernels");
    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let start = Instant::now();
        let result = run_campaign(&factory, &configs, jobs).unwrap_or_else(|e| {
            eprintln!("{}: {e}", factory.name);
            std::process::exit(1);
        });
        let dt = start.elapsed();
        println!(
            "{:<13} {:>4} configs x3 policies: {:>8.2?}  (mean dram util {:.2})",
            factory.name,
            result.rows.len(),
            dt,
            result.mean_dram_utilization(),
        );
    }
}
