//! Quick calibration probe: wall-clock cost of one kernel's full
//! 450-configuration campaign (not a paper artefact; used to size the
//! default sweep parameters honestly and to track simulator throughput
//! across PRs).
//!
//! ```text
//! cargo run --release -p vortex-bench --bin speed_probe
//! cargo run --release -p vortex-bench --bin speed_probe -- --configs 20
//! cargo run --release -p vortex-bench --bin speed_probe -- --json BENCH.json
//! ```
//!
//! With `--json PATH` the per-kernel wall times are also written as a
//! machine-readable file; the committed `BENCH_*.json` baselines in the
//! repository root are produced this way (see README). Since PR 4 each
//! kernel row also records the memory-side counters of its auto runs
//! (L1/L2 hits and misses, DRAM line requests), so a throughput change is
//! attributable to the memory hierarchy — the stdout table prints them as
//! hit rates. Since PR 5 each row additionally records the dispatch-round
//! counters (`launches`, `dispatch_rounds`, `round_tasks` — raw sums, so
//! shard merges stay exact); the stdout table prints them as rounds per
//! launch and mean busy lanes per round, the occupancy profile of the
//! launch pipeline. Since PR 6 each row also records the block-fusion
//! counters (`instructions`, `fused_instructions`, `fused_blocks` — raw
//! sums again), so the fused share of the instruction stream is
//! attributable per kernel.
//!
//! ## Sharding
//!
//! `--shard K/M` (1-based `K`) deterministically splits the configuration
//! grid into `M` strided shards and measures only the `K`-th — the same
//! grid is reassembled no matter how the shards are distributed over
//! processes or CI jobs. Shard JSONs record their own measured counts and
//! are recombined with `--merge`:
//!
//! ```text
//! speed_probe --shard 1/2 --json s1.json   # process or CI job 1
//! speed_probe --shard 2/2 --json s2.json   # process or CI job 2
//! speed_probe --merge s1.json,s2.json --json BENCH.json
//! ```
//!
//! A merged file sums per-kernel configuration counts, seconds and memory
//! counters (shards partition the grid, so sums reconstruct the full-grid
//! values — raw hit/miss counters are stored precisely so merged hit
//! rates stay exact), weights mean DRAM utilisation by configuration
//! count, and sums the shard totals into `total_seconds`.

use std::time::Instant;

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::{kernel_factories, paper_sweep, run_campaign, Scale};
use vortex_core::DispatchStats;
use vortex_sim::MemStats;

fn main() {
    let flags = Flags::from_env();

    if let Some(inputs) = flags.get_list("merge") {
        let Some(out) = flags.get_str("json") else {
            eprintln!("--merge requires --json OUT for the merged file");
            std::process::exit(2);
        };
        match merge_probe_files(&inputs) {
            Ok(json) => {
                if let Err(e) = std::fs::write(out, &json) {
                    eprintln!("writing {out}: {e}");
                    std::process::exit(1);
                }
                println!("merged {} shard files into {out}", inputs.len());
            }
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let jobs = flags.get_usize("jobs", default_jobs());
    let n = flags.get_usize("configs", 450);
    let mut configs = vortex_bench::subsample(&paper_sweep(), n);
    let shard = flags.get_str("shard").map(|s| match parse_shard(s) {
        Some(km) => km,
        None => {
            eprintln!("invalid --shard `{s}` (expected K/M with 1 <= K <= M)");
            std::process::exit(2);
        }
    });
    if let Some((k, m)) = shard {
        // Strided split: deterministic, and every shard sees the same
        // small-to-large topology spread (a prefix split would give one
        // shard all the slow many-core configurations).
        configs = configs
            .into_iter()
            .enumerate()
            .filter(|(i, _)| i % m == k - 1)
            .map(|(_, c)| c)
            .collect();
    }
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    let wanted = flags.get_list("kernels");
    let mut rows: Vec<KernelRow> = Vec::new();
    let wall = Instant::now();
    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let start = Instant::now();
        let result = run_campaign(&factory, &configs, jobs).unwrap_or_else(|e| {
            eprintln!("{}: {e}", factory.name);
            std::process::exit(1);
        });
        let dt = start.elapsed();
        let mem = result.total_mem();
        let dispatch = result.total_dispatch();
        println!(
            "{:<13} {:>4} configs x3 policies: {:>8.2?}  (dram util {:.2}, L1 {:>5.1}%, \
             L2 {:>5.1}%, {} DRAM reqs, {:.1} rnds/launch, {:.1} lanes/rnd, \
             fused {:>4.1}%, {:.1} instr/blk)",
            factory.name,
            result.rows.len(),
            dt,
            result.mean_dram_utilization(),
            mem.l1.hit_rate() * 100.0,
            mem.l2.hit_rate() * 100.0,
            mem.dram_requests,
            dispatch.rounds_per_launch(),
            dispatch.mean_lanes_per_round(),
            dispatch.fused_share() * 100.0,
            dispatch.mean_fused_block_len(),
        );
        rows.push(KernelRow {
            name: factory.name.to_owned(),
            configs: result.rows.len(),
            seconds: dt.as_secs_f64(),
            util: result.mean_dram_utilization(),
            mem,
            dispatch,
        });
    }
    let total = wall.elapsed().as_secs_f64();
    println!("{:<13} total: {total:.2}s", "");

    if let Some(path) = flags.get_str("json") {
        let json = render_json(&rows, configs.len(), jobs, total, shard);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}

/// Parses `"K/M"` (1-based `K`).
fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (k, m) = s.split_once('/')?;
    let (k, m) = (k.trim().parse().ok()?, m.trim().parse().ok()?);
    if k >= 1 && k <= m {
        Some((k, m))
    } else {
        None
    }
}

/// Hand-rolled JSON (the build environment has no serde): a flat object
/// that downstream tooling can diff across PRs. `configs` is the number
/// of configurations this process actually measured (the shard's share
/// when sharded).
fn render_json(
    rows: &[KernelRow],
    configs: usize,
    jobs: usize,
    total: f64,
    shard: Option<(usize, usize)>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"configs\": {configs},\n"));
    if let Some((k, m)) = shard {
        out.push_str(&format!("  \"shard\": \"{k}/{m}\",\n"));
    }
    out.push_str(&format!("  \"jobs\": {jobs},\n"));
    out.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let m = &row.mem;
        let d = &row.dispatch;
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"configs\": {}, \"seconds\": {:.3}, \
             \"mean_dram_utilization\": {:.4}, \"l1_hits\": {}, \"l1_misses\": {}, \
             \"l2_hits\": {}, \"l2_misses\": {}, \"dram_requests\": {}, \
             \"launches\": {}, \"dispatch_rounds\": {}, \"round_tasks\": {}, \
             \"instructions\": {}, \"fused_instructions\": {}, \"fused_blocks\": {}}}{comma}\n",
            row.name,
            row.configs,
            row.seconds,
            row.util,
            m.l1.hits,
            m.l1.misses,
            m.l2.hits,
            m.l2.misses,
            m.dram_requests,
            d.launches,
            d.rounds,
            d.round_tasks,
            d.instructions,
            d.fused_instructions,
            d.fused_blocks,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// One kernel row of a probe JSON (also the in-memory accumulator).
struct KernelRow {
    name: String,
    configs: usize,
    seconds: f64,
    util: f64,
    /// Auto-run memory counters summed over the measured configurations
    /// (only hits/misses and `dram_requests` are serialised).
    mem: MemStats,
    /// Auto-run dispatch-round counters summed over the measured
    /// configurations (launches, rounds, tasks — raw sums).
    dispatch: DispatchStats,
}

/// Minimal parser for the exact JSON this binary writes (no serde in the
/// build environment). Extracts the scalar fields it needs by key; the
/// memory counters introduced in PR 4 default to zero so pre-PR4 baseline
/// files still parse (and merge).
fn parse_probe_json(text: &str) -> Result<(usize, f64, Vec<KernelRow>), String> {
    fn field<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
        let pat = format!("\"{key}\":");
        let at = obj.find(&pat).ok_or_else(|| format!("missing key {key}"))?;
        let rest = obj[at + pat.len()..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        rest[..end]
            .trim()
            .trim_matches('"')
            .parse()
            .map_err(|_| format!("unparsable value for {key}"))
    }
    fn counter(obj: &str, key: &str) -> u64 {
        field(obj, key).unwrap_or(0)
    }

    let jobs: usize = field(text, "jobs")?;
    let total: f64 = field(text, "total_seconds")?;
    let mut rows = Vec::new();
    let kernels_at = text.find("\"kernels\"").ok_or("missing kernels array")?;
    for obj in text[kernels_at..].split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        if !obj.contains("\"name\"") {
            continue;
        }
        let mut mem = MemStats::default();
        mem.l1.hits = counter(obj, "l1_hits");
        mem.l1.misses = counter(obj, "l1_misses");
        mem.l2.hits = counter(obj, "l2_hits");
        mem.l2.misses = counter(obj, "l2_misses");
        mem.dram_requests = counter(obj, "dram_requests");
        let dispatch = DispatchStats {
            launches: counter(obj, "launches"),
            rounds: counter(obj, "dispatch_rounds"),
            round_tasks: counter(obj, "round_tasks"),
            instructions: counter(obj, "instructions"),
            fused_instructions: counter(obj, "fused_instructions"),
            fused_blocks: counter(obj, "fused_blocks"),
        };
        rows.push(KernelRow {
            name: field(obj, "name")?,
            configs: field(obj, "configs")?,
            seconds: field(obj, "seconds")?,
            util: field(obj, "mean_dram_utilization")?,
            mem,
            dispatch,
        });
    }
    Ok((jobs, total, rows))
}

/// Merges shard probe JSONs (see the module docs for the semantics).
fn merge_probe_files(paths: &[String]) -> Result<String, String> {
    if paths.is_empty() {
        return Err("no input files".into());
    }
    let mut jobs = 0usize;
    let mut total = 0.0f64;
    let mut merged: Vec<KernelRow> = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        // Older probe files lack newer counter generations; their rows
        // merge as zeros, so the merged sums under-cover the grid. Flag
        // it rather than silently reporting partial counters as if they
        // were the whole sweep.
        for (marker, what) in [
            ("\"l1_hits\"", "memory counters (pre-PR4 format); merged hit/miss/DRAM"),
            ("\"dispatch_rounds\"", "dispatch counters (pre-PR5 format); merged launch/round/task"),
            ("\"fused_instructions\"", "fusion counters (pre-PR6 format); merged instr/fused"),
        ] {
            if !text.contains(marker) {
                eprintln!("note: {path} has no {what} counters cover only the newer shards");
            }
        }
        let (j, t, rows) = parse_probe_json(&text).map_err(|e| format!("{path}: {e}"))?;
        jobs = jobs.max(j);
        total += t;
        for row in rows {
            match merged.iter_mut().find(|m| m.name == row.name) {
                Some(m) => {
                    let n = (m.configs + row.configs) as f64;
                    m.util = (m.util * m.configs as f64 + row.util * row.configs as f64) / n;
                    m.configs += row.configs;
                    m.seconds += row.seconds;
                    m.mem.accumulate(&row.mem);
                    m.dispatch.accumulate(&row.dispatch);
                }
                None => merged.push(row),
            }
        }
    }
    let configs = merged.iter().map(|m| m.configs).max().unwrap_or(0);
    Ok(render_json(&merged, configs, jobs, total, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(name: &str, configs: usize, seconds: f64, util: f64, scale: u64) -> KernelRow {
        let mut mem = MemStats::default();
        mem.l1.hits = 100 * scale;
        mem.l1.misses = 10 * scale;
        mem.l2.hits = 8 * scale;
        mem.l2.misses = 2 * scale;
        mem.dram_requests = 3 * scale;
        let dispatch = DispatchStats {
            launches: 5 * scale,
            rounds: 20 * scale,
            round_tasks: 160 * scale,
            instructions: 1000 * scale,
            fused_instructions: 400 * scale,
            fused_blocks: 80 * scale,
        };
        KernelRow { name: name.to_owned(), configs, seconds, util, mem, dispatch }
    }

    #[test]
    fn shard_spec_parses_and_rejects() {
        assert_eq!(parse_shard("1/2"), Some((1, 2)));
        assert_eq!(parse_shard("3/3"), Some((3, 3)));
        assert_eq!(parse_shard("0/2"), None);
        assert_eq!(parse_shard("4/3"), None);
        assert_eq!(parse_shard("nope"), None);
    }

    #[test]
    fn probe_json_roundtrips_through_the_parser() {
        let rows = vec![row("vecadd", 10, 1.5, 0.25, 1), row("gauss", 10, 2.0, 0.10, 2)];
        let json = render_json(&rows, 10, 1, 3.5, Some((1, 2)));
        let (jobs, total, parsed) = parse_probe_json(&json).unwrap();
        assert_eq!(jobs, 1);
        assert!((total - 3.5).abs() < 1e-9);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "vecadd");
        assert_eq!(parsed[0].configs, 10);
        assert!((parsed[1].seconds - 2.0).abs() < 1e-9);
        assert_eq!(parsed[0].mem.l1.hits, 100);
        assert_eq!(parsed[1].mem.dram_requests, 6);
        assert_eq!(parsed[0].dispatch.launches, 5);
        assert_eq!(parsed[1].dispatch.rounds, 40);
        assert_eq!(parsed[1].dispatch.round_tasks, 320);
        assert_eq!(parsed[0].dispatch.instructions, 1000);
        assert_eq!(parsed[1].dispatch.fused_instructions, 800);
        assert_eq!(parsed[1].dispatch.fused_blocks, 160);
    }

    #[test]
    fn parser_defaults_missing_mem_counters_to_zero() {
        // The pre-PR4 row shape (no memory counters) must keep parsing so
        // committed BENCH_PR1..3 baselines and old shard files merge.
        let json = "{\n  \"configs\": 10,\n  \"jobs\": 1,\n  \"total_seconds\": 3.500,\n  \
                    \"kernels\": [\n    {\"name\": \"vecadd\", \"configs\": 10, \
                    \"seconds\": 1.500, \"mean_dram_utilization\": 0.2500}\n  ]\n}\n";
        let (_, _, parsed) = parse_probe_json(json).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].mem.l1.hits, 0);
        assert_eq!(parsed[0].mem.dram_requests, 0);
        assert_eq!(parsed[0].dispatch, DispatchStats::default());
    }

    #[test]
    fn merge_sums_disjoint_shards() {
        let a = render_json(&[row("vecadd", 6, 1.0, 0.2, 1)], 6, 1, 1.0, Some((1, 2)));
        let b = render_json(&[row("vecadd", 4, 3.0, 0.4, 3)], 4, 1, 3.0, Some((2, 2)));
        let dir = std::env::temp_dir().join("speed_probe_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (pa, pb) = (dir.join("a.json"), dir.join("b.json"));
        std::fs::write(&pa, a).unwrap();
        std::fs::write(&pb, b).unwrap();
        let merged = merge_probe_files(&[
            pa.to_string_lossy().into_owned(),
            pb.to_string_lossy().into_owned(),
        ])
        .unwrap();
        let (_, total, rows) = parse_probe_json(&merged).unwrap();
        assert!((total - 4.0).abs() < 1e-9);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].configs, 10);
        assert!((rows[0].seconds - 4.0).abs() < 1e-9);
        // util weighted by configs: (0.2*6 + 0.4*4) / 10 = 0.28
        assert!((rows[0].util - 0.28).abs() < 1e-6);
        // Raw memory counters sum exactly: scales 1 + 3 = 4.
        assert_eq!(rows[0].mem.l1.hits, 400);
        assert_eq!(rows[0].mem.l2.misses, 8);
        assert_eq!(rows[0].mem.dram_requests, 12);
        // Raw dispatch counters sum exactly too.
        assert_eq!(rows[0].dispatch.launches, 20);
        assert_eq!(rows[0].dispatch.rounds, 80);
        assert_eq!(rows[0].dispatch.round_tasks, 640);
        // And the fusion counters: scales 1 + 3 = 4.
        assert_eq!(rows[0].dispatch.instructions, 4000);
        assert_eq!(rows[0].dispatch.fused_instructions, 1600);
        assert_eq!(rows[0].dispatch.fused_blocks, 320);
    }
}
