//! Resumable campaign driver CLI: run (or resume) a sweep work queue
//! backed by the content-addressed result store, simulating only the
//! configurations whose results are not already on disk.
//!
//! ```text
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q --budget 50
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q --resume
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q --json OUT.json
//! ```
//!
//! The queue directory holds the crash-safe manifest; the store (default
//! `<dir>/store`, override with `--cache DIR`) holds the finished rows.
//! `--budget N` stops after simulating `N` configurations — a later
//! `--resume` invocation simulates exactly the remainder and assembles a
//! report byte-identical (modulo wall-clock and cache-transport fields)
//! to an uninterrupted run. `--resume` refuses a queue whose grid,
//! kernels, scale, shard or engine semantics differ from the manifest's.
//! See the README's campaign-cache section for the key derivation and
//! the `VORTEX_CAMPAIGN_CACHE=0` escape hatch.

use std::path::{Path, PathBuf};

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::driver::{run_queue, QueueSpec};
use vortex_bench::{atomic_write, paper_sweep, parse_shard, subsample, Scale};
use vortex_sim::DeviceConfig;

fn main() {
    let flags = Flags::from_env();
    let Some(dir) = flags.get_str("dir") else {
        eprintln!(
            "usage: campaign --dir QUEUE [--cache DIR] [--configs N | --topos 1c2w2t,…] \
             [--kernels a,b] [--shard K/M] [--jobs N] [--budget N] [--resume] \
             [--paper-scale] [--json OUT]"
        );
        std::process::exit(2);
    };
    let dir = PathBuf::from(dir);
    let cache_dir = flags.get_str("cache").map(PathBuf::from).unwrap_or_else(|| dir.join("store"));

    let configs: Vec<DeviceConfig> = match flags.get_list("topos") {
        Some(topos) => topos
            .iter()
            .map(|t| match t.parse() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid --topos entry `{t}`: {e}");
                    std::process::exit(2);
                }
            })
            .collect(),
        None => subsample(&paper_sweep(), flags.get_usize("configs", 450)),
    };
    let shard = flags.get_str("shard").map(|s| match parse_shard(s) {
        Some(km) => km,
        None => {
            eprintln!("invalid --shard `{s}` (expected K/M with 1 <= K <= M)");
            std::process::exit(2);
        }
    });

    let spec = QueueSpec {
        dir,
        cache_dir,
        kernels: flags.get_list("kernels"),
        configs,
        scale: if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep },
        shard,
        jobs: flags.get_usize("jobs", default_jobs()),
        budget: flags.get_str("budget").map(|b| match b.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid --budget `{b}` (expected a configuration count)");
                std::process::exit(2);
            }
        }),
        resume: flags.has("resume"),
    };

    let outcome = run_queue(&spec).unwrap_or_else(|e| {
        eprintln!("campaign: {e}");
        std::process::exit(1);
    });

    let c = outcome.counters;
    println!(
        "simulated {} configs, reused {} from store, {} pending",
        outcome.simulated, outcome.reused, outcome.remaining
    );
    println!(
        "store {}: {} rows resident, {}B read, {}B written",
        spec.cache_dir.display(),
        c.entries,
        c.bytes_read,
        c.bytes_written
    );
    if outcome.complete {
        if let Some(json) = &outcome.result_json {
            if let Some(path) = flags.get_str("json") {
                if let Err(e) = atomic_write(Path::new(path), json) {
                    eprintln!("writing {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote {path}");
            }
        }
    } else {
        println!("queue incomplete — rerun with --resume to finish");
    }
}
