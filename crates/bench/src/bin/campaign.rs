//! Resumable campaign driver CLI: run (or resume) a sweep work queue
//! backed by the content-addressed result store, simulating only the
//! configurations whose results are not already on disk.
//!
//! ```text
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q --budget 50
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q --resume
//! cargo run --release -p vortex-bench --bin campaign -- --dir Q --json OUT.json
//! ```
//!
//! The queue directory holds the crash-safe manifest; the store (default
//! `<dir>/store`, override with `--cache DIR`) holds the finished rows.
//! `--budget N` stops after simulating `N` configurations — a later
//! `--resume` invocation simulates exactly the remainder and assembles a
//! report byte-identical (modulo wall-clock and cache-transport fields)
//! to an uninterrupted run. `--resume` refuses a queue whose grid,
//! kernels, scale, shard or engine semantics differ from the manifest's.
//! See the README's campaign-cache section for the key derivation and
//! the `VORTEX_CAMPAIGN_CACHE=0` escape hatch.
//!
//! ## Multi-process workers
//!
//! `--workers N` forks `N` copies of this binary, each running one
//! strided `--shard k/N` of the grid with a private queue and store
//! under `<dir>/workers/<k>`, then merges the worker stores into the
//! parent store (content-addressed rows carry raw counters, so the
//! merge is exact — the same discipline as `--shard` + `--merge`) and
//! runs the normal queue pass, which finds everything resident and
//! assembles the full report. A crashed or failed worker is non-fatal:
//! its missing rows are simply simulated by the parent pass.
//! `--workers 1` (the default, sized for a single-vCPU box) skips the
//! fan-out entirely and is byte-identical to today's behaviour.

use std::path::{Path, PathBuf};
use std::process::Command;

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::driver::{run_queue, QueueSpec};
use vortex_bench::{atomic_write, paper_sweep, parse_shard, subsample, CampaignCache, Scale};
use vortex_sim::DeviceConfig;

/// Forks `workers` copies of this binary over disjoint strided shards of
/// the queue's grid, each with a private queue directory and store under
/// `<dir>/workers/<k>`, then merges the worker stores into the parent
/// store through the exact-sum absorb path. Returns `false` when the
/// store is disabled by the environment — without it worker results
/// cannot be merged, so the caller falls back to a single process.
///
/// Worker failures are non-fatal: a crashed or failed worker simply
/// leaves its shard's rows out of the store, and the parent's own queue
/// pass (which follows unconditionally) simulates exactly the remainder.
fn fan_out_workers(flags: &Flags, dir: &Path, cache_dir: &Path, workers: usize) -> bool {
    let cache = match CampaignCache::open(cache_dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("campaign: opening store {}: {e}", cache_dir.display());
            std::process::exit(1);
        }
    };
    if !cache.is_enabled() {
        eprintln!(
            "campaign: VORTEX_CAMPAIGN_CACHE=0 disables the result store, so worker \
             results cannot be merged — running single-process instead"
        );
        return false;
    }
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            eprintln!("campaign: cannot locate own executable for --workers: {e}");
            std::process::exit(1);
        }
    };
    let mut children = Vec::new();
    for k in 1..=workers {
        let wdir = dir.join("workers").join(k.to_string());
        let mut cmd = Command::new(&exe);
        cmd.arg("--dir")
            .arg(&wdir)
            .arg("--cache")
            .arg(wdir.join("store"))
            .arg("--shard")
            .arg(format!("{k}/{workers}"));
        for key in ["configs", "topos", "kernels", "jobs", "trace-dir"] {
            if let Some(value) = flags.get_str(key) {
                cmd.arg(format!("--{key}")).arg(value);
            }
        }
        if flags.has("paper-scale") {
            cmd.arg("--paper-scale");
        }
        match cmd.spawn() {
            Ok(child) => children.push((k, child)),
            Err(e) => {
                eprintln!("campaign: spawning worker {k}: {e} (its shard runs in this process)");
            }
        }
    }
    for (k, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!(
                "campaign: worker {k} exited with {status} (its unfinished shard runs in \
                 this process)"
            ),
            Err(e) => eprintln!("campaign: waiting for worker {k}: {e}"),
        }
    }
    let mut absorbed = 0usize;
    for k in 1..=workers {
        let store = dir.join("workers").join(k.to_string()).join("store");
        match cache.absorb_dir(&store) {
            Ok(n) => absorbed += n,
            Err(e) => {
                eprintln!("campaign: absorbing worker {k} store: {e} (its rows re-simulate here)")
            }
        }
    }
    if let Err(e) = cache.flush() {
        eprintln!("campaign: flushing merged store: {e}");
        std::process::exit(1);
    }
    println!("merged {absorbed} rows from {workers} worker stores");
    true
}

fn main() {
    let flags = Flags::from_env();
    let Some(dir) = flags.get_str("dir") else {
        eprintln!(
            "usage: campaign --dir QUEUE [--cache DIR] [--configs N | --topos 1c2w2t,…] \
             [--kernels a,b] [--shard K/M | --workers N] [--jobs N] [--budget N] [--resume] \
             [--paper-scale] [--trace-dir DIR] [--json OUT]"
        );
        std::process::exit(2);
    };
    let dir = PathBuf::from(dir);
    let cache_dir = flags.get_str("cache").map(PathBuf::from).unwrap_or_else(|| dir.join("store"));

    let configs: Vec<DeviceConfig> = match flags.get_list("topos") {
        Some(topos) => topos
            .iter()
            .map(|t| match t.parse() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("invalid --topos entry `{t}`: {e}");
                    std::process::exit(2);
                }
            })
            .collect(),
        None => subsample(&paper_sweep(), flags.get_usize("configs", 450)),
    };
    let shard = flags.get_str("shard").map(|s| match parse_shard(s) {
        Some(km) => km,
        None => {
            eprintln!("invalid --shard `{s}` (expected K/M with 1 <= K <= M)");
            std::process::exit(2);
        }
    });

    let workers = flags.get_usize("workers", 1);
    if workers == 0 {
        eprintln!("invalid --workers 0 (expected a process count >= 1)");
        std::process::exit(2);
    }
    if workers > 1 {
        if shard.is_some() {
            eprintln!("--workers shards the grid across its own processes; drop --shard");
            std::process::exit(2);
        }
        if flags.get_str("budget").is_some() {
            eprintln!("--budget caps a single process; it cannot combine with --workers");
            std::process::exit(2);
        }
        // Fan out, then fall through to the normal single-process queue
        // pass: with every worker row merged it reuses everything and
        // only assembles the report; whatever a failed worker left
        // undone, it simulates.
        fan_out_workers(&flags, &dir, &cache_dir, workers);
    }

    let spec = QueueSpec {
        dir,
        cache_dir,
        kernels: flags.get_list("kernels"),
        configs,
        scale: if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep },
        shard,
        jobs: flags.get_usize("jobs", default_jobs()),
        budget: flags.get_str("budget").map(|b| match b.parse() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("invalid --budget `{b}` (expected a configuration count)");
                std::process::exit(2);
            }
        }),
        trace_dir: flags.get_str("trace-dir").map(PathBuf::from),
        resume: flags.has("resume"),
    };

    let outcome = run_queue(&spec).unwrap_or_else(|e| {
        eprintln!("campaign: {e}");
        std::process::exit(1);
    });

    let c = outcome.counters;
    println!(
        "simulated {} configs, reused {} from store, {} pending",
        outcome.simulated, outcome.reused, outcome.remaining
    );
    println!(
        "store {}: {} rows resident, {}B read, {}B written",
        spec.cache_dir.display(),
        c.entries,
        c.bytes_read,
        c.bytes_written
    );
    if outcome.complete {
        if let Some(json) = &outcome.result_json {
            if let Some(path) = flags.get_str("json") {
                if let Err(e) = atomic_write(Path::new(path), json) {
                    eprintln!("writing {path}: {e}");
                    std::process::exit(1);
                }
                println!("wrote {path}");
            }
        }
    } else {
        println!("queue incomplete — rerun with --resume to finish");
    }
}
