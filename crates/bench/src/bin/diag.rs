//! Ad-hoc diagnostic: per-policy cycle and memory breakdown on one
//! configuration (not a paper artefact).

use vortex_bench::cli::Flags;
use vortex_core::LwsPolicy;
use vortex_kernels::{run_kernel, VecAdd};
use vortex_sim::DeviceConfig;

fn main() {
    let flags = Flags::from_env();
    let topo = flags.get_str("topo").unwrap_or("24c2w4t").to_owned();
    let config: DeviceConfig = topo.parse().expect("valid topology");
    let n = flags.get_usize("n", 4096) as u32;
    for lws in [1u32, 2, 4, 8, 16, 21, 32, 64, 128] {
        let mut k = VecAdd::new(n);
        let policy = LwsPolicy::Explicit(lws);
        match run_kernel(&mut k, &config, policy) {
            Ok(o) => {
                let r = &o.reports[0];
                println!(
                    "lws={lws:>4} cycles={:>8} rounds={:>4} instr={:>8} l1hit={:>5.1}% l2hit={:>5.1}% dram={:>6} util={:.2} scen={:?}",
                    o.cycles,
                    r.rounds,
                    o.instructions,
                    o.mem.l1.hit_rate() * 100.0,
                    o.mem.l2.hit_rate() * 100.0,
                    o.mem.dram_requests,
                    o.dram_utilization,
                    r.scenario,
                );
            }
            Err(e) => println!("lws={lws}: {e}"),
        }
    }
}
