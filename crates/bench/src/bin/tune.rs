//! Online autotuner evaluation: probe K candidates per kernel, predict
//! the rest of the lws grid from their counters, and report the regret
//! of the tuned choice against the exhaustive oracle. Produces the
//! committed `TUNE_PR8.json` artefact (see `docs/TUNING.md` for the
//! methodology end-to-end).
//!
//! ```text
//! cargo run --release -p vortex-bench --bin tune -- --cache store/ --json TUNE_PR8.json
//! cargo run --release -p vortex-bench --bin tune -- --kernels vecadd,relu --budgets 3,6
//! cargo run --release -p vortex-bench --bin tune -- --merge s1.json,s2.json --json TUNE.json
//! ```
//!
//! Flags:
//!
//! * `--cache DIR` — attach the PR 7 content-addressed store; per-lws
//!   ground-truth rows live in the same `<kernel>.jsonl` shards as
//!   campaign rows (keyed with an `"explicit"`+lws digest), so a warm
//!   store replays the whole evaluation without simulating anything.
//! * `--budgets 3,6,12` — probe budgets K (default `3,6,12`).
//! * `--kernels a,b` / `--topos 1c2w4t,...` — restrict the grid
//!   (defaults: all nine paper kernels × the three mini-grid
//!   topologies).
//! * `--jobs N` — worker threads (default: machine parallelism).
//! * `--json PATH` — also write the machine-readable report
//!   (atomically; raw counters only, exact to merge).
//! * `--merge a.json,b.json` — merge shard reports instead of running
//!   (rows union by kernel/topo/budget cell, store traffic sums).
//! * `--max-regret PCT` — exit nonzero unless the mean regret at K=6
//!   (or the largest evaluated budget when 6 is absent) is ≤ PCT; the
//!   CI smoke job gates on this.

use std::path::Path;

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::tune::{DEFAULT_BUDGETS, DEFAULT_TOPOLOGIES};
use vortex_bench::{
    atomic_write, kernel_factories, merge_tune_files, render_tune_json, run_tune_evaluation,
    CampaignCache, Scale, TuneFile,
};
use vortex_sim::DeviceConfig;

fn main() {
    let flags = Flags::from_env();

    if let Some(inputs) = flags.get_list("merge") {
        let Some(out) = flags.get_str("json") else {
            eprintln!("--merge requires --json OUT for the merged file");
            std::process::exit(2);
        };
        match merge_tune_files(&inputs) {
            Ok(json) => {
                if let Err(e) = atomic_write(Path::new(out), &json) {
                    eprintln!("writing {out}: {e}");
                    std::process::exit(1);
                }
                println!("merged {} tune files into {out}", inputs.len());
                check_regret(&flags, &vortex_bench::parse_tune_json(&json).expect("own render"));
            }
            Err(e) => {
                eprintln!("merge failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let jobs = flags.get_usize("jobs", default_jobs());
    let budgets: Vec<usize> = match flags.get_list("budgets") {
        Some(list) => list
            .iter()
            .map(|b| {
                b.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --budgets entry `{b}`");
                    std::process::exit(2);
                })
            })
            .collect(),
        None => DEFAULT_BUDGETS.to_vec(),
    };
    let topologies: Vec<DeviceConfig> = flags
        .get_list("topos")
        .unwrap_or_else(|| DEFAULT_TOPOLOGIES.map(String::from).to_vec())
        .iter()
        .map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("invalid --topos entry `{t}` (expected CcWwTt)");
                std::process::exit(2);
            })
        })
        .collect();
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    let cache = flags.get_str("cache").map(|dir| match CampaignCache::open(dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("opening campaign cache {dir}: {e}");
            std::process::exit(1);
        }
    });
    let wanted = flags.get_list("kernels");
    let factories: Vec<_> = kernel_factories(scale)
        .into_iter()
        .filter(|f| wanted.as_ref().is_none_or(|ws| ws.iter().any(|w| w == f.name)))
        .collect();

    let file = run_tune_evaluation(&factories, &topologies, &budgets, jobs, cache.as_ref())
        .unwrap_or_else(|e| {
            eprintln!("tune evaluation failed: {e}");
            std::process::exit(1);
        });

    println!(
        "{:<13} {:<8} {:>6} {:>3} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "kernel", "topo", "K", "grid", "chosen", "oracle", "eq1", "regret%", "pred-err%"
    );
    for r in &file.rows {
        println!(
            "{:<13} {:<8} {:>6} {:>3} {:>10} {:>10} {:>10} {:>8.3} {:>8}",
            r.kernel,
            r.topo,
            r.budget,
            r.candidates,
            format!("{}@{}", r.chosen_cycles, r.chosen_lws),
            format!("{}@{}", r.oracle_cycles, r.oracle_lws),
            format!("{}@{}", r.eq1_cycles, r.eq1_lws),
            r.regret_pct(),
            r.prediction_error_pct().map_or("-".into(), |e| format!("{e:.2}")),
        );
    }
    for &k in &file.budgets() {
        if let Some(mean) = file.mean_regret_pct(k) {
            println!("mean regret at K={k}: {mean:.3}%");
        }
    }
    println!(
        "store: {} hits, {} misses ({} simulations), {:.2}s total",
        file.store_hits, file.store_misses, file.store_misses, file.total_seconds
    );
    if let Some(cache) = &cache {
        if let Err(e) = cache.flush() {
            eprintln!("flushing campaign cache: {e}");
            std::process::exit(1);
        }
    }

    if let Some(path) = flags.get_str("json") {
        if let Err(e) = atomic_write(Path::new(path), &render_tune_json(&file)) {
            eprintln!("writing {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
    check_regret(&flags, &file);
}

/// Enforces `--max-regret PCT` against the mean regret at K=6 (or the
/// largest evaluated budget when 6 is absent).
fn check_regret(flags: &Flags, file: &TuneFile) {
    let Some(bound) = flags.get_str("max-regret") else { return };
    let bound: f64 = bound.parse().unwrap_or_else(|_| {
        eprintln!("invalid --max-regret `{bound}`");
        std::process::exit(2);
    });
    let budgets = file.budgets();
    let gate = if budgets.contains(&6) { 6 } else { *budgets.last().unwrap_or(&0) };
    match file.mean_regret_pct(gate) {
        Some(mean) if mean <= bound => {
            println!("regret gate: mean {mean:.3}% at K={gate} within bound {bound}%");
        }
        Some(mean) => {
            eprintln!("regret gate FAILED: mean {mean:.3}% at K={gate} exceeds bound {bound}%");
            std::process::exit(1);
        }
        None => {
            eprintln!("regret gate FAILED: no rows to gate on");
            std::process::exit(1);
        }
    }
}
