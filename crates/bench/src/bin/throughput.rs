//! Simulator-throughput diagnostic: simulated instructions per host
//! second, per kernel and policy, on one configuration (not a paper
//! artefact; used to find and track hot-path regressions).
//!
//! ```text
//! cargo run --release -p vortex-bench --bin throughput -- --topo 8c8w8t
//! cargo run --release -p vortex-bench --bin throughput -- --kernels gcn_layer
//! ```

use std::time::Instant;

use vortex_bench::cli::Flags;
use vortex_bench::{kernel_factories, Scale};
use vortex_core::{LwsPolicy, Runtime};
use vortex_kernels::run_kernel_prepared;
use vortex_sim::DeviceConfig;

fn main() {
    let flags = Flags::from_env();
    let config: DeviceConfig =
        flags.get_str("topo").unwrap_or("8c8w8t").parse().expect("valid topology");
    let reps = flags.get_usize("reps", 3);
    let wanted = flags.get_list("kernels");
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };

    println!("{:<13} {:>7} {:>12} {:>10} {:>9}", "kernel", "policy", "instructions", "host ms", "Minstr/s");
    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let mut kernel = (factory.make)();
        let program = kernel.build().expect("assembles");
        let mut rt = Runtime::new(config);
        rt.load_program(&program);
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let start = Instant::now();
            let mut instructions = 0u64;
            for _ in 0..reps {
                let outcome = run_kernel_prepared(kernel.as_mut(), &program, &mut rt, policy)
                    .unwrap_or_else(|e| {
                        eprintln!("{} {policy}: {e}", factory.name);
                        std::process::exit(1);
                    });
                instructions += outcome.instructions;
            }
            let dt = start.elapsed();
            println!(
                "{:<13} {:>7} {:>12} {:>10.1} {:>9.2}",
                factory.name,
                policy.label(),
                instructions / reps as u64,
                dt.as_secs_f64() * 1e3 / reps as f64,
                instructions as f64 / dt.as_secs_f64() / 1e6,
            );
        }
    }
}
