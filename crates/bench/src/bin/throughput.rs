//! Simulator-throughput diagnostic: simulated instructions per host
//! second, per kernel and policy, on one configuration (not a paper
//! artefact; used to find and track hot-path regressions).
//!
//! Rates are computed from the device's own performance counters
//! (instructions and lane-instructions actually issued, read back from
//! `DeviceCounters` deltas around each run) rather than re-derived from
//! wall-clock alone, and a per-kernel `total` row aggregates the three
//! policies — so a regression localises to one kernel (and shows whether
//! it scales with warp-level issues or with per-lane work). Memory-side
//! columns (L1/L2 hit rates and DRAM line requests, from `MemStats`
//! deltas) attribute the cost of the batched memory-transaction pipeline:
//! a kernel whose host throughput lags with a low L1 rate is paying for
//! tag-walk misses and DRAM queueing, not for execute loops. Dispatch
//! columns (rounds per launch, mean busy lanes per round, from
//! `DispatchStats`) attribute launch-pipeline cost the same way: many
//! rounds at few busy lanes marks the low-occupancy dispatch regime.
//! Block-fusion columns (fused share of the instruction stream and mean
//! fused-block length) show how much of a kernel's issue traffic the
//! basic-block engine absorbs — a kernel stuck near 0% fused spends its
//! cycles in the per-instruction fallback path. Port-contention columns
//! (memory-port accesses and mean stall slots per access, from the
//! PR 9 port counters) mark kernels serialising uncoalesced lines
//! through the L1 ports; on a clustered topology (`--topo …xN`) a
//! per-kernel footer breaks the same raw sums down by cluster.
//!
//! With `--cache DIR` the run opens the campaign result store first and
//! prints its inventory — resident rows per kernel, store bytes, and
//! whether the selected topology is already cached per kernel — so a
//! sweep operator can see at a glance how much of a planned campaign the
//! store will answer (see the README's campaign-cache section).
//!
//! ```text
//! cargo run --release -p vortex-bench --bin throughput -- --topo 8c8w8t
//! cargo run --release -p vortex-bench --bin throughput -- --kernels gcn_layer
//! cargo run --release -p vortex-bench --bin throughput -- --cache STORE
//! ```

use std::time::Instant;

use vortex_bench::cli::Flags;
use vortex_bench::{campaign_key, kernel_factories, CampaignCache, Scale};
use vortex_core::{DispatchStats, LwsPolicy, Runtime};
use vortex_kernels::run_kernel_prepared;
use vortex_sim::{DeviceConfig, MemStats};

/// Prints the campaign store's inventory for the selected topology.
fn print_cache_summary(dir: &str, config: &DeviceConfig, scale: Scale) {
    let cache = match CampaignCache::open(dir) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!("opening campaign cache {dir}: {e}");
            std::process::exit(1);
        }
    };
    let c = cache.counters();
    let state = if cache.is_enabled() { "" } else { " (disabled by VORTEX_CAMPAIGN_CACHE=0)" };
    println!("campaign store {dir}{state}: {} rows, {}B on disk", c.entries, c.bytes_read);
    for (kernel, rows) in cache.entries_by_kernel() {
        let cached_here = kernel_factories(scale)
            .iter()
            .find(|f| f.name == kernel)
            .and_then(|f| f.make_kernel().build().ok())
            .map(|program| cache.contains(&kernel, campaign_key(&kernel, scale, &program, config)))
            .unwrap_or(false);
        let marker = if cached_here { "cached" } else { "-" };
        println!("  {kernel:<13} {rows:>5} rows   {} @ {marker}", config.topology_name());
    }
    println!();
}

fn main() {
    let flags = Flags::from_env();
    let config: DeviceConfig =
        flags.get_str("topo").unwrap_or("8c8w8t").parse().expect("valid topology");
    let reps = flags.get_usize("reps", 3);
    let wanted = flags.get_list("kernels");
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };
    if let Some(dir) = flags.get_str("cache") {
        print_cache_summary(dir, &config, scale);
    }

    println!(
        "{:<13} {:>7} {:>12} {:>14} {:>10} {:>9} {:>9} {:>6} {:>6} {:>10} {:>8} {:>8} {:>7} \
         {:>8} {:>9} {:>8}",
        "kernel",
        "policy",
        "instructions",
        "lane instrs",
        "host ms",
        "Minstr/s",
        "Mlane/s",
        "L1%",
        "L2%",
        "DRAM reqs",
        "rnds/ln",
        "lane/rnd",
        "fused%",
        "instr/bk",
        "port acc",
        "stl/acc"
    );
    for factory in kernel_factories(scale) {
        if let Some(ws) = &wanted {
            if !ws.iter().any(|w| w == factory.name) {
                continue;
            }
        }
        let mut kernel = (factory.make)();
        let program = kernel.build().expect("assembles");
        let mut rt = Runtime::new(config);
        rt.load_program(&program);
        let mut kernel_instr = 0u64;
        let mut kernel_lanes = 0u64;
        let mut kernel_secs = 0.0f64;
        let mut kernel_mem = MemStats::default();
        let mut kernel_dispatch = DispatchStats::default();
        let mut kernel_ports = (0u64, 0u64);
        let mut kernel_cluster_ports = vec![(0u64, 0u64); config.num_clusters()];
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let start = Instant::now();
            let mut instructions = 0u64;
            let mut lanes = 0u64;
            let mut mem = MemStats::default();
            let mut dispatch = DispatchStats::default();
            let mut ports = (0u64, 0u64);
            for _ in 0..reps {
                // Count what the device actually issued: counter deltas
                // around the run (the runtime resets counters per run, so
                // the post-run counter values are the per-run deltas).
                let outcome = run_kernel_prepared(kernel.as_mut(), &program, &mut rt, policy)
                    .unwrap_or_else(|e| {
                        eprintln!("{} {policy}: {e}", factory.name);
                        std::process::exit(1);
                    });
                let counters = rt.device().counters();
                instructions += counters.instructions;
                lanes += counters.lane_instructions;
                mem.accumulate(&rt.device().mem_stats());
                dispatch.accumulate(&outcome.dispatch);
                ports.0 += outcome.port_accesses;
                ports.1 += outcome.port_stall_slots;
                for (k, (acc, stl)) in rt.device().cluster_port_counters().iter().enumerate() {
                    kernel_cluster_ports[k].0 += acc;
                    kernel_cluster_ports[k].1 += stl;
                }
            }
            let dt = start.elapsed().as_secs_f64();
            println!(
                "{:<13} {:>7} {:>12} {:>14} {:>10.1} {:>9.2} {:>9.2} {:>6.1} {:>6.1} {:>10} \
                 {:>8.1} {:>8.1} {:>7.1} {:>8.1} {:>9} {:>8.2}",
                factory.name,
                policy.label(),
                instructions / reps as u64,
                lanes / reps as u64,
                dt * 1e3 / reps as f64,
                instructions as f64 / dt / 1e6,
                lanes as f64 / dt / 1e6,
                mem.l1.hit_rate() * 100.0,
                mem.l2.hit_rate() * 100.0,
                mem.dram_requests / reps as u64,
                dispatch.rounds_per_launch(),
                dispatch.mean_lanes_per_round(),
                dispatch.fused_share() * 100.0,
                dispatch.mean_fused_block_len(),
                ports.0 / reps as u64,
                if ports.0 == 0 { 0.0 } else { ports.1 as f64 / ports.0 as f64 },
            );
            kernel_instr += instructions;
            kernel_lanes += lanes;
            kernel_secs += dt;
            kernel_mem.accumulate(&mem);
            kernel_dispatch.accumulate(&dispatch);
            kernel_ports.0 += ports.0;
            kernel_ports.1 += ports.1;
        }
        println!(
            "{:<13} {:>7} {:>12} {:>14} {:>10.1} {:>9.2} {:>9.2} {:>6.1} {:>6.1} {:>10} \
             {:>8.1} {:>8.1} {:>7.1} {:>8.1} {:>9} {:>8.2}",
            factory.name,
            "total",
            kernel_instr / reps as u64,
            kernel_lanes / reps as u64,
            kernel_secs * 1e3 / reps as f64,
            kernel_instr as f64 / kernel_secs / 1e6,
            kernel_lanes as f64 / kernel_secs / 1e6,
            kernel_mem.l1.hit_rate() * 100.0,
            kernel_mem.l2.hit_rate() * 100.0,
            kernel_mem.dram_requests / reps as u64,
            kernel_dispatch.rounds_per_launch(),
            kernel_dispatch.mean_lanes_per_round(),
            kernel_dispatch.fused_share() * 100.0,
            kernel_dispatch.mean_fused_block_len(),
            kernel_ports.0 / reps as u64,
            if kernel_ports.0 == 0 { 0.0 } else { kernel_ports.1 as f64 / kernel_ports.0 as f64 },
        );
        // On a clustered topology the per-cluster port sums show where
        // the memory-side contention concentrates (raw sums over all
        // policies and reps; a flat topology's "clusters" are single
        // cores, where the per-row totals already tell the story).
        if config.cores_per_cluster > 1 {
            let lines: Vec<String> = kernel_cluster_ports
                .iter()
                .enumerate()
                .filter(|(_, (acc, _))| *acc > 0)
                .map(|(k, (acc, stl))| format!("c{k}:{acc}a/{stl}s"))
                .collect();
            println!("{:<13} {:>7} ports by cluster: {}", factory.name, "", lines.join(" "));
        }
    }
}
