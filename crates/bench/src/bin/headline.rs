//! Regenerates the paper's **§3 headline numbers**: "our technique shows
//! an average 1.3× and 3.7× performance boost for the math kernels over
//! the lws=1 mapping and the lws=32 mapping, respectively."
//!
//! ```text
//! cargo run --release -p vortex-bench --bin headline
//! cargo run --release -p vortex-bench --bin headline -- --configs 60
//! ```

use vortex_bench::cli::{default_jobs, Flags};
use vortex_bench::{kernel_factories, paper_sweep, run_campaign, subsample, Scale};
use vortex_stats::{RatioSummary, Table};

const MATH_KERNELS: [&str; 4] = ["vecadd", "relu", "saxpy", "sgemm"];

fn main() {
    let flags = Flags::from_env();
    let jobs = flags.get_usize("jobs", default_jobs());
    let configs = subsample(&paper_sweep(), flags.get_usize("configs", 450));
    let scale = if flags.has("paper-scale") { Scale::Paper } else { Scale::Sweep };

    println!("§3 headline — math kernels over {} configurations\n", configs.len());

    let mut table = Table::new(vec!["kernel", "avg vs lws=1", "avg vs lws=32"]);
    let mut all_naive = Vec::new();
    let mut all_fixed = Vec::new();
    for factory in kernel_factories(scale) {
        if !MATH_KERNELS.contains(&factory.name) {
            continue;
        }
        let result = run_campaign(&factory, &configs, jobs).unwrap_or_else(|e| {
            eprintln!("{}: {e}", factory.name);
            std::process::exit(1);
        });
        let naive = RatioSummary::from_ratios(result.naive_ratios());
        let fixed = RatioSummary::from_ratios(result.fixed_ratios());
        table.row(vec![
            factory.name.to_owned(),
            format!("{:.2}x", naive.avg),
            format!("{:.2}x", fixed.avg),
        ]);
        all_naive.extend(result.naive_ratios());
        all_fixed.extend(result.fixed_ratios());
    }
    let naive = RatioSummary::from_ratios(all_naive);
    let fixed = RatioSummary::from_ratios(all_fixed);
    table.row(vec![
        "— aggregate —".to_owned(),
        format!("{:.2}x", naive.avg),
        format!("{:.2}x", fixed.avg),
    ]);
    println!("{}", table.to_text());
    println!("paper reports: 1.3x over lws=1 and 3.7x over lws=32 for the math kernels");
}
