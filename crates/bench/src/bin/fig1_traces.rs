//! Regenerates **Figure 1** of the paper: execution traces of the
//! `vecadd` kernel (gws = 128) on a `1c2w4t` device under four different
//! `lws` values, showing per-warp issue activity over time, the active
//! thread mask, and the semantic code section of every instruction.
//!
//! ```text
//! cargo run --release -p vortex-bench --bin fig1_traces
//! cargo run --release -p vortex-bench --bin fig1_traces -- --width 120 --n 256
//! ```

use vortex_bench::cli::Flags;
use vortex_core::LwsPolicy;
use vortex_kernels::{run_kernel_traced, Kernel, VecAdd};
use vortex_sim::{DeviceConfig, VecTraceSink};
use vortex_stats::Table;
use vortex_trace::{render_timeline, TimelineOptions, Trace, TraceStats};

fn main() {
    let flags = Flags::from_env();
    let n = flags.get_usize("n", 128) as u32;
    let width = flags.get_usize("width", 96);
    let config: DeviceConfig =
        flags.get_str("topo").unwrap_or("1c2w4t").parse().expect("valid topology");
    let hp = config.hardware_parallelism();

    println!(
        "Figure 1 reproduction — vecadd (gws={n}) on {}   (hp = {hp}, Eq.1 lws = {})\n",
        config.topology_name(),
        (u64::from(n) / hp).max(1),
    );

    let mut table = Table::new(vec![
        "lws",
        "scenario",
        "cycles",
        "instructions",
        "rounds",
        "body%",
        "overhead%",
        "lane util",
    ]);
    let mut cycles_by_lws = Vec::new();

    for lws in [1u32, 16, 32, 64] {
        let mut kernel = VecAdd::new(n);
        let program = kernel.build().expect("vecadd assembles");
        let mut sink = VecTraceSink::new();
        let outcome =
            run_kernel_traced(&mut kernel, &config, LwsPolicy::Explicit(lws), Some(&mut sink))
                .unwrap_or_else(|e| {
                    eprintln!("vecadd lws={lws} failed: {e}");
                    std::process::exit(1);
                });
        let trace = Trace::from_sink(sink);
        let stats = TraceStats::compute(&trace, &program);
        let report = &outcome.reports[0];

        let timeline = render_timeline(
            &trace,
            &program,
            0,
            &format!("lws={lws} ({})", report.scenario),
            TimelineOptions { width, show_lane_counts: true },
        );
        println!("{timeline}");

        table.row(vec![
            lws.to_string(),
            format!("{:?}", report.scenario),
            outcome.cycles.to_string(),
            stats.instructions.to_string(),
            report.rounds.to_string(),
            format!("{:.1}", stats.body_fraction() * 100.0),
            format!("{:.1}", stats.overhead_fraction() * 100.0),
            format!("{:.2}", trace.lane_utilization(config.threads)),
        ]);
        cycles_by_lws.push((lws, outcome.cycles));
    }

    println!("{}", table.to_text());

    // The paper's reading of Fig. 1: the exact-fit lws (= gws/hp) wins.
    let optimal = (u64::from(n) / hp).max(1) as u32;
    let best = cycles_by_lws.iter().min_by_key(|(_, c)| *c).expect("non-empty");
    println!("best sampled lws = {} ({} cycles); Eq.1 predicts lws = {optimal}", best.0, best.1);
}
