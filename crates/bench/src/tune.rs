//! Driving the online autotuner over real kernels and evaluating its
//! regret against the exhaustive oracle — the machinery behind the
//! `tune` binary and the committed `TUNE_PR8.json` artefact.
//!
//! The tuner itself lives in `vortex_core::autotune`; this module
//! supplies what it cannot know about: how to *measure* one probe
//! (simulate, or fetch from the PR 7 content-addressed store via
//! [`tune_key`] — the oracle-over-store path), how to obtain the
//! exhaustive per-lws ground truth the regret is computed against, and
//! the JSON dialect the evaluation is reported in.
//!
//! Per-lws rows reuse the campaign store verbatim: a run of kernel `k`
//! at explicit lws `l` is stored as a [`ConfigRow`] whose three policy
//! cycle fields all carry the one measured value, keyed by a digest
//! that folds the `"explicit"` policy tag and `l` itself — so tune rows
//! and campaign rows coexist in the same `<kernel>.jsonl` shards and a
//! warm store replays a whole evaluation without simulating anything.
//!
//! Like the probe dialect, tune JSON rows carry **raw integer counters
//! only** (cycles, probe/store traffic, absolute-error sums); regret
//! percentages and accuracy curves are derived at display time, so
//! shard files merge into exactly the numbers a single process would
//! have produced.

use std::collections::BTreeMap;
use std::time::Instant;

use vortex_core::autotune::{lws_candidates, probe_schedule, tune_lws, ProbedRow};
use vortex_core::ENGINE_SEMANTICS_VERSION as SEMVER;
use vortex_core::{digest_device_config, digest_program, Fnv64, LwsPolicy, Runtime};
use vortex_kernels::{run_kernel_prepared, KernelError};
use vortex_sim::DeviceConfig;

use crate::cache::CampaignCache;
use crate::campaign::{ConfigRow, KernelFactory, Scale};

/// The probe budgets the committed artefact evaluates
/// (`TUNE_PR8.json`'s accuracy curves).
pub const DEFAULT_BUDGETS: [usize; 3] = [3, 6, 12];

/// The default mini-grid of topologies the evaluation runs on: a small,
/// a mid-size and a large device (hp = 8, 64, 256) — enough spread that
/// every mapping regime (multi-call, exact fit, under-filled) appears
/// in each kernel's candidate grid.
pub const DEFAULT_TOPOLOGIES: [&str; 3] = ["1c2w4t", "2c4w8t", "4c8w8t"];

/// Computes the content key of one *per-lws* tune row: like
/// [`campaign_key`](crate::cache::campaign_key) but for a single
/// explicit-lws run instead of the three-policy campaign triple. The
/// `"explicit"` tag and the lws value are folded in, so tune rows can
/// never alias campaign rows in the shared store.
pub fn tune_key(
    kernel: &str,
    scale: Scale,
    program: &vortex_asm::Program,
    config: &DeviceConfig,
    lws: u32,
) -> u64 {
    tune_key_from_digest(kernel, scale, digest_program(program), config, lws)
}

/// [`tune_key`] with the program digest precomputed (one assembly
/// serves a whole evaluation).
pub fn tune_key_from_digest(
    kernel: &str,
    scale: Scale,
    program_digest: u64,
    config: &DeviceConfig,
    lws: u32,
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(SEMVER);
    h.write_str(kernel);
    h.write_str(scale.tag());
    h.write_u64(program_digest);
    h.write_u64(digest_device_config(config));
    h.write_str("explicit");
    h.write_u32(lws);
    h.finish()
}

/// One evaluated (kernel, topology, budget) cell of the tune report —
/// raw counters only; regret and accuracy are derived by the accessor
/// methods so merged shards reproduce single-process numbers exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneRow {
    /// Kernel name.
    pub kernel: String,
    /// Topology tag (`CcWwTt`).
    pub topo: String,
    /// The launch's global work size (first phase; multi-phase kernels
    /// launch every phase at the same gws).
    pub gws: u32,
    /// Probe budget K this row was tuned under.
    pub budget: usize,
    /// Size of the full candidate grid.
    pub candidates: usize,
    /// Probes actually taken (`min(budget, candidates)`).
    pub probes: usize,
    /// The lws the tuner chose.
    pub chosen_lws: u32,
    /// Ground-truth cycles of the chosen lws.
    pub chosen_cycles: u64,
    /// The exhaustive oracle's best lws over the same grid.
    pub oracle_lws: u32,
    /// Ground-truth cycles of the oracle's choice.
    pub oracle_cycles: u64,
    /// Eq. 1's (floor) choice on this launch — the static baseline.
    pub eq1_lws: u32,
    /// Ground-truth cycles of Eq. 1's choice.
    pub eq1_cycles: u64,
    /// Scheduled probes whose first measurement was simulated.
    pub probes_simulated: u64,
    /// Scheduled probes answered from the campaign store.
    pub probes_cached: u64,
    /// Ground-truth grid points simulated by this process (beyond the
    /// probes; zero on a warm store).
    pub gt_simulated: u64,
    /// Ground-truth grid points answered from the store.
    pub gt_cached: u64,
    /// Σ |predicted − truth| cycles over the unprobed candidates
    /// (predictions rounded to the nearest cycle, so the sum is an
    /// exact integer and shard merges stay exact).
    pub pred_abs_err_sum: u64,
    /// Σ truth cycles over the same unprobed candidates (the error
    /// sum's denominator).
    pub pred_truth_sum: u64,
    /// Number of unprobed (predicted-only) candidates.
    pub unprobed: usize,
}

impl TuneRow {
    /// Regret of the tuner's choice vs the oracle, in percent
    /// (`0.0` = the tuner found the true optimum).
    pub fn regret_pct(&self) -> f64 {
        if self.oracle_cycles == 0 {
            return 0.0;
        }
        (self.chosen_cycles as f64 - self.oracle_cycles as f64) / self.oracle_cycles as f64 * 100.0
    }

    /// Regret of the static Eq. 1 policy vs the oracle, in percent —
    /// the baseline the counter-driven tuner must beat or match.
    pub fn eq1_regret_pct(&self) -> f64 {
        if self.oracle_cycles == 0 {
            return 0.0;
        }
        (self.eq1_cycles as f64 - self.oracle_cycles as f64) / self.oracle_cycles as f64 * 100.0
    }

    /// Mean relative prediction error over the unprobed candidates, in
    /// percent (`None` when the budget covered the whole grid).
    pub fn prediction_error_pct(&self) -> Option<f64> {
        if self.unprobed == 0 || self.pred_truth_sum == 0 {
            return None;
        }
        Some(self.pred_abs_err_sum as f64 / self.pred_truth_sum as f64 * 100.0)
    }
}

/// A parsed (or to-be-rendered) tune report file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneFile {
    /// Worker threads used by the producing process.
    pub jobs: usize,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// Campaign-store lookups answered from the store.
    pub store_hits: u64,
    /// Campaign-store lookups that simulated (cold work performed).
    pub store_misses: u64,
    /// One row per (kernel, topology, budget), in evaluation order.
    pub rows: Vec<TuneRow>,
}

impl TuneFile {
    /// Mean regret across this file's rows at probe budget `budget`, in
    /// percent (`None` when no row has that budget).
    pub fn mean_regret_pct(&self, budget: usize) -> Option<f64> {
        let regrets: Vec<f64> =
            self.rows.iter().filter(|r| r.budget == budget).map(TuneRow::regret_pct).collect();
        if regrets.is_empty() {
            return None;
        }
        Some(regrets.iter().sum::<f64>() / regrets.len() as f64)
    }

    /// The distinct budgets present, ascending.
    pub fn budgets(&self) -> Vec<usize> {
        let mut budgets: Vec<usize> = self.rows.iter().map(|r| r.budget).collect();
        budgets.sort_unstable();
        budgets.dedup();
        budgets
    }
}

/// Evaluates the online autotuner for one kernel on one topology across
/// `budgets`, measuring probes and ground truth over the store.
///
/// The full candidate grid is measured exactly once per (kernel,
/// topology) — store hits on a warm store, simulations on a cold one —
/// and every budget's tuning run is then fed from those measurements,
/// with its probe traffic attributed by each probe's *first touch*
/// (cached vs simulated). The tuner itself only ever sees the probes
/// its schedule requests.
///
/// # Errors
///
/// Propagates the first kernel failure (assembly, launch, wrong
/// results).
pub fn evaluate_tune(
    factory: &KernelFactory,
    config: &DeviceConfig,
    budgets: &[usize],
    cache: Option<&CampaignCache>,
) -> Result<Vec<TuneRow>, KernelError> {
    let mut kernel = factory.make_kernel();
    let program = kernel.build()?;
    let pdig = digest_program(&program);
    let gws = kernel.phases().first().map_or(1, |p| p.gws);
    let candidates = lws_candidates(gws, config);

    // Measure the full grid once, store-first. `fresh` records whether
    // each lws was simulated by this process (true) or answered from
    // the store (false).
    let mut rt: Option<Runtime> = None;
    let mut measured: BTreeMap<u32, (u64, vortex_core::DispatchStats, bool)> = BTreeMap::new();
    for &lws in &candidates {
        let key = tune_key_from_digest(factory.name, factory.scale, pdig, config, lws);
        if let Some(cache) = cache {
            if let Some(row) = cache.lookup(factory.name, key, config) {
                measured.insert(lws, (row.cycles_auto, row.dispatch, false));
                continue;
            }
        }
        let rt = rt.get_or_insert_with(|| {
            let mut fresh = Runtime::new(*config);
            fresh.load_program(&program);
            fresh
        });
        let outcome = run_kernel_prepared(kernel.as_mut(), &program, rt, LwsPolicy::Explicit(lws))?;
        if let Some(cache) = cache {
            let row = ConfigRow {
                config: *config,
                cycles_naive: outcome.cycles,
                cycles_fixed: outcome.cycles,
                cycles_auto: outcome.cycles,
                lws_auto: lws,
                dram_utilization: outcome.dram_utilization,
                mem: outcome.mem,
                dispatch: outcome.dispatch,
                instructions: outcome.instructions,
                port_accesses: outcome.port_accesses,
                port_stall_slots: outcome.port_stall_slots,
            };
            cache.insert(factory.name, key, &row);
        }
        measured.insert(lws, (outcome.cycles, outcome.dispatch, true));
    }

    // Ground truth: the oracle over the measured grid (ties to the
    // smaller lws, matching `oracle_search`).
    let (oracle_lws, oracle_cycles) = measured
        .iter()
        .map(|(&lws, &(cycles, _, _))| (lws, cycles))
        .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
        .expect("candidate grid is never empty");
    let eq1_lws = LwsPolicy::Auto.lws_for(gws, config);
    let eq1_cycles = measured[&eq1_lws].0;

    let mut rows = Vec::with_capacity(budgets.len());
    for &budget in budgets {
        let schedule = probe_schedule(&candidates, gws, config, budget);
        let outcome = tune_lws::<std::convert::Infallible>(gws, config, budget, |lws| {
            let (cycles, dispatch, _) = measured[&lws];
            Ok(ProbedRow { lws, cycles, dispatch })
        })
        .expect("memoised measurements cannot fail");

        let probes_simulated = schedule.iter().filter(|l| measured[l].2).count() as u64;
        let probes_cached = schedule.len() as u64 - probes_simulated;
        let gt: Vec<&u32> = candidates.iter().filter(|c| !schedule.contains(c)).collect();
        let gt_simulated = gt.iter().filter(|l| measured[**l].2).count() as u64;
        let gt_cached = gt.len() as u64 - gt_simulated;

        let mut pred_abs_err_sum = 0u64;
        let mut pred_truth_sum = 0u64;
        for est in outcome.ranking.iter().filter(|e| !e.probed) {
            let truth = measured[&est.lws].0;
            let predicted = est.cycles.round().max(0.0) as u64;
            pred_abs_err_sum += predicted.abs_diff(truth);
            pred_truth_sum += truth;
        }

        rows.push(TuneRow {
            kernel: factory.name.to_owned(),
            topo: config.topology_name(),
            gws,
            budget,
            candidates: candidates.len(),
            probes: schedule.len(),
            chosen_lws: outcome.chosen_lws,
            chosen_cycles: measured[&outcome.chosen_lws].0,
            oracle_lws,
            oracle_cycles,
            eq1_lws,
            eq1_cycles,
            probes_simulated,
            probes_cached,
            gt_simulated,
            gt_cached,
            pred_abs_err_sum,
            pred_truth_sum,
            unprobed: candidates.len() - schedule.len(),
        });
    }
    Ok(rows)
}

/// Runs the whole evaluation: every factory × topology cell across
/// `budgets`, in parallel over `jobs` worker threads (each cell builds
/// its own kernel and runtime; the store handle is shared and
/// thread-safe). Rows come back in deterministic (factory, topology)
/// order regardless of scheduling.
///
/// # Errors
///
/// Propagates the first kernel failure.
pub fn run_tune_evaluation(
    factories: &[KernelFactory],
    topologies: &[DeviceConfig],
    budgets: &[usize],
    jobs: usize,
    cache: Option<&CampaignCache>,
) -> Result<TuneFile, KernelError> {
    let start = Instant::now();
    let before = cache.map(|c| c.counters()).unwrap_or_default();
    let units: Vec<(usize, usize)> =
        (0..factories.len()).flat_map(|f| (0..topologies.len()).map(move |t| (f, t))).collect();
    let jobs = jobs.max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<Option<Vec<TuneRow>>>> =
        std::sync::Mutex::new(vec![None; units.len()]);
    let failure: std::sync::Mutex<Option<KernelError>> = std::sync::Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..jobs.min(units.len().max(1)) {
            scope.spawn(|| loop {
                if failure.lock().expect("failure lock").is_some() {
                    return;
                }
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(f, t)) = units.get(idx) else { return };
                match evaluate_tune(&factories[f], &topologies[t], budgets, cache) {
                    Ok(rows) => results.lock().expect("results lock")[idx] = Some(rows),
                    Err(e) => {
                        *failure.lock().expect("failure lock") = Some(e);
                        return;
                    }
                }
            });
        }
    });

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    let rows = results
        .into_inner()
        .expect("results lock")
        .into_iter()
        .flat_map(|r| r.expect("all units evaluated"))
        .collect();
    let after = cache.map(|c| c.counters()).unwrap_or_default();
    Ok(TuneFile {
        jobs,
        total_seconds: start.elapsed().as_secs_f64(),
        store_hits: after.hits - before.hits,
        store_misses: after.misses - before.misses,
        rows,
    })
}

/// Renders the tune JSON (hand-rolled — the build environment has no
/// serde). Derived percentages are included for human readers but the
/// parser ignores them: counters are the source of truth.
pub fn render_tune_json(file: &TuneFile) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"jobs\": {},\n", file.jobs));
    out.push_str(&format!("  \"total_seconds\": {:.3},\n", file.total_seconds));
    out.push_str(&format!("  \"store_hits\": {},\n", file.store_hits));
    out.push_str(&format!("  \"store_misses\": {},\n", file.store_misses));
    out.push_str("  \"rows\": [\n");
    for (i, r) in file.rows.iter().enumerate() {
        let comma = if i + 1 == file.rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"topo\": \"{}\", \"gws\": {}, \"budget\": {}, \
             \"candidates\": {}, \"probes\": {}, \
             \"chosen_lws\": {}, \"chosen_cycles\": {}, \
             \"oracle_lws\": {}, \"oracle_cycles\": {}, \
             \"eq1_lws\": {}, \"eq1_cycles\": {}, \
             \"probes_simulated\": {}, \"probes_cached\": {}, \
             \"gt_simulated\": {}, \"gt_cached\": {}, \
             \"pred_abs_err_sum\": {}, \"pred_truth_sum\": {}, \"unprobed\": {}, \
             \"regret_pct\": {:.4}}}{comma}\n",
            r.kernel,
            r.topo,
            r.gws,
            r.budget,
            r.candidates,
            r.probes,
            r.chosen_lws,
            r.chosen_cycles,
            r.oracle_lws,
            r.oracle_cycles,
            r.eq1_lws,
            r.eq1_cycles,
            r.probes_simulated,
            r.probes_cached,
            r.gt_simulated,
            r.gt_cached,
            r.pred_abs_err_sum,
            r.pred_truth_sum,
            r.unprobed,
            r.regret_pct(),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses the exact JSON [`render_tune_json`] writes.
///
/// # Errors
///
/// A message naming the first missing or unparsable required field.
pub fn parse_tune_json(text: &str) -> Result<TuneFile, String> {
    fn field<T: std::str::FromStr>(obj: &str, key: &str) -> Result<T, String> {
        let pat = format!("\"{key}\":");
        let at = obj.find(&pat).ok_or_else(|| format!("missing key {key}"))?;
        let rest = obj[at + pat.len()..].trim_start();
        let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
        rest[..end]
            .trim()
            .trim_matches('"')
            .parse()
            .map_err(|_| format!("unparsable value for {key}"))
    }
    let rows_at = text.find("\"rows\"").ok_or("missing rows array")?;
    let head = &text[..rows_at];
    let mut file = TuneFile {
        jobs: field(head, "jobs")?,
        total_seconds: field(head, "total_seconds")?,
        store_hits: field(head, "store_hits")?,
        store_misses: field(head, "store_misses")?,
        rows: Vec::new(),
    };
    for obj in text[rows_at..].split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        if !obj.contains("\"kernel\"") {
            continue;
        }
        file.rows.push(TuneRow {
            kernel: field(obj, "kernel")?,
            topo: field(obj, "topo")?,
            gws: field(obj, "gws")?,
            budget: field(obj, "budget")?,
            candidates: field(obj, "candidates")?,
            probes: field(obj, "probes")?,
            chosen_lws: field(obj, "chosen_lws")?,
            chosen_cycles: field(obj, "chosen_cycles")?,
            oracle_lws: field(obj, "oracle_lws")?,
            oracle_cycles: field(obj, "oracle_cycles")?,
            eq1_lws: field(obj, "eq1_lws")?,
            eq1_cycles: field(obj, "eq1_cycles")?,
            probes_simulated: field(obj, "probes_simulated")?,
            probes_cached: field(obj, "probes_cached")?,
            gt_simulated: field(obj, "gt_simulated")?,
            gt_cached: field(obj, "gt_cached")?,
            pred_abs_err_sum: field(obj, "pred_abs_err_sum")?,
            pred_truth_sum: field(obj, "pred_truth_sum")?,
            unprobed: field(obj, "unprobed")?,
        });
    }
    Ok(file)
}

/// Merges shard tune files: rows are a union keyed by (kernel, topo,
/// budget) — shards partition the kernel × topology grid, so every cell
/// appears in exactly one shard and its raw counters pass through
/// unchanged (a duplicate cell is an error: unlike additive probe rows,
/// a tune cell is a complete measurement). Top-level store counters and
/// seconds sum; rows sort by (kernel, topo, budget) so the merged file
/// is independent of shard order.
///
/// # Errors
///
/// The first unreadable or unparsable input, or a duplicated cell.
pub fn merge_tune_files(paths: &[String]) -> Result<String, String> {
    if paths.is_empty() {
        return Err("no input files".into());
    }
    let mut merged = TuneFile::default();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        let file = parse_tune_json(&text).map_err(|e| format!("{path}: {e}"))?;
        merged.jobs = merged.jobs.max(file.jobs);
        merged.total_seconds += file.total_seconds;
        merged.store_hits += file.store_hits;
        merged.store_misses += file.store_misses;
        for row in file.rows {
            let cell = (row.kernel.clone(), row.topo.clone(), row.budget);
            if merged.rows.iter().any(|r| {
                (r.kernel.as_str(), r.topo.as_str(), r.budget)
                    == (cell.0.as_str(), cell.1.as_str(), cell.2)
            }) {
                return Err(format!(
                    "{path}: duplicate cell {}/{}/K={} — shards must partition the grid",
                    cell.0, cell.1, cell.2
                ));
            }
            merged.rows.push(row);
        }
    }
    merged.rows.sort_by(|a, b| {
        a.kernel.cmp(&b.kernel).then(a.topo.cmp(&b.topo)).then(a.budget.cmp(&b.budget))
    });
    Ok(render_tune_json(&merged))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::kernel_factories;

    fn sample_row(kernel: &str, topo: &str, budget: usize, scale: u64) -> TuneRow {
        TuneRow {
            kernel: kernel.to_owned(),
            topo: topo.to_owned(),
            gws: 4096,
            budget,
            candidates: 14,
            probes: budget,
            chosen_lws: 512,
            chosen_cycles: 1000 * scale,
            oracle_lws: 512,
            oracle_cycles: 1000 * scale,
            eq1_lws: 512,
            eq1_cycles: 1010 * scale,
            probes_simulated: 2,
            probes_cached: budget as u64 - 2,
            gt_simulated: 3,
            gt_cached: 14 - budget as u64 - 3,
            pred_abs_err_sum: 77 * scale,
            pred_truth_sum: 7000 * scale,
            unprobed: 14 - budget,
        }
    }

    #[test]
    fn tune_keys_separate_all_inputs() {
        let program = kernel_factories(Scale::Sweep)[0].make_kernel().build().unwrap();
        let c1: DeviceConfig = "1c2w2t".parse().unwrap();
        let c2: DeviceConfig = "1c2w4t".parse().unwrap();
        let pdig = digest_program(&program);
        let k = |kernel: &str, scale, config: &DeviceConfig, lws| {
            tune_key_from_digest(kernel, scale, pdig, config, lws)
        };
        let base = k("vecadd", Scale::Sweep, &c1, 16);
        assert_eq!(base, k("vecadd", Scale::Sweep, &c1, 16), "stable across calls");
        assert_ne!(base, k("vecadd", Scale::Sweep, &c1, 32), "lws must re-key");
        assert_ne!(base, k("vecadd", Scale::Sweep, &c2, 16), "config must re-key");
        assert_ne!(base, k("relu", Scale::Sweep, &c1, 16), "kernel must re-key");
        assert_ne!(base, k("vecadd", Scale::Paper, &c1, 16), "scale must re-key");
        // Tune keys never alias campaign keys (different policy tag).
        assert_ne!(base, crate::cache::campaign_key("vecadd", Scale::Sweep, &program, &c1));
    }

    #[test]
    fn tune_json_roundtrips_through_the_parser() {
        let file = TuneFile {
            jobs: 2,
            total_seconds: 1.25,
            store_hits: 30,
            store_misses: 12,
            rows: vec![sample_row("vecadd", "1c2w4t", 3, 1), sample_row("relu", "2c4w8t", 6, 2)],
        };
        let json = render_tune_json(&file);
        let parsed = parse_tune_json(&json).unwrap();
        assert_eq!(parsed.jobs, 2);
        assert!((parsed.total_seconds - 1.25).abs() < 1e-9);
        assert_eq!((parsed.store_hits, parsed.store_misses), (30, 12));
        assert_eq!(parsed.rows, file.rows);
        // Derived values recompute identically from the raw counters.
        assert_eq!(parsed.rows[0].regret_pct(), file.rows[0].regret_pct());
        assert!(parsed.rows[1].prediction_error_pct().is_some());
    }

    #[test]
    fn merge_unions_cells_and_sums_store_traffic() {
        let a = TuneFile {
            jobs: 2,
            total_seconds: 1.0,
            store_hits: 10,
            store_misses: 4,
            rows: vec![sample_row("vecadd", "1c2w4t", 3, 1), sample_row("vecadd", "1c2w4t", 6, 1)],
        };
        let b = TuneFile {
            jobs: 4,
            total_seconds: 2.0,
            store_hits: 20,
            store_misses: 0,
            rows: vec![sample_row("relu", "1c2w4t", 3, 2)],
        };
        let dir = std::env::temp_dir().join(format!("vortex_tune_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (pa, pb) = (dir.join("a.json"), dir.join("b.json"));
        std::fs::write(&pa, render_tune_json(&a)).unwrap();
        std::fs::write(&pb, render_tune_json(&b)).unwrap();
        let inputs = [pa.to_string_lossy().into_owned(), pb.to_string_lossy().into_owned()];
        let merged = parse_tune_json(&merge_tune_files(&inputs).unwrap()).unwrap();
        assert_eq!(merged.jobs, 4);
        assert!((merged.total_seconds - 3.0).abs() < 1e-9);
        assert_eq!((merged.store_hits, merged.store_misses), (30, 4));
        assert_eq!(merged.rows.len(), 3);
        // Sorted by (kernel, topo, budget): relu first.
        assert_eq!(merged.rows[0].kernel, "relu");
        // Counters pass through the merge bit-exactly.
        assert_eq!(merged.rows[1], a.rows[0]);
        // A duplicated cell is rejected, not silently double-counted.
        let dup = merge_tune_files(&[inputs[0].clone(), inputs[0].clone()]);
        assert!(dup.unwrap_err().contains("duplicate cell"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mean_regret_derives_per_budget() {
        let mut r1 = sample_row("vecadd", "1c2w4t", 6, 1);
        r1.chosen_cycles = 1050; // 5% regret
        let r2 = sample_row("relu", "1c2w4t", 6, 1); // 0% regret
        let file = TuneFile { rows: vec![r1, r2], ..TuneFile::default() };
        assert!((file.mean_regret_pct(6).unwrap() - 2.5).abs() < 1e-9);
        assert_eq!(file.mean_regret_pct(3), None);
        assert_eq!(file.budgets(), vec![6]);
    }

    #[test]
    fn evaluation_over_store_is_warm_replayable() {
        let factories = kernel_factories(Scale::Sweep);
        let vecadd = factories.iter().find(|f| f.name == "vecadd").unwrap();
        let config: DeviceConfig = "1c2w4t".parse().unwrap();
        let dir = std::env::temp_dir().join(format!("vortex_tune_eval_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CampaignCache::open(&dir).unwrap();

        let cold = evaluate_tune(vecadd, &config, &[3, 6], Some(&cache)).unwrap();
        assert_eq!(cold.len(), 2);
        let grid = cold[0].candidates as u64;
        assert_eq!(cold[0].probes_simulated + cold[0].gt_simulated, grid, "cold run simulates all");
        cache.flush().unwrap();

        // Warm replay from a reopened store: zero simulations, same rows
        // up to the traffic attribution.
        let reopened = CampaignCache::open(&dir).unwrap();
        let warm = evaluate_tune(vecadd, &config, &[3, 6], Some(&reopened)).unwrap();
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(w.probes_simulated + w.gt_simulated, 0, "warm run simulates nothing");
            assert_eq!(w.probes_cached + w.gt_cached, grid);
            assert_eq!((c.chosen_lws, c.chosen_cycles), (w.chosen_lws, w.chosen_cycles));
            assert_eq!((c.oracle_lws, c.oracle_cycles), (w.oracle_lws, w.oracle_cycles));
            assert_eq!(c.pred_abs_err_sum, w.pred_abs_err_sum, "predictions replay bit-exactly");
        }
        // The oracle is never worse than any policy on the same grid.
        assert!(cold[0].oracle_cycles <= cold[0].eq1_cycles);
        assert!(cold[0].oracle_cycles <= cold[0].chosen_cycles);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
