//! Keyed on-disk store of recorded instruction traces (PR 10).
//!
//! One file per [`trace_key`], holding the versioned VXTR encoding of a
//! [`RecordedTrace`] (see `docs/TRACE.md`). The key pins everything the
//! *architectural* event streams depend on — engine semantics version,
//! trace format version, program digest, dataset (kernel name + scale
//! tag), topology and the per-phase resolved mapping — and deliberately
//! **excludes** the timing and memory-hierarchy models: a trace recorded
//! once re-times under any latency/geometry variant of the same
//! topology, which is the whole point of replay. Any change to the
//! program, dataset, mapping, topology or either version constant moves
//! the key, so stale traces are never replayed — they are simply never
//! found.
//!
//! Files are written through [`atomic_write_bytes`], so a killed sweep
//! can never leave a truncated trace behind; the decoder's digest check
//! rejects any corruption that slips past the rename anyway, and an
//! unreadable file is treated as a miss (the config is re-recorded).

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use vortex_core::Fnv64;
use vortex_core::ENGINE_SEMANTICS_VERSION as SEMVER;
use vortex_sim::{DeviceConfig, RecordedTrace};
use vortex_trace::{decode_trace, encode_trace, TRACE_FORMAT_VERSION};

use crate::campaign::Scale;
use crate::persist::atomic_write_bytes;

/// Computes the content key of one recorded trace: the digest of every
/// input the architectural event streams depend on.
///
/// `phase_lws` is the kernel's per-phase `(gws, resolved lws)` under the
/// mapping policy the trace was (or would be) recorded with — the lws is
/// the *resolved* value, so `Auto` on different topologies keys
/// differently exactly when it maps differently.
pub fn trace_key(
    kernel: &str,
    scale: Scale,
    program_digest: u64,
    config: &DeviceConfig,
    phase_lws: &[(u32, u32)],
) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(SEMVER);
    h.write_u32(TRACE_FORMAT_VERSION);
    h.write_str(kernel);
    h.write_str(scale.tag());
    h.write_u64(program_digest);
    // Topology only: timing and memory latencies/geometry are re-timed at
    // replay, so they must NOT move the key. `cores_per_cluster` is pure
    // scheduler bookkeeping (the clustered-vs-flat CI gate pins identical
    // cycles) and is likewise excluded.
    h.write_u64(config.cores as u64);
    h.write_u64(config.warps as u64);
    h.write_u64(config.threads as u64);
    h.write_u64(config.ipdom_depth as u64);
    h.write_u64(phase_lws.len() as u64);
    for &(gws, lws) in phase_lws {
        h.write_u32(gws);
        h.write_u32(lws);
    }
    h.finish()
}

/// A directory of trace files plus record/replay transport counters.
///
/// Thread-safe by construction: lookups and inserts are independent
/// files, writes are atomic renames, and the counters are atomics — the
/// campaign's worker threads share one store with no further locking.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    records: AtomicU64,
    replays: AtomicU64,
}

impl TraceStore {
    /// Opens (creating if needed) the store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation error.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(TraceStore {
            dir: dir.to_path_buf(),
            records: AtomicU64::new(0),
            replays: AtomicU64::new(0),
        })
    }

    fn path_for(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.vxtr"))
    }

    /// Loads the trace stored under `key`, or `None` if it is absent,
    /// unreadable, corrupt, version-mismatched, mis-keyed or tainted —
    /// every failure mode degrades to a miss and the caller re-records.
    pub fn load(&self, key: u64) -> Option<RecordedTrace> {
        let bytes = std::fs::read(self.path_for(key)).ok()?;
        let (stored_key, trace) = decode_trace(&bytes).ok()?;
        if stored_key != key {
            return None;
        }
        // A tainted trace read a timing CSR while recording: its event
        // streams embed the recording run's cycle counts and must never
        // be re-timed under a different configuration.
        if trace.tainted {
            return None;
        }
        Some(trace)
    }

    /// Persists `trace` under `key`. Tainted traces are silently not
    /// persisted (see [`TraceStore::load`]); the run that produced them
    /// still counts as a record.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn save(&self, key: u64, trace: &RecordedTrace) -> io::Result<()> {
        if trace.tainted {
            return Ok(());
        }
        atomic_write_bytes(&self.path_for(key), &encode_trace(key, trace))
    }

    /// Counts one configuration measured by executing (and recording).
    pub fn note_record(&self) {
        self.records.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one configuration measured by replaying a stored trace.
    pub fn note_replay(&self) {
        self.replays.fetch_add(1, Ordering::Relaxed);
    }

    /// `(records, replays)` since this handle was opened — raw sums, so
    /// shard totals merge exactly.
    pub fn counters(&self) -> (u64, u64) {
        (self.records.load(Ordering::Relaxed), self.replays.load(Ordering::Relaxed))
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_sim::LaunchRecord;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vortex_tracestore_{tag}_{}", std::process::id()))
    }

    fn sample(tainted: bool) -> RecordedTrace {
        RecordedTrace { cores: 2, warps: 2, tainted, launches: vec![LaunchRecord::new(2, 2)] }
    }

    #[test]
    fn round_trips_by_key_and_misses_on_absent() {
        let dir = tmp("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        let trace = sample(false);
        store.save(7, &trace).unwrap();
        assert_eq!(store.load(7), Some(trace));
        assert_eq!(store.load(8), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tainted_traces_are_never_persisted() {
        let dir = tmp("tainted");
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        store.save(9, &sample(true)).unwrap();
        assert_eq!(store.load(9), None);
        assert!(!store.path_for(9).exists(), "tainted traces must not reach disk");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_files_degrade_to_misses() {
        let dir = tmp("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        store.save(3, &sample(false)).unwrap();
        let path = store.path_for(3);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(store.load(3), None, "flipped payload byte must fail the digest");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert_eq!(store.load(3), None, "truncated file must be a miss");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_file_stored_under_the_wrong_name_is_rejected() {
        let dir = tmp("miskeyed");
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        store.save(4, &sample(false)).unwrap();
        std::fs::rename(store.path_for(4), store.path_for(5)).unwrap();
        assert_eq!(store.load(5), None, "embedded key must match the lookup key");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_moves_with_semantics_but_not_with_timing() {
        let base = DeviceConfig::with_topology(2, 4, 8);
        let phases = [(256, 4)];
        let k = trace_key("saxpy", Scale::Sweep, 11, &base, &phases);

        let mut slow = base;
        slow.timing.mul = 40;
        slow.mem.l2_latency += 13;
        assert_eq!(
            trace_key("saxpy", Scale::Sweep, 11, &slow, &phases),
            k,
            "timing and memory latencies must not move the key (replay re-times them)"
        );

        let other_topo = DeviceConfig::with_topology(4, 4, 8);
        assert_ne!(trace_key("saxpy", Scale::Sweep, 11, &other_topo, &phases), k);
        assert_ne!(trace_key("saxpy", Scale::Sweep, 12, &base, &phases), k);
        assert_ne!(trace_key("vecadd", Scale::Sweep, 11, &base, &phases), k);
        assert_ne!(trace_key("saxpy", Scale::Paper, 11, &base, &phases), k);
        assert_ne!(trace_key("saxpy", Scale::Sweep, 11, &base, &[(256, 8)]), k);
        assert_ne!(trace_key("saxpy", Scale::Sweep, 11, &base, &[(256, 4), (128, 4)]), k);
    }

    #[test]
    fn counters_sum_records_and_replays() {
        let dir = tmp("counters");
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir).unwrap();
        store.note_record();
        store.note_record();
        store.note_replay();
        assert_eq!(store.counters(), (2, 1));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
