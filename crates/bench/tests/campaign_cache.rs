//! End-to-end guarantees of the campaign cache and the resumable
//! driver, exercised through the crate's public API exactly as the
//! `speed_probe` and `campaign` binaries use it: cold→warm transparency
//! (a warm run simulates nothing and reports identical bytes), exact
//! delta simulation, and budget-kill → resume reassembly.

use vortex_bench::driver::{run_queue, QueueSpec};
use vortex_bench::probe::{render_json, KernelRow, ProbeFile};
use vortex_bench::{
    kernel_factories, parse_probe_json, run_campaign, run_campaign_cached, strip_run_metadata,
    CampaignCache, CampaignResult, KernelFactory, Scale,
};
use vortex_sim::DeviceConfig;

fn tiny_grid() -> Vec<DeviceConfig> {
    vec![
        DeviceConfig::with_topology(1, 2, 2),
        DeviceConfig::with_topology(1, 2, 4),
        DeviceConfig::with_topology(2, 2, 2),
    ]
}

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vortex_cc_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Renders a campaign result the way `speed_probe --json` does, with the
/// run-specific fields already zeroed (what the CI gate diffs).
fn probe_json(factory: &KernelFactory, result: &CampaignResult, hits: u64, misses: u64) -> String {
    let (port_accesses, port_stall_slots) = result.total_ports();
    let file = ProbeFile {
        configs: result.rows.len(),
        jobs: 2,
        total_seconds: 0.0,
        shard: None,
        cache_bytes_read: 0,
        cache_bytes_written: 0,
        rows: vec![KernelRow {
            name: factory.name.to_owned(),
            configs: result.rows.len(),
            seconds: 0.0,
            util: result.mean_dram_utilization(),
            mem: result.total_mem(),
            dispatch: result.total_dispatch(),
            instructions: result.total_instructions(),
            cache_hits: hits,
            cache_misses: misses,
            port_accesses,
            port_stall_slots,
            trace_records: result.trace_records,
            trace_replays: result.trace_replays,
        }],
    };
    strip_run_metadata(&render_json(&file))
}

#[test]
fn warm_rerun_simulates_zero_configs_with_identical_report() {
    let dir = tmp("warm");
    let grid = tiny_grid();
    let factories = kernel_factories(Scale::Sweep);
    let vecadd = &factories[0];

    let cache = CampaignCache::open(&dir).unwrap();
    let cold = run_campaign_cached(vecadd, &grid, 2, Some(&cache)).unwrap();
    let after_cold = cache.counters();
    assert_eq!((after_cold.hits, after_cold.misses), (0, 3), "cold run simulates everything");
    cache.flush().unwrap();

    // Fresh process = fresh handle: the warm run answers every
    // configuration from disk and simulates nothing.
    let warm_cache = CampaignCache::open(&dir).unwrap();
    let warm = run_campaign_cached(vecadd, &grid, 2, Some(&warm_cache)).unwrap();
    let after_warm = warm_cache.counters();
    assert_eq!((after_warm.hits, after_warm.misses), (3, 0), "warm run simulates nothing");
    assert_eq!((after_warm.insertions, after_warm.entries), (0, 3));

    // Byte-identical probe reports once run metadata is stripped.
    assert_eq!(
        probe_json(vecadd, &cold, 0, after_cold.misses),
        probe_json(vecadd, &warm, after_warm.hits, 0),
        "warm report must be byte-identical to the cold one"
    );
    // And the uncached baseline agrees row for row.
    let plain = run_campaign(vecadd, &grid, 2).unwrap();
    assert_eq!(plain.rows, warm.rows);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn single_config_change_resimulates_exactly_that_config() {
    let dir = tmp("delta");
    let grid = tiny_grid();
    let factories = kernel_factories(Scale::Sweep);
    let vecadd = &factories[0];

    let cache = CampaignCache::open(&dir).unwrap();
    run_campaign_cached(vecadd, &grid, 2, Some(&cache)).unwrap();
    cache.flush().unwrap();

    // Change one configuration of the grid: a timing knob this time, so
    // the delta detection rests on the full config digest rather than
    // the topology name.
    let mut changed = grid.clone();
    changed[1].timing.alu += 1;
    let reopened = CampaignCache::open(&dir).unwrap();
    let result = run_campaign_cached(vecadd, &changed, 2, Some(&reopened)).unwrap();
    let c = reopened.counters();
    assert_eq!((c.hits, c.misses), (2, 1), "exactly the changed configuration re-simulates");
    assert_eq!(result.rows.len(), 3);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn budget_kill_then_resume_reassembles_the_cold_report() {
    let base = tmp("queue");
    let spec = |resume: bool, budget: Option<usize>, queue: &str| QueueSpec {
        dir: base.join(queue),
        cache_dir: base.join(format!("{queue}-store")),
        kernels: Some(vec!["vecadd".into(), "relu".into()]),
        configs: tiny_grid(),
        scale: Scale::Sweep,
        shard: None,
        jobs: 2,
        budget,
        trace_dir: None,
        resume,
    };

    // Uninterrupted cold queue: 2 kernels × 3 configs.
    let cold = run_queue(&spec(false, None, "cold")).unwrap();
    assert!(cold.complete);
    assert_eq!(cold.simulated, 6);
    let cold_json = cold.result_json.unwrap();

    // The same queue "killed" after 2 configurations by the budget flag,
    // then resumed: exactly total − N = 4 simulate on resume.
    let first = run_queue(&spec(false, Some(2), "killed")).unwrap();
    assert!(!first.complete);
    assert_eq!((first.simulated, first.remaining), (2, 4));
    let second = run_queue(&spec(true, None, "killed")).unwrap();
    assert!(second.complete);
    assert_eq!((second.simulated, second.reused), (4, 2));

    assert_eq!(
        strip_run_metadata(&second.result_json.unwrap()),
        strip_run_metadata(&cold_json),
        "resumed report must be bit-identical to the uninterrupted run"
    );
    // The merged probe dialect parses back with exact counter totals.
    let parsed = parse_probe_json(&cold_json).unwrap();
    assert_eq!(parsed.rows.len(), 2);
    assert_eq!(parsed.rows.iter().map(|r| r.configs).sum::<usize>(), 6);
    std::fs::remove_dir_all(&base).unwrap();
}

#[test]
fn absorb_dir_merges_disjoint_worker_stores_exactly() {
    let dir = tmp("absorb");
    let grid = tiny_grid();
    let factories = kernel_factories(Scale::Sweep);
    let vecadd = &factories[0];

    // Two "workers" fill private stores with disjoint grid shares.
    let w1 = CampaignCache::open(dir.join("w1")).unwrap();
    run_campaign_cached(vecadd, &grid[..1], 1, Some(&w1)).unwrap();
    w1.flush().unwrap();
    let w2 = CampaignCache::open(dir.join("w2")).unwrap();
    run_campaign_cached(vecadd, &grid[1..], 1, Some(&w2)).unwrap();
    w2.flush().unwrap();

    // The parent absorbs both; a fresh handle then answers the full grid
    // from disk without simulating anything.
    let parent = CampaignCache::open(dir.join("parent")).unwrap();
    assert_eq!(parent.absorb_dir(&dir.join("w1")).unwrap(), 1);
    assert_eq!(parent.absorb_dir(&dir.join("w2")).unwrap(), 2);
    parent.flush().unwrap();

    let reopened = CampaignCache::open(dir.join("parent")).unwrap();
    let warm = run_campaign_cached(vecadd, &grid, 1, Some(&reopened)).unwrap();
    let c = reopened.counters();
    assert_eq!((c.hits, c.misses), (3, 0), "absorbed rows answer the whole grid");
    let plain = run_campaign(vecadd, &grid, 1).unwrap();
    assert_eq!(plain.rows, warm.rows, "absorbed rows are the simulated rows");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn multi_process_workers_match_single_process_run() {
    let base = tmp("workers");
    let exe = env!("CARGO_BIN_EXE_campaign");
    let run = |queue: &std::path::Path, extra: &[&str]| {
        let json = queue.join("out.json");
        let out = std::process::Command::new(exe)
            .arg("--dir")
            .arg(queue)
            .args(["--topos", "1c2w2t,1c2w4t,2c2w2t", "--kernels", "vecadd,relu", "--jobs", "1"])
            .arg("--json")
            .arg(&json)
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "campaign exited with {}: {}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&json).unwrap()
    };

    let single = run(&base.join("single"), &[]);
    let multi = run(&base.join("multi"), &["--workers", "2"]);
    assert_eq!(
        strip_run_metadata(&multi),
        strip_run_metadata(&single),
        "worker-merged report must be byte-identical to the single-process run"
    );
    // The shards really ran out-of-process: both worker stores exist.
    assert!(base.join("multi/workers/1/store").is_dir());
    assert!(base.join("multi/workers/2/store").is_dir());
    std::fs::remove_dir_all(&base).unwrap();
}
