//! End-to-end guarantees of the online autotuner (PR 8): the committed
//! `TUNE_PR8.json` artefact meets the regret bound it is documented
//! with, and the tuning pipeline is fixed-seed deterministic — the
//! chosen lws per kernel on a small grid is pinned exactly.

use vortex_bench::{evaluate_tune, kernel_factories, parse_tune_json, Scale};
use vortex_sim::DeviceConfig;

/// The committed artefact at the repository root.
fn committed_artifact() -> vortex_bench::TuneFile {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../TUNE_PR8.json");
    let text = std::fs::read_to_string(path).expect("committed TUNE_PR8.json");
    parse_tune_json(&text).expect("committed artefact parses")
}

#[test]
fn committed_artifact_meets_the_regret_bound() {
    let file = committed_artifact();
    assert_eq!(file.budgets(), vec![3, 6, 12], "accuracy curve covers K = 3, 6, 12");
    // Nine kernels × three mini-grid topologies per budget.
    for budget in [3, 6, 12] {
        assert_eq!(file.rows.iter().filter(|r| r.budget == budget).count(), 27);
    }
    let kernels: std::collections::BTreeSet<&str> =
        file.rows.iter().map(|r| r.kernel.as_str()).collect();
    assert_eq!(kernels.len(), 9, "all nine paper kernels evaluated");

    // The headline acceptance bound: mean regret ≤ 5 % at K = 6.
    let mean6 = file.mean_regret_pct(6).expect("K=6 rows present");
    assert!(mean6 <= 5.0, "mean regret at K=6 is {mean6:.3}% (bound 5%)");
    // The curve is monotone: more probes never raise the mean regret.
    let mean3 = file.mean_regret_pct(3).unwrap();
    let mean12 = file.mean_regret_pct(12).unwrap();
    assert!(mean12 <= mean6 && mean6 <= mean3, "{mean3:.2} / {mean6:.2} / {mean12:.2}");
    // K = 12 probes most of every 13–14-candidate grid: regret is zero.
    assert!(mean12 < 1e-9, "K=12 regret must be zero, got {mean12:.4}%");

    for r in &file.rows {
        // The oracle is the grid minimum; nothing beats it.
        assert!(r.chosen_cycles >= r.oracle_cycles, "{}/{}", r.kernel, r.topo);
        assert!(r.eq1_cycles >= r.oracle_cycles, "{}/{}", r.kernel, r.topo);
        // Traffic accounting covers the whole grid exactly.
        assert_eq!(
            r.probes_simulated + r.probes_cached + r.gt_simulated + r.gt_cached,
            r.candidates as u64
        );
        assert_eq!(r.unprobed, r.candidates - r.probes);
    }
}

#[test]
fn tuned_choice_is_pinned_on_the_small_grid() {
    // Kernels are seeded and the simulator is deterministic, so the
    // whole pipeline — probe schedule, counter fit, grid prediction,
    // winner — resolves to exactly one lws per (kernel, budget). These
    // pins are the values in the committed artefact; a model or
    // schedule change that moves them must regenerate TUNE_PR8.json.
    let config: DeviceConfig = "1c2w4t".parse().unwrap();
    let factories = kernel_factories(Scale::Sweep);
    let expected = [("vecadd", [(6usize, 64u32), (12, 128)]), ("relu", [(6, 64), (12, 256)])];
    for (kernel, pins) in expected {
        let factory = factories.iter().find(|f| f.name == kernel).unwrap();
        let rows = evaluate_tune(factory, &config, &[6, 12], None).unwrap();
        for (budget, lws) in pins {
            let row = rows.iter().find(|r| r.budget == budget).unwrap();
            assert_eq!(
                (row.budget, row.chosen_lws),
                (budget, lws),
                "{kernel} K={budget} chose lws={}",
                row.chosen_lws
            );
            // And the committed artefact carries the same cell.
            let committed = committed_artifact();
            let cell = committed
                .rows
                .iter()
                .find(|r| r.kernel == kernel && r.topo == "1c2w4t" && r.budget == budget)
                .expect("cell present in committed artefact");
            assert_eq!(cell.chosen_lws, lws);
            assert_eq!(cell.chosen_cycles, row.chosen_cycles);
            assert_eq!(cell.oracle_cycles, row.oracle_cycles);
        }
    }
}

#[test]
fn live_regret_stays_bounded_on_fast_kernels() {
    // A live (no-store) re-derivation of the regret bound on the two
    // fastest kernels: the K=6 tuner stays within 6 % of the oracle on
    // this small grid (the committed 27-cell mean is the tighter 5 %
    // gate; per-cell values run a little above or below it).
    let config: DeviceConfig = "1c2w4t".parse().unwrap();
    let factories = kernel_factories(Scale::Sweep);
    let mut regrets = Vec::new();
    for kernel in ["vecadd", "relu"] {
        let factory = factories.iter().find(|f| f.name == kernel).unwrap();
        let rows = evaluate_tune(factory, &config, &[6], None).unwrap();
        regrets.push(rows[0].regret_pct());
    }
    let mean = regrets.iter().sum::<f64>() / regrets.len() as f64;
    assert!(mean <= 6.0, "live mean regret {mean:.3}% exceeds 6%");
}
