//! Criterion micro-benchmarks of the simulator substrate itself:
//! wall-clock cost per simulated kernel run, across device topologies and
//! mapping policies. These guard the event-driven scheduler's performance
//! (the property that makes the 450-configuration campaign tractable).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vortex_core::LwsPolicy;
use vortex_kernels::{run_kernel, VecAdd};
use vortex_sim::DeviceConfig;

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecadd_by_topology");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    for topo in ["1c2w4t", "4c4w8t", "16c8w16t", "64c32w32t"] {
        let config: DeviceConfig = topo.parse().expect("valid topology");
        group.bench_with_input(BenchmarkId::from_parameter(topo), &config, |b, config| {
            b.iter(|| {
                let mut kernel = VecAdd::new(1024);
                run_kernel(&mut kernel, config, LwsPolicy::Auto).expect("runs")
            });
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("vecadd_by_policy");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    let config = DeviceConfig::with_topology(4, 8, 8);
    for (name, policy) in [
        ("lws1", LwsPolicy::Naive1),
        ("lws32", LwsPolicy::Fixed32),
        ("auto", LwsPolicy::Auto),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            b.iter(|| {
                let mut kernel = VecAdd::new(1024);
                run_kernel(&mut kernel, &config, policy).expect("runs")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topologies, bench_policies);
criterion_main!(benches);
