//! Criterion benchmarks over the nine paper kernels (reduced sizes): one
//! simulated run per iteration under the paper's auto-tuned mapping. A
//! regression here means the reproduction pipeline itself got slower.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vortex_core::LwsPolicy;
use vortex_kernels::{
    run_kernel, Gauss, GcnAggr, GcnLayer, Kernel, Knn, Relu, ResnetLayer, Saxpy, Sgemm, VecAdd,
};
use vortex_sim::DeviceConfig;

fn tiny_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::new(512)),
        Box::new(Relu::new(512)),
        Box::new(Saxpy::new(512)),
        Box::new(Sgemm::new(16, 8, 12)),
        Box::new(Gauss::new(16, 16)),
        Box::new(Knn::new(512)),
        Box::new(GcnAggr::new(64, 256, 8)),
        Box::new(GcnLayer::new(64, 256, 8)),
        Box::new(ResnetLayer::new(8, 8, 4, 4)),
    ]
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_kernels_tiny");
    group.measurement_time(Duration::from_secs(3)).sample_size(10);
    let config = DeviceConfig::with_topology(2, 4, 8);
    for mut kernel in tiny_kernels() {
        let name = kernel.name();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| run_kernel(kernel.as_mut(), &config, LwsPolicy::Auto).expect("runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
