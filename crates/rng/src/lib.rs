//! A small, dependency-free, deterministic PRNG.
//!
//! The build environment has no access to crates.io, so this crate stands
//! in for the tiny slice of `rand` the workspace needs: seeded synthetic
//! datasets (`vortex-kernels`) and randomised tests. The generator is
//! **xoshiro256++** seeded through **splitmix64** — fast, well-studied,
//! and stable across platforms, which is what matters here: every dataset
//! and every randomised test derives from a fixed seed and must reproduce
//! bit-identically forever.
//!
//! Not cryptographic. Do not use for anything security-relevant.
//!
//! # Examples
//!
//! ```
//! use vortex_rng::Rng;
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range_f32(-1.0, 1.0);
//! assert!((-1.0..1.0).contains(&a));
//! // Same seed, same stream.
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

#![forbid(unsafe_code)]

/// The splitmix64 step, used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Modulo reduction: the tiny bias is irrelevant for workload
        // generation and tests, and keeps the stream layout simple.
        lo + self.next_u64() % (hi - lo)
    }

    /// A uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform value in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform value in `lo..=hi` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (i64::from(hi) - i64::from(lo)) as u64 + 1;
        (i64::from(lo) + (self.next_u64() % span) as i64) as i32
    }

    /// A uniform `f32` in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // 24 high-quality mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 40) as f32 / (1u32 << 24) as f32;
        lo + (hi - lo) * unit
    }

    /// A uniform `f64` in `lo..hi` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }

    /// A fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose on empty slice");
        &items[self.gen_range_usize(0, items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(1);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(1);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..8)
            .map({
                let mut r = Rng::seed_from_u64(2);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn known_answer_locks_the_stream_layout() {
        // Golden values: changing the algorithm or seeding would silently
        // change every seeded dataset in the workspace — fail loudly here.
        let mut r = Rng::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x5317_5D61_490B_23DF);
        assert_eq!(r.next_u64(), 0x61DA_6F3D_C380_D507);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range_u32(10, 20);
            assert!((10..20).contains(&v));
            let f = r.gen_range_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.gen_range_i32(-5, 5);
            assert!((-5..=5).contains(&i));
            let d = r.gen_range_f64(0.05, 1.0);
            assert!((0.05..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_cover_their_support() {
        let mut r = Rng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range_usize(0, 10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn float_mean_is_roughly_central() {
        let mut r = Rng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| f64::from(r.gen_range_f32(0.0, 1.0))).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_returns_members() {
        let mut r = Rng::seed_from_u64(6);
        let items = [1, 2, 3];
        for _ in 0..100 {
            assert!(items.contains(r.choose(&items)));
        }
    }
}
