//! Record/replay engine validation over real kernels: bit-identity with
//! execute mode (same config, different timing, fusion on/off),
//! record→replay→re-record idempotence, and mismatch rejection.

use vortex_core::{LwsPolicy, Runtime};
use vortex_kernels::{
    record_kernel_prepared, replay_kernel_prepared, replay_kernel_traced, run_kernel_prepared,
    Kernel, Reduce, RunOutcome, Saxpy, VecAdd,
};
use vortex_sim::{DeviceConfig, RecordedTrace, TraceRecorder};

/// The whole observable outcome, as the probe would print it.
fn fingerprint(o: &RunOutcome) -> String {
    format!("{o:?}")
}

fn record(
    kernel: &mut dyn Kernel,
    config: &DeviceConfig,
    policy: LwsPolicy,
) -> (RunOutcome, RecordedTrace) {
    let program = kernel.build().unwrap();
    let mut rt = Runtime::new(*config);
    rt.load_program(&program);
    record_kernel_prepared(kernel, &program, &mut rt, policy).unwrap()
}

fn replay(
    kernel: &mut dyn Kernel,
    config: &DeviceConfig,
    policy: LwsPolicy,
    rec: &RecordedTrace,
) -> RunOutcome {
    let program = kernel.build().unwrap();
    let mut rt = Runtime::new(*config);
    rt.load_program(&program);
    replay_kernel_prepared(kernel, &program, &mut rt, policy, rec).unwrap()
}

#[test]
fn replay_is_bit_identical_to_execute() {
    let config = DeviceConfig::with_topology(2, 2, 4);
    for policy in [LwsPolicy::Naive1, LwsPolicy::Auto] {
        let mut k = Saxpy::new(256);
        let (executed, rec) = record(&mut k, &config, policy);
        assert!(!rec.tainted, "saxpy reads no timing CSRs");
        let replayed = replay(&mut k, &config, policy, &rec);
        assert_eq!(fingerprint(&executed), fingerprint(&replayed), "{policy}");
    }
}

#[test]
fn barrier_kernel_trace_replays_bit_identically() {
    // The reduction's log-depth phase tree is the non-dense regime: tiny
    // shrinking launches, one record per phase.
    let config = DeviceConfig::with_topology(2, 2, 4);
    let mut k = Reduce::new(200);
    let (executed, rec) = record(&mut k, &config, LwsPolicy::Auto);
    assert_eq!(rec.launches.len(), k.phases().len());
    let replayed = replay(&mut k, &config, LwsPolicy::Auto, &rec);
    assert_eq!(fingerprint(&executed), fingerprint(&replayed));
}

#[test]
fn replay_retimes_under_a_different_timing_model() {
    // The engine's purpose: one recording drives many timing configs.
    // Replaying under altered latencies must equal *executing* under
    // those latencies.
    let base = DeviceConfig::with_topology(2, 2, 4);
    let mut slow = base;
    slow.timing.mul = 9;
    slow.timing.fpu = 11;
    slow.timing.branch_bubble = 5;
    slow.mem.l2_latency += 7;

    let mut k = Saxpy::new(256);
    let (_, rec) = record(&mut k, &base, LwsPolicy::Auto);

    let program = k.build().unwrap();
    let mut rt = Runtime::new(slow);
    rt.load_program(&program);
    let executed = run_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto).unwrap();
    let replayed = replay(&mut k, &slow, LwsPolicy::Auto, &rec);
    assert_eq!(fingerprint(&executed), fingerprint(&replayed));
}

#[test]
fn replay_retimes_under_a_different_cache_geometry() {
    // Lane addresses are recorded pre-coalescing, so replay re-coalesces
    // against whatever line size the replaying configuration uses —
    // cache geometry (sizes, ways, line bytes, DRAM shape) is re-timed
    // like the latencies are.
    let base = DeviceConfig::with_topology(2, 2, 4);
    let mut small = base;
    small.mem.l1.size_bytes = 4 * 1024;
    small.mem.l1.ways = 2;
    small.mem.l1.line_bytes = 32;
    small.mem.l2.size_bytes = 64 * 1024;
    small.mem.l2.line_bytes = 32;
    small.mem.dram.latency = 160;
    small.mem.dram.channels = 2;

    for k in [&mut Saxpy::new(256) as &mut dyn Kernel, &mut Reduce::new(200)] {
        let (_, rec) = record(k, &base, LwsPolicy::Auto);
        let program = k.build().unwrap();
        let mut rt = Runtime::new(small);
        rt.load_program(&program);
        let executed = run_kernel_prepared(k, &program, &mut rt, LwsPolicy::Auto).unwrap();
        let replayed = replay(k, &small, LwsPolicy::Auto, &rec);
        assert_eq!(fingerprint(&executed), fingerprint(&replayed));
    }
}

#[test]
fn replay_matches_execute_with_fusion_off() {
    // A trace recorded with fusion ON replays under fusion OFF, and the
    // replay equals *executing* with fusion off (fused-dispatch counters
    // included — the trace carries no fusion state).
    let config = DeviceConfig::with_topology(1, 4, 8);
    let mut k = VecAdd::new(256);
    let (_, rec) = record(&mut k, &config, LwsPolicy::Auto);

    let program = k.build().unwrap();
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    rt.device_mut().set_block_fusion(false);
    let executed = run_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto).unwrap();
    let replayed =
        replay_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto, &rec).unwrap();
    assert_eq!(fingerprint(&executed), fingerprint(&replayed));
}

#[test]
fn rerecording_a_replay_reproduces_the_trace() {
    let config = DeviceConfig::with_topology(2, 2, 4);
    let mut k = Reduce::new(100);
    let (_, rec) = record(&mut k, &config, LwsPolicy::Auto);

    let program = k.build().unwrap();
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    let mut rerec = TraceRecorder::new(config.cores, config.warps);
    replay_kernel_traced(&mut k, &program, &mut rt, LwsPolicy::Auto, &rec, Some(&mut rerec))
        .unwrap();
    assert_eq!(rerec.finish(), rec, "record→replay→re-record must be a fixed point");
}

#[test]
fn mismatched_traces_are_rejected() {
    let config = DeviceConfig::with_topology(2, 2, 4);
    let mut k = Saxpy::new(256);
    let (_, rec) = record(&mut k, &config, LwsPolicy::Auto);

    // Different topology: structural rejection before any launch.
    let other = DeviceConfig::with_topology(4, 2, 4);
    let program = k.build().unwrap();
    let mut rt = Runtime::new(other);
    rt.load_program(&program);
    let err = replay_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto, &rec);
    assert!(err.is_err(), "topology mismatch must be rejected");

    // Different phase structure: a saxpy trace holds one launch record,
    // the reduction needs one per tree level.
    let mut wrong = Reduce::new(64);
    let program = wrong.build().unwrap();
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    let err = replay_kernel_prepared(&mut wrong, &program, &mut rt, LwsPolicy::Auto, &rec);
    assert!(err.is_err(), "phase-count mismatch must be rejected");

    // Structurally compatible but empty streams: the first consumed
    // record is missing and the replay faults instead of guessing.
    // (A foreign program with the *same* dynamic event shape replays its
    // recorded control flow cleanly — that class is excluded by trace
    // keying on the program digest, not by the stream check.)
    let empty = RecordedTrace {
        cores: config.cores,
        warps: config.warps,
        tainted: false,
        launches: vec![vortex_sim::LaunchRecord::new(config.cores, config.warps)],
    };
    let mut k = Saxpy::new(256);
    let program = k.build().unwrap();
    let mut rt = Runtime::new(config);
    rt.load_program(&program);
    let err = replay_kernel_prepared(&mut k, &program, &mut rt, LwsPolicy::Auto, &empty);
    assert!(err.is_err(), "exhausted stream must raise ReplayDiverged");
}
