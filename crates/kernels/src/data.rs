//! Seeded synthetic datasets standing in for the paper's external data
//! (Rodinia's hurricane records, the cora citation graph, CIFAR-10
//! activations). Shapes match the originals; contents are deterministic.

use vortex_rng::Rng;

/// Deterministic uniform `f32` values in `[lo, hi)`.
///
/// # Examples
///
/// ```
/// let xs = vortex_kernels::data::uniform_f32(42, 8, -1.0, 1.0);
/// assert_eq!(xs.len(), 8);
/// assert_eq!(xs, vortex_kernels::data::uniform_f32(42, 8, -1.0, 1.0));
/// ```
pub fn uniform_f32(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range_f32(lo, hi)).collect()
}

/// A sparse directed graph in CSR form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// Row offsets, length `nodes + 1`.
    pub row: Vec<u32>,
    /// Column indices (neighbour lists), length `edges`.
    pub col: Vec<u32>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.row.len() - 1
    }

    /// Number of edges.
    pub fn edges(&self) -> usize {
        self.col.len()
    }

    /// The neighbour slice of node `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.col[self.row[v] as usize..self.row[v + 1] as usize]
    }

    /// Maximum out-degree (drives warp-level load imbalance).
    pub fn max_degree(&self) -> usize {
        (0..self.nodes()).map(|v| self.neighbors(v).len()).max().unwrap_or(0)
    }

    /// Validates CSR invariants (monotone rows, in-range columns).
    pub fn validate(&self) -> bool {
        if *self.row.first().unwrap_or(&1) != 0 {
            return false;
        }
        if self.row.windows(2).any(|w| w[0] > w[1]) {
            return false;
        }
        let n = self.nodes() as u32;
        *self.row.last().unwrap() as usize == self.col.len() && self.col.iter().all(|&c| c < n)
    }
}

/// Generates a power-law-ish random graph with `nodes` nodes and roughly
/// `target_edges` edges (cora-like degree skew: most nodes have 1–4
/// neighbours, a few are hubs).
///
/// # Examples
///
/// ```
/// let g = vortex_kernels::data::power_law_graph(7, 2708, 10556);
/// assert_eq!(g.nodes(), 2708);
/// assert!(g.validate());
/// let avg = g.edges() as f64 / g.nodes() as f64;
/// assert!((2.0..8.0).contains(&avg));
/// ```
pub fn power_law_graph(seed: u64, nodes: usize, target_edges: usize) -> CsrGraph {
    let mut rng = Rng::seed_from_u64(seed);
    let base = (target_edges as f64 / nodes as f64).max(1.0);
    let mut degrees = Vec::with_capacity(nodes);
    let mut total = 0usize;
    for _ in 0..nodes {
        // Pareto-like: most nodes near `base`, occasional hubs.
        let u: f64 = rng.gen_range_f64(0.05, 1.0);
        let deg = ((base * 0.6) / u.powf(0.7)).round().clamp(1.0, (nodes - 1) as f64) as usize;
        degrees.push(deg);
        total += deg;
    }
    // Rescale towards the target edge count.
    let scale = target_edges as f64 / total as f64;
    let mut row = Vec::with_capacity(nodes + 1);
    let mut col = Vec::new();
    row.push(0u32);
    for (v, deg) in degrees.iter().enumerate() {
        let d = ((*deg as f64 * scale).round() as usize).max(1);
        for _ in 0..d {
            // Any node but self.
            let mut u = rng.gen_range_usize(0, nodes - 1);
            if u >= v {
                u += 1;
            }
            col.push(u as u32);
        }
        row.push(col.len() as u32);
    }
    CsrGraph { row, col }
}

/// The standard seeds used by the kernel constructors, so every workload
/// is reproducible end to end.
pub mod seeds {
    /// vecadd inputs.
    pub const VECADD: u64 = 0x10;
    /// relu input.
    pub const RELU: u64 = 0x20;
    /// saxpy inputs.
    pub const SAXPY: u64 = 0x30;
    /// sgemm matrices.
    pub const SGEMM: u64 = 0x40;
    /// Gaussian filter image.
    pub const GAUSS: u64 = 0x50;
    /// kNN point records.
    pub const KNN: u64 = 0x60;
    /// GCN graph + features.
    pub const GCN: u64 = 0x70;
    /// ResNet activations + weights.
    pub const RESNET: u64 = 0x80;
    /// Tree-reduction input.
    pub const REDUCE: u64 = 0x90;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let a = uniform_f32(1, 1000, -2.0, 3.0);
        let b = uniform_f32(1, 1000, -2.0, 3.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-2.0..3.0).contains(&x)));
        let c = uniform_f32(2, 1000, -2.0, 3.0);
        assert_ne!(a, c);
    }

    #[test]
    fn graph_matches_requested_shape() {
        let g = power_law_graph(7, 2708, 10556);
        assert_eq!(g.nodes(), 2708);
        assert!(g.validate());
        // Within 25% of the requested edge count.
        let ratio = g.edges() as f64 / 10556.0;
        assert!((0.75..1.25).contains(&ratio), "edge ratio {ratio}");
    }

    #[test]
    fn graph_has_degree_skew() {
        let g = power_law_graph(7, 1000, 4000);
        let avg = g.edges() as f64 / g.nodes() as f64;
        assert!(g.max_degree() as f64 > 3.0 * avg, "power law needs hubs");
    }

    #[test]
    fn graph_is_deterministic() {
        let a = power_law_graph(9, 128, 512);
        let b = power_law_graph(9, 128, 512);
        assert_eq!(a, b);
    }

    #[test]
    fn neighbors_are_self_loop_free() {
        let g = power_law_graph(3, 200, 800);
        for v in 0..g.nodes() {
            assert!(g.neighbors(v).iter().all(|&u| u as usize != v));
        }
    }
}
