//! `gcn_aggr` and `gcn_layer`: graph-convolution aggregation and the full
//! layer (aggregate + dense transform) on a cora-like graph.
//!
//! Aggregation is the paper's irregular, memory-bound workload: each
//! work-item walks a CSR neighbour list whose length varies per lane, so
//! the kernel uses the `vx_vote`/`vx_split` divergent-loop idiom and the
//! warp's cost is set by its *longest* row (load imbalance).

use std::cell::OnceCell;

use vortex_asm::{Assembler, Program};
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds, CsrGraph};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, emit_kernel, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};
use crate::sgemm::{emit_gemm_body, reference_gemm};

/// Emits the CSR feature-aggregation body:
/// `out[v][h] = Σ_{u ∈ N(v)} feat[u][h]`, one work-item per `(v, h)` pair.
///
/// Argument words at `arg_off`: `[row, col, feat, out, hs]`.
fn emit_aggr_body(a: &mut Assembler, ctx: BodyCtx, arg_off: i32, label: &str) {
    use fregs::*;
    use reg::*;
    a.lw(T0, arg_off, ctx.args); // row
    a.lw(T1, arg_off + 4, ctx.args); // col
    a.lw(T2, arg_off + 8, ctx.args); // feat
    a.lw(T4, arg_off + 16, ctx.args); // hs
    a.divu(A0, ctx.item, T4); // v
    a.remu(A1, ctx.item, T4); // h
    a.slli(T5, A0, 2);
    a.add(T5, T0, T5);
    a.lw(A2, 0, T5); // r = row[v] (per lane)
    a.lw(A3, 4, T5); // r_end = row[v+1]
    a.fmv_w_x(FA0, ZERO);
    let agg_loop = a.here(&format!("{label}.agg_loop"));
    let agg_done = a.label(&format!("{label}.agg_done"));
    let agg_skip = a.label(&format!("{label}.agg_skip"));
    a.sltu(T6, A2, A3); // lane still has neighbours?
    a.vx_vote_any(T0, T6);
    a.beqz(T0, agg_done); // uniform exit
    a.vx_split(T6, agg_skip);
    a.slli(T5, A2, 2);
    a.add(T5, T1, T5);
    a.lw(A4, 0, T5); // u = col[r]
    a.mul(T5, A4, T4);
    a.add(T5, T5, A1);
    a.slli(T5, T5, 2);
    a.add(T5, T2, T5);
    a.flw(FT0, 0, T5);
    a.fadd_s(FA0, FA0, FT0);
    a.bind(agg_skip).expect("fresh label");
    a.vx_join();
    a.addi(A2, A2, 1);
    a.j(agg_loop);
    a.bind(agg_done).expect("fresh label");
    a.lw(T3, arg_off + 12, ctx.args); // out
    a.slli(T5, ctx.item, 2);
    a.add(T5, T3, T5);
    a.fsw(FA0, 0, T5);
}

/// Host reference aggregation with the device's accumulation order.
fn reference_aggr(graph: &CsrGraph, feat: &[f32], hs: usize) -> Vec<f32> {
    let n = graph.nodes();
    let mut out = vec![0.0f32; n * hs];
    for v in 0..n {
        for h in 0..hs {
            let mut acc = 0.0f32;
            for &u in graph.neighbors(v) {
                acc += feat[u as usize * hs + h];
            }
            out[v * hs + h] = acc;
        }
    }
    out
}

/// GCN neighbourhood aggregation: `out[v][h] = Σ_{u∈N(v)} feat[u][h]`
/// (`gws = nodes × hs`).
///
/// Arguments: `[row_ptr, col_ptr, feat_ptr, out_ptr, hs]`.
#[derive(Clone, Debug)]
pub struct GcnAggr {
    graph: CsrGraph,
    hs: u32,
    feat: Vec<f32>,
    out: Option<Buffer>,
    /// Host reference output, computed once per kernel instance — the
    /// inputs are fixed, but `verify` runs once per measurement, and a
    /// campaign measures the same instance hundreds of times.
    reference: OnceCell<Vec<f32>>,
}

impl GcnAggr {
    /// Aggregation over a seeded power-law graph.
    pub fn new(nodes: usize, edges: usize, hs: u32) -> Self {
        let graph = data::power_law_graph(seeds::GCN, nodes, edges);
        let feat = data::uniform_f32(seeds::GCN + 1, nodes * hs as usize, -1.0, 1.0);
        GcnAggr { graph, hs, feat, out: None, reference: OnceCell::new() }
    }

    /// The paper's configuration (cora: 2708 nodes, ~10556 edges, hs 16).
    pub fn paper() -> Self {
        GcnAggr::new(2708, 10556, 16)
    }

    /// Reduced size for the 450-configuration sweep.
    pub fn sweep() -> Self {
        GcnAggr::new(512, 2048, 16)
    }

    /// The host reference result (computed once, then cached).
    pub fn reference(&self) -> &[f32] {
        self.reference.get_or_init(|| reference_aggr(&self.graph, &self.feat, self.hs as usize))
    }
}

impl Kernel for GcnAggr {
    fn name(&self) -> &'static str {
        "gcn_aggr"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("gcn_aggr", |a, ctx| emit_aggr_body(a, ctx, 0, "gcn_aggr"))
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("gcn_aggr", self.graph.nodes() as u32 * self.hs)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let row = rt.alloc_u32(&self.graph.row)?;
        let col = rt.alloc_u32(&self.graph.col)?;
        let feat = rt.alloc_f32(&self.feat)?;
        let out = rt.alloc((self.graph.nodes() as u32 * self.hs * 4).max(4))?;
        rt.set_args(&[row.addr, col.addr, feat.addr, out.addr, self.hs]);
        self.out = Some(out);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("gcn_aggr", self.reference(), &rt.read_f32(out))
    }
}

/// A full GCN layer: aggregation followed by the dense transform
/// `out = agg × W` — two device launches sharing one program.
///
/// Arguments: aggregation words 0–4 (as [`GcnAggr`]), GEMM words 5–9
/// (`[agg, w, out, hs, hs]`).
#[derive(Clone, Debug)]
pub struct GcnLayer {
    graph: CsrGraph,
    hs: u32,
    feat: Vec<f32>,
    weights: Vec<f32>,
    agg: Option<Buffer>,
    out: Option<Buffer>,
    /// Cached host references (see [`GcnAggr::reference`]); the layer
    /// verifies both phases, so uncached it would recompute the
    /// aggregation twice per measurement.
    ref_agg: OnceCell<Vec<f32>>,
    ref_out: OnceCell<Vec<f32>>,
}

impl GcnLayer {
    /// A layer over a seeded power-law graph (square weight matrix).
    pub fn new(nodes: usize, edges: usize, hs: u32) -> Self {
        let graph = data::power_law_graph(seeds::GCN, nodes, edges);
        let feat = data::uniform_f32(seeds::GCN + 1, nodes * hs as usize, -1.0, 1.0);
        let weights = data::uniform_f32(seeds::GCN + 2, (hs * hs) as usize, -0.5, 0.5);
        GcnLayer {
            graph,
            hs,
            feat,
            weights,
            agg: None,
            out: None,
            ref_agg: OnceCell::new(),
            ref_out: OnceCell::new(),
        }
    }

    /// The paper's configuration (cora, hs 16).
    pub fn paper() -> Self {
        GcnLayer::new(2708, 10556, 16)
    }

    /// Reduced size for the 450-configuration sweep.
    pub fn sweep() -> Self {
        GcnLayer::new(512, 2048, 16)
    }

    fn reference_agg(&self) -> &[f32] {
        self.ref_agg.get_or_init(|| reference_aggr(&self.graph, &self.feat, self.hs as usize))
    }

    /// The host reference layer output (computed once, then cached).
    pub fn reference(&self) -> &[f32] {
        self.ref_out.get_or_init(|| {
            let hs = self.hs as usize;
            reference_gemm(self.reference_agg(), &self.weights, self.graph.nodes(), hs, hs)
        })
    }
}

impl Kernel for GcnLayer {
    fn name(&self) -> &'static str {
        "gcn_layer"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        let mut asm = Assembler::new(vortex_core::abi::CODE_BASE);
        emit_kernel(&mut asm, "gcn_layer_aggr", |a, ctx| {
            emit_aggr_body(a, ctx, 0, "gcn_layer_aggr");
        })?;
        emit_kernel(&mut asm, "gcn_layer_dense", |a, ctx| {
            emit_gemm_body(a, ctx, 20, "gcn_layer_dense");
        })?;
        asm.assemble()
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        let gws = self.graph.nodes() as u32 * self.hs;
        vec![PhaseSpec::new("gcn_layer_aggr", gws), PhaseSpec::new("gcn_layer_dense", gws)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let row = rt.alloc_u32(&self.graph.row)?;
        let col = rt.alloc_u32(&self.graph.col)?;
        let feat = rt.alloc_f32(&self.feat)?;
        let n_out = self.graph.nodes() as u32 * self.hs;
        let agg = rt.alloc((n_out * 4).max(4))?;
        let w = rt.alloc_f32(&self.weights)?;
        let out = rt.alloc((n_out * 4).max(4))?;
        rt.set_args(&[
            // aggregation phase
            row.addr, col.addr, feat.addr, agg.addr, self.hs,
            // dense phase (gemm: A=agg, B=w, C=out, N=hs, K=hs)
            agg.addr, w.addr, out.addr, self.hs, self.hs,
        ]);
        self.agg = Some(agg);
        self.out = Some(out);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let agg = self.agg.expect("setup ran before verify");
        check_f32("gcn_layer", self.reference_agg(), &rt.read_f32(agg))?;
        let out = self.out.expect("setup ran before verify");
        check_f32("gcn_layer", self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn aggregation_handles_irregular_degrees() {
        let mut k = GcnAggr::new(64, 256, 4);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 8), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn aggregation_policies_agree() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = GcnAggr::new(32, 128, 4);
            run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 4), policy)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn full_layer_runs_two_phases() {
        let mut k = GcnLayer::new(32, 128, 4);
        let outcome =
            run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 4), LwsPolicy::Auto).unwrap();
        assert_eq!(outcome.reports.len(), 2, "aggregation + dense");
    }

    #[test]
    fn isolated_node_aggregates_to_zero() {
        // A graph where some nodes may have min degree 1; build a tiny
        // hand graph with an isolated node instead.
        let graph = CsrGraph { row: vec![0, 0, 2, 3], col: vec![0, 2, 1] };
        assert!(graph.validate());
        let feat = vec![1.0, 2.0, 3.0]; // hs = 1
        let out = reference_aggr(&graph, &feat, 1);
        assert_eq!(out, vec![0.0, 1.0 + 3.0, 2.0]);
    }
}
