//! `gauss`: 3×3 Gaussian blur over a 2-D image (memory bound in Fig. 2).

use vortex_asm::Program;
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// The 3×3 Gaussian weights (σ ≈ 0.85), row-major.
const WEIGHTS: [f32; 9] = [
    0.0625, 0.125, 0.0625, //
    0.125, 0.25, 0.125, //
    0.0625, 0.125, 0.0625,
];

/// `out[y][x] = Σ_{ky,kx} in_pad[y+ky][x+kx] · w[ky][kx]` over a `w×h`
/// image. The input is zero-padded on the host to `(w+2)×(h+2)` so the
/// device loop is divergence-free (one work-item per output pixel).
///
/// Arguments: `[in_pad_ptr, out_ptr, w_ptr, width]`.
#[derive(Clone, Debug)]
pub struct Gauss {
    width: u32,
    height: u32,
    image: Vec<f32>,
    out: Option<Buffer>,
}

impl Gauss {
    /// A blur over a seeded `width×height` image.
    pub fn new(width: u32, height: u32) -> Self {
        Gauss {
            width,
            height,
            image: data::uniform_f32(seeds::GAUSS, (width * height) as usize, 0.0, 1.0),
            out: None,
        }
    }

    /// The paper's size (`x:360 y:360`).
    pub fn paper() -> Self {
        Gauss::new(360, 360)
    }

    /// Reduced size for the 450-configuration sweep.
    pub fn sweep() -> Self {
        Gauss::new(64, 64)
    }

    /// Zero-padded input image, `(width+2)×(height+2)`.
    fn padded(&self) -> Vec<f32> {
        let (w, h) = (self.width as usize, self.height as usize);
        let wp = w + 2;
        let mut pad = vec![0.0f32; wp * (h + 2)];
        for y in 0..h {
            let src = &self.image[y * w..(y + 1) * w];
            pad[(y + 1) * wp + 1..(y + 1) * wp + 1 + w].copy_from_slice(src);
        }
        pad
    }

    /// The host reference result (same FMA order as the device).
    pub fn reference(&self) -> Vec<f32> {
        let (w, h) = (self.width as usize, self.height as usize);
        let wp = w + 2;
        let pad = self.padded();
        let mut out = vec![0.0f32; w * h];
        for y in 0..h {
            for x in 0..w {
                let mut acc = 0.0f32;
                for ky in 0..3 {
                    for kx in 0..3 {
                        acc = pad[(y + ky) * wp + x + kx].mul_add(WEIGHTS[ky * 3 + kx], acc);
                    }
                }
                out[y * w + x] = acc;
            }
        }
        out
    }
}

impl Kernel for Gauss {
    fn name(&self) -> &'static str {
        "gauss"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("gauss", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            a.lw(T0, 0, ctx.args); // padded input
            a.lw(T1, 4, ctx.args); // out
            a.lw(T2, 8, ctx.args); // weights
            a.lw(T3, 12, ctx.args); // width
            a.divu(A0, ctx.item, T3); // y
            a.remu(A1, ctx.item, T3); // x
            a.addi(T4, T3, 2); // wp = width + 2
                               // row pointer = in + (y*wp + x)*4
            a.mul(T5, A0, T4);
            a.add(T5, T5, A1);
            a.slli(T5, T5, 2);
            a.add(T0, T0, T5);
            a.slli(T6, T4, 2); // row stride in bytes
            a.fmv_w_x(FA0, ZERO);
            for ky in 0..3 {
                for kx in 0..3i32 {
                    a.flw(FT0, kx * 4, T0);
                    a.flw(FT1, (ky * 3 + kx) * 4, T2);
                    a.fmadd_s(FA0, FT0, FT1, FA0);
                }
                if ky < 2 {
                    a.add(T0, T0, T6); // next padded row
                }
            }
            a.slli(T5, ctx.item, 2);
            a.add(T1, T1, T5);
            a.fsw(FA0, 0, T1);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("gauss", self.width * self.height)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let pad = rt.alloc_f32(&self.padded())?;
        let out = rt.alloc((self.width * self.height * 4).max(4))?;
        let weights = rt.alloc_f32(&WEIGHTS)?;
        rt.set_args(&[pad.addr, out.addr, weights.addr, self.width]);
        self.out = Some(out);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("gauss", &self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn blur_preserves_mass_roughly() {
        // Gaussian weights sum to 1, so away from borders the blurred
        // image mean is close to the input mean.
        let k = Gauss::new(16, 16);
        let reference = k.reference();
        let in_mean: f32 = k.image.iter().sum::<f32>() / k.image.len() as f32;
        let out_mean: f32 = reference.iter().sum::<f32>() / reference.len() as f32;
        assert!((in_mean - out_mean).abs() < 0.15, "in {in_mean} out {out_mean}");
    }

    #[test]
    fn device_matches_reference() {
        let mut k = Gauss::new(12, 9);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 4), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn policies_agree() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = Gauss::new(8, 8);
            run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 2), policy)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }
}
