//! `relu`: the rectified linear unit, the paper's simplest DNN layer.

use vortex_asm::Program;
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// `out[g] = max(in[g], 0)` over `n` elements.
///
/// Arguments: `[in_ptr, out_ptr]`.
#[derive(Clone, Debug)]
pub struct Relu {
    n: u32,
    input: Vec<f32>,
    out: Option<Buffer>,
}

impl Relu {
    /// A relu over `n` elements with seeded inputs (half negative).
    pub fn new(n: u32) -> Self {
        Relu { n, input: data::uniform_f32(seeds::RELU, n as usize, -1.0, 1.0), out: None }
    }

    /// The paper's size (len 4096).
    pub fn paper() -> Self {
        Relu::new(4096)
    }

    /// The host reference result.
    pub fn reference(&self) -> Vec<f32> {
        self.input.iter().map(|&x| x.max(0.0)).collect()
    }
}

impl Kernel for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("relu", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            a.lw(T0, 0, ctx.args); // in
            a.lw(T1, 4, ctx.args); // out
            a.slli(T2, ctx.item, 2);
            a.add(T0, T0, T2);
            a.flw(FT0, 0, T0);
            a.fmv_w_x(FT1, ZERO); // 0.0f
            a.fmax_s(FT2, FT0, FT1);
            a.add(T1, T1, T2);
            a.fsw(FT2, 0, T1);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("relu", self.n)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let input = rt.alloc_f32(&self.input)?;
        let out = rt.alloc((self.n * 4).max(4))?;
        rt.set_args(&[input.addr, out.addr]);
        self.out = Some(out);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("relu", &self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn zeroes_negatives_keeps_positives() {
        let mut k = Relu::new(64);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 2), LwsPolicy::Auto).unwrap();
        let reference = k.reference();
        assert!(reference.contains(&0.0), "test data has negatives");
        assert!(reference.iter().any(|&x| x > 0.0), "test data has positives");
    }

    #[test]
    fn correct_across_policies() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = Relu::new(96);
            run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 4), policy)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }
}
