//! `knn`: nearest-neighbour distance computation (Rodinia `nn`-style,
//! memory bound in Fig. 2).

use vortex_asm::Program;
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// `dist[g] = √((lat[g]-qlat)² + (lng[g]-qlng)²)` over `n` records; the
/// host scans the distances for the minimum, as Rodinia's `nn` does.
///
/// Arguments: `[lat_ptr, lng_ptr, out_ptr, qlat_bits, qlng_bits]`.
#[derive(Clone, Debug)]
pub struct Knn {
    n: u32,
    lat: Vec<f32>,
    lng: Vec<f32>,
    query: (f32, f32),
    out: Option<Buffer>,
}

impl Knn {
    /// A search over `n` seeded records (hurricane-track-like lat/long).
    pub fn new(n: u32) -> Self {
        Knn {
            n,
            lat: data::uniform_f32(seeds::KNN, n as usize, 7.0, 65.0),
            lng: data::uniform_f32(seeds::KNN + 1, n as usize, -110.0, 10.0),
            query: (30.0, -60.0),
            out: None,
        }
    }

    /// The paper's size (42 764 points).
    pub fn paper() -> Self {
        Knn::new(42_764)
    }

    /// Reduced size for the 450-configuration sweep.
    pub fn sweep() -> Self {
        Knn::new(8_192)
    }

    /// The host reference distances.
    pub fn reference(&self) -> Vec<f32> {
        let (qlat, qlng) = self.query;
        self.lat
            .iter()
            .zip(&self.lng)
            .map(|(&la, &lo)| {
                let dla = la - qlat;
                let dlo = lo - qlng;
                (dlo.mul_add(dlo, dla * dla)).sqrt()
            })
            .collect()
    }

    /// Index of the nearest record according to the reference.
    pub fn reference_nearest(&self) -> usize {
        let d = self.reference();
        d.iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty inputs")
    }
}

impl Kernel for Knn {
    fn name(&self) -> &'static str {
        "knn"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("knn", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            a.lw(T0, 0, ctx.args); // lat
            a.lw(T1, 4, ctx.args); // lng
            a.lw(T2, 8, ctx.args); // out
            a.lw(T3, 12, ctx.args); // qlat bits
            a.fmv_w_x(FA1, T3);
            a.lw(T4, 16, ctx.args); // qlng bits
            a.fmv_w_x(FA2, T4);
            a.slli(T5, ctx.item, 2);
            a.add(T0, T0, T5);
            a.flw(FT0, 0, T0);
            a.add(T1, T1, T5);
            a.flw(FT1, 0, T1);
            a.fsub_s(FT0, FT0, FA1); // dla
            a.fsub_s(FT1, FT1, FA2); // dlo
            a.fmul_s(FT2, FT0, FT0); // dla^2
            a.fmadd_s(FT2, FT1, FT1, FT2); // + dlo^2
            a.fsqrt_s(FT3, FT2);
            a.add(T2, T2, T5);
            a.fsw(FT3, 0, T2);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("knn", self.n)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let lat = rt.alloc_f32(&self.lat)?;
        let lng = rt.alloc_f32(&self.lng)?;
        let out = rt.alloc((self.n * 4).max(4))?;
        rt.set_args(&[
            lat.addr,
            lng.addr,
            out.addr,
            self.query.0.to_bits(),
            self.query.1.to_bits(),
        ]);
        self.out = Some(out);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        let actual = rt.read_f32(out);
        check_f32("knn", &self.reference(), &actual)?;
        // The end-to-end answer (nearest index) must agree as well.
        let device_nearest = actual
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty output");
        if device_nearest != self.reference_nearest() {
            return Err(VerifyError::MismatchU32 {
                kernel: "knn",
                index: device_nearest,
                expected: self.reference_nearest() as u32,
                actual: device_nearest as u32,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn distances_and_winner_match() {
        let mut k = Knn::new(500);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 4, 8), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn policies_agree() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = Knn::new(100);
            run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 2), policy)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }
}
