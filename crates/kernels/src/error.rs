//! Kernel execution and verification failure modes.

use std::error::Error;
use std::fmt;

use vortex_asm::AsmError;
use vortex_core::LaunchError;

/// A device result disagreed with the host reference implementation.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyError {
    /// An element-wise mismatch.
    Mismatch {
        /// Kernel name.
        kernel: &'static str,
        /// Buffer element index.
        index: usize,
        /// Host reference value.
        expected: f32,
        /// Device value.
        actual: f32,
    },
    /// An integer result mismatch.
    MismatchU32 {
        /// Kernel name.
        kernel: &'static str,
        /// Buffer element index.
        index: usize,
        /// Host reference value.
        expected: u32,
        /// Device value.
        actual: u32,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Mismatch { kernel, index, expected, actual } => {
                write!(f, "{kernel}: element {index} expected {expected}, device produced {actual}")
            }
            VerifyError::MismatchU32 { kernel, index, expected, actual } => {
                write!(f, "{kernel}: element {index} expected {expected}, device produced {actual}")
            }
        }
    }
}

impl Error for VerifyError {}

/// Compares two `f32` slices with a mixed absolute/relative tolerance.
///
/// # Errors
///
/// Returns the first mismatching element.
pub(crate) fn check_f32(
    kernel: &'static str,
    expected: &[f32],
    actual: &[f32],
) -> Result<(), VerifyError> {
    assert_eq!(expected.len(), actual.len(), "length mismatch in {kernel} verification");
    for (index, (&e, &a)) in expected.iter().zip(actual).enumerate() {
        let tol = 1e-5f32.max(e.abs() * 1e-5);
        if (e - a).abs() > tol && !(e.is_nan() && a.is_nan()) {
            return Err(VerifyError::Mismatch { kernel, index, expected: e, actual: a });
        }
    }
    Ok(())
}

/// Any failure while building, launching or verifying a kernel.
#[derive(Debug)]
pub enum KernelError {
    /// The kernel program failed to assemble.
    Asm(AsmError),
    /// The launch failed on the device.
    Launch(LaunchError),
    /// Device results are wrong.
    Verify(VerifyError),
    /// A phase referenced a symbol the program does not define.
    MissingSymbol {
        /// The missing symbol.
        symbol: String,
    },
    /// A recorded trace does not fit the run asked to replay it
    /// (different topology or launch-phase count).
    TraceMismatch {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Asm(e) => write!(f, "assembly failed: {e}"),
            KernelError::Launch(e) => write!(f, "launch failed: {e}"),
            KernelError::Verify(e) => write!(f, "verification failed: {e}"),
            KernelError::MissingSymbol { symbol } => {
                write!(f, "program defines no `{symbol}` symbol")
            }
            KernelError::TraceMismatch { reason } => {
                write!(f, "recorded trace does not fit this run: {reason}")
            }
        }
    }
}

impl Error for KernelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KernelError::Asm(e) => Some(e),
            KernelError::Launch(e) => Some(e),
            KernelError::Verify(e) => Some(e),
            KernelError::MissingSymbol { .. } | KernelError::TraceMismatch { .. } => None,
        }
    }
}

impl From<AsmError> for KernelError {
    fn from(e: AsmError) -> Self {
        KernelError::Asm(e)
    }
}

impl From<LaunchError> for KernelError {
    fn from(e: LaunchError) -> Self {
        KernelError::Launch(e)
    }
}

impl From<VerifyError> for KernelError {
    fn from(e: VerifyError) -> Self {
        KernelError::Verify(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_f32_accepts_close_values() {
        assert!(check_f32("t", &[1.0, 2.0], &[1.0, 2.000_001]).is_ok());
    }

    #[test]
    fn check_f32_rejects_distant_values() {
        let err = check_f32("t", &[1.0, 2.0], &[1.0, 2.1]).unwrap_err();
        match err {
            VerifyError::Mismatch { index, .. } => assert_eq!(index, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nan_matches_nan() {
        assert!(check_f32("t", &[f32::NAN], &[f32::NAN]).is_ok());
    }
}
