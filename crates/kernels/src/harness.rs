//! The POCL-style kernel dispatch harness.
//!
//! Every kernel in this crate is wrapped in the same software structure the
//! Vortex runtime generates, and whose cost profile the paper analyses:
//!
//! ```text
//! entry:  warp 0 reads its core's dispatch block
//! round:  nw = min(⌈remaining/threads⌉, NUM_WARPS)
//!         publish round cursor + nw, vx_wspawn the workers
//! worker: every warp computes its per-lane task id,
//!         masks off out-of-range lanes (vx_split),
//!         loops the kernel body `lws` times per task,
//!         then meets at a vx_bar
//! sync:   workers halt; warp 0 advances the cursor and loops
//! ```
//!
//! With `lws = gws/hp` the round loop runs exactly once and every slot is
//! busy; with `lws = 1` it re-runs `⌈tasks/(warps×threads)⌉` times, paying
//! the dispatch cost again and again; with oversized `lws` the single round
//! leaves lanes idle — the three regimes of the paper's §2.

use vortex_asm::{AsmError, Assembler, Program};
use vortex_core::abi;
use vortex_isa::{csrs, reg, Reg};

/// Registers the harness hands to a kernel body.
///
/// The body may freely use `t0..t6`, `a0..a4`, and every FP register. It
/// must preserve [`BodyCtx::item`], [`BodyCtx::args`], `a7` and all `s`
/// registers.
#[derive(Copy, Clone, Debug)]
pub struct BodyCtx {
    /// Holds the current global item index `g` (read-only for the body).
    pub item: Reg,
    /// Holds the argument-block pointer (read-only for the body).
    pub args: Reg,
}

/// Scratch registers a body may clobber.
pub const BODY_SCRATCH: [Reg; 12] = [
    reg::T0,
    reg::T1,
    reg::T2,
    reg::T3,
    reg::T4,
    reg::T5,
    reg::T6,
    reg::A0,
    reg::A1,
    reg::A2,
    reg::A3,
    reg::A4,
];

/// Emits one complete kernel (dispatch loop + body) into `asm`, binding
/// its entry to a symbol named `name`. Returns nothing; the caller looks
/// the symbol up on the assembled [`Program`].
///
/// The `body` closure is invoked exactly once to emit the per-item code;
/// at run time the harness executes it once per work-item.
pub fn emit_kernel(
    asm: &mut Assembler,
    name: &str,
    mut body: impl FnMut(&mut Assembler, BodyCtx),
) -> Result<(), AsmError> {
    use reg::*;

    let entry = asm.label(name);
    asm.bind(entry)?;
    asm.section(&format!("{name}.dispatch"));

    let round_loop = asm.label(&format!("{name}.round"));
    let done = asm.label(&format!("{name}.done"));
    let worker = asm.label(&format!("{name}.worker"));
    let nw_ok = asm.label(&format!("{name}.nw_ok"));
    let skip_spawn = asm.label(&format!("{name}.skip_spawn"));

    // ---- warp 0: load dispatch context -------------------------------
    asm.csrr(S0, csrs::CORE_ID);
    asm.slli(S1, S0, 5); // dispatch stride is 32 bytes
    asm.li_u32(T0, abi::DISPATCH_BASE);
    asm.add(S1, S1, T0);
    asm.lw(S2, abi::dispatch::TASK_BASE as i32, S1); // cursor
    asm.lw(S3, abi::dispatch::TASK_END as i32, S1);
    asm.csrr(S4, csrs::NUM_THREADS);
    asm.csrr(S5, csrs::NUM_WARPS);

    // ---- round loop (warp 0 only) -------------------------------------
    asm.bind(round_loop)?;
    asm.bgeu(S2, S3, done); // no tasks left
    asm.sub(T0, S3, S2); // remaining
    asm.add(T1, T0, S4);
    asm.addi(T1, T1, -1);
    asm.divu(T1, T1, S4); // ceil(remaining / threads)
    asm.bleu(T1, S5, nw_ok);
    asm.mv(T1, S5);
    asm.bind(nw_ok)?; // T1 = nw
    asm.sw(S2, abi::dispatch::CURSOR as i32, S1);
    asm.sw(T1, abi::dispatch::ROUND_WARPS as i32, S1);
    asm.section(&format!("{name}.spawn"));
    asm.li(T2, 1);
    asm.bleu(T1, T2, skip_spawn);
    asm.la_label(T3, worker);
    asm.vx_wspawn(T1, T3);
    asm.bind(skip_spawn)?;

    // ---- worker: every warp of the round ------------------------------
    asm.section(&format!("{name}.worker"));
    asm.bind(worker)?;
    asm.csrr(S0, csrs::CORE_ID);
    asm.slli(S1, S0, 5);
    asm.li_u32(T0, abi::DISPATCH_BASE);
    asm.add(S1, S1, T0);
    asm.lw(S3, abi::dispatch::TASK_END as i32, S1);
    asm.csrr(S4, csrs::NUM_THREADS);
    asm.lw(T1, abi::dispatch::CURSOR as i32, S1);
    asm.csrr(A0, csrs::WARP_ID);
    asm.csrr(A1, csrs::THREAD_ID);
    asm.mul(A2, A0, S4);
    asm.add(A2, A2, A1);
    asm.add(A2, A2, T1); // per-lane task id
    asm.lw(A3, abi::dispatch::LWS as i32, S1);
    asm.lw(A4, abi::dispatch::GWS as i32, S1);
    asm.lw(A5, abi::dispatch::ARG_PTR as i32, S1);

    // Mask off lanes whose task is out of range (divergent guard).
    let outer_join = asm.label(&format!("{name}.outer_join"));
    asm.sltu(T2, A2, S3);
    asm.vx_split(T2, outer_join);

    // g = task * lws ; g_end = min(g + lws, gws), branch-free.
    asm.mul(A6, A2, A3);
    asm.add(A7, A6, A3);
    asm.sltu(T3, A4, A7);
    asm.sub(T4, A4, A7);
    asm.mul(T4, T4, T3);
    asm.add(A7, A7, T4);

    // ---- per-item loop -------------------------------------------------
    //
    // POCL-style specialisation: when every lane has a full `lws`-long
    // trip (the uniform-workgroup case), run a bare counter loop; only
    // boundary warps (a clipped last task) take the guarded SIMT loop.
    asm.section(&format!("{name}.body"));
    let guarded = asm.label(&format!("{name}.guarded_loop"));
    let item_exit = asm.label(&format!("{name}.item_exit"));
    asm.add(T5, A6, A3);
    asm.xor(T5, T5, A7);
    asm.seqz(T5, T5); // 1 iff g_end == g + lws (full trip)
    asm.vx_vote_all(T6, T5);
    asm.beqz(T6, guarded);
    // Fast path: uniform trip count, scalar loop.
    let fast_loop = asm.here(&format!("{name}.fast_loop"));
    body(asm, BodyCtx { item: A6, args: A5 });
    asm.addi(A6, A6, 1);
    asm.bne(A6, A7, fast_loop);
    asm.j(item_exit);
    // Guarded path: per-item divergence guard (clipped trips).
    asm.bind(guarded)?;
    let item_loop = asm.here(&format!("{name}.item_loop"));
    let iter_join = asm.label(&format!("{name}.iter_join"));
    asm.sltu(T2, A6, A7);
    asm.vx_vote_any(T3, T2);
    asm.beqz(T3, item_exit);
    asm.vx_split(T2, iter_join);
    body(asm, BodyCtx { item: A6, args: A5 });
    asm.bind(iter_join)?;
    asm.vx_join();
    asm.addi(A6, A6, 1);
    asm.j(item_loop);
    asm.bind(item_exit)?;
    asm.bind(outer_join)?;
    asm.vx_join();

    // ---- round barrier and role split ----------------------------------
    asm.section(&format!("{name}.sync"));
    asm.lw(T0, abi::dispatch::ROUND_WARPS as i32, S1);
    asm.li(T1, 0); // barrier id
    asm.vx_bar(T1, T0);
    let warp0_cont = asm.label(&format!("{name}.warp0_cont"));
    asm.csrr(T2, csrs::WARP_ID);
    asm.beqz(T2, warp0_cont);
    asm.vx_tmc(ZERO); // workers halt
    asm.bind(warp0_cont)?;
    // warp 0: cursor += nw * threads, next round.
    asm.lw(T3, abi::dispatch::ROUND_WARPS as i32, S1);
    asm.mul(T3, T3, S4);
    asm.add(S2, S2, T3);
    asm.j(round_loop);

    asm.bind(done)?;
    asm.section(&format!("{name}.exit"));
    asm.vx_tmc(ZERO);
    Ok(())
}

/// Builds a single-kernel program named `name` at the ABI code base.
///
/// # Errors
///
/// Propagates assembly errors from the harness or the body.
pub fn build_single(
    name: &str,
    body: impl FnMut(&mut Assembler, BodyCtx),
) -> Result<Program, AsmError> {
    let mut asm = Assembler::new(abi::CODE_BASE);
    emit_kernel(&mut asm, name, body)?;
    asm.assemble()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_assembles_and_tags_sections() {
        let program = build_single("noop", |_, _| {}).unwrap();
        assert_eq!(program.entry(), abi::CODE_BASE);
        assert!(program.symbol("noop").is_some());
        assert!(program.symbol("noop.worker").is_some());
        let names: Vec<&str> = program.sections().iter().map(|s| s.name.as_str()).collect();
        for expected in
            ["noop.dispatch", "noop.spawn", "noop.worker", "noop.body", "noop.sync", "noop.exit"]
        {
            assert!(names.contains(&expected), "missing section {expected}");
        }
    }

    #[test]
    fn two_kernels_share_a_program() {
        let mut asm = Assembler::new(abi::CODE_BASE);
        emit_kernel(&mut asm, "first", |_, _| {}).unwrap();
        emit_kernel(&mut asm, "second", |_, _| {}).unwrap();
        let program = asm.assemble().unwrap();
        let first = program.symbol("first").unwrap();
        let second = program.symbol("second").unwrap();
        assert_eq!(first, abi::CODE_BASE);
        assert!(second > first);
    }
}
