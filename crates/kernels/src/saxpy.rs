//! `saxpy`: `y = a·x + y`, the BLAS level-1 staple.

use vortex_asm::Program;
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// `y[g] = a * x[g] + y[g]` (fused multiply-add) over `n` elements.
///
/// Arguments: `[x_ptr, y_ptr, a_bits]`.
#[derive(Clone, Debug)]
pub struct Saxpy {
    n: u32,
    alpha: f32,
    x: Vec<f32>,
    y: Vec<f32>,
    out: Option<Buffer>,
}

impl Saxpy {
    /// A saxpy over `n` elements with seeded inputs.
    pub fn new(n: u32) -> Self {
        Saxpy {
            n,
            alpha: 2.5,
            x: data::uniform_f32(seeds::SAXPY, n as usize, -1.0, 1.0),
            y: data::uniform_f32(seeds::SAXPY + 1, n as usize, -1.0, 1.0),
            out: None,
        }
    }

    /// The paper's size (len 4096).
    pub fn paper() -> Self {
        Saxpy::new(4096)
    }

    /// The host reference result (same FMA the device uses).
    pub fn reference(&self) -> Vec<f32> {
        self.x.iter().zip(&self.y).map(|(&x, &y)| self.alpha.mul_add(x, y)).collect()
    }
}

impl Kernel for Saxpy {
    fn name(&self) -> &'static str {
        "saxpy"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("saxpy", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            a.lw(T0, 0, ctx.args); // x
            a.lw(T1, 4, ctx.args); // y
            a.lw(T2, 8, ctx.args); // alpha bits
            a.fmv_w_x(FA0, T2);
            a.slli(T3, ctx.item, 2);
            a.add(T0, T0, T3);
            a.flw(FT0, 0, T0);
            a.add(T1, T1, T3);
            a.flw(FT1, 0, T1);
            a.fmadd_s(FT2, FA0, FT0, FT1);
            a.fsw(FT2, 0, T1);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("saxpy", self.n)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let x = rt.alloc_f32(&self.x)?;
        let y = rt.alloc_f32(&self.y)?;
        rt.set_args(&[x.addr, y.addr, self.alpha.to_bits()]);
        self.out = Some(y);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("saxpy", &self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn in_place_update_is_exact() {
        let mut k = Saxpy::new(128);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 4, 4), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn correct_across_policies_and_sizes() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            for n in [33u32, 256] {
                let mut k = Saxpy::new(n);
                run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 2), policy)
                    .unwrap_or_else(|e| panic!("{policy} n={n}: {e}"));
            }
        }
    }
}
