//! `vecadd`: element-wise vector addition (paper Fig. 1 & Fig. 2).

use vortex_asm::Program;
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// `c[g] = a[g] + b[g]` over `n` single-precision elements.
///
/// Arguments: `[a_ptr, b_ptr, c_ptr]`.
#[derive(Clone, Debug)]
pub struct VecAdd {
    n: u32,
    a: Vec<f32>,
    b: Vec<f32>,
    out: Option<Buffer>,
}

impl VecAdd {
    /// A vecadd over `n` elements with seeded inputs.
    pub fn new(n: u32) -> Self {
        VecAdd {
            n,
            a: data::uniform_f32(seeds::VECADD, n as usize, -1.0, 1.0),
            b: data::uniform_f32(seeds::VECADD + 1, n as usize, -1.0, 1.0),
            out: None,
        }
    }

    /// The paper's size (len 4096).
    pub fn paper() -> Self {
        VecAdd::new(4096)
    }

    /// The host reference result.
    pub fn reference(&self) -> Vec<f32> {
        self.a.iter().zip(&self.b).map(|(x, y)| x + y).collect()
    }
}

impl Kernel for VecAdd {
    fn name(&self) -> &'static str {
        "vecadd"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("vecadd", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            a.lw(T0, 0, ctx.args); // a
            a.lw(T1, 4, ctx.args); // b
            a.lw(T2, 8, ctx.args); // c
            a.slli(T3, ctx.item, 2);
            a.add(T0, T0, T3);
            a.flw(FT0, 0, T0);
            a.add(T1, T1, T3);
            a.flw(FT1, 0, T1);
            a.fadd_s(FT2, FT0, FT1);
            a.add(T2, T2, T3);
            a.fsw(FT2, 0, T2);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("vecadd", self.n)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let a = rt.alloc_f32(&self.a)?;
        let b = rt.alloc_f32(&self.b)?;
        let c = rt.alloc((self.n * 4).max(4))?;
        rt.set_args(&[a.addr, b.addr, c.addr]);
        self.out = Some(c);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("vecadd", &self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn correct_on_every_policy() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = VecAdd::new(128);
            let outcome =
                run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 4), policy).unwrap();
            assert!(outcome.cycles > 0, "{policy}: no cycles measured");
        }
    }

    #[test]
    fn correct_on_varied_topologies() {
        for topo in [(1, 1, 1), (2, 2, 2), (1, 4, 8), (3, 2, 4)] {
            let mut k = VecAdd::new(100); // non-power-of-two size
            let cfg = DeviceConfig::with_topology(topo.0, topo.1, topo.2);
            run_kernel(&mut k, &cfg, LwsPolicy::Auto).unwrap_or_else(|e| panic!("{topo:?}: {e}"));
        }
    }

    #[test]
    fn fig1_configuration_ranks_lws_like_the_paper() {
        // Fig. 1: gws=128 on 1c2w4t. The exact-fit lws=16 must beat both
        // the naive lws=1 and the oversized lws=64 mapping.
        let cfg = DeviceConfig::with_topology(1, 2, 4);
        let mut cycles = std::collections::HashMap::new();
        for lws in [1u32, 16, 32, 64] {
            let mut k = VecAdd::new(128);
            let outcome = run_kernel(&mut k, &cfg, LwsPolicy::Explicit(lws)).unwrap();
            cycles.insert(lws, outcome.cycles);
        }
        assert!(cycles[&16] < cycles[&1], "exact fit beats naive: {cycles:?}");
        assert!(cycles[&16] < cycles[&64], "exact fit beats oversized: {cycles:?}");
    }
}
