//! `reduce`: a log-depth pairwise tree sum, the paper-set's reduction
//! regime (ROADMAP item 3).
//!
//! Each tree level halves the live prefix: level `l` over `len` live
//! elements launches `len - s` work-items (`s = ⌈len/2⌉`), item `i`
//! folding `data[i] += data[i + s]`, and the next level runs over the
//! first `s` elements. Levels are separate kernel launches — the
//! inter-level dependency needs a *global* barrier, which on this device
//! is the launch boundary (in-kernel `vx_bar` only synchronises one
//! core) — so an `n`-element reduction is a ⌈log₂ n⌉-phase kernel whose
//! phases shrink geometrically: the tail launches are far below full
//! occupancy, a dispatch regime (tiny `gws`, many rounds of overhead)
//! none of the dense workloads exercise.

use vortex_asm::{Assembler, Program};
use vortex_core::{abi, Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::emit_kernel;
use crate::kernel::{Kernel, PhaseSpec};

/// The `(live length, stride)` pairs of the tree, root-ward: level `l`
/// folds `data[i] += data[i + s]` for `i < len - s`, then `len = s`.
fn levels(n: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut len = n;
    while len > 1 {
        let s = len.div_ceil(2);
        out.push((len, s));
        len = s;
    }
    out
}

/// Pairwise tree sum `data[0] = Σ data[i]` over `n` elements, one kernel
/// phase per tree level.
///
/// Arguments: `[data_ptr]`.
#[derive(Clone, Debug)]
pub struct Reduce {
    n: u32,
    data: Vec<f32>,
    out: Option<Buffer>,
}

impl Reduce {
    /// A tree reduction over `n` elements (`n ≥ 2`) with seeded inputs.
    pub fn new(n: u32) -> Self {
        assert!(n >= 2, "reduction needs at least two elements");
        Reduce { n, data: data::uniform_f32(seeds::REDUCE, n as usize, -1.0, 1.0), out: None }
    }

    /// The paper-set size (len 4096, 12 tree levels).
    pub fn paper() -> Self {
        Reduce::new(4096)
    }

    /// The host reference: the *same* f32 fold tree the device executes
    /// (element order matters — a linear sum would drift). Returns the
    /// full final array state, partial sums included.
    pub fn reference(&self) -> Vec<f32> {
        let mut v = self.data.clone();
        for (len, s) in levels(self.n) {
            let (len, s) = (len as usize, s as usize);
            for i in 0..len - s {
                v[i] += v[i + s];
            }
        }
        v
    }
}

impl Kernel for Reduce {
    fn name(&self) -> &'static str {
        "reduce"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        // One symbol per tree level: the level's stride is baked in as an
        // immediate, so the per-item body stays straight-line.
        let mut asm = Assembler::new(abi::CODE_BASE);
        for (l, (_, s)) in levels(self.n).into_iter().enumerate() {
            emit_kernel(&mut asm, &format!("reduce_l{l}"), |a, ctx| {
                use fregs::*;
                use reg::*;
                a.lw(T0, 0, ctx.args); // data
                a.slli(T1, ctx.item, 2);
                a.add(T1, T1, T0); // &data[i]
                a.flw(FT0, 0, T1);
                a.li_u32(T2, s * 4);
                a.add(T2, T1, T2); // &data[i + s]
                a.flw(FT1, 0, T2);
                a.fadd_s(FT0, FT0, FT1);
                a.fsw(FT0, 0, T1);
            })?;
        }
        asm.assemble()
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        levels(self.n)
            .into_iter()
            .enumerate()
            .map(|(l, (len, s))| PhaseSpec::new(format!("reduce_l{l}"), len - s))
            .collect()
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let buf = rt.alloc_f32(&self.data)?;
        rt.set_args(&[buf.addr]);
        self.out = Some(buf);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("reduce", &self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn levels_halve_to_one() {
        assert_eq!(levels(2), vec![(2, 1)]);
        assert_eq!(levels(5), vec![(5, 3), (3, 2), (2, 1)]);
        assert_eq!(levels(8), vec![(8, 4), (4, 2), (2, 1)]);
        // Every level launches at least one item and the tree terminates.
        for n in 2..200 {
            for (len, s) in levels(n) {
                assert!(s < len && len - s >= 1, "n={n} level ({len},{s})");
            }
        }
    }

    #[test]
    fn tree_sum_is_exact() {
        let mut k = Reduce::new(256);
        run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 4), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn correct_across_policies_and_odd_sizes() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            for n in [2u32, 33, 100] {
                let mut k = Reduce::new(n);
                run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 2), policy)
                    .unwrap_or_else(|e| panic!("{policy} n={n}: {e}"));
            }
        }
    }
}
