//! `sgemm`: dense single-precision matrix multiply, `C = A × B`.

use vortex_asm::{Assembler, Program};
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// Emits the inner-product body shared by [`Sgemm`] and the dense phase of
/// the GCN layer: one work-item computes one `C[m][n]` with a K-long FMA
/// loop (the loop count is warp-uniform, so a scalar branch is legal).
///
/// Argument-block layout, starting at `arg_off` words into the block:
/// `[a_ptr, b_ptr, c_ptr, n_cols, k_depth]`.
pub(crate) fn emit_gemm_body(a: &mut Assembler, ctx: BodyCtx, arg_off: i32, label: &str) {
    use fregs::*;
    use reg::*;
    a.lw(T0, arg_off, ctx.args); // A
    a.lw(T1, arg_off + 4, ctx.args); // B
    a.lw(T3, arg_off + 12, ctx.args); // N
    a.lw(T4, arg_off + 16, ctx.args); // K
    a.divu(A0, ctx.item, T3); // m
    a.remu(A1, ctx.item, T3); // n
                              // A row pointer: A + m*K*4
    a.mul(T5, A0, T4);
    a.slli(T5, T5, 2);
    a.add(T0, T0, T5);
    // B column pointer: B + n*4 ; stride N*4
    a.slli(T5, A1, 2);
    a.add(T1, T1, T5);
    a.slli(T6, T3, 2); // B row stride in bytes
    a.fmv_w_x(FA0, ZERO); // acc = 0
    a.mv(A2, T4); // k counter (uniform)
    let kloop = a.here(&format!("{label}.kloop"));
    a.flw(FT0, 0, T0);
    a.flw(FT1, 0, T1);
    a.fmadd_s(FA0, FT0, FT1, FA0);
    a.addi(T0, T0, 4);
    a.add(T1, T1, T6);
    a.addi(A2, A2, -1);
    a.bnez(A2, kloop);
    // C[g] = acc (g == m*N + n by construction).
    a.lw(T2, arg_off + 8, ctx.args);
    a.slli(T5, ctx.item, 2);
    a.add(T2, T2, T5);
    a.fsw(FA0, 0, T2);
}

/// Host-side reference GEMM with the same FMA accumulation order.
pub(crate) fn reference_gemm(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc = a[i * k + kk].mul_add(b[kk * n + j], acc);
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// `C[m][n] = Σ_k A[m][k]·B[k][n]`; one work-item per output element
/// (`gws = M × N`).
///
/// Arguments: `[a_ptr, b_ptr, c_ptr, N, K]`.
#[derive(Clone, Debug)]
pub struct Sgemm {
    m: u32,
    n: u32,
    k: u32,
    a: Vec<f32>,
    b: Vec<f32>,
    out: Option<Buffer>,
}

impl Sgemm {
    /// An `M×N×K` GEMM with seeded inputs.
    pub fn new(m: u32, n: u32, k: u32) -> Self {
        Sgemm {
            m,
            n,
            k,
            a: data::uniform_f32(seeds::SGEMM, (m * k) as usize, -1.0, 1.0),
            b: data::uniform_f32(seeds::SGEMM + 1, (k * n) as usize, -1.0, 1.0),
            out: None,
        }
    }

    /// The paper's size: `x:256 y:16 z:144` (M=256, N=16, K=144 — a
    /// ResNet20 layer lowered to GEMM).
    pub fn paper() -> Self {
        Sgemm::new(256, 16, 144)
    }

    /// Reduced size for the 450-configuration sweep.
    pub fn sweep() -> Self {
        Sgemm::new(64, 8, 36)
    }

    /// The host reference result.
    pub fn reference(&self) -> Vec<f32> {
        reference_gemm(&self.a, &self.b, self.m as usize, self.n as usize, self.k as usize)
    }
}

impl Kernel for Sgemm {
    fn name(&self) -> &'static str {
        "sgemm"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("sgemm", |a, ctx| emit_gemm_body(a, ctx, 0, "sgemm"))
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("sgemm", self.m * self.n)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let a = rt.alloc_f32(&self.a)?;
        let b = rt.alloc_f32(&self.b)?;
        let c = rt.alloc((self.m * self.n * 4).max(4))?;
        rt.set_args(&[a.addr, b.addr, c.addr, self.n, self.k]);
        self.out = Some(c);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("sgemm", &self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn small_gemm_is_exact() {
        let mut k = Sgemm::new(8, 4, 6);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 4), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn policies_agree_on_results() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = Sgemm::new(16, 8, 12);
            run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 2), policy)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn reference_matches_naive_matmul() {
        let k = Sgemm::new(3, 2, 4);
        let r = k.reference();
        // Hand-computed check of one element.
        let mut expected = 0.0f32;
        for kk in 0..4 {
            expected = k.a[kk].mul_add(k.b[kk * 2], expected); // C[0][0]
        }
        assert_eq!(r[0], expected);
    }
}
