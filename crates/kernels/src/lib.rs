//! The paper's nine OpenCL workloads (plus a tree-reduction stressing
//! the shrinking-launch regime) as Vortex assembly kernels, with
//! host-side reference implementations and seeded synthetic datasets.
//!
//! Every kernel implements the [`Kernel`] trait:
//!
//! * [`Kernel::build`] assembles the device program through the shared
//!   [`harness`] (the POCL-style dispatch loop of the paper: spawn →
//!   work → barrier → respawn);
//! * [`Kernel::setup`] allocates buffers and writes the argument block;
//! * [`Kernel::verify`] checks device results against a pure-Rust
//!   reference.
//!
//! The workload set matches Figure 2 of the paper:
//!
//! | Kernel | Paper size | Type |
//! |---|---|---|
//! | [`VecAdd`] | len 4096 | compute bound |
//! | [`Relu`] | len 4096 | compute bound |
//! | [`Saxpy`] | len 4096 | compute bound |
//! | [`Sgemm`] | 256×16×144 | compute bound |
//! | [`Gauss`] | 360×360 | memory bound |
//! | [`Knn`] | 42 764 points | memory bound |
//! | [`GcnAggr`] | cora-like, hs 16 | memory bound |
//! | [`GcnLayer`] | cora-like, hs 16 | mixed (2 phases) |
//! | [`ResnetLayer`] | 16 ch, 32×32 | compute bound |
//! | [`Reduce`] | len 4096 | log-depth tree (12 phases) |
//!
//! Datasets the paper takes from Rodinia/cora/CIFAR-10 are substituted by
//! seeded synthetic equivalents of the same shape (see [`data`] and
//! DESIGN.md).
//!
//! # Examples
//!
//! Run vecadd with the paper's auto-tuned mapping and verify the result:
//!
//! ```
//! use vortex_core::LwsPolicy;
//! use vortex_kernels::{run_kernel, Kernel, VecAdd};
//! use vortex_sim::DeviceConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = VecAdd::new(256);
//! let config = DeviceConfig::with_topology(1, 2, 4);
//! let outcome = run_kernel(&mut kernel, &config, LwsPolicy::Auto)?;
//! assert!(outcome.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod data;
mod error;
mod gauss;
mod gcn;
pub mod harness;
mod kernel;
mod knn;
mod reduce;
mod relu;
mod resnet;
mod saxpy;
mod sgemm;
mod vecadd;

pub use error::{KernelError, VerifyError};
pub use gauss::Gauss;
pub use gcn::{GcnAggr, GcnLayer};
pub use kernel::{
    record_kernel_prepared, replay_kernel_prepared, replay_kernel_traced, run_kernel,
    run_kernel_prepared, run_kernel_traced, Kernel, PhaseSpec, RunOutcome,
};
pub use knn::Knn;
pub use reduce::Reduce;
pub use relu::Relu;
pub use resnet::ResnetLayer;
pub use saxpy::Saxpy;
pub use sgemm::Sgemm;
pub use vecadd::VecAdd;

/// All nine paper kernels at **paper scale** (the sizes of Fig. 2).
pub fn paper_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::paper()),
        Box::new(Relu::paper()),
        Box::new(Saxpy::paper()),
        Box::new(Sgemm::paper()),
        Box::new(Gauss::paper()),
        Box::new(Knn::paper()),
        Box::new(GcnAggr::paper()),
        Box::new(GcnLayer::paper()),
        Box::new(ResnetLayer::paper()),
        Box::new(Reduce::paper()),
    ]
}

/// All ten kernels at **sweep scale**: reduced sizes that keep the
/// 450-configuration campaign tractable while preserving each kernel's
/// compute/memory character (documented in EXPERIMENTS.md).
pub fn sweep_kernels() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(VecAdd::paper()), // already small enough
        Box::new(Relu::paper()),
        Box::new(Saxpy::paper()),
        Box::new(Sgemm::sweep()),
        Box::new(Gauss::sweep()),
        Box::new(Knn::sweep()),
        Box::new(GcnAggr::sweep()),
        Box::new(GcnLayer::sweep()),
        Box::new(ResnetLayer::sweep()),
        Box::new(Reduce::paper()), // already small enough
    ]
}
