//! `resnet_layer`: one ResNet20 convolution layer (3×3, same-padding)
//! with fused ReLU, on CIFAR-10-shaped activations.

use std::cell::OnceCell;

use vortex_asm::Program;
use vortex_core::{Buffer, LaunchError, Runtime};
use vortex_isa::{fregs, reg};

use crate::data::{self, seeds};
use crate::error::{check_f32, VerifyError};
use crate::harness::{build_single, BodyCtx};
use crate::kernel::{Kernel, PhaseSpec};

/// One `Cin→Cout` 3×3 convolution (+ ReLU) over a `w×h` feature map.
/// One work-item per output activation (`gws = Cout × h × w`); the input
/// is zero-padded per channel on the host so the 3×3×Cin reduction is
/// divergence-free.
///
/// Arguments: `[in_pad_ptr, w_ptr, out_ptr, width, height, cin]`.
#[derive(Clone, Debug)]
pub struct ResnetLayer {
    width: u32,
    height: u32,
    cin: u32,
    cout: u32,
    input: Vec<f32>,
    weights: Vec<f32>,
    out: Option<Buffer>,
    /// Host reference output, computed once per instance — `verify` runs
    /// once per measurement across hundreds of campaign runs.
    reference: OnceCell<Vec<f32>>,
}

impl ResnetLayer {
    /// A layer with seeded activations and weights.
    pub fn new(width: u32, height: u32, cin: u32, cout: u32) -> Self {
        ResnetLayer {
            width,
            height,
            cin,
            cout,
            input: data::uniform_f32(seeds::RESNET, (cin * width * height) as usize, -1.0, 1.0),
            weights: data::uniform_f32(seeds::RESNET + 1, (cout * cin * 9) as usize, -0.3, 0.3),
            out: None,
            reference: OnceCell::new(),
        }
    }

    /// The paper's configuration: 1 ResNet20 layer on CIFAR-10, 16
    /// channels, 32×32 activations.
    pub fn paper() -> Self {
        ResnetLayer::new(32, 32, 16, 16)
    }

    /// Reduced size for the 450-configuration sweep.
    pub fn sweep() -> Self {
        ResnetLayer::new(12, 12, 8, 8)
    }

    /// Channel-major zero-padded input, `cin × (h+2) × (w+2)`.
    fn padded(&self) -> Vec<f32> {
        let (w, h, c) = (self.width as usize, self.height as usize, self.cin as usize);
        let (wp, hp) = (w + 2, h + 2);
        let mut pad = vec![0.0f32; c * wp * hp];
        for ic in 0..c {
            for y in 0..h {
                let src = &self.input[ic * w * h + y * w..ic * w * h + (y + 1) * w];
                let dst = ic * wp * hp + (y + 1) * wp + 1;
                pad[dst..dst + w].copy_from_slice(src);
            }
        }
        pad
    }

    /// The host reference output (same FMA order as the device; computed
    /// once, then cached).
    pub fn reference(&self) -> &[f32] {
        self.reference.get_or_init(|| self.compute_reference())
    }

    fn compute_reference(&self) -> Vec<f32> {
        let (w, h) = (self.width as usize, self.height as usize);
        let (cin, cout) = (self.cin as usize, self.cout as usize);
        let (wp, hp) = (w + 2, h + 2);
        let pad = self.padded();
        let mut out = vec![0.0f32; cout * w * h];
        for oc in 0..cout {
            for y in 0..h {
                for x in 0..w {
                    let mut acc = 0.0f32;
                    for ic in 0..cin {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let iv = pad[ic * wp * hp + (y + ky) * wp + x + kx];
                                let wv = self.weights[oc * cin * 9 + ic * 9 + ky * 3 + kx];
                                acc = iv.mul_add(wv, acc);
                            }
                        }
                    }
                    out[oc * w * h + y * w + x] = acc.max(0.0);
                }
            }
        }
        out
    }
}

impl Kernel for ResnetLayer {
    fn name(&self) -> &'static str {
        "resnet_layer"
    }

    fn build(&self) -> Result<Program, vortex_asm::AsmError> {
        build_single("resnet_layer", |a, ctx: BodyCtx| {
            use fregs::*;
            use reg::*;
            a.lw(T0, 0, ctx.args); // padded input
            a.lw(T1, 4, ctx.args); // weights
            a.lw(T3, 12, ctx.args); // W
            a.lw(T4, 16, ctx.args); // H
            a.lw(T5, 20, ctx.args); // Cin
            a.mul(T2, T3, T4); // HW
            a.divu(A1, ctx.item, T2); // oc
            a.remu(A2, ctx.item, T2); // rem
            a.divu(A3, A2, T3); // y
            a.remu(A4, A2, T3); // x
                                // Geometry: Wp = W+2, plane bytes = Wp*(H+2)*4, row bytes = Wp*4.
            a.addi(T6, T3, 2); // Wp
            a.addi(T4, T4, 2); // Hp
            a.mul(T4, T4, T6); // plane words
            a.slli(T4, T4, 2); // plane bytes
            a.slli(T6, T6, 2); // row bytes
                               // Input pointer for (ic=0, y, x).
            a.mul(T2, A3, T6);
            a.add(T0, T0, T2);
            a.slli(T2, A4, 2);
            a.add(T0, T0, T2);
            // Weight pointer for (oc, ic=0): w + oc*Cin*9*4.
            a.mul(T2, A1, T5); // oc*Cin
            a.slli(T2, T2, 2); // *4
            a.slli(A2, T2, 3); // *8
            a.add(T2, T2, A2); // *9*4 total
            a.add(T1, T1, T2);
            a.fmv_w_x(FA0, ZERO);
            // Channel loop (uniform trip count).
            let icloop = a.here("resnet.icloop");
            a.mv(A0, T0); // row pointer
            for ky in 0..3 {
                for kx in 0..3i32 {
                    a.flw(FT0, kx * 4, A0);
                    a.flw(FT1, kx * 4, T1);
                    a.fmadd_s(FA0, FT0, FT1, FA0);
                }
                a.addi(T1, T1, 12); // 3 weights consumed
                if ky < 2 {
                    a.add(A0, A0, T6); // next padded row
                }
            }
            a.add(T0, T0, T4); // next input channel plane
            a.addi(T5, T5, -1);
            a.bnez(T5, icloop);
            // Fused ReLU, then store to out[item].
            a.fmv_w_x(FT2, ZERO);
            a.fmax_s(FA0, FA0, FT2);
            a.lw(T2, 8, ctx.args);
            a.slli(A2, ctx.item, 2);
            a.add(T2, T2, A2);
            a.fsw(FA0, 0, T2);
        })
    }

    fn phases(&self) -> Vec<PhaseSpec> {
        vec![PhaseSpec::new("resnet_layer", self.cout * self.width * self.height)]
    }

    fn setup(&mut self, rt: &mut Runtime) -> Result<(), LaunchError> {
        let pad = rt.alloc_f32(&self.padded())?;
        let w = rt.alloc_f32(&self.weights)?;
        let out = rt.alloc((self.cout * self.width * self.height * 4).max(4))?;
        rt.set_args(&[pad.addr, w.addr, out.addr, self.width, self.height, self.cin]);
        self.out = Some(out);
        Ok(())
    }

    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError> {
        let out = self.out.expect("setup ran before verify");
        check_f32("resnet_layer", self.reference(), &rt.read_f32(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::run_kernel;
    use vortex_core::LwsPolicy;
    use vortex_sim::DeviceConfig;

    #[test]
    fn small_conv_matches_reference() {
        let mut k = ResnetLayer::new(6, 5, 3, 2);
        run_kernel(&mut k, &DeviceConfig::with_topology(1, 2, 4), LwsPolicy::Auto).unwrap();
    }

    #[test]
    fn relu_clamps_reference_output() {
        let k = ResnetLayer::new(8, 8, 4, 4);
        assert!(k.reference().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn policies_agree() {
        for policy in [LwsPolicy::Naive1, LwsPolicy::Fixed32, LwsPolicy::Auto] {
            let mut k = ResnetLayer::new(4, 4, 2, 2);
            run_kernel(&mut k, &DeviceConfig::with_topology(2, 2, 2), policy)
                .unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }
}
