//! The [`Kernel`] abstraction and the standard execution driver.

use vortex_asm::Program;
use vortex_core::{DispatchStats, LaunchParams, LaunchReport, LwsPolicy, Runtime};
use vortex_sim::Cycle;
use vortex_sim::{DeviceConfig, MemStats, NullSink, RecordedTrace, TraceRecorder, TraceSink};

use crate::error::{KernelError, VerifyError};

/// One device launch of a (possibly multi-phase) kernel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseSpec {
    /// Entry symbol in the built program.
    pub symbol: String,
    /// Global work size of this phase.
    pub gws: u32,
}

impl PhaseSpec {
    /// Creates a phase description.
    pub fn new(symbol: impl Into<String>, gws: u32) -> Self {
        PhaseSpec { symbol: symbol.into(), gws }
    }
}

/// A runnable, verifiable workload from the paper's evaluation set.
///
/// Implementations own their (seeded, deterministic) input data, so the
/// same kernel value can be re-run across many device configurations and
/// mapping policies with identical work.
pub trait Kernel {
    /// Short name used in reports (matches the paper's figure labels).
    fn name(&self) -> &'static str;

    /// Assembles the device program (all phases).
    ///
    /// # Errors
    ///
    /// Returns an assembly error if the kernel's code generation produced
    /// an unencodable instruction.
    fn build(&self) -> Result<Program, vortex_asm::AsmError>;

    /// The launches (in order) that constitute one execution.
    fn phases(&self) -> Vec<PhaseSpec>;

    /// Allocates buffers, uploads inputs and writes the argument block.
    ///
    /// # Errors
    ///
    /// Propagates allocation failures.
    fn setup(&mut self, rt: &mut Runtime) -> Result<(), vortex_core::LaunchError>;

    /// Checks device outputs against the host reference.
    ///
    /// # Errors
    ///
    /// Returns the first mismatch found.
    fn verify(&self, rt: &Runtime) -> Result<(), VerifyError>;

    /// Total work items across phases (used for reporting only).
    fn total_gws(&self) -> u32 {
        self.phases().iter().map(|p| p.gws).sum()
    }
}

/// The result of running a kernel once on one configuration.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Total device cycles summed over phases (dispatch overhead and
    /// memory drain included).
    pub cycles: Cycle,
    /// Per-phase launch reports.
    pub reports: Vec<LaunchReport>,
    /// Memory-hierarchy statistics for the whole run.
    pub mem: MemStats,
    /// DRAM service-slot utilisation over the run (0..=1); high values
    /// mark the paper's *memory bound* kernels.
    pub dram_utilization: f64,
    /// Instructions issued.
    pub instructions: u64,
    /// Dispatch-round and occupancy counters summed over the run's
    /// launches (rounds per launch, busy lanes per round — the paper's
    /// low-occupancy marker).
    pub dispatch: DispatchStats,
    /// SIMT memory-port accesses over the run: batched accesses that
    /// carried at least one line. Raw sum — exact to merge.
    pub port_accesses: u64,
    /// Extra L1 port slots beyond the first each access occupied (the
    /// cycles memory ports stayed blocked serialising uncoalesced
    /// lines). Raw sum — exact to merge.
    pub port_stall_slots: u64,
}

/// Builds, uploads, launches (all phases) and verifies `kernel` on a fresh
/// device of the given configuration.
///
/// Untraced, so the whole run takes the simulator's monomorphised
/// (zero-dyn-dispatch) path.
///
/// # Errors
///
/// Any assembly, launch or verification failure.
pub fn run_kernel(
    kernel: &mut dyn Kernel,
    config: &DeviceConfig,
    policy: LwsPolicy,
) -> Result<RunOutcome, KernelError> {
    let program = kernel.build()?;
    let mut rt = Runtime::new(*config);
    rt.load_program(&program);
    run_kernel_prepared(kernel, &program, &mut rt, policy)
}

/// [`run_kernel`] with an optional trace sink attached to every phase
/// (used to regenerate the paper's Fig. 1).
///
/// # Errors
///
/// Any assembly, launch or verification failure.
pub fn run_kernel_traced(
    kernel: &mut dyn Kernel,
    config: &DeviceConfig,
    policy: LwsPolicy,
    trace: Option<&mut dyn TraceSink>,
) -> Result<RunOutcome, KernelError> {
    let program = kernel.build()?;
    let mut rt = Runtime::new(*config);
    rt.load_program(&program);
    match trace {
        Some(sink) => run_phases(kernel, &program, &mut rt, policy, Some(sink)),
        None => run_phases::<NullSink>(kernel, &program, &mut rt, policy, None),
    }
}

/// Launches and verifies `kernel` on an already-prepared runtime: the
/// program is assembled once by the caller and stays loaded; the runtime
/// is [`reset`](Runtime::reset) so every run starts from a cold, clean
/// device. This is the zero-rebuild path measurement campaigns take —
/// per-run cost is the simulation itself, not device construction or
/// kernel assembly.
///
/// # Errors
///
/// Any launch or verification failure.
pub fn run_kernel_prepared(
    kernel: &mut dyn Kernel,
    program: &Program,
    rt: &mut Runtime,
    policy: LwsPolicy,
) -> Result<RunOutcome, KernelError> {
    run_phases::<NullSink>(kernel, program, rt, policy, None)
}

/// [`run_kernel_prepared`] with a [`TraceRecorder`] attached: executes
/// the kernel normally (setup, all phases, verification) and returns the
/// recorded per-warp event trace alongside the outcome. The trace holds
/// one [`LaunchRecord`](vortex_sim::LaunchRecord) per phase and carries a
/// `tainted` flag when the run read a timing CSR (such traces must never
/// be replayed under a different timing or memory configuration — see
/// `docs/TRACE.md`).
///
/// # Errors
///
/// Any launch or verification failure.
pub fn record_kernel_prepared(
    kernel: &mut dyn Kernel,
    program: &Program,
    rt: &mut Runtime,
    policy: LwsPolicy,
) -> Result<(RunOutcome, RecordedTrace), KernelError> {
    let config = *rt.device().config();
    let mut rec = TraceRecorder::new(config.cores, config.warps);
    let outcome = run_phases(kernel, program, rt, policy, Some(&mut rec))?;
    Ok((outcome, rec.finish()))
}

/// Replays a previously recorded trace of `kernel` on an
/// already-prepared runtime: the phase loop runs with dispatch, hazard
/// scheduling and memory-system timing unchanged, but every
/// value-dependent outcome comes from `rec` — no input upload, no row
/// kernels, no functional memory traffic and no verification (the
/// recording run already verified). The [`RunOutcome`] is bit-identical
/// to execute mode.
///
/// # Errors
///
/// [`KernelError::TraceMismatch`] when `rec` was recorded on a different
/// topology or phase structure; [`KernelError::Launch`] wrapping
/// [`SimError::ReplayDiverged`](vortex_sim::SimError) when the streams
/// do not match the launched code.
pub fn replay_kernel_prepared(
    kernel: &mut dyn Kernel,
    program: &Program,
    rt: &mut Runtime,
    policy: LwsPolicy,
    rec: &RecordedTrace,
) -> Result<RunOutcome, KernelError> {
    replay_phases::<NullSink>(kernel, program, rt, policy, rec, None)
}

/// [`replay_kernel_prepared`] with a trace sink attached — the hook the
/// record→replay→re-record idempotence gate uses: replaying under a
/// fresh [`TraceRecorder`] must reproduce `rec` exactly.
///
/// # Errors
///
/// As for [`replay_kernel_prepared`].
pub fn replay_kernel_traced(
    kernel: &mut dyn Kernel,
    program: &Program,
    rt: &mut Runtime,
    policy: LwsPolicy,
    rec: &RecordedTrace,
    trace: Option<&mut dyn TraceSink>,
) -> Result<RunOutcome, KernelError> {
    match trace {
        Some(sink) => replay_phases(kernel, program, rt, policy, rec, Some(sink)),
        None => replay_phases::<NullSink>(kernel, program, rt, policy, rec, None),
    }
}

/// The replay twin of [`run_phases`]: validates the trace against the
/// device and phase structure, then drives each phase through
/// [`Runtime::launch_replay`] with its own [`LaunchRecord`] and cursor.
fn replay_phases<S: TraceSink + ?Sized>(
    kernel: &mut dyn Kernel,
    program: &Program,
    rt: &mut Runtime,
    policy: LwsPolicy,
    rec: &RecordedTrace,
    mut trace: Option<&mut S>,
) -> Result<RunOutcome, KernelError> {
    let config = *rt.device().config();
    let phases = kernel.phases();
    if rec.cores != config.cores || rec.warps != config.warps {
        return Err(KernelError::TraceMismatch {
            reason: format!(
                "trace recorded on {}x{} (cores x warps), device is {}x{}",
                rec.cores, rec.warps, config.cores, config.warps
            ),
        });
    }
    if rec.launches.len() != phases.len() {
        return Err(KernelError::TraceMismatch {
            reason: format!(
                "trace holds {} launch records, kernel has {} phases",
                rec.launches.len(),
                phases.len()
            ),
        });
    }
    rt.reset();

    let mut reports = Vec::new();
    let mut cycles = 0;
    let mut dispatch = DispatchStats::default();
    for (phase, launch) in phases.iter().zip(&rec.launches) {
        let entry = program
            .symbol(&phase.symbol)
            .ok_or_else(|| KernelError::MissingSymbol { symbol: phase.symbol.clone() })?;
        let params = LaunchParams::new(phase.gws).policy(policy).entry(entry);
        let mut cursor = launch.cursor();
        let report = rt.launch_replay(
            &params,
            match trace {
                Some(ref mut sink) => Some(&mut **sink),
                None => None,
            },
            launch,
            &mut cursor,
        )?;
        cycles += report.cycles;
        dispatch.accumulate(&DispatchStats::of_launch(&report));
        reports.push(report);
    }

    let (port_accesses, port_stall_slots) = rt.device().port_totals();
    Ok(RunOutcome {
        cycles,
        reports,
        mem: rt.device().mem_stats(),
        dram_utilization: rt.device().dram_utilization(),
        instructions: rt.device().counters().instructions,
        dispatch,
        port_accesses,
        port_stall_slots,
    })
}

/// The shared phase loop, generic over the sink so untraced runs are
/// monomorphised end to end. Resets the runtime first: results must be
/// independent of whatever ran on it before.
fn run_phases<S: TraceSink + ?Sized>(
    kernel: &mut dyn Kernel,
    program: &Program,
    rt: &mut Runtime,
    policy: LwsPolicy,
    mut trace: Option<&mut S>,
) -> Result<RunOutcome, KernelError> {
    rt.reset();
    kernel.setup(rt)?;

    let mut reports = Vec::new();
    let mut cycles = 0;
    let mut dispatch = DispatchStats::default();
    for phase in kernel.phases() {
        let entry = program
            .symbol(&phase.symbol)
            .ok_or_else(|| KernelError::MissingSymbol { symbol: phase.symbol.clone() })?;
        let params = LaunchParams::new(phase.gws).policy(policy).entry(entry);
        let report = rt.launch_with(
            &params,
            match trace {
                Some(ref mut sink) => Some(&mut **sink),
                None => None,
            },
        )?;
        cycles += report.cycles;
        dispatch.accumulate(&DispatchStats::of_launch(&report));
        reports.push(report);
    }
    kernel.verify(rt)?;

    let (port_accesses, port_stall_slots) = rt.device().port_totals();
    Ok(RunOutcome {
        cycles,
        reports,
        mem: rt.device().mem_stats(),
        dram_utilization: rt.device().dram_utilization(),
        instructions: rt.device().counters().instructions,
        dispatch,
        port_accesses,
        port_stall_slots,
    })
}
