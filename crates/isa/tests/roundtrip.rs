//! Randomised tests: `decode(encode(i)) == i` for every representable
//! instruction, and `encode(decode(w)) == w` for every decodable word.
//!
//! Driven by the in-repo deterministic PRNG (the offline build has no
//! proptest); seeds are fixed so failures reproduce exactly.

use vortex_isa::{
    decode, encode, AluImmOp, AluOp, BranchOp, Csr, CsrOp, CsrSrc, FReg, FmaOp, FpBinOp, FpCmpOp,
    Instr, LoadWidth, Reg, StoreWidth, VoteOp,
};
use vortex_rng::Rng;

fn any_reg(rng: &mut Rng) -> Reg {
    Reg::new(rng.gen_range_u32(0, 32) as u8).unwrap()
}

fn any_freg(rng: &mut Rng) -> FReg {
    FReg::new(rng.gen_range_u32(0, 32) as u8).unwrap()
}

fn any_csr(rng: &mut Rng) -> Csr {
    Csr::new(rng.gen_range_u32(0, 0x1000) as u16).unwrap()
}

/// Signed 12-bit immediate.
fn i12(rng: &mut Rng) -> i32 {
    rng.gen_range_i32(-2048, 2047)
}

/// Even 13-bit branch offset.
fn b13(rng: &mut Rng) -> i32 {
    rng.gen_range_i32(-2048, 2047) * 2
}

/// Even 21-bit jump offset.
fn j21(rng: &mut Rng) -> i32 {
    rng.gen_range_i32(-524_288, 524_287) * 2
}

/// Upper 20-bit immediate (low 12 bits clear).
fn u20(rng: &mut Rng) -> i32 {
    (rng.next_u32() as i32) & !0xFFFi32
}

const ALU_OPS: [AluOp; 18] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhsu,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

fn any_instr(rng: &mut Rng) -> Instr {
    match rng.gen_range_u32(0, 28) {
        0 => Instr::Lui { rd: any_reg(rng), imm: u20(rng) },
        1 => Instr::Auipc { rd: any_reg(rng), imm: u20(rng) },
        2 => Instr::Jal { rd: any_reg(rng), offset: j21(rng) },
        3 => Instr::Jalr { rd: any_reg(rng), rs1: any_reg(rng), offset: i12(rng) },
        4 => Instr::Branch {
            op: *rng.choose(&[
                BranchOp::Eq,
                BranchOp::Ne,
                BranchOp::Lt,
                BranchOp::Ge,
                BranchOp::Ltu,
                BranchOp::Geu,
            ]),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
            offset: b13(rng),
        },
        5 => Instr::Load {
            width: *rng.choose(&[
                LoadWidth::Byte,
                LoadWidth::Half,
                LoadWidth::Word,
                LoadWidth::ByteU,
                LoadWidth::HalfU,
            ]),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        6 => Instr::Store {
            width: *rng.choose(&[StoreWidth::Byte, StoreWidth::Half, StoreWidth::Word]),
            rs2: any_reg(rng),
            rs1: any_reg(rng),
            offset: i12(rng),
        },
        7 => Instr::OpImm {
            op: *rng.choose(&[
                AluImmOp::Add,
                AluImmOp::Slt,
                AluImmOp::Sltu,
                AluImmOp::Xor,
                AluImmOp::Or,
                AluImmOp::And,
            ]),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: i12(rng),
        },
        8 => Instr::OpImm {
            op: *rng.choose(&[AluImmOp::Sll, AluImmOp::Srl, AluImmOp::Sra]),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            imm: rng.gen_range_i32(0, 31),
        },
        9 => Instr::Op {
            op: *rng.choose(&ALU_OPS),
            rd: any_reg(rng),
            rs1: any_reg(rng),
            rs2: any_reg(rng),
        },
        10 => Instr::Fence,
        11 => Instr::Ecall,
        12 => Instr::Ebreak,
        13 => Instr::Csr {
            op: *rng.choose(&[CsrOp::ReadWrite, CsrOp::ReadSet, CsrOp::ReadClear]),
            rd: any_reg(rng),
            src: if rng.gen_bool() {
                CsrSrc::Reg(any_reg(rng))
            } else {
                CsrSrc::Imm(rng.gen_range_u32(0, 32) as u8)
            },
            csr: any_csr(rng),
        },
        14 => Instr::Flw { rd: any_freg(rng), rs1: any_reg(rng), offset: i12(rng) },
        15 => Instr::Fsw { rs2: any_freg(rng), rs1: any_reg(rng), offset: i12(rng) },
        16 => Instr::FpOp {
            op: *rng.choose(&[
                FpBinOp::Add,
                FpBinOp::Sub,
                FpBinOp::Mul,
                FpBinOp::Div,
                FpBinOp::SgnJ,
                FpBinOp::SgnJN,
                FpBinOp::SgnJX,
                FpBinOp::Min,
                FpBinOp::Max,
            ]),
            rd: any_freg(rng),
            rs1: any_freg(rng),
            rs2: any_freg(rng),
        },
        17 => Instr::FpFma {
            op: *rng.choose(&[FmaOp::MAdd, FmaOp::MSub, FmaOp::NMSub, FmaOp::NMAdd]),
            rd: any_freg(rng),
            rs1: any_freg(rng),
            rs2: any_freg(rng),
            rs3: any_freg(rng),
        },
        18 => Instr::FpSqrt { rd: any_freg(rng), rs1: any_freg(rng) },
        19 => Instr::FpCmp {
            op: *rng.choose(&[FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le]),
            rd: any_reg(rng),
            rs1: any_freg(rng),
            rs2: any_freg(rng),
        },
        20 => Instr::FpCvtToInt { signed: rng.gen_bool(), rd: any_reg(rng), rs1: any_freg(rng) },
        21 => Instr::FpCvtFromInt { signed: rng.gen_bool(), rd: any_freg(rng), rs1: any_reg(rng) },
        22 => Instr::FpMvToInt { rd: any_reg(rng), rs1: any_freg(rng) },
        23 => Instr::FpMvFromInt { rd: any_freg(rng), rs1: any_reg(rng) },
        24 => Instr::FpClass { rd: any_reg(rng), rs1: any_freg(rng) },
        25 => match rng.gen_range_u32(0, 3) {
            0 => Instr::Tmc { rs1: any_reg(rng) },
            1 => Instr::Wspawn { rs1: any_reg(rng), rs2: any_reg(rng) },
            _ => Instr::Bar { rs1: any_reg(rng), rs2: any_reg(rng) },
        },
        26 => {
            if rng.gen_bool() {
                Instr::Split { rs1: any_reg(rng), offset: b13(rng) }
            } else {
                Instr::Join
            }
        }
        _ => Instr::Vote {
            op: *rng.choose(&[VoteOp::Any, VoteOp::All, VoteOp::Ballot]),
            rd: any_reg(rng),
            rs1: any_reg(rng),
        },
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xD0_5EED);
    for case in 0..4096 {
        let instr = any_instr(&mut rng);
        let word =
            encode(instr).unwrap_or_else(|e| panic!("case {case}: {instr:?} must encode: {e}"));
        let back =
            decode(word).unwrap_or_else(|e| panic!("case {case}: {word:#010x} must decode: {e}"));
        assert_eq!(instr, back, "case {case}: roundtrip through {word:#010x}");
    }
}

#[test]
fn decode_encode_roundtrip() {
    // Not every word decodes; but the ones that do must re-encode to an
    // equivalent word (canonicalising the FP rounding-mode field).
    let mut rng = Rng::seed_from_u64(0x00DE_C0DE);
    let mut decoded = 0u32;
    for _ in 0..200_000 {
        let word = rng.next_u32();
        if let Ok(instr) = decode(word) {
            decoded += 1;
            let reenc = encode(instr).expect("decoded instruction must re-encode");
            let back = decode(reenc).expect("re-encoded word must decode");
            assert_eq!(instr, back, "word {word:#010x} re-encoded to {reenc:#010x}");
        }
    }
    assert!(decoded > 100, "random words should occasionally decode ({decoded} did)");
}

#[test]
fn disassembly_is_nonempty() {
    let mut rng = Rng::seed_from_u64(0x00D1_5A55);
    for _ in 0..2048 {
        let instr = any_instr(&mut rng);
        assert!(!instr.to_string().is_empty(), "{instr:?}");
    }
}
