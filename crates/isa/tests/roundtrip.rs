//! Property tests: `decode(encode(i)) == i` for every representable
//! instruction, and `encode(decode(w)) == w` for every decodable word.

use proptest::prelude::*;
use vortex_isa::{
    decode, encode, AluImmOp, AluOp, BranchOp, Csr, CsrOp, CsrSrc, FReg, FmaOp, FpBinOp,
    FpCmpOp, Instr, LoadWidth, Reg, StoreWidth, VoteOp,
};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn any_freg() -> impl Strategy<Value = FReg> {
    (0u8..32).prop_map(|n| FReg::new(n).unwrap())
}

fn any_csr() -> impl Strategy<Value = Csr> {
    (0u16..0x1000).prop_map(|n| Csr::new(n).unwrap())
}

fn i12() -> impl Strategy<Value = i32> {
    -2048i32..=2047
}

fn b13() -> impl Strategy<Value = i32> {
    (-2048i32..=2047).prop_map(|x| x * 2)
}

fn j21() -> impl Strategy<Value = i32> {
    (-524288i32..=524287).prop_map(|x| x * 2)
}

fn u20() -> impl Strategy<Value = i32> {
    proptest::num::i32::ANY.prop_map(|x| x & !0xFFFi32)
}

prop_compose! {
    fn alu_imm()(op in prop_oneof![
        Just(AluImmOp::Add), Just(AluImmOp::Slt), Just(AluImmOp::Sltu),
        Just(AluImmOp::Xor), Just(AluImmOp::Or), Just(AluImmOp::And),
    ], rd in any_reg(), rs1 in any_reg(), imm in i12()) -> Instr {
        Instr::OpImm { op, rd, rs1, imm }
    }
}

prop_compose! {
    fn shift_imm()(op in prop_oneof![
        Just(AluImmOp::Sll), Just(AluImmOp::Srl), Just(AluImmOp::Sra),
    ], rd in any_reg(), rs1 in any_reg(), imm in 0i32..32) -> Instr {
        Instr::OpImm { op, rd, rs1, imm }
    }
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Mulh),
        Just(AluOp::Mulhsu),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
    ]
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), u20()).prop_map(|(rd, imm)| Instr::Lui { rd, imm }),
        (any_reg(), u20()).prop_map(|(rd, imm)| Instr::Auipc { rd, imm }),
        (any_reg(), j21()).prop_map(|(rd, offset)| Instr::Jal { rd, offset }),
        (any_reg(), any_reg(), i12())
            .prop_map(|(rd, rs1, offset)| Instr::Jalr { rd, rs1, offset }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            any_reg(),
            any_reg(),
            b13()
        )
            .prop_map(|(op, rs1, rs2, offset)| Instr::Branch { op, rs1, rs2, offset }),
        (
            prop_oneof![
                Just(LoadWidth::Byte),
                Just(LoadWidth::Half),
                Just(LoadWidth::Word),
                Just(LoadWidth::ByteU),
                Just(LoadWidth::HalfU)
            ],
            any_reg(),
            any_reg(),
            i12()
        )
            .prop_map(|(width, rd, rs1, offset)| Instr::Load { width, rd, rs1, offset }),
        (
            prop_oneof![Just(StoreWidth::Byte), Just(StoreWidth::Half), Just(StoreWidth::Word)],
            any_reg(),
            any_reg(),
            i12()
        )
            .prop_map(|(width, rs2, rs1, offset)| Instr::Store { width, rs2, rs1, offset }),
        alu_imm(),
        shift_imm(),
        (any_alu_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        (
            prop_oneof![Just(CsrOp::ReadWrite), Just(CsrOp::ReadSet), Just(CsrOp::ReadClear)],
            any_reg(),
            prop_oneof![
                any_reg().prop_map(CsrSrc::Reg),
                (0u8..32).prop_map(CsrSrc::Imm)
            ],
            any_csr()
        )
            .prop_map(|(op, rd, src, csr)| Instr::Csr { op, rd, src, csr }),
        (any_freg(), any_reg(), i12())
            .prop_map(|(rd, rs1, offset)| Instr::Flw { rd, rs1, offset }),
        (any_freg(), any_reg(), i12())
            .prop_map(|(rs2, rs1, offset)| Instr::Fsw { rs2, rs1, offset }),
        (
            prop_oneof![
                Just(FpBinOp::Add),
                Just(FpBinOp::Sub),
                Just(FpBinOp::Mul),
                Just(FpBinOp::Div),
                Just(FpBinOp::SgnJ),
                Just(FpBinOp::SgnJN),
                Just(FpBinOp::SgnJX),
                Just(FpBinOp::Min),
                Just(FpBinOp::Max)
            ],
            any_freg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::FpOp { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(FmaOp::MAdd),
                Just(FmaOp::MSub),
                Just(FmaOp::NMSub),
                Just(FmaOp::NMAdd)
            ],
            any_freg(),
            any_freg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2, rs3)| Instr::FpFma { op, rd, rs1, rs2, rs3 }),
        (any_freg(), any_freg()).prop_map(|(rd, rs1)| Instr::FpSqrt { rd, rs1 }),
        (
            prop_oneof![Just(FpCmpOp::Eq), Just(FpCmpOp::Lt), Just(FpCmpOp::Le)],
            any_reg(),
            any_freg(),
            any_freg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::FpCmp { op, rd, rs1, rs2 }),
        (any::<bool>(), any_reg(), any_freg())
            .prop_map(|(signed, rd, rs1)| Instr::FpCvtToInt { signed, rd, rs1 }),
        (any::<bool>(), any_freg(), any_reg())
            .prop_map(|(signed, rd, rs1)| Instr::FpCvtFromInt { signed, rd, rs1 }),
        (any_reg(), any_freg()).prop_map(|(rd, rs1)| Instr::FpMvToInt { rd, rs1 }),
        (any_freg(), any_reg()).prop_map(|(rd, rs1)| Instr::FpMvFromInt { rd, rs1 }),
        (any_reg(), any_freg()).prop_map(|(rd, rs1)| Instr::FpClass { rd, rs1 }),
        any_reg().prop_map(|rs1| Instr::Tmc { rs1 }),
        (any_reg(), any_reg()).prop_map(|(rs1, rs2)| Instr::Wspawn { rs1, rs2 }),
        (any_reg(), b13()).prop_map(|(rs1, offset)| Instr::Split { rs1, offset }),
        Just(Instr::Join),
        (any_reg(), any_reg()).prop_map(|(rs1, rs2)| Instr::Bar { rs1, rs2 }),
        (
            prop_oneof![Just(VoteOp::Any), Just(VoteOp::All), Just(VoteOp::Ballot)],
            any_reg(),
            any_reg()
        )
            .prop_map(|(op, rd, rs1)| Instr::Vote { op, rd, rs1 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn encode_decode_roundtrip(instr in any_instr()) {
        let word = encode(instr).expect("generated instruction must encode");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(instr, back);
    }

    #[test]
    fn decode_encode_roundtrip(word in proptest::num::u32::ANY) {
        // Not every word decodes; but the ones that do must re-encode to an
        // equivalent word (canonicalising the FP rounding-mode field).
        if let Ok(instr) = decode(word) {
            let reenc = encode(instr).expect("decoded instruction must re-encode");
            let back = decode(reenc).expect("re-encoded word must decode");
            prop_assert_eq!(instr, back);
        }
    }

    #[test]
    fn disassembly_is_nonempty(instr in any_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }
}
