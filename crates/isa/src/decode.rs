//! Binary decoding of 32-bit words into [`Instr`].

use std::error::Error;
use std::fmt;

use crate::encode::opcodes;
use crate::instr::{
    AluImmOp, AluOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpBinOp, FpCmpOp, Instr, LoadWidth,
    StoreWidth, VoteOp,
};
use crate::{Csr, FReg, Reg};

/// An error produced when a 32-bit word is not a valid instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The word that failed to decode.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

fn rd(w: u32) -> Reg {
    Reg::new(((w >> 7) & 0x1F) as u8).expect("5-bit field")
}
fn rs1(w: u32) -> Reg {
    Reg::new(((w >> 15) & 0x1F) as u8).expect("5-bit field")
}
fn rs2(w: u32) -> Reg {
    Reg::new(((w >> 20) & 0x1F) as u8).expect("5-bit field")
}
fn frd(w: u32) -> FReg {
    FReg::new(((w >> 7) & 0x1F) as u8).expect("5-bit field")
}
fn frs1(w: u32) -> FReg {
    FReg::new(((w >> 15) & 0x1F) as u8).expect("5-bit field")
}
fn frs2(w: u32) -> FReg {
    FReg::new(((w >> 20) & 0x1F) as u8).expect("5-bit field")
}
fn frs3(w: u32) -> FReg {
    FReg::new(((w >> 27) & 0x1F) as u8).expect("5-bit field")
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}

fn i_imm(w: u32) -> i32 {
    (w as i32) >> 20
}

fn s_imm(w: u32) -> i32 {
    let hi = ((w as i32) >> 25) << 5;
    let lo = ((w >> 7) & 0x1F) as i32;
    hi | lo
}

fn b_imm(w: u32) -> i32 {
    let bit12 = ((w as i32) >> 31) << 12;
    let bit11 = (((w >> 7) & 1) as i32) << 11;
    let bits10_5 = (((w >> 25) & 0x3F) as i32) << 5;
    let bits4_1 = (((w >> 8) & 0xF) as i32) << 1;
    bit12 | bit11 | bits10_5 | bits4_1
}

fn u_imm(w: u32) -> i32 {
    (w & 0xFFFF_F000) as i32
}

fn j_imm(w: u32) -> i32 {
    let bit20 = ((w as i32) >> 31) << 20;
    let bits19_12 = (((w >> 12) & 0xFF) as i32) << 12;
    let bit11 = (((w >> 20) & 1) as i32) << 11;
    let bits10_1 = (((w >> 21) & 0x3FF) as i32) << 1;
    bit20 | bits19_12 | bit11 | bits10_1
}

/// Decodes a 32-bit word into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] for words that are not produced by [`encode`]
/// (unknown opcode, funct field or register-class combination).
///
/// [`encode`]: crate::encode
///
/// # Examples
///
/// ```
/// use vortex_isa::{decode, Instr, AluImmOp, reg};
/// let instr = decode(0x0015_0513)?; // addi a0, a0, 1
/// assert_eq!(
///     instr,
///     Instr::OpImm { op: AluImmOp::Add, rd: reg::A0, rs1: reg::A0, imm: 1 }
/// );
/// # Ok::<(), vortex_isa::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use opcodes::*;
    let err = Err(DecodeError { word });
    let w = word;
    let instr = match w & 0x7F {
        LUI => Instr::Lui { rd: rd(w), imm: u_imm(w) },
        AUIPC => Instr::Auipc { rd: rd(w), imm: u_imm(w) },
        JAL => Instr::Jal { rd: rd(w), offset: j_imm(w) },
        JALR => {
            if funct3(w) != 0 {
                return err;
            }
            Instr::Jalr { rd: rd(w), rs1: rs1(w), offset: i_imm(w) }
        }
        BRANCH => {
            let op = match funct3(w) {
                0 => BranchOp::Eq,
                1 => BranchOp::Ne,
                4 => BranchOp::Lt,
                5 => BranchOp::Ge,
                6 => BranchOp::Ltu,
                7 => BranchOp::Geu,
                _ => return err,
            };
            Instr::Branch { op, rs1: rs1(w), rs2: rs2(w), offset: b_imm(w) }
        }
        LOAD => {
            let width = match funct3(w) {
                0 => LoadWidth::Byte,
                1 => LoadWidth::Half,
                2 => LoadWidth::Word,
                4 => LoadWidth::ByteU,
                5 => LoadWidth::HalfU,
                _ => return err,
            };
            Instr::Load { width, rd: rd(w), rs1: rs1(w), offset: i_imm(w) }
        }
        STORE => {
            let width = match funct3(w) {
                0 => StoreWidth::Byte,
                1 => StoreWidth::Half,
                2 => StoreWidth::Word,
                _ => return err,
            };
            Instr::Store { width, rs2: rs2(w), rs1: rs1(w), offset: s_imm(w) }
        }
        OP_IMM => {
            let op = match funct3(w) {
                0 => AluImmOp::Add,
                2 => AluImmOp::Slt,
                3 => AluImmOp::Sltu,
                4 => AluImmOp::Xor,
                6 => AluImmOp::Or,
                7 => AluImmOp::And,
                1 => {
                    if funct7(w) != 0 {
                        return err;
                    }
                    AluImmOp::Sll
                }
                5 => match funct7(w) {
                    0x00 => AluImmOp::Srl,
                    0x20 => AluImmOp::Sra,
                    _ => return err,
                },
                _ => unreachable!("funct3 is 3 bits"),
            };
            let imm = match op {
                AluImmOp::Sll | AluImmOp::Srl | AluImmOp::Sra => ((w >> 20) & 0x1F) as i32,
                _ => i_imm(w),
            };
            Instr::OpImm { op, rd: rd(w), rs1: rs1(w), imm }
        }
        OP => {
            let op = match (funct7(w), funct3(w)) {
                (0x00, 0) => AluOp::Add,
                (0x20, 0) => AluOp::Sub,
                (0x00, 1) => AluOp::Sll,
                (0x00, 2) => AluOp::Slt,
                (0x00, 3) => AluOp::Sltu,
                (0x00, 4) => AluOp::Xor,
                (0x00, 5) => AluOp::Srl,
                (0x20, 5) => AluOp::Sra,
                (0x00, 6) => AluOp::Or,
                (0x00, 7) => AluOp::And,
                (0x01, 0) => AluOp::Mul,
                (0x01, 1) => AluOp::Mulh,
                (0x01, 2) => AluOp::Mulhsu,
                (0x01, 3) => AluOp::Mulhu,
                (0x01, 4) => AluOp::Div,
                (0x01, 5) => AluOp::Divu,
                (0x01, 6) => AluOp::Rem,
                (0x01, 7) => AluOp::Remu,
                _ => return err,
            };
            Instr::Op { op, rd: rd(w), rs1: rs1(w), rs2: rs2(w) }
        }
        MISC_MEM => Instr::Fence,
        SYSTEM => match funct3(w) {
            0 => match w >> 20 {
                0 => Instr::Ecall,
                1 => Instr::Ebreak,
                _ => return err,
            },
            f3 => {
                let op = match f3 & 0x3 {
                    1 => CsrOp::ReadWrite,
                    2 => CsrOp::ReadSet,
                    3 => CsrOp::ReadClear,
                    _ => return err,
                };
                let field = ((w >> 15) & 0x1F) as u8;
                let src = if f3 >= 4 {
                    CsrSrc::Imm(field)
                } else {
                    CsrSrc::Reg(Reg::new(field).expect("5-bit field"))
                };
                let csr = Csr::new((w >> 20) as u16).expect("12-bit field");
                Instr::Csr { op, rd: rd(w), src, csr }
            }
        },
        LOAD_FP => {
            if funct3(w) != 2 {
                return err;
            }
            Instr::Flw { rd: frd(w), rs1: rs1(w), offset: i_imm(w) }
        }
        STORE_FP => {
            if funct3(w) != 2 {
                return err;
            }
            Instr::Fsw { rs2: frs2(w), rs1: rs1(w), offset: s_imm(w) }
        }
        OP_FP => match funct7(w) {
            0x00 => Instr::FpOp { op: FpBinOp::Add, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x04 => Instr::FpOp { op: FpBinOp::Sub, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x08 => Instr::FpOp { op: FpBinOp::Mul, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x0C => Instr::FpOp { op: FpBinOp::Div, rd: frd(w), rs1: frs1(w), rs2: frs2(w) },
            0x10 => {
                let op = match funct3(w) {
                    0 => FpBinOp::SgnJ,
                    1 => FpBinOp::SgnJN,
                    2 => FpBinOp::SgnJX,
                    _ => return err,
                };
                Instr::FpOp { op, rd: frd(w), rs1: frs1(w), rs2: frs2(w) }
            }
            0x14 => {
                let op = match funct3(w) {
                    0 => FpBinOp::Min,
                    1 => FpBinOp::Max,
                    _ => return err,
                };
                Instr::FpOp { op, rd: frd(w), rs1: frs1(w), rs2: frs2(w) }
            }
            0x2C => {
                if (w >> 20) & 0x1F != 0 {
                    return err;
                }
                Instr::FpSqrt { rd: frd(w), rs1: frs1(w) }
            }
            0x50 => {
                let op = match funct3(w) {
                    0 => FpCmpOp::Le,
                    1 => FpCmpOp::Lt,
                    2 => FpCmpOp::Eq,
                    _ => return err,
                };
                Instr::FpCmp { op, rd: rd(w), rs1: frs1(w), rs2: frs2(w) }
            }
            0x60 => match (w >> 20) & 0x1F {
                0 => Instr::FpCvtToInt { signed: true, rd: rd(w), rs1: frs1(w) },
                1 => Instr::FpCvtToInt { signed: false, rd: rd(w), rs1: frs1(w) },
                _ => return err,
            },
            0x68 => match (w >> 20) & 0x1F {
                0 => Instr::FpCvtFromInt { signed: true, rd: frd(w), rs1: rs1(w) },
                1 => Instr::FpCvtFromInt { signed: false, rd: frd(w), rs1: rs1(w) },
                _ => return err,
            },
            0x70 => match funct3(w) {
                0 if (w >> 20) & 0x1F == 0 => Instr::FpMvToInt { rd: rd(w), rs1: frs1(w) },
                1 => Instr::FpClass { rd: rd(w), rs1: frs1(w) },
                _ => return err,
            },
            0x78 => {
                if funct3(w) != 0 || (w >> 20) & 0x1F != 0 {
                    return err;
                }
                Instr::FpMvFromInt { rd: frd(w), rs1: rs1(w) }
            }
            _ => return err,
        },
        FMADD | FMSUB | FNMSUB | FNMADD => {
            if (w >> 25) & 0x3 != 0 {
                return err; // only fmt=S supported
            }
            let op = match w & 0x7F {
                FMADD => FmaOp::MAdd,
                FMSUB => FmaOp::MSub,
                FNMSUB => FmaOp::NMSub,
                _ => FmaOp::NMAdd,
            };
            Instr::FpFma { op, rd: frd(w), rs1: frs1(w), rs2: frs2(w), rs3: frs3(w) }
        }
        CUSTOM0 => match funct3(w) {
            0 => Instr::Tmc { rs1: rs1(w) },
            1 => Instr::Wspawn { rs1: rs1(w), rs2: rs2(w) },
            3 => Instr::Join,
            4 => Instr::Bar { rs1: rs1(w), rs2: rs2(w) },
            6 => {
                let op = match funct7(w) {
                    0 => VoteOp::Any,
                    1 => VoteOp::All,
                    2 => VoteOp::Ballot,
                    _ => return err,
                };
                Instr::Vote { op, rd: rd(w), rs1: rs1(w) }
            }
            _ => return err,
        },
        CUSTOM1 => {
            if funct3(w) != 0 {
                return err;
            }
            Instr::Split { rs1: rs1(w), offset: b_imm(w) }
        }
        _ => return err,
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode, reg};

    #[test]
    fn rejects_garbage() {
        assert!(decode(0).is_err());
        assert!(decode(0xFFFF_FFFF).is_err());
        assert!(decode(0x7F).is_err()); // unknown major opcode
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi a0, a0, -1
        let w =
            encode(Instr::OpImm { op: AluImmOp::Add, rd: reg::A0, rs1: reg::A0, imm: -1 }).unwrap();
        assert_eq!(
            decode(w).unwrap(),
            Instr::OpImm { op: AluImmOp::Add, rd: reg::A0, rs1: reg::A0, imm: -1 }
        );
        // backwards branch
        let b = Instr::Branch { op: BranchOp::Ne, rs1: reg::A0, rs2: reg::ZERO, offset: -64 };
        assert_eq!(decode(encode(b).unwrap()).unwrap(), b);
        // backwards jump
        let j = Instr::Jal { rd: reg::ZERO, offset: -1048576 };
        assert_eq!(decode(encode(j).unwrap()).unwrap(), j);
    }

    #[test]
    fn store_immediate_splitting() {
        for offset in [-2048, -1, 0, 1, 7, 2047] {
            let s = Instr::Store { width: StoreWidth::Word, rs2: reg::A0, rs1: reg::A1, offset };
            assert_eq!(decode(encode(s).unwrap()).unwrap(), s, "offset {offset}");
        }
    }

    #[test]
    fn split_roundtrip_with_negative_offset() {
        let s = Instr::Split { rs1: reg::A5, offset: -128 };
        assert_eq!(decode(encode(s).unwrap()).unwrap(), s);
    }

    #[test]
    fn fp_decode_distinguishes_cmp_ops() {
        use crate::fregs;
        for op in [FpCmpOp::Eq, FpCmpOp::Lt, FpCmpOp::Le] {
            let i = Instr::FpCmp { op, rd: reg::A0, rs1: fregs::FA0, rs2: fregs::FA1 };
            assert_eq!(decode(encode(i).unwrap()).unwrap(), i);
        }
    }
}
