//! Integer and floating-point register names.

use std::fmt;

/// An integer (`x0`–`x31`) register.
///
/// The wrapped index is guaranteed to be `< 32`. Use the ABI-named constants
/// in [`reg`] for readable kernel code.
///
/// # Examples
///
/// ```
/// use vortex_isa::{reg, Reg};
/// assert_eq!(Reg::new(10), Some(reg::A0));
/// assert_eq!(reg::A0.to_string(), "a0");
/// assert_eq!(reg::A0.num(), 10);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index, returning `None` if `n >= 32`.
    pub const fn new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(Reg(n))
        } else {
            None
        }
    }

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`. Prefer [`Reg::new`] for untrusted input; this
    /// constructor exists for compile-time tables.
    pub const fn x(n: u8) -> Self {
        assert!(n < 32, "integer register index out of range");
        Reg(n)
    }

    /// The register index (0–31).
    pub const fn num(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register `x0`.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(ABI_NAMES[self.0 as usize])
    }
}

/// A single-precision floating-point (`f0`–`f31`) register.
///
/// # Examples
///
/// ```
/// use vortex_isa::{fregs, FReg};
/// assert_eq!(FReg::new(10), Some(fregs::FA0));
/// assert_eq!(fregs::FA0.to_string(), "fa0");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(u8);

impl FReg {
    /// Creates a float register from its index, returning `None` if `n >= 32`.
    pub const fn new(n: u8) -> Option<Self> {
        if n < 32 {
            Some(FReg(n))
        } else {
            None
        }
    }

    /// Creates a float register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn f(n: u8) -> Self {
        assert!(n < 32, "float register index out of range");
        FReg(n)
    }

    /// The register index (0–31).
    pub const fn num(self) -> u8 {
        self.0
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(FP_ABI_NAMES[self.0 as usize])
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

const FP_ABI_NAMES: [&str; 32] = [
    "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "ft6", "ft7", "fs0", "fs1", "fa0", "fa1", "fa2",
    "fa3", "fa4", "fa5", "fa6", "fa7", "fs2", "fs3", "fs4", "fs5", "fs6", "fs7", "fs8", "fs9",
    "fs10", "fs11", "ft8", "ft9", "ft10", "ft11",
];

/// ABI-named integer register constants (`zero`, `ra`, `sp`, `t0`…, `a0`…, `s0`…).
pub mod reg {
    use super::Reg;

    /// Hard-wired zero.
    pub const ZERO: Reg = Reg::x(0);
    /// Return address.
    pub const RA: Reg = Reg::x(1);
    /// Stack pointer.
    pub const SP: Reg = Reg::x(2);
    /// Global pointer.
    pub const GP: Reg = Reg::x(3);
    /// Thread pointer.
    pub const TP: Reg = Reg::x(4);
    /// Temporary 0.
    pub const T0: Reg = Reg::x(5);
    /// Temporary 1.
    pub const T1: Reg = Reg::x(6);
    /// Temporary 2.
    pub const T2: Reg = Reg::x(7);
    /// Saved 0 / frame pointer.
    pub const S0: Reg = Reg::x(8);
    /// Saved 1.
    pub const S1: Reg = Reg::x(9);
    /// Argument/return 0.
    pub const A0: Reg = Reg::x(10);
    /// Argument/return 1.
    pub const A1: Reg = Reg::x(11);
    /// Argument 2.
    pub const A2: Reg = Reg::x(12);
    /// Argument 3.
    pub const A3: Reg = Reg::x(13);
    /// Argument 4.
    pub const A4: Reg = Reg::x(14);
    /// Argument 5.
    pub const A5: Reg = Reg::x(15);
    /// Argument 6.
    pub const A6: Reg = Reg::x(16);
    /// Argument 7.
    pub const A7: Reg = Reg::x(17);
    /// Saved 2.
    pub const S2: Reg = Reg::x(18);
    /// Saved 3.
    pub const S3: Reg = Reg::x(19);
    /// Saved 4.
    pub const S4: Reg = Reg::x(20);
    /// Saved 5.
    pub const S5: Reg = Reg::x(21);
    /// Saved 6.
    pub const S6: Reg = Reg::x(22);
    /// Saved 7.
    pub const S7: Reg = Reg::x(23);
    /// Saved 8.
    pub const S8: Reg = Reg::x(24);
    /// Saved 9.
    pub const S9: Reg = Reg::x(25);
    /// Saved 10.
    pub const S10: Reg = Reg::x(26);
    /// Saved 11.
    pub const S11: Reg = Reg::x(27);
    /// Temporary 3.
    pub const T3: Reg = Reg::x(28);
    /// Temporary 4.
    pub const T4: Reg = Reg::x(29);
    /// Temporary 5.
    pub const T5: Reg = Reg::x(30);
    /// Temporary 6.
    pub const T6: Reg = Reg::x(31);
}

/// ABI-named floating-point register constants (`ft0`…, `fa0`…, `fs0`…).
pub mod fregs {
    use super::FReg;

    /// FP temporary 0.
    pub const FT0: FReg = FReg::f(0);
    /// FP temporary 1.
    pub const FT1: FReg = FReg::f(1);
    /// FP temporary 2.
    pub const FT2: FReg = FReg::f(2);
    /// FP temporary 3.
    pub const FT3: FReg = FReg::f(3);
    /// FP temporary 4.
    pub const FT4: FReg = FReg::f(4);
    /// FP temporary 5.
    pub const FT5: FReg = FReg::f(5);
    /// FP temporary 6.
    pub const FT6: FReg = FReg::f(6);
    /// FP temporary 7.
    pub const FT7: FReg = FReg::f(7);
    /// FP saved 0.
    pub const FS0: FReg = FReg::f(8);
    /// FP saved 1.
    pub const FS1: FReg = FReg::f(9);
    /// FP argument/return 0.
    pub const FA0: FReg = FReg::f(10);
    /// FP argument/return 1.
    pub const FA1: FReg = FReg::f(11);
    /// FP argument 2.
    pub const FA2: FReg = FReg::f(12);
    /// FP argument 3.
    pub const FA3: FReg = FReg::f(13);
    /// FP argument 4.
    pub const FA4: FReg = FReg::f(14);
    /// FP argument 5.
    pub const FA5: FReg = FReg::f(15);
    /// FP argument 6.
    pub const FA6: FReg = FReg::f(16);
    /// FP argument 7.
    pub const FA7: FReg = FReg::f(17);
    /// FP saved 2.
    pub const FS2: FReg = FReg::f(18);
    /// FP saved 3.
    pub const FS3: FReg = FReg::f(19);
    /// FP saved 4.
    pub const FS4: FReg = FReg::f(20);
    /// FP saved 5.
    pub const FS5: FReg = FReg::f(21);
    /// FP saved 6.
    pub const FS6: FReg = FReg::f(22);
    /// FP saved 7.
    pub const FS7: FReg = FReg::f(23);
    /// FP saved 8.
    pub const FS8: FReg = FReg::f(24);
    /// FP saved 9.
    pub const FS9: FReg = FReg::f(25);
    /// FP saved 10.
    pub const FS10: FReg = FReg::f(26);
    /// FP saved 11.
    pub const FS11: FReg = FReg::f(27);
    /// FP temporary 8.
    pub const FT8: FReg = FReg::f(28);
    /// FP temporary 9.
    pub const FT9: FReg = FReg::f(29);
    /// FP temporary 10.
    pub const FT10: FReg = FReg::f(30);
    /// FP temporary 11.
    pub const FT11: FReg = FReg::f(31);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_new_bounds() {
        assert_eq!(Reg::new(0), Some(reg::ZERO));
        assert_eq!(Reg::new(31), Some(reg::T6));
        assert_eq!(Reg::new(32), None);
        assert_eq!(FReg::new(32), None);
    }

    #[test]
    fn abi_names_match_spec() {
        assert_eq!(reg::ZERO.to_string(), "zero");
        assert_eq!(reg::SP.to_string(), "sp");
        assert_eq!(reg::T6.to_string(), "t6");
        assert_eq!(reg::S11.to_string(), "s11");
        assert_eq!(fregs::FT11.to_string(), "ft11");
        assert_eq!(fregs::FS1.to_string(), "fs1");
    }

    #[test]
    fn zero_detection() {
        assert!(reg::ZERO.is_zero());
        assert!(!reg::A0.is_zero());
    }

    #[test]
    fn ordering_follows_index() {
        assert!(reg::ZERO < reg::RA);
        assert!(fregs::FT0 < fregs::FT11);
    }
}
