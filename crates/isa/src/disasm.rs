//! Textual disassembly: `Display` for [`Instr`].

use std::fmt;

use crate::instr::{
    AluImmOp, AluOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpBinOp, FpCmpOp, Instr, LoadWidth,
    StoreWidth, VoteOp,
};

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch { op, rs1, rs2, offset } => {
                let name = match op {
                    BranchOp::Eq => "beq",
                    BranchOp::Ne => "bne",
                    BranchOp::Lt => "blt",
                    BranchOp::Ge => "bge",
                    BranchOp::Ltu => "bltu",
                    BranchOp::Geu => "bgeu",
                };
                write!(f, "{name} {rs1}, {rs2}, {offset}")
            }
            Instr::Load { width, rd, rs1, offset } => {
                let name = match width {
                    LoadWidth::Byte => "lb",
                    LoadWidth::Half => "lh",
                    LoadWidth::Word => "lw",
                    LoadWidth::ByteU => "lbu",
                    LoadWidth::HalfU => "lhu",
                };
                write!(f, "{name} {rd}, {offset}({rs1})")
            }
            Instr::Store { width, rs2, rs1, offset } => {
                let name = match width {
                    StoreWidth::Byte => "sb",
                    StoreWidth::Half => "sh",
                    StoreWidth::Word => "sw",
                };
                write!(f, "{name} {rs2}, {offset}({rs1})")
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let name = match op {
                    AluImmOp::Add => "addi",
                    AluImmOp::Slt => "slti",
                    AluImmOp::Sltu => "sltiu",
                    AluImmOp::Xor => "xori",
                    AluImmOp::Or => "ori",
                    AluImmOp::And => "andi",
                    AluImmOp::Sll => "slli",
                    AluImmOp::Srl => "srli",
                    AluImmOp::Sra => "srai",
                };
                write!(f, "{name} {rd}, {rs1}, {imm}")
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let name = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Sll => "sll",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                    AluOp::Xor => "xor",
                    AluOp::Srl => "srl",
                    AluOp::Sra => "sra",
                    AluOp::Or => "or",
                    AluOp::And => "and",
                    AluOp::Mul => "mul",
                    AluOp::Mulh => "mulh",
                    AluOp::Mulhsu => "mulhsu",
                    AluOp::Mulhu => "mulhu",
                    AluOp::Div => "div",
                    AluOp::Divu => "divu",
                    AluOp::Rem => "rem",
                    AluOp::Remu => "remu",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::Fence => f.write_str("fence"),
            Instr::Ecall => f.write_str("ecall"),
            Instr::Ebreak => f.write_str("ebreak"),
            Instr::Csr { op, rd, src, csr } => {
                let (reg_name, imm_name) = match op {
                    CsrOp::ReadWrite => ("csrrw", "csrrwi"),
                    CsrOp::ReadSet => ("csrrs", "csrrsi"),
                    CsrOp::ReadClear => ("csrrc", "csrrci"),
                };
                match src {
                    CsrSrc::Reg(rs1) => write!(f, "{reg_name} {rd}, {csr}, {rs1}"),
                    CsrSrc::Imm(imm) => write!(f, "{imm_name} {rd}, {csr}, {imm}"),
                }
            }
            Instr::Flw { rd, rs1, offset } => write!(f, "flw {rd}, {offset}({rs1})"),
            Instr::Fsw { rs2, rs1, offset } => write!(f, "fsw {rs2}, {offset}({rs1})"),
            Instr::FpOp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpBinOp::Add => "fadd.s",
                    FpBinOp::Sub => "fsub.s",
                    FpBinOp::Mul => "fmul.s",
                    FpBinOp::Div => "fdiv.s",
                    FpBinOp::SgnJ => "fsgnj.s",
                    FpBinOp::SgnJN => "fsgnjn.s",
                    FpBinOp::SgnJX => "fsgnjx.s",
                    FpBinOp::Min => "fmin.s",
                    FpBinOp::Max => "fmax.s",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::FpFma { op, rd, rs1, rs2, rs3 } => {
                let name = match op {
                    FmaOp::MAdd => "fmadd.s",
                    FmaOp::MSub => "fmsub.s",
                    FmaOp::NMSub => "fnmsub.s",
                    FmaOp::NMAdd => "fnmadd.s",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}, {rs3}")
            }
            Instr::FpSqrt { rd, rs1 } => write!(f, "fsqrt.s {rd}, {rs1}"),
            Instr::FpCmp { op, rd, rs1, rs2 } => {
                let name = match op {
                    FpCmpOp::Eq => "feq.s",
                    FpCmpOp::Lt => "flt.s",
                    FpCmpOp::Le => "fle.s",
                };
                write!(f, "{name} {rd}, {rs1}, {rs2}")
            }
            Instr::FpCvtToInt { signed, rd, rs1 } => {
                let name = if signed { "fcvt.w.s" } else { "fcvt.wu.s" };
                write!(f, "{name} {rd}, {rs1}")
            }
            Instr::FpCvtFromInt { signed, rd, rs1 } => {
                let name = if signed { "fcvt.s.w" } else { "fcvt.s.wu" };
                write!(f, "{name} {rd}, {rs1}")
            }
            Instr::FpMvToInt { rd, rs1 } => write!(f, "fmv.x.w {rd}, {rs1}"),
            Instr::FpMvFromInt { rd, rs1 } => write!(f, "fmv.w.x {rd}, {rs1}"),
            Instr::FpClass { rd, rs1 } => write!(f, "fclass.s {rd}, {rs1}"),
            Instr::Tmc { rs1 } => write!(f, "vx_tmc {rs1}"),
            Instr::Wspawn { rs1, rs2 } => write!(f, "vx_wspawn {rs1}, {rs2}"),
            Instr::Split { rs1, offset } => write!(f, "vx_split {rs1}, {offset}"),
            Instr::Join => f.write_str("vx_join"),
            Instr::Bar { rs1, rs2 } => write!(f, "vx_bar {rs1}, {rs2}"),
            Instr::Vote { op, rd, rs1 } => {
                let name = match op {
                    VoteOp::Any => "vx_vote.any",
                    VoteOp::All => "vx_vote.all",
                    VoteOp::Ballot => "vx_vote.ballot",
                };
                write!(f, "{name} {rd}, {rs1}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fregs, reg};

    #[test]
    fn renders_common_forms() {
        let i = Instr::Load { width: LoadWidth::Word, rd: reg::A0, rs1: reg::SP, offset: -4 };
        assert_eq!(i.to_string(), "lw a0, -4(sp)");
        let i = Instr::Lui { rd: reg::T0, imm: 0x10000 };
        assert_eq!(i.to_string(), "lui t0, 0x10");
        let i = Instr::FpFma {
            op: FmaOp::MAdd,
            rd: fregs::FT0,
            rs1: fregs::FA0,
            rs2: fregs::FA1,
            rs3: fregs::FT0,
        };
        assert_eq!(i.to_string(), "fmadd.s ft0, fa0, fa1, ft0");
        let i = Instr::Vote { op: VoteOp::Any, rd: reg::T1, rs1: reg::T2 };
        assert_eq!(i.to_string(), "vx_vote.any t1, t2");
    }

    #[test]
    fn csr_immediate_form() {
        use crate::csrs;
        let i = Instr::Csr {
            op: CsrOp::ReadSet,
            rd: reg::A0,
            src: CsrSrc::Imm(0),
            csr: csrs::THREAD_ID,
        };
        assert_eq!(i.to_string(), "csrrsi a0, thread_id, 0");
    }
}
