//! The decoded instruction representation and its classification helpers.

use crate::{Csr, FReg, Reg};

/// Conditional branch comparison.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal (`beq`).
    Eq,
    /// Branch if not equal (`bne`).
    Ne,
    /// Branch if less than, signed (`blt`).
    Lt,
    /// Branch if greater or equal, signed (`bge`).
    Ge,
    /// Branch if less than, unsigned (`bltu`).
    Ltu,
    /// Branch if greater or equal, unsigned (`bgeu`).
    Geu,
}

/// Width and extension behaviour of an integer load.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LoadWidth {
    /// `lb`: sign-extended byte.
    Byte,
    /// `lh`: sign-extended half-word.
    Half,
    /// `lw`: 32-bit word.
    Word,
    /// `lbu`: zero-extended byte.
    ByteU,
    /// `lhu`: zero-extended half-word.
    HalfU,
}

/// Width of an integer store.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum StoreWidth {
    /// `sb`: byte.
    Byte,
    /// `sh`: half-word.
    Half,
    /// `sw`: 32-bit word.
    Word,
}

/// Register-immediate ALU operation (`OP-IMM` major opcode).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `addi`.
    Add,
    /// `slti` (set if less than, signed).
    Slt,
    /// `sltiu` (set if less than, unsigned).
    Sltu,
    /// `xori`.
    Xor,
    /// `ori`.
    Or,
    /// `andi`.
    And,
    /// `slli` (shift left logical).
    Sll,
    /// `srli` (shift right logical).
    Srl,
    /// `srai` (shift right arithmetic).
    Sra,
}

/// Register-register ALU operation (`OP` major opcode), including the
/// M extension.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`.
    Add,
    /// `sub`.
    Sub,
    /// `sll`.
    Sll,
    /// `slt`.
    Slt,
    /// `sltu`.
    Sltu,
    /// `xor`.
    Xor,
    /// `srl`.
    Srl,
    /// `sra`.
    Sra,
    /// `or`.
    Or,
    /// `and`.
    And,
    /// `mul` (low 32 bits of the product).
    Mul,
    /// `mulh` (high 32 bits, signed×signed).
    Mulh,
    /// `mulhsu` (high 32 bits, signed×unsigned).
    Mulhsu,
    /// `mulhu` (high 32 bits, unsigned×unsigned).
    Mulhu,
    /// `div` (signed).
    Div,
    /// `divu` (unsigned).
    Divu,
    /// `rem` (signed).
    Rem,
    /// `remu` (unsigned).
    Remu,
}

impl AluOp {
    /// Whether this is an M-extension multiply (not divide) operation.
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu)
    }

    /// Whether this is an M-extension divide/remainder operation.
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu)
    }
}

/// CSR access operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// `csrrw`: atomic read/write.
    ReadWrite,
    /// `csrrs`: atomic read and set bits.
    ReadSet,
    /// `csrrc`: atomic read and clear bits.
    ReadClear,
}

/// Source operand of a CSR access: a register or a 5-bit zero-extended
/// immediate (the `csrr*i` forms).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form (`csrrw`/`csrrs`/`csrrc`).
    Reg(Reg),
    /// Immediate form (`csrrwi`/`csrrsi`/`csrrci`), value in 0..32.
    Imm(u8),
}

/// Two-operand single-precision floating-point operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FpBinOp {
    /// `fadd.s`.
    Add,
    /// `fsub.s`.
    Sub,
    /// `fmul.s`.
    Mul,
    /// `fdiv.s`.
    Div,
    /// `fsgnj.s` (copy sign of rs2).
    SgnJ,
    /// `fsgnjn.s` (copy negated sign of rs2).
    SgnJN,
    /// `fsgnjx.s` (xor signs).
    SgnJX,
    /// `fmin.s`.
    Min,
    /// `fmax.s`.
    Max,
}

/// Fused multiply-add family (R4-type major opcodes).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FmaOp {
    /// `fmadd.s`: `rs1*rs2 + rs3`.
    MAdd,
    /// `fmsub.s`: `rs1*rs2 - rs3`.
    MSub,
    /// `fnmsub.s`: `-(rs1*rs2) + rs3`.
    NMSub,
    /// `fnmadd.s`: `-(rs1*rs2) - rs3`.
    NMAdd,
}

/// Floating-point comparison writing an integer register.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum FpCmpOp {
    /// `feq.s`.
    Eq,
    /// `flt.s`.
    Lt,
    /// `fle.s`.
    Le,
}

/// Warp-uniform vote reduction (Vortex SIMT extension).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum VoteOp {
    /// Result is 1 iff any active lane's operand is non-zero.
    Any,
    /// Result is 1 iff all active lanes' operands are non-zero.
    All,
    /// Result is the bit mask of active lanes with non-zero operand.
    Ballot,
}

/// A reference to either an integer or a floating-point register, used by
/// the scoreboard to track hazards uniformly.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum RegRef {
    /// Integer register file.
    Int(Reg),
    /// Floating-point register file.
    Fp(FReg),
}

impl RegRef {
    /// Whether this reference is the hard-wired integer zero register
    /// (which never participates in hazards).
    pub fn is_zero(self) -> bool {
        matches!(self, RegRef::Int(r) if r.is_zero())
    }

    /// A dense index in 0..64 (integer regs first), useful for scoreboards.
    pub fn dense_index(self) -> usize {
        match self {
            RegRef::Int(r) => r.num() as usize,
            RegRef::Fp(r) => 32 + r.num() as usize,
        }
    }
}

/// Functional-unit class of an instruction, used by the timing model to
/// pick issue latencies.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer ALU (also LUI/AUIPC and CSR moves).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide/remainder.
    Div,
    /// Pipelined FPU (add/mul/fma/convert/compare/sign ops).
    Fpu,
    /// Floating divide.
    FDiv,
    /// Floating square root.
    FSqrt,
    /// Memory load (int or float).
    Load,
    /// Memory store (int or float).
    Store,
    /// Branches and jumps.
    Branch,
    /// SIMT control (tmc/wspawn/split/join/bar/vote).
    Simt,
    /// Environment (ecall/ebreak/fence).
    Sys,
}

/// A decoded instruction.
///
/// This is the representation executed by the simulator and produced by the
/// assembler. All PC-relative offsets are **byte** offsets relative to the
/// address of the instruction itself.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm`: load upper immediate (`imm` is the final 32-bit value,
    /// i.e. already shifted; its low 12 bits are zero).
    Lui {
        /// Destination.
        rd: Reg,
        /// Upper-immediate value with low 12 bits zero.
        imm: i32,
    },
    /// `auipc rd, imm`: add upper immediate to PC.
    Auipc {
        /// Destination.
        rd: Reg,
        /// Upper-immediate value with low 12 bits zero.
        imm: i32,
    },
    /// `jal rd, offset`: jump and link.
    Jal {
        /// Link destination (`zero` to discard).
        rd: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)`: indirect jump and link.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed byte offset added to `rs1`.
        offset: i32,
    },
    /// Conditional branch. The simulator requires the condition to be
    /// **warp-uniform** (identical across active lanes); divergent
    /// conditions must use [`Instr::Split`].
    Branch {
        /// Comparison.
        op: BranchOp,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Signed byte offset from this instruction.
        offset: i32,
    },
    /// Integer load.
    Load {
        /// Width/extension.
        width: LoadWidth,
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Integer store.
    Store {
        /// Width.
        width: StoreWidth,
        /// Value to store.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Register-immediate ALU operation.
    OpImm {
        /// Operation.
        op: AluImmOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Sign-extended 12-bit immediate (5-bit shamt for shifts).
        imm: i32,
    },
    /// Register-register ALU operation (including M extension).
    Op {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left source.
        rs1: Reg,
        /// Right source.
        rs2: Reg,
    },
    /// `fence`: treated as a no-op by the in-order simulator.
    Fence,
    /// `ecall`: raises an environment-call trap (used to signal errors).
    Ecall,
    /// `ebreak`: raises a breakpoint trap.
    Ebreak,
    /// CSR read-modify-write.
    Csr {
        /// Operation.
        op: CsrOp,
        /// Destination for the old CSR value.
        rd: Reg,
        /// Source operand (register or 5-bit immediate).
        src: CsrSrc,
        /// Target CSR.
        csr: Csr,
    },
    /// `flw rd, offset(rs1)`: float load.
    Flw {
        /// FP destination.
        rd: FReg,
        /// Integer base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// `fsw rs2, offset(rs1)`: float store.
    Fsw {
        /// FP value to store.
        rs2: FReg,
        /// Integer base address register.
        rs1: Reg,
        /// Signed byte offset.
        offset: i32,
    },
    /// Two-operand FP arithmetic.
    FpOp {
        /// Operation.
        op: FpBinOp,
        /// Destination.
        rd: FReg,
        /// Left source.
        rs1: FReg,
        /// Right source.
        rs2: FReg,
    },
    /// Fused multiply-add.
    FpFma {
        /// Variant.
        op: FmaOp,
        /// Destination.
        rd: FReg,
        /// Multiplicand.
        rs1: FReg,
        /// Multiplier.
        rs2: FReg,
        /// Addend.
        rs3: FReg,
    },
    /// `fsqrt.s rd, rs1`.
    FpSqrt {
        /// Destination.
        rd: FReg,
        /// Source.
        rs1: FReg,
    },
    /// FP comparison writing an integer register.
    FpCmp {
        /// Comparison.
        op: FpCmpOp,
        /// Integer destination (1 or 0).
        rd: Reg,
        /// Left source.
        rs1: FReg,
        /// Right source.
        rs2: FReg,
    },
    /// `fcvt.w.s` / `fcvt.wu.s`: float → integer conversion.
    FpCvtToInt {
        /// Signed (`fcvt.w.s`) or unsigned (`fcvt.wu.s`).
        signed: bool,
        /// Integer destination.
        rd: Reg,
        /// FP source.
        rs1: FReg,
    },
    /// `fcvt.s.w` / `fcvt.s.wu`: integer → float conversion.
    FpCvtFromInt {
        /// Signed (`fcvt.s.w`) or unsigned (`fcvt.s.wu`).
        signed: bool,
        /// FP destination.
        rd: FReg,
        /// Integer source.
        rs1: Reg,
    },
    /// `fmv.x.w`: move raw FP bits to an integer register.
    FpMvToInt {
        /// Integer destination.
        rd: Reg,
        /// FP source.
        rs1: FReg,
    },
    /// `fmv.w.x`: move raw integer bits to an FP register.
    FpMvFromInt {
        /// FP destination.
        rd: FReg,
        /// Integer source.
        rs1: Reg,
    },
    /// `fclass.s`: classify an FP value (mask in an integer register).
    FpClass {
        /// Integer destination.
        rd: Reg,
        /// FP source.
        rs1: FReg,
    },
    /// `vx_tmc rs1`: set the warp's thread mask to the value in `rs1`
    /// (read from the lowest-numbered active lane). A zero mask halts the
    /// warp.
    Tmc {
        /// Mask source.
        rs1: Reg,
    },
    /// `vx_wspawn rs1, rs2`: activate warps `1..rs1` of the executing core
    /// at the PC contained in `rs2` with a full thread mask. Only warp 0
    /// may spawn.
    Wspawn {
        /// Number of warps that should be running after the spawn.
        rs1: Reg,
        /// Entry PC for the spawned warps.
        rs2: Reg,
    },
    /// `vx_split rs1, offset`: SIMT divergence. Evaluates `rs1` per lane as
    /// a predicate and pushes an IPDOM entry:
    ///
    /// * lanes with a non-zero predicate continue at the next instruction;
    /// * lanes with a zero predicate resume later at `pc + offset`
    ///   (the *else* path);
    /// * if either side is empty no divergence occurs, a marker entry is
    ///   pushed, and execution continues on the non-empty side.
    ///
    /// Both paths must reach the **same** [`Instr::Join`], which switches to
    /// the pending else-path and finally restores the pre-split mask.
    Split {
        /// Per-lane predicate register.
        rs1: Reg,
        /// Signed byte offset from this instruction to the else-path.
        offset: i32,
    },
    /// `vx_join`: SIMT reconvergence point for a matching [`Instr::Split`].
    Join,
    /// `vx_bar rs1, rs2`: block the executing warp at barrier id `rs1`
    /// until `rs2` warps of the core have arrived.
    Bar {
        /// Barrier identifier.
        rs1: Reg,
        /// Number of participating warps.
        rs2: Reg,
    },
    /// `vx_vote.* rd, rs1`: warp-uniform reduction over the active lanes'
    /// `rs1` values; every active lane receives the same result in `rd`.
    Vote {
        /// Reduction kind.
        op: VoteOp,
        /// Uniform destination.
        rd: Reg,
        /// Per-lane predicate source.
        rs1: Reg,
    },
}

impl Instr {
    /// The functional-unit class used by the timing model.
    pub fn exec_class(&self) -> ExecClass {
        match self {
            Instr::Lui { .. } | Instr::Auipc { .. } | Instr::OpImm { .. } => ExecClass::Alu,
            Instr::Op { op, .. } => {
                if op.is_mul() {
                    ExecClass::Mul
                } else if op.is_div() {
                    ExecClass::Div
                } else {
                    ExecClass::Alu
                }
            }
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. } => ExecClass::Branch,
            Instr::Load { .. } | Instr::Flw { .. } => ExecClass::Load,
            Instr::Store { .. } | Instr::Fsw { .. } => ExecClass::Store,
            Instr::Fence | Instr::Ecall | Instr::Ebreak => ExecClass::Sys,
            Instr::Csr { .. } => ExecClass::Alu,
            Instr::FpOp { op, .. } => match op {
                FpBinOp::Div => ExecClass::FDiv,
                _ => ExecClass::Fpu,
            },
            Instr::FpSqrt { .. } => ExecClass::FSqrt,
            Instr::FpFma { .. }
            | Instr::FpCmp { .. }
            | Instr::FpCvtToInt { .. }
            | Instr::FpCvtFromInt { .. }
            | Instr::FpMvToInt { .. }
            | Instr::FpMvFromInt { .. }
            | Instr::FpClass { .. } => ExecClass::Fpu,
            Instr::Tmc { .. }
            | Instr::Wspawn { .. }
            | Instr::Split { .. }
            | Instr::Join
            | Instr::Bar { .. }
            | Instr::Vote { .. } => ExecClass::Simt,
        }
    }

    /// Source registers read by this instruction (up to three).
    pub fn src_regs(&self) -> [Option<RegRef>; 3] {
        use RegRef::{Fp, Int};
        let (a, b, c) = match *self {
            Instr::Lui { .. } | Instr::Auipc { .. } | Instr::Jal { .. } => (None, None, None),
            Instr::Jalr { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::Branch { rs1, rs2, .. } => (Some(Int(rs1)), Some(Int(rs2)), None),
            Instr::Load { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::Store { rs1, rs2, .. } => (Some(Int(rs1)), Some(Int(rs2)), None),
            Instr::OpImm { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::Op { rs1, rs2, .. } => (Some(Int(rs1)), Some(Int(rs2)), None),
            Instr::Fence | Instr::Ecall | Instr::Ebreak => (None, None, None),
            Instr::Csr { src, .. } => match src {
                CsrSrc::Reg(rs1) => (Some(Int(rs1)), None, None),
                CsrSrc::Imm(_) => (None, None, None),
            },
            Instr::Flw { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::Fsw { rs1, rs2, .. } => (Some(Int(rs1)), Some(Fp(rs2)), None),
            Instr::FpOp { rs1, rs2, .. } => (Some(Fp(rs1)), Some(Fp(rs2)), None),
            Instr::FpFma { rs1, rs2, rs3, .. } => (Some(Fp(rs1)), Some(Fp(rs2)), Some(Fp(rs3))),
            Instr::FpSqrt { rs1, .. } => (Some(Fp(rs1)), None, None),
            Instr::FpCmp { rs1, rs2, .. } => (Some(Fp(rs1)), Some(Fp(rs2)), None),
            Instr::FpCvtToInt { rs1, .. } => (Some(Fp(rs1)), None, None),
            Instr::FpCvtFromInt { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::FpMvToInt { rs1, .. } => (Some(Fp(rs1)), None, None),
            Instr::FpMvFromInt { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::FpClass { rs1, .. } => (Some(Fp(rs1)), None, None),
            Instr::Tmc { rs1 } => (Some(Int(rs1)), None, None),
            Instr::Wspawn { rs1, rs2 } => (Some(Int(rs1)), Some(Int(rs2)), None),
            Instr::Split { rs1, .. } => (Some(Int(rs1)), None, None),
            Instr::Join => (None, None, None),
            Instr::Bar { rs1, rs2 } => (Some(Int(rs1)), Some(Int(rs2)), None),
            Instr::Vote { rs1, .. } => (Some(Int(rs1)), None, None),
        };
        [a, b, c]
    }

    /// Destination register written by this instruction, if any.
    ///
    /// Writes to the integer zero register are reported as `None` since they
    /// have no architectural effect.
    pub fn dst_reg(&self) -> Option<RegRef> {
        use RegRef::{Fp, Int};
        let dst = match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::Csr { rd, .. }
            | Instr::FpCmp { rd, .. }
            | Instr::FpCvtToInt { rd, .. }
            | Instr::FpMvToInt { rd, .. }
            | Instr::FpClass { rd, .. }
            | Instr::Vote { rd, .. } => Int(rd),
            Instr::Flw { rd, .. }
            | Instr::FpOp { rd, .. }
            | Instr::FpFma { rd, .. }
            | Instr::FpSqrt { rd, .. }
            | Instr::FpCvtFromInt { rd, .. }
            | Instr::FpMvFromInt { rd, .. } => Fp(rd),
            Instr::Branch { .. }
            | Instr::Store { .. }
            | Instr::Fsw { .. }
            | Instr::Fence
            | Instr::Ecall
            | Instr::Ebreak
            | Instr::Tmc { .. }
            | Instr::Wspawn { .. }
            | Instr::Split { .. }
            | Instr::Join
            | Instr::Bar { .. } => return None,
        };
        if dst.is_zero() {
            None
        } else {
            Some(dst)
        }
    }

    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        matches!(self.exec_class(), ExecClass::Load | ExecClass::Store)
    }

    /// Whether this instruction can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Branch { .. }
                | Instr::Split { .. }
                | Instr::Join
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fregs, reg};

    #[test]
    fn exec_class_covers_major_groups() {
        let add = Instr::Op { op: AluOp::Add, rd: reg::A0, rs1: reg::A1, rs2: reg::A2 };
        assert_eq!(add.exec_class(), ExecClass::Alu);
        let mul = Instr::Op { op: AluOp::Mul, rd: reg::A0, rs1: reg::A1, rs2: reg::A2 };
        assert_eq!(mul.exec_class(), ExecClass::Mul);
        let div = Instr::Op { op: AluOp::Rem, rd: reg::A0, rs1: reg::A1, rs2: reg::A2 };
        assert_eq!(div.exec_class(), ExecClass::Div);
        let fdiv =
            Instr::FpOp { op: FpBinOp::Div, rd: fregs::FT0, rs1: fregs::FT1, rs2: fregs::FT2 };
        assert_eq!(fdiv.exec_class(), ExecClass::FDiv);
        assert_eq!(Instr::Join.exec_class(), ExecClass::Simt);
    }

    #[test]
    fn zero_destination_is_hidden() {
        let instr = Instr::OpImm { op: AluImmOp::Add, rd: reg::ZERO, rs1: reg::A0, imm: 1 };
        assert_eq!(instr.dst_reg(), None);
        let instr = Instr::OpImm { op: AluImmOp::Add, rd: reg::A1, rs1: reg::A0, imm: 1 };
        assert_eq!(instr.dst_reg(), Some(RegRef::Int(reg::A1)));
    }

    #[test]
    fn fma_reads_three_sources() {
        let fma = Instr::FpFma {
            op: FmaOp::MAdd,
            rd: fregs::FT0,
            rs1: fregs::FA0,
            rs2: fregs::FA1,
            rs3: fregs::FA2,
        };
        let srcs = fma.src_regs();
        assert_eq!(srcs.iter().flatten().count(), 3);
        assert_eq!(fma.dst_reg(), Some(RegRef::Fp(fregs::FT0)));
    }

    #[test]
    fn store_has_no_destination() {
        let st = Instr::Store { width: StoreWidth::Word, rs2: reg::A0, rs1: reg::A1, offset: 0 };
        assert_eq!(st.dst_reg(), None);
        assert!(st.is_mem());
    }

    #[test]
    fn dense_index_separates_files() {
        assert_eq!(RegRef::Int(reg::T6).dense_index(), 31);
        assert_eq!(RegRef::Fp(fregs::FT0).dense_index(), 32);
        assert_eq!(RegRef::Fp(fregs::FT11).dense_index(), 63);
    }

    #[test]
    fn control_classification() {
        assert!(Instr::Jal { rd: reg::ZERO, offset: 8 }.is_control());
        assert!(Instr::Join.is_control());
        assert!(!Instr::Fence.is_control());
    }
}
