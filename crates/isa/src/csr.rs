//! Control and status registers, including the Vortex SIMT identity CSRs.

use std::fmt;

/// A control/status register address (12 bits).
///
/// The SIMT programming model exposes the executing thread's identity and
/// the machine's parallelism through the read-only CSRs in [`csrs`]; they
/// are what lets a kernel compute *which* work-items it owns.
///
/// # Examples
///
/// ```
/// use vortex_isa::{csrs, Csr};
/// assert_eq!(Csr::new(0xCC0), Some(csrs::THREAD_ID));
/// assert_eq!(csrs::THREAD_ID.to_string(), "thread_id");
/// assert_eq!(Csr::new(0x123).unwrap().to_string(), "csr(0x123)");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Csr(u16);

impl Csr {
    /// Creates a CSR address, returning `None` if it does not fit in 12 bits.
    pub const fn new(addr: u16) -> Option<Self> {
        if addr < 0x1000 {
            Some(Csr(addr))
        } else {
            None
        }
    }

    /// Creates a CSR address.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= 0x1000`.
    pub const fn at(addr: u16) -> Self {
        assert!(addr < 0x1000, "CSR address out of range");
        Csr(addr)
    }

    /// The 12-bit CSR address.
    pub const fn addr(self) -> u16 {
        self.0
    }

    /// A human-readable name if this is a well-known CSR.
    pub fn name(self) -> Option<&'static str> {
        Some(match self {
            csrs::THREAD_ID => "thread_id",
            csrs::WARP_ID => "warp_id",
            csrs::CORE_ID => "core_id",
            csrs::THREAD_MASK => "thread_mask",
            csrs::ACTIVE_WARPS => "active_warps",
            csrs::NUM_THREADS => "num_threads",
            csrs::NUM_WARPS => "num_warps",
            csrs::NUM_CORES => "num_cores",
            csrs::MCYCLE => "mcycle",
            csrs::MCYCLE_H => "mcycleh",
            csrs::MINSTRET => "minstret",
            csrs::MINSTRET_H => "minstreth",
            _ => return None,
        })
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "csr({:#x})", self.0),
        }
    }
}

/// Well-known CSR addresses (Vortex SIMT identity registers and counters).
pub mod csrs {
    use super::Csr;

    /// Lane index of the executing thread within its warp (read-only).
    pub const THREAD_ID: Csr = Csr::at(0xCC0);
    /// Index of the executing warp within its core (read-only).
    pub const WARP_ID: Csr = Csr::at(0xCC1);
    /// Index of the executing core within the device (read-only).
    pub const CORE_ID: Csr = Csr::at(0xCC2);
    /// Current thread mask of the executing warp (read-only).
    pub const THREAD_MASK: Csr = Csr::at(0xCC3);
    /// Bit mask of currently active warps on the core (read-only).
    pub const ACTIVE_WARPS: Csr = Csr::at(0xCC4);
    /// Hardware threads (lanes) per warp (read-only).
    pub const NUM_THREADS: Csr = Csr::at(0xFC0);
    /// Hardware warps per core (read-only).
    pub const NUM_WARPS: Csr = Csr::at(0xFC1);
    /// Cores in the device (read-only).
    pub const NUM_CORES: Csr = Csr::at(0xFC2);
    /// Cycle counter, low 32 bits.
    pub const MCYCLE: Csr = Csr::at(0xC00);
    /// Cycle counter, high 32 bits.
    pub const MCYCLE_H: Csr = Csr::at(0xC80);
    /// Retired-instruction counter, low 32 bits.
    pub const MINSTRET: Csr = Csr::at(0xC02);
    /// Retired-instruction counter, high 32 bits.
    pub const MINSTRET_H: Csr = Csr::at(0xC82);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_bounds() {
        assert!(Csr::new(0xFFF).is_some());
        assert!(Csr::new(0x1000).is_none());
    }

    #[test]
    fn known_names() {
        assert_eq!(csrs::NUM_CORES.name(), Some("num_cores"));
        assert_eq!(Csr::at(0x7C0).name(), None);
        assert_eq!(csrs::MCYCLE.to_string(), "mcycle");
    }

    #[test]
    fn identity_csrs_are_distinct() {
        let all = [
            csrs::THREAD_ID,
            csrs::WARP_ID,
            csrs::CORE_ID,
            csrs::THREAD_MASK,
            csrs::ACTIVE_WARPS,
            csrs::NUM_THREADS,
            csrs::NUM_WARPS,
            csrs::NUM_CORES,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
