//! Binary encoding of [`Instr`] into 32-bit RISC-V words.

use std::error::Error;
use std::fmt;

use crate::instr::{
    AluImmOp, AluOp, BranchOp, CsrOp, CsrSrc, FmaOp, FpBinOp, FpCmpOp, Instr, LoadWidth,
    StoreWidth, VoteOp,
};

pub(crate) mod opcodes {
    pub const LUI: u32 = 0x37;
    pub const AUIPC: u32 = 0x17;
    pub const JAL: u32 = 0x6F;
    pub const JALR: u32 = 0x67;
    pub const BRANCH: u32 = 0x63;
    pub const LOAD: u32 = 0x03;
    pub const STORE: u32 = 0x23;
    pub const OP_IMM: u32 = 0x13;
    pub const OP: u32 = 0x33;
    pub const MISC_MEM: u32 = 0x0F;
    pub const SYSTEM: u32 = 0x73;
    pub const LOAD_FP: u32 = 0x07;
    pub const STORE_FP: u32 = 0x27;
    pub const OP_FP: u32 = 0x53;
    pub const FMADD: u32 = 0x43;
    pub const FMSUB: u32 = 0x47;
    pub const FNMSUB: u32 = 0x4B;
    pub const FNMADD: u32 = 0x4F;
    /// Vortex SIMT extension: tmc/wspawn/join/bar/vote.
    pub const CUSTOM0: u32 = 0x0B;
    /// Vortex SIMT extension: fused split (B-type).
    pub const CUSTOM1: u32 = 0x2B;
}

/// Dynamic rounding-mode encoding used for FP arithmetic `funct3`.
pub(crate) const RM_DYN: u32 = 0b111;

/// An error produced when an [`Instr`] cannot be represented in 32 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A signed immediate does not fit the field.
    ImmOutOfRange {
        /// The offending immediate.
        imm: i64,
        /// Width of the destination field in bits.
        bits: u8,
    },
    /// A branch/jump byte offset is not 2-byte aligned.
    Misaligned {
        /// The offending offset.
        offset: i32,
    },
    /// An upper immediate has non-zero low 12 bits.
    DirtyUpperImm {
        /// The offending immediate.
        imm: i32,
    },
    /// A shift amount is outside 0..32.
    ShamtOutOfRange {
        /// The offending shift amount.
        shamt: i32,
    },
    /// A CSR immediate is outside 0..32.
    CsrImmOutOfRange {
        /// The offending immediate.
        imm: u8,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { imm, bits } => {
                write!(f, "immediate {imm} does not fit in {bits} signed bits")
            }
            EncodeError::Misaligned { offset } => {
                write!(f, "control-flow offset {offset} is not 2-byte aligned")
            }
            EncodeError::DirtyUpperImm { imm } => {
                write!(f, "upper immediate {imm:#x} has non-zero low 12 bits")
            }
            EncodeError::ShamtOutOfRange { shamt } => {
                write!(f, "shift amount {shamt} is outside 0..32")
            }
            EncodeError::CsrImmOutOfRange { imm } => {
                write!(f, "CSR immediate {imm} is outside 0..32")
            }
        }
    }
}

impl Error for EncodeError {}

fn check_signed(imm: i64, bits: u8) -> Result<(), EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if imm < min || imm > max {
        return Err(EncodeError::ImmOutOfRange { imm, bits });
    }
    Ok(())
}

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> Result<u32, EncodeError> {
    check_signed(imm as i64, 12)?;
    let imm = (imm as u32) & 0xFFF;
    Ok((imm << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode)
}

fn s_type(imm: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> Result<u32, EncodeError> {
    check_signed(imm as i64, 12)?;
    let imm = (imm as u32) & 0xFFF;
    Ok(((imm >> 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode)
}

fn b_type(offset: i32, rs2: u32, rs1: u32, funct3: u32, opcode: u32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::Misaligned { offset });
    }
    check_signed(offset as i64, 13)?;
    let imm = offset as u32;
    let bit12 = (imm >> 12) & 1;
    let bits10_5 = (imm >> 5) & 0x3F;
    let bits4_1 = (imm >> 1) & 0xF;
    let bit11 = (imm >> 11) & 1;
    Ok((bit12 << 31)
        | (bits10_5 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (bits4_1 << 8)
        | (bit11 << 7)
        | opcode)
}

fn u_type(imm: i32, rd: u32, opcode: u32) -> Result<u32, EncodeError> {
    if imm & 0xFFF != 0 {
        return Err(EncodeError::DirtyUpperImm { imm });
    }
    Ok((imm as u32) | (rd << 7) | opcode)
}

fn j_type(offset: i32, rd: u32, opcode: u32) -> Result<u32, EncodeError> {
    if offset % 2 != 0 {
        return Err(EncodeError::Misaligned { offset });
    }
    check_signed(offset as i64, 21)?;
    let imm = offset as u32;
    let bit20 = (imm >> 20) & 1;
    let bits10_1 = (imm >> 1) & 0x3FF;
    let bit11 = (imm >> 11) & 1;
    let bits19_12 = (imm >> 12) & 0xFF;
    Ok((bit20 << 31) | (bits10_1 << 21) | (bit11 << 20) | (bits19_12 << 12) | (rd << 7) | opcode)
}

/// Encodes an instruction into its 32-bit binary form.
///
/// # Errors
///
/// Returns an [`EncodeError`] when an immediate or offset does not fit its
/// encoding field, or is misaligned.
///
/// # Examples
///
/// ```
/// use vortex_isa::{encode, Instr, reg};
/// // jal zero, -4 (tight self-loop backwards)
/// let word = encode(Instr::Jal { rd: reg::ZERO, offset: -4 })?;
/// assert_eq!(word & 0x7F, 0x6F);
/// # Ok::<(), vortex_isa::EncodeError>(())
/// ```
pub fn encode(instr: Instr) -> Result<u32, EncodeError> {
    use opcodes::*;
    let r = |r: crate::Reg| r.num() as u32;
    let f = |r: crate::FReg| r.num() as u32;
    match instr {
        Instr::Lui { rd, imm } => u_type(imm, r(rd), LUI),
        Instr::Auipc { rd, imm } => u_type(imm, r(rd), AUIPC),
        Instr::Jal { rd, offset } => j_type(offset, r(rd), JAL),
        Instr::Jalr { rd, rs1, offset } => i_type(offset, r(rs1), 0, r(rd), JALR),
        Instr::Branch { op, rs1, rs2, offset } => {
            let funct3 = match op {
                BranchOp::Eq => 0,
                BranchOp::Ne => 1,
                BranchOp::Lt => 4,
                BranchOp::Ge => 5,
                BranchOp::Ltu => 6,
                BranchOp::Geu => 7,
            };
            b_type(offset, r(rs2), r(rs1), funct3, BRANCH)
        }
        Instr::Load { width, rd, rs1, offset } => {
            let funct3 = match width {
                LoadWidth::Byte => 0,
                LoadWidth::Half => 1,
                LoadWidth::Word => 2,
                LoadWidth::ByteU => 4,
                LoadWidth::HalfU => 5,
            };
            i_type(offset, r(rs1), funct3, r(rd), LOAD)
        }
        Instr::Store { width, rs2, rs1, offset } => {
            let funct3 = match width {
                StoreWidth::Byte => 0,
                StoreWidth::Half => 1,
                StoreWidth::Word => 2,
            };
            s_type(offset, r(rs2), r(rs1), funct3, STORE)
        }
        Instr::OpImm { op, rd, rs1, imm } => match op {
            AluImmOp::Add => i_type(imm, r(rs1), 0, r(rd), OP_IMM),
            AluImmOp::Slt => i_type(imm, r(rs1), 2, r(rd), OP_IMM),
            AluImmOp::Sltu => i_type(imm, r(rs1), 3, r(rd), OP_IMM),
            AluImmOp::Xor => i_type(imm, r(rs1), 4, r(rd), OP_IMM),
            AluImmOp::Or => i_type(imm, r(rs1), 6, r(rd), OP_IMM),
            AluImmOp::And => i_type(imm, r(rs1), 7, r(rd), OP_IMM),
            AluImmOp::Sll | AluImmOp::Srl | AluImmOp::Sra => {
                if !(0..32).contains(&imm) {
                    return Err(EncodeError::ShamtOutOfRange { shamt: imm });
                }
                let (funct3, funct7) = match op {
                    AluImmOp::Sll => (1, 0x00),
                    AluImmOp::Srl => (5, 0x00),
                    _ => (5, 0x20),
                };
                Ok(r_type(funct7, imm as u32, r(rs1), funct3, r(rd), OP_IMM))
            }
        },
        Instr::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0, 0x00),
                AluOp::Sub => (0, 0x20),
                AluOp::Sll => (1, 0x00),
                AluOp::Slt => (2, 0x00),
                AluOp::Sltu => (3, 0x00),
                AluOp::Xor => (4, 0x00),
                AluOp::Srl => (5, 0x00),
                AluOp::Sra => (5, 0x20),
                AluOp::Or => (6, 0x00),
                AluOp::And => (7, 0x00),
                AluOp::Mul => (0, 0x01),
                AluOp::Mulh => (1, 0x01),
                AluOp::Mulhsu => (2, 0x01),
                AluOp::Mulhu => (3, 0x01),
                AluOp::Div => (4, 0x01),
                AluOp::Divu => (5, 0x01),
                AluOp::Rem => (6, 0x01),
                AluOp::Remu => (7, 0x01),
            };
            Ok(r_type(funct7, r(rs2), r(rs1), funct3, r(rd), OP))
        }
        Instr::Fence => Ok(MISC_MEM),
        Instr::Ecall => Ok(SYSTEM),
        Instr::Ebreak => Ok((1 << 20) | SYSTEM),
        Instr::Csr { op, rd, src, csr } => {
            let base_funct3 = match op {
                CsrOp::ReadWrite => 1,
                CsrOp::ReadSet => 2,
                CsrOp::ReadClear => 3,
            };
            let (funct3, field) = match src {
                CsrSrc::Reg(rs1) => (base_funct3, r(rs1)),
                CsrSrc::Imm(imm) => {
                    if imm >= 32 {
                        return Err(EncodeError::CsrImmOutOfRange { imm });
                    }
                    (base_funct3 + 4, imm as u32)
                }
            };
            Ok(((csr.addr() as u32) << 20) | (field << 15) | (funct3 << 12) | (r(rd) << 7) | SYSTEM)
        }
        Instr::Flw { rd, rs1, offset } => i_type(offset, r(rs1), 2, f(rd), LOAD_FP),
        Instr::Fsw { rs2, rs1, offset } => s_type(offset, f(rs2), r(rs1), 2, STORE_FP),
        Instr::FpOp { op, rd, rs1, rs2 } => {
            let (funct7, funct3) = match op {
                FpBinOp::Add => (0x00, RM_DYN),
                FpBinOp::Sub => (0x04, RM_DYN),
                FpBinOp::Mul => (0x08, RM_DYN),
                FpBinOp::Div => (0x0C, RM_DYN),
                FpBinOp::SgnJ => (0x10, 0),
                FpBinOp::SgnJN => (0x10, 1),
                FpBinOp::SgnJX => (0x10, 2),
                FpBinOp::Min => (0x14, 0),
                FpBinOp::Max => (0x14, 1),
            };
            Ok(r_type(funct7, f(rs2), f(rs1), funct3, f(rd), OP_FP))
        }
        Instr::FpFma { op, rd, rs1, rs2, rs3 } => {
            let opcode = match op {
                FmaOp::MAdd => FMADD,
                FmaOp::MSub => FMSUB,
                FmaOp::NMSub => FNMSUB,
                FmaOp::NMAdd => FNMADD,
            };
            Ok((f(rs3) << 27)
                | (f(rs2) << 20)
                | (f(rs1) << 15)
                | (RM_DYN << 12)
                | (f(rd) << 7)
                | opcode)
        }
        Instr::FpSqrt { rd, rs1 } => Ok(r_type(0x2C, 0, f(rs1), RM_DYN, f(rd), OP_FP)),
        Instr::FpCmp { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                FpCmpOp::Le => 0,
                FpCmpOp::Lt => 1,
                FpCmpOp::Eq => 2,
            };
            Ok(r_type(0x50, f(rs2), f(rs1), funct3, r(rd), OP_FP))
        }
        Instr::FpCvtToInt { signed, rd, rs1 } => {
            Ok(r_type(0x60, if signed { 0 } else { 1 }, f(rs1), RM_DYN, r(rd), OP_FP))
        }
        Instr::FpCvtFromInt { signed, rd, rs1 } => {
            Ok(r_type(0x68, if signed { 0 } else { 1 }, r(rs1), RM_DYN, f(rd), OP_FP))
        }
        Instr::FpMvToInt { rd, rs1 } => Ok(r_type(0x70, 0, f(rs1), 0, r(rd), OP_FP)),
        Instr::FpMvFromInt { rd, rs1 } => Ok(r_type(0x78, 0, r(rs1), 0, f(rd), OP_FP)),
        Instr::FpClass { rd, rs1 } => Ok(r_type(0x70, 0, f(rs1), 1, r(rd), OP_FP)),
        Instr::Tmc { rs1 } => Ok(r_type(0, 0, r(rs1), 0, 0, CUSTOM0)),
        Instr::Wspawn { rs1, rs2 } => Ok(r_type(0, r(rs2), r(rs1), 1, 0, CUSTOM0)),
        Instr::Split { rs1, offset } => b_type(offset, 0, r(rs1), 0, CUSTOM1),
        Instr::Join => Ok(r_type(0, 0, 0, 3, 0, CUSTOM0)),
        Instr::Bar { rs1, rs2 } => Ok(r_type(0, r(rs2), r(rs1), 4, 0, CUSTOM0)),
        Instr::Vote { op, rd, rs1 } => {
            let funct7 = match op {
                VoteOp::Any => 0,
                VoteOp::All => 1,
                VoteOp::Ballot => 2,
            };
            Ok(r_type(funct7, 0, r(rs1), 6, r(rd), CUSTOM0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{csrs, fregs, reg};

    #[test]
    fn encodes_known_words() {
        // addi a0, a0, 1  ==  0x00150513 (standard RISC-V encoding)
        let w =
            encode(Instr::OpImm { op: AluImmOp::Add, rd: reg::A0, rs1: reg::A0, imm: 1 }).unwrap();
        assert_eq!(w, 0x0015_0513);
        // add a0, a1, a2 == 0x00C58533
        let w =
            encode(Instr::Op { op: AluOp::Add, rd: reg::A0, rs1: reg::A1, rs2: reg::A2 }).unwrap();
        assert_eq!(w, 0x00C5_8533);
        // lw a0, 8(sp) == 0x00812503
        let w =
            encode(Instr::Load { width: LoadWidth::Word, rd: reg::A0, rs1: reg::SP, offset: 8 })
                .unwrap();
        assert_eq!(w, 0x0081_2503);
        // ecall == 0x00000073
        assert_eq!(encode(Instr::Ecall).unwrap(), 0x73);
    }

    #[test]
    fn rejects_oversized_immediates() {
        let e = encode(Instr::OpImm { op: AluImmOp::Add, rd: reg::A0, rs1: reg::A0, imm: 4096 });
        assert_eq!(e, Err(EncodeError::ImmOutOfRange { imm: 4096, bits: 12 }));
        let e = encode(Instr::Jal { rd: reg::ZERO, offset: 3 });
        assert_eq!(e, Err(EncodeError::Misaligned { offset: 3 }));
        let e = encode(Instr::Lui { rd: reg::A0, imm: 0x1001 });
        assert_eq!(e, Err(EncodeError::DirtyUpperImm { imm: 0x1001 }));
        let e = encode(Instr::OpImm { op: AluImmOp::Sll, rd: reg::A0, rs1: reg::A0, imm: 32 });
        assert_eq!(e, Err(EncodeError::ShamtOutOfRange { shamt: 32 }));
    }

    #[test]
    fn csr_immediate_range() {
        let ok = Instr::Csr {
            op: CsrOp::ReadSet,
            rd: reg::A0,
            src: CsrSrc::Imm(31),
            csr: csrs::THREAD_ID,
        };
        assert!(encode(ok).is_ok());
        let bad = Instr::Csr {
            op: CsrOp::ReadSet,
            rd: reg::A0,
            src: CsrSrc::Imm(32),
            csr: csrs::THREAD_ID,
        };
        assert_eq!(encode(bad), Err(EncodeError::CsrImmOutOfRange { imm: 32 }));
    }

    #[test]
    fn branch_offset_limits() {
        let ok = Instr::Branch { op: BranchOp::Eq, rs1: reg::A0, rs2: reg::A1, offset: 4094 };
        assert!(encode(ok).is_ok());
        let bad = Instr::Branch { op: BranchOp::Eq, rs1: reg::A0, rs2: reg::A1, offset: 4096 };
        assert!(matches!(encode(bad), Err(EncodeError::ImmOutOfRange { .. })));
    }

    #[test]
    fn fp_ops_carry_expected_opcode() {
        let w = encode(Instr::FpFma {
            op: FmaOp::MAdd,
            rd: fregs::FT0,
            rs1: fregs::FA0,
            rs2: fregs::FA1,
            rs3: fregs::FA2,
        })
        .unwrap();
        assert_eq!(w & 0x7F, opcodes::FMADD);
        let w = encode(Instr::Flw { rd: fregs::FT0, rs1: reg::A0, offset: 0 }).unwrap();
        assert_eq!(w & 0x7F, opcodes::LOAD_FP);
    }

    #[test]
    fn simt_ops_use_custom_opcodes() {
        let w = encode(Instr::Tmc { rs1: reg::A0 }).unwrap();
        assert_eq!(w & 0x7F, opcodes::CUSTOM0);
        let w = encode(Instr::Split { rs1: reg::A0, offset: 16 }).unwrap();
        assert_eq!(w & 0x7F, opcodes::CUSTOM1);
        let w = encode(Instr::Vote { op: VoteOp::Ballot, rd: reg::A0, rs1: reg::A1 }).unwrap();
        assert_eq!(w & 0x7F, opcodes::CUSTOM0);
    }
}
