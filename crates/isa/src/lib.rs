//! Instruction-set model for a Vortex-like RISC-V GPGPU.
//!
//! This crate defines the machine language executed by the
//! [`vortex-sim`](../vortex_sim/index.html) device simulator and produced by
//! the [`vortex-asm`](../vortex_asm/index.html) assembler:
//!
//! * the **RV32I** base integer ISA,
//! * the **M** extension (integer multiply/divide),
//! * a single-precision subset of the **F** extension (arithmetic, fused
//!   multiply-add, comparisons, conversions, sign-injection, min/max),
//! * **Zicsr** (CSR access, used for SIMT identity registers), and
//! * the **Vortex SIMT extensions**: thread-mask control ([`Instr::Tmc`]),
//!   warp spawning ([`Instr::Wspawn`]), IPDOM divergence
//!   ([`Instr::Split`]/[`Instr::Join`]), warp barriers ([`Instr::Bar`]) and
//!   warp-uniform votes ([`Instr::Vote`]).
//!
//! The binary encoding follows the RISC-V base formats. The SIMT extensions
//! use the `custom-0` (`0x0B`) and `custom-1` (`0x2B`) opcodes. Our `split`
//! deviates from upstream Vortex by fusing the divergence push with the
//! branch to the else-path (a B-type instruction), which keeps the IPDOM
//! semantics self-contained; see [`Instr::Split`] for the exact semantics.
//!
//! # Examples
//!
//! Round-trip an instruction through the binary encoding:
//!
//! ```
//! use vortex_isa::{decode, encode, Instr, AluOp, reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let instr = Instr::Op { op: AluOp::Add, rd: reg::A0, rs1: reg::A1, rs2: reg::A2 };
//! let word = encode(instr)?;
//! assert_eq!(decode(word)?, instr);
//! assert_eq!(instr.to_string(), "add a0, a1, a2");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod csr;
mod decode;
mod disasm;
mod encode;
mod instr;
mod regs;

pub use csr::{csrs, Csr};
pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use instr::{
    AluImmOp, AluOp, BranchOp, CsrOp, CsrSrc, ExecClass, FmaOp, FpBinOp, FpCmpOp, Instr, LoadWidth,
    RegRef, StoreWidth, VoteOp,
};
pub use regs::{fregs, reg, FReg, Reg};

/// Size of one instruction in bytes (all instructions are 32-bit).
pub const INSTR_BYTES: u32 = 4;

/// Number of integer (and separately, floating-point) registers.
pub const NUM_REGS: usize = 32;

/// Hard upper bound on threads per warp imposed by the 32-bit thread mask.
pub const MAX_THREADS_PER_WARP: usize = 32;
