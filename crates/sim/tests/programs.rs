//! End-to-end simulator tests: small assembly programs exercising the
//! SIMT execution model, scheduling and the timing model.

use vortex_asm::Assembler;
use vortex_isa::{csrs, fregs, reg};
use vortex_sim::{Device, DeviceConfig, SimError, VecTraceSink};

const BASE: u32 = 0x8000_0000;
const DATA: u32 = 0xA000_0000;

fn run_on(config: DeviceConfig, build: impl FnOnce(&mut Assembler)) -> Device {
    let mut a = Assembler::new(BASE);
    build(&mut a);
    let program = a.assemble().expect("test program assembles");
    let mut device = Device::new(config);
    device.load_program(&program);
    device.start_warp(0, program.entry());
    device.run(1_000_000, None).expect("test program completes");
    device
}

#[test]
fn store_lane_ids() {
    // Each active lane stores its thread id to DATA + 4*id.
    let device = run_on(DeviceConfig::with_topology(1, 1, 4), |a| {
        a.csrr(reg::T0, csrs::THREAD_ID);
        a.la(reg::T1, DATA);
        a.slli(reg::T2, reg::T0, 2);
        a.add(reg::T1, reg::T1, reg::T2);
        a.sw(reg::T0, 0, reg::T1);
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32_vec(DATA, 4), vec![0, 1, 2, 3]);
}

#[test]
fn counted_loop_accumulates() {
    // sum 1..=10 in t0, store to DATA (lane 0 only via lane-0 address).
    let device = run_on(DeviceConfig::with_topology(1, 1, 1), |a| {
        a.li(reg::T0, 0); // sum
        a.li(reg::T1, 10); // i
        let top = a.here("loop");
        a.add(reg::T0, reg::T0, reg::T1);
        a.addi(reg::T1, reg::T1, -1);
        a.bnez(reg::T1, top);
        a.la(reg::T2, DATA);
        a.sw(reg::T0, 0, reg::T2);
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32(DATA), 55);
}

#[test]
fn split_join_divergence_masks() {
    // Lanes with id < 2 store 111, the others store 222; all lanes then
    // store a completion marker to prove reconvergence.
    let device = run_on(DeviceConfig::with_topology(1, 1, 4), |a| {
        a.csrr(reg::T0, csrs::THREAD_ID);
        a.la(reg::T1, DATA);
        a.slli(reg::T2, reg::T0, 2);
        a.add(reg::T1, reg::T1, reg::T2);
        a.slti(reg::T3, reg::T0, 2); // pred: id < 2
        let else_path = a.label("else");
        let join = a.label("join");
        a.vx_split(reg::T3, else_path);
        a.li(reg::T4, 111);
        a.sw(reg::T4, 0, reg::T1);
        a.j(join);
        a.bind(else_path).unwrap();
        a.li(reg::T4, 222);
        a.sw(reg::T4, 0, reg::T1);
        a.bind(join).unwrap();
        a.vx_join();
        // After reconvergence every lane stores a marker at +16.
        a.li(reg::T5, 7);
        a.sw(reg::T5, 16, reg::T1);
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32_vec(DATA, 4), vec![111, 111, 222, 222]);
    assert_eq!(device.memory().read_u32_vec(DATA + 16, 4), vec![7, 7, 7, 7]);
}

#[test]
fn nested_divergence_reconverges() {
    // Outer split on id<2, inner split on id%2==0. Each lane stores a
    // distinct tag; all tags must land.
    let device = run_on(DeviceConfig::with_topology(1, 1, 4), |a| {
        a.csrr(reg::T0, csrs::THREAD_ID);
        a.la(reg::T1, DATA);
        a.slli(reg::T2, reg::T0, 2);
        a.add(reg::T1, reg::T1, reg::T2);
        a.andi(reg::T6, reg::T0, 1);
        a.seqz(reg::T6, reg::T6); // pred even
        a.slti(reg::T3, reg::T0, 2); // pred id<2

        let outer_else = a.label("outer_else");
        let outer_join = a.label("outer_join");
        let inner_join0 = a.label("inner_join0");
        let inner_else0 = a.label("inner_else0");
        let inner_join1 = a.label("inner_join1");
        let inner_else1 = a.label("inner_else1");

        a.vx_split(reg::T3, outer_else);
        {
            a.vx_split(reg::T6, inner_else0);
            a.li(reg::T4, 10); // id 0 (even, <2)
            a.sw(reg::T4, 0, reg::T1);
            a.j(inner_join0);
            a.bind(inner_else0).unwrap();
            a.li(reg::T4, 11); // id 1
            a.sw(reg::T4, 0, reg::T1);
            a.bind(inner_join0).unwrap();
            a.vx_join();
        }
        a.j(outer_join);
        a.bind(outer_else).unwrap();
        {
            a.vx_split(reg::T6, inner_else1);
            a.li(reg::T4, 20); // id 2
            a.sw(reg::T4, 0, reg::T1);
            a.j(inner_join1);
            a.bind(inner_else1).unwrap();
            a.li(reg::T4, 21); // id 3
            a.sw(reg::T4, 0, reg::T1);
            a.bind(inner_join1).unwrap();
            a.vx_join();
        }
        a.bind(outer_join).unwrap();
        a.vx_join();
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32_vec(DATA, 4), vec![10, 11, 20, 21]);
}

#[test]
fn split_with_empty_side_skips() {
    // All lanes satisfy the predicate: else side empty, no divergence.
    let device = run_on(DeviceConfig::with_topology(1, 1, 4), |a| {
        a.csrr(reg::T0, csrs::THREAD_ID);
        a.la(reg::T1, DATA);
        a.slli(reg::T2, reg::T0, 2);
        a.add(reg::T1, reg::T1, reg::T2);
        a.li(reg::T3, 1); // uniformly true
        let join = a.label("join");
        a.vx_split(reg::T3, join);
        a.li(reg::T4, 5);
        a.sw(reg::T4, 0, reg::T1);
        a.bind(join).unwrap();
        a.vx_join();
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32_vec(DATA, 4), vec![5, 5, 5, 5]);
}

#[test]
fn vote_reductions() {
    let device = run_on(DeviceConfig::with_topology(1, 1, 4), |a| {
        a.csrr(reg::T0, csrs::THREAD_ID);
        a.slti(reg::T1, reg::T0, 2); // lanes 0,1 true
        a.vx_vote_any(reg::T2, reg::T1);
        a.vx_vote_all(reg::T3, reg::T1);
        a.vx_vote_ballot(reg::T4, reg::T1);
        a.la(reg::T5, DATA);
        a.sw(reg::T2, 0, reg::T5);
        a.sw(reg::T3, 4, reg::T5);
        a.sw(reg::T4, 8, reg::T5);
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32(DATA), 1); // any
    assert_eq!(device.memory().read_u32(DATA + 4), 0); // all
    assert_eq!(device.memory().read_u32(DATA + 8), 0b0011); // ballot
}

#[test]
fn wspawn_activates_secondary_warps() {
    // Warp 0 spawns 3 more; every warp stores its warp id.
    let device = run_on(DeviceConfig::with_topology(1, 4, 1), |a| {
        let worker = a.label("worker");
        a.li(reg::T0, 4);
        a.la(reg::T1, 0); // patched below via label address
                          // We cannot la() a label (absolute); emit auipc-style: use the
                          // known code base + symbol after assembly instead. Simplest: the
                          // worker is the next instruction for warp 0 too.
        let _ = reg::T1;
        a.la(reg::T2, BASE + 4 * 4); // address of `worker` (computed below)
        a.vx_wspawn(reg::T0, reg::T2);
        a.bind(worker).unwrap();
        a.csrr(reg::T3, csrs::WARP_ID);
        a.la(reg::T4, DATA);
        a.slli(reg::T5, reg::T3, 2);
        a.add(reg::T4, reg::T4, reg::T5);
        a.sw(reg::T3, 0, reg::T4);
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32_vec(DATA, 4), vec![0, 1, 2, 3]);
}

#[test]
fn barrier_synchronises_warps() {
    // Two warps: warp 1 stores 1 to DATA, both meet at a barrier, then
    // warp 0 reads DATA and stores it to DATA+4. Without the barrier the
    // read could see 0; the scoreboard + barrier make it deterministic.
    let device = run_on(DeviceConfig::with_topology(1, 2, 1), |a| {
        let worker = a.label("worker");
        let after = a.label("after");
        let w0_path = a.label("w0_path");
        a.li(reg::T0, 2);
        a.la(reg::T1, BASE); // worker address placeholder; recomputed below
        let _ = reg::T1;
        // Spawn warp 1 at `worker`.
        a.la(reg::T2, BASE + 6 * 4);
        a.vx_wspawn(reg::T0, reg::T2);
        a.j(after);
        a.nop();
        a.bind(worker).unwrap(); // index 6
                                 // warp 1: store 1 to DATA
        a.la(reg::T3, DATA);
        a.li(reg::T4, 1);
        a.sw(reg::T4, 0, reg::T3);
        a.bind(after).unwrap();
        // both warps: barrier 0 with 2 participants
        a.li(reg::T5, 0);
        a.li(reg::T6, 2);
        a.vx_bar(reg::T5, reg::T6);
        // warp 0 continues; warp 1 halts
        a.csrr(reg::S0, csrs::WARP_ID);
        a.beqz(reg::S0, w0_path);
        a.vx_tmc(reg::ZERO);
        a.bind(w0_path).unwrap();
        a.la(reg::S1, DATA);
        a.lw(reg::S2, 0, reg::S1);
        a.sw(reg::S2, 4, reg::S1);
        a.vx_tmc(reg::ZERO);
    });
    assert_eq!(device.memory().read_u32(DATA + 4), 1);
}

#[test]
fn float_pipeline_computes_saxpy_lane() {
    // One lane computes y = a*x + y over a few elements with fmadd.
    let n = 8u32;
    let mut device = {
        let mut a = Assembler::new(BASE);
        a.la(reg::T0, DATA); // x
        a.la(reg::T1, DATA + 0x1000); // y
        a.li(reg::T2, n as i32);
        a.la(reg::T3, DATA + 0x2000); // a (scalar)
        a.flw(fregs::FA0, 0, reg::T3);
        let top = a.here("loop");
        a.flw(fregs::FA1, 0, reg::T0);
        a.flw(fregs::FA2, 0, reg::T1);
        a.fmadd_s(fregs::FA3, fregs::FA0, fregs::FA1, fregs::FA2);
        a.fsw(fregs::FA3, 0, reg::T1);
        a.addi(reg::T0, reg::T0, 4);
        a.addi(reg::T1, reg::T1, 4);
        a.addi(reg::T2, reg::T2, -1);
        a.bnez(reg::T2, top);
        a.vx_tmc(reg::ZERO);
        let program = a.assemble().unwrap();
        let mut device = Device::new(DeviceConfig::with_topology(1, 1, 1));
        device.load_program(&program);
        device
    };
    let x: Vec<f32> = (0..n).map(|i| i as f32).collect();
    let y: Vec<f32> = (0..n).map(|i| 10.0 + i as f32).collect();
    device.memory_mut().write_f32_slice(DATA, &x);
    device.memory_mut().write_f32_slice(DATA + 0x1000, &y);
    device.memory_mut().write_f32(DATA + 0x2000, 2.5);
    device.start_warp(0, BASE);
    device.run(1_000_000, None).unwrap();
    let result = device.memory().read_f32_vec(DATA + 0x1000, n as usize);
    for i in 0..n as usize {
        assert_eq!(result[i], 2.5 * x[i] + y[i], "element {i}");
    }
}

#[test]
fn divergent_branch_is_detected() {
    let mut a = Assembler::new(BASE);
    a.csrr(reg::T0, csrs::THREAD_ID);
    let skip = a.label("skip");
    a.beqz(reg::T0, skip); // condition differs across lanes!
    a.nop();
    a.bind(skip).unwrap();
    a.vx_tmc(reg::ZERO);
    let program = a.assemble().unwrap();
    let mut device = Device::new(DeviceConfig::with_topology(1, 1, 4));
    device.load_program(&program);
    device.start_warp(0, BASE);
    let err = device.run(10_000, None).unwrap_err();
    assert!(matches!(err, SimError::DivergentBranch { .. }), "got {err}");
}

#[test]
fn ecall_traps() {
    let mut a = Assembler::new(BASE);
    a.ecall();
    let program = a.assemble().unwrap();
    let mut device = Device::new(DeviceConfig::default());
    device.load_program(&program);
    device.start_warp(0, BASE);
    let err = device.run(10_000, None).unwrap_err();
    assert!(matches!(err, SimError::Trap { breakpoint: false, .. }), "got {err}");
}

#[test]
fn runaway_loop_hits_cycle_limit() {
    let mut a = Assembler::new(BASE);
    let top = a.here("spin");
    a.j(top);
    let program = a.assemble().unwrap();
    let mut device = Device::new(DeviceConfig::default());
    device.load_program(&program);
    device.start_warp(0, BASE);
    let err = device.run(5_000, None).unwrap_err();
    assert!(matches!(err, SimError::CycleLimit { limit: 5_000 }), "got {err}");
}

#[test]
fn barrier_deadlock_is_detected() {
    // Single warp waits on a 2-party barrier that nobody else joins.
    let mut a = Assembler::new(BASE);
    a.li(reg::T0, 0);
    a.li(reg::T1, 2);
    a.vx_bar(reg::T0, reg::T1);
    a.vx_tmc(reg::ZERO);
    let program = a.assemble().unwrap();
    let mut device = Device::new(DeviceConfig::with_topology(1, 1, 1));
    device.load_program(&program);
    device.start_warp(0, BASE);
    let err = device.run(10_000, None).unwrap_err();
    assert!(matches!(err, SimError::BarrierDeadlock { .. }), "got {err}");
}

#[test]
fn unmapped_pc_is_detected() {
    // Fall off the end of the program (no halting tmc).
    let mut a = Assembler::new(BASE);
    a.nop();
    let program = a.assemble().unwrap();
    let mut device = Device::new(DeviceConfig::with_topology(1, 1, 1));
    device.load_program(&program);
    device.start_warp(0, BASE);
    let err = device.run(10_000, None).unwrap_err();
    assert!(matches!(err, SimError::UnmappedPc { .. }), "got {err}");
}

#[test]
fn trace_records_pc_mask_and_time() {
    let mut a = Assembler::new(BASE);
    a.csrr(reg::T0, csrs::THREAD_ID);
    a.vx_tmc(reg::ZERO);
    let program = a.assemble().unwrap();
    let mut device = Device::new(DeviceConfig::with_topology(1, 1, 4));
    device.load_program(&program);
    device.start_warp(0, BASE);
    let mut sink = VecTraceSink::new();
    device.run(10_000, Some(&mut sink)).unwrap();
    let events = sink.events();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].pc, BASE);
    assert_eq!(events[0].tmask, 0xF);
    assert_eq!(events[1].pc, BASE + 4);
    assert!(events[1].cycle > events[0].cycle);
}

#[test]
fn determinism_same_cycles_every_run() {
    let build = |a: &mut Assembler| {
        a.csrr(reg::T0, csrs::THREAD_ID);
        a.la(reg::T1, DATA);
        a.slli(reg::T2, reg::T0, 4);
        a.add(reg::T1, reg::T1, reg::T2);
        a.li(reg::T3, 50);
        let top = a.here("loop");
        a.lw(reg::T4, 0, reg::T1);
        a.addi(reg::T4, reg::T4, 3);
        a.sw(reg::T4, 0, reg::T1);
        a.addi(reg::T3, reg::T3, -1);
        a.bnez(reg::T3, top);
        a.vx_tmc(reg::ZERO);
    };
    let d1 = run_on(DeviceConfig::with_topology(2, 4, 8), build);
    let d2 = run_on(DeviceConfig::with_topology(2, 4, 8), build);
    assert_eq!(d1.now(), d2.now());
    assert_eq!(d1.counters().instructions, d2.counters().instructions);
}

#[test]
fn more_warps_hide_memory_latency() {
    // The same per-warp streaming workload on 1 warp vs 8 warps: with
    // more warps the core overlaps misses and finishes in fewer cycles
    // per warp (classic latency hiding, the effect the paper's mapping
    // exploits).
    let build = |a: &mut Assembler| {
        a.csrr(reg::T0, csrs::WARP_ID);
        a.la(reg::T1, DATA);
        a.slli(reg::T2, reg::T0, 12); // 4 KiB stride per warp
        a.add(reg::T1, reg::T1, reg::T2);
        a.li(reg::T3, 32);
        let top = a.here("loop");
        a.lw(reg::T4, 0, reg::T1);
        a.addi(reg::T1, reg::T1, 64); // new line each time
        a.addi(reg::T3, reg::T3, -1);
        a.bnez(reg::T3, top);
        a.vx_tmc(reg::ZERO);
    };

    let one = {
        let mut a = Assembler::new(BASE);
        build(&mut a);
        let p = a.assemble().unwrap();
        let mut d = Device::new(DeviceConfig::with_topology(1, 1, 1));
        d.load_program(&p);
        d.start_warp(0, BASE);
        d.run(1_000_000, None).unwrap()
    };
    let eight = {
        let mut a = Assembler::new(BASE);
        // Warp 0 spawns 8 warps, all run the same loop.
        let p = {
            let mut b = Assembler::new(BASE);
            b.li(reg::T5, 8);
            b.la(reg::T6, BASE + 3 * 4);
            b.vx_wspawn(reg::T5, reg::T6);
            build(&mut b);
            b.assemble().unwrap()
        };
        let _ = &mut a;
        let mut d = Device::new(DeviceConfig::with_topology(1, 8, 1));
        d.load_program(&p);
        d.start_warp(0, BASE);
        d.run(1_000_000, None).unwrap()
    };
    // 8 warps did 8x the work; perfect scaling would take the same time.
    // Requiring < 4x shows substantial latency hiding.
    assert!(
        eight < one * 4,
        "8 warps should hide latency: 1 warp {one} cycles, 8 warps {eight} cycles"
    );
}

#[test]
fn counters_track_lane_utilisation() {
    let device = run_on(DeviceConfig::with_topology(1, 1, 4), |a| {
        a.li(reg::T0, 3); // mask 0b0011: halve occupancy
        a.vx_tmc(reg::T0);
        a.nop();
        a.nop();
        a.vx_tmc(reg::ZERO);
    });
    let c = device.counters();
    assert_eq!(c.instructions, 5);
    // li + tmc at 4 lanes, nop+nop+tmc at 2 lanes
    assert_eq!(c.lane_instructions, 4 + 4 + 2 + 2 + 2);
    let util = c.lane_utilization(4);
    assert!(util < 1.0 && util > 0.5);
}
