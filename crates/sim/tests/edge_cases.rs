//! Edge-case tests of the execution model: error detection, CSR values,
//! latency observability and memory ordering.

use vortex_asm::Assembler;
use vortex_isa::{csrs, reg};
use vortex_sim::{Device, DeviceConfig, SimError};

const BASE: u32 = 0x8000_0000;
const DATA: u32 = 0xA000_0000;

fn device_for(build: impl FnOnce(&mut Assembler), config: DeviceConfig) -> Device {
    let mut a = Assembler::new(BASE);
    build(&mut a);
    let program = a.assemble().expect("assembles");
    let mut device = Device::new(config);
    device.load_program(&program);
    device.start_warp(0, program.entry());
    device
}

#[test]
fn ipdom_overflow_is_detected() {
    let mut config = DeviceConfig::with_topology(1, 1, 2);
    config.ipdom_depth = 4;
    let mut device = device_for(
        |a| {
            a.csrr(reg::T0, csrs::THREAD_ID);
            // Nest more splits than the stack allows; never join.
            let mut labels = Vec::new();
            for i in 0..6 {
                let l = a.label(&format!("skip{i}"));
                a.vx_split(reg::T0, l);
                labels.push(l);
            }
            for l in labels {
                a.bind(l).unwrap();
            }
            a.vx_tmc(reg::ZERO);
        },
        config,
    );
    let err = device.run(100_000, None).unwrap_err();
    assert!(matches!(err, SimError::IpdomOverflow { .. }), "got {err}");
}

#[test]
fn ipdom_underflow_is_detected() {
    let mut device = device_for(
        |a| {
            a.vx_join(); // no matching split
        },
        DeviceConfig::with_topology(1, 1, 2),
    );
    let err = device.run(100_000, None).unwrap_err();
    assert!(matches!(err, SimError::IpdomUnderflow { .. }), "got {err}");
}

#[test]
fn wspawn_beyond_hardware_is_detected() {
    let mut device = device_for(
        |a| {
            a.li(reg::T0, 100); // core only has 2 warps
            a.la(reg::T1, BASE);
            a.vx_wspawn(reg::T0, reg::T1);
        },
        DeviceConfig::with_topology(1, 2, 2),
    );
    let err = device.run(100_000, None).unwrap_err();
    assert!(matches!(err, SimError::WspawnTooManyWarps { requested: 100, .. }), "got {err}");
}

#[test]
fn misaligned_word_access_is_detected() {
    let mut device = device_for(
        |a| {
            a.la(reg::T0, DATA + 2);
            a.lw(reg::T1, 0, reg::T0);
            a.vx_tmc(reg::ZERO);
        },
        DeviceConfig::with_topology(1, 1, 1),
    );
    let err = device.run(100_000, None).unwrap_err();
    assert!(matches!(err, SimError::MisalignedAccess { align: 4, .. }), "got {err}");
}

#[test]
fn halfword_and_byte_accesses_work() {
    let mut device = device_for(
        |a| {
            a.la(reg::T0, DATA);
            a.li(reg::T1, -2); // 0xFFFFFFFE
            a.sh(reg::T1, 0, reg::T0);
            a.sb(reg::T1, 8, reg::T0);
            a.lh(reg::T2, 0, reg::T0); // sign-extended
            a.lhu(reg::T3, 0, reg::T0); // zero-extended
            a.lb(reg::T4, 8, reg::T0);
            a.lbu(reg::T5, 8, reg::T0);
            a.sw(reg::T2, 16, reg::T0);
            a.sw(reg::T3, 20, reg::T0);
            a.sw(reg::T4, 24, reg::T0);
            a.sw(reg::T5, 28, reg::T0);
            a.vx_tmc(reg::ZERO);
        },
        DeviceConfig::with_topology(1, 1, 1),
    );
    device.run(100_000, None).unwrap();
    let mem = device.memory();
    assert_eq!(mem.read_u32(DATA + 16), 0xFFFF_FFFE); // lh sign-extends
    assert_eq!(mem.read_u32(DATA + 20), 0x0000_FFFE); // lhu zero-extends
    assert_eq!(mem.read_u32(DATA + 24), 0xFFFF_FFFE); // lb sign-extends
    assert_eq!(mem.read_u32(DATA + 28), 0x0000_00FE); // lbu zero-extends
}

#[test]
fn identity_csrs_report_topology() {
    let config = DeviceConfig::with_topology(3, 4, 8);
    let mut device = device_for(
        |a| {
            a.la(reg::T0, DATA);
            a.csrr(reg::T1, csrs::NUM_CORES);
            a.sw(reg::T1, 0, reg::T0);
            a.csrr(reg::T1, csrs::NUM_WARPS);
            a.sw(reg::T1, 4, reg::T0);
            a.csrr(reg::T1, csrs::NUM_THREADS);
            a.sw(reg::T1, 8, reg::T0);
            a.csrr(reg::T1, csrs::CORE_ID);
            a.sw(reg::T1, 12, reg::T0);
            a.csrr(reg::T1, csrs::THREAD_MASK);
            a.sw(reg::T1, 16, reg::T0);
            a.vx_tmc(reg::ZERO);
        },
        config,
    );
    device.run(100_000, None).unwrap();
    let v = device.memory().read_u32_vec(DATA, 5);
    assert_eq!(v, vec![3, 4, 8, 0, 0xFF]);
}

#[test]
fn mcycle_is_monotonic() {
    let mut device = device_for(
        |a| {
            a.la(reg::T0, DATA);
            a.csrr(reg::T1, csrs::MCYCLE);
            a.nop();
            a.nop();
            a.nop();
            a.csrr(reg::T2, csrs::MCYCLE);
            a.sw(reg::T1, 0, reg::T0);
            a.sw(reg::T2, 4, reg::T0);
            a.vx_tmc(reg::ZERO);
        },
        DeviceConfig::with_topology(1, 1, 1),
    );
    device.run(100_000, None).unwrap();
    let t1 = device.memory().read_u32(DATA);
    let t2 = device.memory().read_u32(DATA + 4);
    assert!(t2 > t1, "mcycle must advance: {t1} -> {t2}");
}

#[test]
fn div_latency_exceeds_alu_latency() {
    // Two identical programs, one with a dependent div chain, one with a
    // dependent add chain: the div version must take longer.
    let run_chain = |use_div: bool| {
        let mut device = device_for(
            |a| {
                a.li(reg::T0, 1_000_000);
                a.li(reg::T1, 3);
                for _ in 0..16 {
                    if use_div {
                        a.divu(reg::T0, reg::T0, reg::T1);
                    } else {
                        a.add(reg::T0, reg::T0, reg::T1);
                    }
                }
                a.vx_tmc(reg::ZERO);
            },
            DeviceConfig::with_topology(1, 1, 1),
        );
        device.run(100_000, None).unwrap()
    };
    let div_cycles = run_chain(true);
    let add_cycles = run_chain(false);
    assert!(
        div_cycles > add_cycles + 100,
        "divide chain ({div_cycles}) must be much slower than add chain ({add_cycles})"
    );
}

#[test]
fn partial_tmc_masks_lanes() {
    let mut device = device_for(
        |a| {
            a.li(reg::T0, 0b0101);
            a.vx_tmc(reg::T0);
            a.csrr(reg::T1, csrs::THREAD_ID);
            a.la(reg::T2, DATA);
            a.slli(reg::T3, reg::T1, 2);
            a.add(reg::T2, reg::T2, reg::T3);
            a.li(reg::T4, 1);
            a.sw(reg::T4, 0, reg::T2);
            a.vx_tmc(reg::ZERO);
        },
        DeviceConfig::with_topology(1, 1, 4),
    );
    device.run(100_000, None).unwrap();
    assert_eq!(device.memory().read_u32_vec(DATA, 4), vec![1, 0, 1, 0]);
}

#[test]
fn function_call_and_return() {
    let mut device = device_for(
        |a| {
            let func = a.label("func");
            let after = a.label("after");
            a.li(reg::A0, 5);
            a.jal(reg::RA, func);
            a.la(reg::T0, DATA);
            a.sw(reg::A0, 0, reg::T0);
            a.j(after);
            a.bind(func).unwrap();
            a.slli(reg::A0, reg::A0, 1); // a0 *= 2
            a.ret();
            a.bind(after).unwrap();
            a.vx_tmc(reg::ZERO);
        },
        DeviceConfig::with_topology(1, 1, 2),
    );
    device.run(100_000, None).unwrap();
    assert_eq!(device.memory().read_u32(DATA), 10);
}

#[test]
fn device_reset_restores_clean_state() {
    let config = DeviceConfig::with_topology(1, 1, 2);
    let mut a = Assembler::new(BASE);
    a.la(reg::T0, DATA);
    a.li(reg::T1, 42);
    a.sw(reg::T1, 0, reg::T0);
    a.vx_tmc(reg::ZERO);
    let program = a.assemble().unwrap();

    let mut device = Device::new(config);
    device.load_program(&program);
    device.start_warp(0, BASE);
    let first = device.run(100_000, None).unwrap();
    assert_eq!(device.memory().read_u32(DATA), 42);

    device.reset();
    assert_eq!(device.now(), 0);
    assert_eq!(device.memory().read_u32(DATA), 0, "data memory cleared");
    device.start_warp(0, BASE);
    let second = device.run(100_000, None).unwrap();
    assert_eq!(first, second, "reset must restore identical timing");
}
