//! Randomised tests over the full assemble→execute pipeline: random
//! straight-line ALU programs must compute exactly what a host-side
//! interpreter of the same instruction sequence computes. Seeds are
//! fixed so failures reproduce exactly.

use vortex_asm::Assembler;
use vortex_isa::{reg, AluOp, Reg};
use vortex_rng::Rng;
use vortex_sim::{Device, DeviceConfig};

const BASE: u32 = 0x8000_0000;
const DATA: u32 = 0xA000_0000;

/// The registers the generated programs operate on.
const POOL: [Reg; 6] = [reg::T0, reg::T1, reg::T2, reg::T3, reg::T4, reg::T5];

#[derive(Clone, Debug)]
enum Op {
    /// `li pool[dst], imm`
    Li { dst: usize, imm: i32 },
    /// `op pool[dst], pool[a], pool[b]`
    Alu { op: AluOp, dst: usize, a: usize, b: usize },
}

const ALU_OPS: [AluOp; 17] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
    AluOp::Mul,
    AluOp::Mulh,
    AluOp::Mulhu,
    AluOp::Div,
    AluOp::Divu,
    AluOp::Rem,
    AluOp::Remu,
];

fn arb_op(rng: &mut Rng) -> Op {
    if rng.gen_bool() {
        Op::Li { dst: rng.gen_range_usize(0, POOL.len()), imm: rng.next_u32() as i32 }
    } else {
        Op::Alu {
            op: *rng.choose(&ALU_OPS),
            dst: rng.gen_range_usize(0, POOL.len()),
            a: rng.gen_range_usize(0, POOL.len()),
            b: rng.gen_range_usize(0, POOL.len()),
        }
    }
}

/// Host-side model of the same operation semantics (RISC-V).
fn host_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64).wrapping_mul(b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64).wrapping_mul(b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64).wrapping_mul(b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

/// Random straight-line programs agree with the host model on every pool
/// register.
#[test]
fn straight_line_alu_agrees_with_host() {
    let mut rng = Rng::seed_from_u64(0x5EEDA1);
    for case in 0..128 {
        let ops: Vec<Op> = (0..rng.gen_range_usize(1, 60)).map(|_| arb_op(&mut rng)).collect();

        // Host execution.
        let mut host = [0u32; 6];
        for op in &ops {
            match *op {
                Op::Li { dst, imm } => host[dst] = imm as u32,
                Op::Alu { op, dst, a, b } => host[dst] = host_alu(op, host[a], host[b]),
            }
        }

        // Device execution: same sequence, then store the pool to DATA.
        let mut asm = Assembler::new(BASE);
        for op in &ops {
            match *op {
                Op::Li { dst, imm } => asm.li(POOL[dst], imm),
                Op::Alu { op, dst, a, b } => {
                    asm.emit(vortex_isa::Instr::Op {
                        op,
                        rd: POOL[dst],
                        rs1: POOL[a],
                        rs2: POOL[b],
                    });
                }
            }
        }
        asm.la(reg::S0, DATA);
        for (i, r) in POOL.iter().enumerate() {
            asm.sw(*r, (i * 4) as i32, reg::S0);
        }
        asm.vx_tmc(reg::ZERO);
        let program = asm.assemble().expect("assembles");

        let mut device = Device::new(DeviceConfig::with_topology(1, 1, 2));
        device.load_program(&program);
        device.start_warp(0, BASE);
        device.run(10_000_000, None).expect("runs");
        let device_regs = device.memory().read_u32_vec(DATA, POOL.len());
        assert_eq!(&device_regs[..], &host[..], "case {case}: {ops:?}");
    }
}

/// The scoreboard never changes results: a dependent chain and the same
/// chain with unrelated instructions interleaved produce the same values
/// (timing differs; architecture must not).
#[test]
fn interleaving_does_not_change_results() {
    for seed in 0u32..200 {
        let build = |pad: bool| {
            let mut asm = Assembler::new(BASE);
            asm.li(reg::T0, seed as i32);
            asm.li(reg::T1, 3);
            for _ in 0..8 {
                asm.mul(reg::T0, reg::T0, reg::T1);
                if pad {
                    asm.addi(reg::T2, reg::T2, 1);
                    asm.addi(reg::T3, reg::T3, 7);
                }
                asm.addi(reg::T0, reg::T0, 13);
            }
            asm.la(reg::S0, DATA);
            asm.sw(reg::T0, 0, reg::S0);
            asm.vx_tmc(reg::ZERO);
            asm.assemble().expect("assembles")
        };
        let run = |program: &vortex_asm::Program| {
            let mut device = Device::new(DeviceConfig::with_topology(1, 2, 2));
            device.load_program(program);
            device.start_warp(0, BASE);
            device.run(1_000_000, None).expect("runs");
            device.memory().read_u32(DATA)
        };
        assert_eq!(run(&build(false)), run(&build(true)), "seed {seed}");
    }
}
