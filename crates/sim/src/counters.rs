//! Performance counters collected during simulation.

use std::fmt;

use vortex_isa::ExecClass;
use vortex_mem::Cycle;

/// Instruction counts broken down by functional-unit class.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    counts: [u64; 11],
}

impl ClassCounts {
    fn index(class: ExecClass) -> usize {
        match class {
            ExecClass::Alu => 0,
            ExecClass::Mul => 1,
            ExecClass::Div => 2,
            ExecClass::Fpu => 3,
            ExecClass::FDiv => 4,
            ExecClass::FSqrt => 5,
            ExecClass::Load => 6,
            ExecClass::Store => 7,
            ExecClass::Branch => 8,
            ExecClass::Simt => 9,
            ExecClass::Sys => 10,
        }
    }

    /// Increments the counter for `class`.
    pub fn record(&mut self, class: ExecClass) {
        self.counts[Self::index(class)] += 1;
    }

    /// The count for `class`.
    pub fn get(&self, class: ExecClass) -> u64 {
        self.counts[Self::index(class)]
    }

    /// Total across classes.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Memory instructions (loads + stores).
    pub fn mem(&self) -> u64 {
        self.get(ExecClass::Load) + self.get(ExecClass::Store)
    }

    /// Adds every class count of `other` (the fused block epilogue merges
    /// a block's precomputed class profile in one pass).
    pub fn merge(&mut self, other: &ClassCounts) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
    }
}

impl fmt::Display for ClassCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alu {} mul {} div {} fpu {} fdiv {} fsqrt {} load {} store {} branch {} simt {} sys {}",
            self.get(ExecClass::Alu),
            self.get(ExecClass::Mul),
            self.get(ExecClass::Div),
            self.get(ExecClass::Fpu),
            self.get(ExecClass::FDiv),
            self.get(ExecClass::FSqrt),
            self.get(ExecClass::Load),
            self.get(ExecClass::Store),
            self.get(ExecClass::Branch),
            self.get(ExecClass::Simt),
            self.get(ExecClass::Sys),
        )
    }
}

/// Aggregate device counters for one run (or accumulated across rounds).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Instructions issued (per warp, i.e. one per SIMT issue).
    pub instructions: u64,
    /// Lane-instructions: issued instructions weighted by active lanes.
    pub lane_instructions: u64,
    /// Instructions issued through the fused basic-block path (a subset
    /// of [`instructions`](DeviceCounters::instructions); the remainder
    /// went through the per-instruction fallback).
    pub fused_instructions: u64,
    /// Fused block dispatches (each covering ≥ 2 instructions), so
    /// `fused_instructions / fused_blocks` is the mean fused run length.
    pub fused_blocks: u64,
    /// Issue counts by functional class.
    pub classes: ClassCounts,
    /// Cycle at which the most recent run finished (including memory
    /// drain).
    pub finish_cycle: Cycle,
}

impl DeviceCounters {
    /// Mean active lanes per issued instruction, normalised by `threads`:
    /// the SIMD-lane utilisation in 0..=1.
    pub fn lane_utilization(&self, threads: usize) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.lane_instructions as f64 / (self.instructions as f64 * threads as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_accumulate() {
        let mut c = ClassCounts::default();
        c.record(ExecClass::Alu);
        c.record(ExecClass::Alu);
        c.record(ExecClass::Load);
        assert_eq!(c.get(ExecClass::Alu), 2);
        assert_eq!(c.get(ExecClass::Load), 1);
        assert_eq!(c.total(), 3);
        assert_eq!(c.mem(), 1);
    }

    #[test]
    fn lane_utilization_normalises() {
        let counters = DeviceCounters {
            instructions: 10,
            lane_instructions: 20,
            finish_cycle: 100,
            ..DeviceCounters::default()
        };
        assert!((counters.lane_utilization(4) - 0.5).abs() < 1e-12);
        assert_eq!(DeviceCounters::default().lane_utilization(4), 0.0);
    }

    #[test]
    fn display_lists_all_classes() {
        let c = ClassCounts::default();
        let s = c.to_string();
        for key in ["alu", "fdiv", "simt", "sys"] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
