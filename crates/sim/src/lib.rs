//! Cycle-level simulator of a Vortex-like RISC-V SIMT GPGPU.
//!
//! The [`Device`] models the micro-architecture whose parameters the paper
//! tunes against:
//!
//! * `cores × warps × threads` of hardware parallelism ([`DeviceConfig`]),
//! * per-core in-order issue (one instruction per cycle) with round-robin
//!   warp scheduling and a per-warp register scoreboard,
//! * SIMT execution with an IPDOM divergence stack (`vx_split`/`vx_join`),
//!   thread-mask control (`vx_tmc`), warp spawning (`vx_wspawn`), intra-core
//!   barriers (`vx_bar`) and warp votes (`vx_vote`),
//! * a coalescing memory pipeline in front of the L1/L2/DRAM hierarchy of
//!   [`vortex_mem`], and
//! * functional-first semantics: architectural state is always exact; the
//!   timing model only decides *when* results become visible to the
//!   scheduler.
//!
//! The simulator is **event-driven**: every stall has a known release time
//! at issue, so idle cycles are skipped rather than simulated, which is what
//! makes the paper's 450-configuration sweep tractable on a laptop.
//!
//! Execution is fully deterministic: same program + same configuration ⇒
//! same cycle count, instruction by instruction.
//!
//! # Examples
//!
//! Run a two-instruction kernel on a 1-core, 2-warp, 4-thread device:
//!
//! ```
//! use vortex_asm::Assembler;
//! use vortex_isa::reg;
//! use vortex_sim::{Device, DeviceConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new(0x8000_0000);
//! a.li(reg::T0, 7);
//! a.vx_tmc(reg::ZERO); // halt the warp
//! let program = a.assemble()?;
//!
//! let mut device = Device::new(DeviceConfig::with_topology(1, 2, 4));
//! device.load_program(&program);
//! device.start_warp(0, program.entry());
//! device.run(10_000, None)?;
//! assert_eq!(device.counters().instructions, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod cluster;
mod config;
mod core;
mod counters;
mod decoded;
mod device;
mod error;
mod exec;
mod ipdom;
mod regfile;
mod trace_api;
mod warp;

pub use config::{DeviceConfig, TimingConfig};
pub use counters::{ClassCounts, DeviceCounters};
pub use device::{Device, ResetWork};
pub use error::SimError;
pub use ipdom::IpdomEntry;
pub use trace_api::{
    IssueEvent, LaunchRecord, NullSink, RecordedTrace, ReplayCursor, TraceRecorder, TraceSink,
    VecTraceSink, WarpEvent,
};
pub use vortex_mem::{CacheConfig, CacheStats, Cycle, MemConfig, MemStats};
pub use warp::WarpState;
