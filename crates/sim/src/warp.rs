//! Per-warp architectural and scheduling state.

use vortex_isa::{FReg, Reg};
use vortex_mem::Cycle;

use crate::ipdom::IpdomEntry;

/// Never: sentinel for "not runnable until an external event".
pub(crate) const NEVER: Cycle = Cycle::MAX;

/// The full state of one hardware warp.
///
/// Registers are per-lane (`threads` copies of 32 integer + 32 FP
/// registers); the scoreboard and control state are per-warp, matching an
/// in-order SIMT pipeline.
#[derive(Clone, Debug)]
pub struct WarpState {
    /// Lanes in this warp (fixed by the device configuration).
    threads: usize,
    /// Program counter (shared by all lanes).
    pub pc: u32,
    /// Active-lane mask.
    pub tmask: u32,
    /// Whether the warp is running (false = halted / never started).
    pub active: bool,
    /// If `Some(id)`, the warp is blocked at barrier `id`.
    pub at_barrier: Option<u32>,
    /// Earliest cycle the warp may issue its next instruction
    /// (control-flow gap only; register hazards are checked separately).
    pub ready_at: Cycle,
    /// Per-register busy-until cycles (index 0..32 int, 32..64 fp).
    pub busy_until: Box<[Cycle; 64]>,
    /// IPDOM divergence stack.
    pub ipdom: Vec<IpdomEntry>,
    /// Integer registers, reg-major: `iregs[reg * threads + lane]`.
    iregs: Vec<u32>,
    /// FP registers (raw bits), reg-major like `iregs`.
    fregs: Vec<u32>,
}

impl WarpState {
    /// Creates an inactive warp with `threads` lanes.
    pub fn new(threads: usize) -> Self {
        WarpState {
            threads,
            pc: 0,
            tmask: 0,
            active: false,
            at_barrier: None,
            ready_at: NEVER,
            busy_until: Box::new([0; 64]),
            ipdom: Vec::new(),
            iregs: vec![0; threads * 32],
            fregs: vec![0; threads * 32],
        }
    }

    /// Number of lanes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The all-lanes-enabled mask for this warp width.
    pub fn full_mask(&self) -> u32 {
        if self.threads == 32 {
            u32::MAX
        } else {
            (1u32 << self.threads) - 1
        }
    }

    /// Deactivates the warp without touching its register file — the
    /// architectural contract is that [`start`](WarpState::start) clears
    /// registers on activation, so a dormant warp's stale contents are
    /// never observable by executed code. Used by the device-level reset,
    /// where re-zeroing every register of every warp (megabytes on large
    /// topologies) would dominate short measurement runs.
    pub fn deactivate(&mut self) {
        self.pc = 0;
        self.tmask = 0;
        self.active = false;
        self.at_barrier = None;
        self.ready_at = NEVER;
        self.ipdom.clear();
    }

    /// (Re)starts the warp at `pc` with mask `tmask`, clearing registers,
    /// scoreboard and divergence state.
    pub fn start(&mut self, pc: u32, tmask: u32, ready_at: Cycle) {
        self.pc = pc;
        self.tmask = tmask & self.full_mask();
        self.active = self.tmask != 0;
        self.at_barrier = None;
        self.ready_at = ready_at;
        self.busy_until.fill(0);
        self.ipdom.clear();
        self.iregs.fill(0);
        self.fregs.fill(0);
    }

    /// Halts the warp (e.g. `vx_tmc zero`).
    pub fn halt(&mut self) {
        self.active = false;
        self.tmask = 0;
        self.ready_at = NEVER;
    }

    /// Whether the warp can be considered by the scheduler.
    pub fn schedulable(&self) -> bool {
        self.active && self.at_barrier.is_none()
    }

    /// Index of the lowest-numbered active lane, if any.
    pub fn first_active_lane(&self) -> Option<usize> {
        if self.tmask == 0 {
            None
        } else {
            Some(self.tmask.trailing_zeros() as usize)
        }
    }

    /// Iterates over active lane indices.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.tmask;
        (0..self.threads).filter(move |&l| mask & (1 << l) != 0)
    }

    /// Reads integer register `reg` of `lane`.
    #[inline]
    pub fn ireg(&self, lane: usize, reg: Reg) -> u32 {
        if reg.is_zero() {
            0
        } else {
            self.iregs[reg.num() as usize * self.threads + lane]
        }
    }

    /// Writes integer register `reg` of `lane` (writes to `zero` are
    /// discarded).
    #[inline]
    pub fn set_ireg(&mut self, lane: usize, reg: Reg, value: u32) {
        if !reg.is_zero() {
            self.iregs[reg.num() as usize * self.threads + lane] = value;
        }
    }

    /// Reads FP register `reg` of `lane` as raw bits.
    #[inline]
    pub fn freg_bits(&self, lane: usize, reg: FReg) -> u32 {
        self.fregs[reg.num() as usize * self.threads + lane]
    }

    /// Writes FP register `reg` of `lane` as raw bits.
    #[inline]
    pub fn set_freg_bits(&mut self, lane: usize, reg: FReg, value: u32) {
        self.fregs[reg.num() as usize * self.threads + lane] = value;
    }

    /// Reads FP register `reg` of `lane` as `f32`.
    #[inline]
    pub fn freg(&self, lane: usize, reg: FReg) -> f32 {
        f32::from_bits(self.freg_bits(lane, reg))
    }

    /// Writes FP register `reg` of `lane` from `f32`.
    #[inline]
    pub fn set_freg(&mut self, lane: usize, reg: FReg, value: f32) {
        self.set_freg_bits(lane, reg, value.to_bits());
    }

    /// The value of `reg` in the lowest active lane, with a uniformity
    /// check across all active lanes. Returns `None` when lanes disagree
    /// or no lane is active.
    pub fn uniform_ireg(&self, reg: Reg) -> Option<u32> {
        let first = self.first_active_lane()?;
        let v = self.ireg(first, reg);
        for lane in self.active_lanes() {
            if self.ireg(lane, reg) != v {
                return None;
            }
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::{fregs, reg};

    #[test]
    fn start_clears_state() {
        let mut w = WarpState::new(4);
        w.start(0x100, 0xF, 5);
        w.set_ireg(2, reg::T0, 99);
        w.busy_until[5] = 42;
        w.ipdom.push(IpdomEntry::Uniform { restore_mask: 1 });
        w.start(0x200, 0x3, 10);
        assert_eq!(w.ireg(2, reg::T0), 0);
        assert_eq!(w.busy_until[5], 0);
        assert!(w.ipdom.is_empty());
        assert_eq!(w.tmask, 0x3);
        assert_eq!(w.pc, 0x200);
        assert!(w.active);
    }

    #[test]
    fn mask_is_clamped_to_width() {
        let mut w = WarpState::new(4);
        w.start(0, 0xFFFF_FFFF, 0);
        assert_eq!(w.tmask, 0xF);
        assert_eq!(w.full_mask(), 0xF);
        let w32 = WarpState::new(32);
        assert_eq!(w32.full_mask(), u32::MAX);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut w = WarpState::new(2);
        w.start(0, 0x3, 0);
        w.set_ireg(0, reg::ZERO, 1234);
        assert_eq!(w.ireg(0, reg::ZERO), 0);
    }

    #[test]
    fn lanes_are_independent() {
        let mut w = WarpState::new(4);
        w.start(0, 0xF, 0);
        for lane in 0..4 {
            w.set_ireg(lane, reg::A0, lane as u32 * 10);
            w.set_freg(lane, fregs::FA0, lane as f32);
        }
        for lane in 0..4 {
            assert_eq!(w.ireg(lane, reg::A0), lane as u32 * 10);
            assert_eq!(w.freg(lane, fregs::FA0), lane as f32);
        }
    }

    #[test]
    fn uniformity_check() {
        let mut w = WarpState::new(4);
        w.start(0, 0b0110, 0);
        w.set_ireg(1, reg::T1, 7);
        w.set_ireg(2, reg::T1, 7);
        w.set_ireg(0, reg::T1, 99); // inactive lane may disagree
        assert_eq!(w.uniform_ireg(reg::T1), Some(7));
        w.set_ireg(2, reg::T1, 8);
        assert_eq!(w.uniform_ireg(reg::T1), None);
    }

    #[test]
    fn active_lane_iteration() {
        let mut w = WarpState::new(8);
        w.start(0, 0b1010_0001, 0);
        let lanes: Vec<usize> = w.active_lanes().collect();
        assert_eq!(lanes, vec![0, 5, 7]);
        assert_eq!(w.first_active_lane(), Some(0));
        w.halt();
        assert_eq!(w.first_active_lane(), None);
        assert!(!w.schedulable());
    }
}
