//! Per-warp control and scheduling state.
//!
//! Architectural *register* state does not live here: every core owns one
//! lane-major [`RegFile`](crate::regfile::RegFile) holding the register
//! rows and the scoreboard of all its warps, so the execute loops can run
//! as contiguous slice passes. `WarpState` is the remaining per-warp
//! control block: PC, thread mask, divergence stack and scheduling state.

use vortex_mem::Cycle;

use crate::ipdom::IpdomEntry;

/// Never: sentinel for "not runnable until an external event".
pub(crate) const NEVER: Cycle = Cycle::MAX;

/// The control state of one hardware warp.
#[derive(Clone, Debug)]
pub struct WarpState {
    /// Lanes in this warp (fixed by the device configuration).
    threads: usize,
    /// Program counter (shared by all lanes).
    pub pc: u32,
    /// Active-lane mask.
    pub tmask: u32,
    /// Whether the warp is running (false = halted / never started).
    pub active: bool,
    /// If `Some(id)`, the warp is blocked at barrier `id`.
    pub at_barrier: Option<u32>,
    /// Earliest cycle the warp may issue its next instruction
    /// (control-flow gap only; register hazards are checked separately).
    pub ready_at: Cycle,
    /// IPDOM divergence stack.
    pub ipdom: Vec<IpdomEntry>,
}

impl WarpState {
    /// Creates an inactive warp with `threads` lanes.
    pub fn new(threads: usize) -> Self {
        WarpState {
            threads,
            pc: 0,
            tmask: 0,
            active: false,
            at_barrier: None,
            ready_at: NEVER,
            ipdom: Vec::new(),
        }
    }

    /// Number of lanes.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The all-lanes-enabled mask for this warp width.
    pub fn full_mask(&self) -> u32 {
        if self.threads == 32 {
            u32::MAX
        } else {
            (1u32 << self.threads) - 1
        }
    }

    /// Deactivates the warp without touching its register rows — the
    /// architectural contract is that [`start`](WarpState::start) (with
    /// the core-side register clear) zeroes registers on activation, so a
    /// dormant warp's stale contents are never observable by executed
    /// code. Used by the device-level reset, where re-zeroing every
    /// register of every warp (megabytes on large topologies) would
    /// dominate short measurement runs.
    pub fn deactivate(&mut self) {
        self.pc = 0;
        self.tmask = 0;
        self.active = false;
        self.at_barrier = None;
        self.ready_at = NEVER;
        self.ipdom.clear();
    }

    /// (Re)starts the warp at `pc` with mask `tmask`, clearing control and
    /// divergence state. The caller (the core) clears the warp's register
    /// rows and scoreboard alongside — see `RegFile::clear_warp`.
    pub fn start(&mut self, pc: u32, tmask: u32, ready_at: Cycle) {
        self.pc = pc;
        self.tmask = tmask & self.full_mask();
        self.active = self.tmask != 0;
        self.at_barrier = None;
        self.ready_at = ready_at;
        self.ipdom.clear();
    }

    /// Halts the warp (e.g. `vx_tmc zero`).
    pub fn halt(&mut self) {
        self.active = false;
        self.tmask = 0;
        self.ready_at = NEVER;
    }

    /// Whether the warp can be considered by the scheduler.
    pub fn schedulable(&self) -> bool {
        self.active && self.at_barrier.is_none()
    }

    /// Index of the lowest-numbered active lane, if any.
    pub fn first_active_lane(&self) -> Option<usize> {
        if self.tmask == 0 {
            None
        } else {
            Some(self.tmask.trailing_zeros() as usize)
        }
    }

    /// Iterates over active lane indices.
    pub fn active_lanes(&self) -> impl Iterator<Item = usize> + '_ {
        let mask = self.tmask;
        (0..self.threads).filter(move |&l| mask & (1 << l) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_clears_control_state() {
        let mut w = WarpState::new(4);
        w.start(0x100, 0xF, 5);
        w.ipdom.push(IpdomEntry::Uniform { restore_mask: 1 });
        w.at_barrier = Some(3);
        w.start(0x200, 0x3, 10);
        assert!(w.ipdom.is_empty());
        assert_eq!(w.at_barrier, None);
        assert_eq!(w.tmask, 0x3);
        assert_eq!(w.pc, 0x200);
        assert_eq!(w.ready_at, 10);
        assert!(w.active);
    }

    #[test]
    fn mask_is_clamped_to_width() {
        let mut w = WarpState::new(4);
        w.start(0, 0xFFFF_FFFF, 0);
        assert_eq!(w.tmask, 0xF);
        assert_eq!(w.full_mask(), 0xF);
        let w32 = WarpState::new(32);
        assert_eq!(w32.full_mask(), u32::MAX);
    }

    #[test]
    fn starting_with_empty_mask_stays_inactive() {
        let mut w = WarpState::new(4);
        w.start(0x100, 0, 0);
        assert!(!w.active);
        assert!(!w.schedulable());
    }

    #[test]
    fn active_lane_iteration() {
        let mut w = WarpState::new(8);
        w.start(0, 0b1010_0001, 0);
        let lanes: Vec<usize> = w.active_lanes().collect();
        assert_eq!(lanes, vec![0, 5, 7]);
        assert_eq!(w.first_active_lane(), Some(0));
        w.halt();
        assert_eq!(w.first_active_lane(), None);
        assert!(!w.schedulable());
    }
}
