//! Cluster grouping of cores and the device's O(activity) scheduler state.
//!
//! Cores are grouped into clusters of [`cores_per_cluster`] contiguous
//! ids: cluster `k` owns cores `k*cpc .. (k+1)*cpc` (the last cluster may
//! be partially filled). The scheduler keeps a **compact** list of
//! scheduled (live) cores in ascending id order with a parallel
//! next-event array. Because cluster id ranges are contiguous and the
//! list is ascending, each cluster's active-core list is a contiguous
//! *segment* of the compact arrays: walking the arrays front to back is
//! exactly walking the non-empty clusters in ascending order, each
//! contributing its own contiguous span. The per-cluster active lists and
//! the global next-event min scan are therefore the *same* data
//! structure — the clustered layout adds zero indirection to the hot
//! path, visits only clusters containing live cores (empty clusters
//! occupy no bytes of the scan), and is timing-transparent by
//! construction: the scan order (ascending core id, ascending-id
//! tie-break) is identical for every `cores_per_cluster`, which is what
//! the clustered-vs-flat cycle_dump gate in CI pins.
//!
//! On top of the segments sits a **cached per-segment minimum**
//! ([`seg_min`](Clusters::seg_min)): the device run loop first scans one
//! cached min per live cluster, then descends into only the segments that
//! can hold the earliest event. On a desynchronised 256-core device
//! clustered 16-per-cluster a scheduling round touches ~16 cluster mins
//! plus one 16-entry segment instead of 256 event entries — the same
//! earliest `(cycle, core)` choice, found hierarchically. A flat device
//! (`cpc = 1`) degenerates to one single-entry segment per core, where
//! the cached-min layer *is* the old flat scan.
//!
//! The structure is **persistent** across runs, which is the second half
//! of the O(activity) contract: `Device::start_warp*` inserts a core when
//! the host activates it and the run loop removes it when it drains, so
//! entering a run costs O(live cores) — the per-entry full-topology
//! `any_active` rebuild scan (O(cores × warps)) is gone. Membership
//! invariant: outside [`Device::run_with`], the scheduled set equals the
//! set of cores with at least one active warp (a core becomes active only
//! through `start_warp`, which schedules it; mid-run warp spawns are
//! core-local and cannot activate an unscheduled core).
//!
//! [`cores_per_cluster`]: crate::DeviceConfig::cores_per_cluster
//! [`Device::run_with`]: crate::Device::run_with

use vortex_mem::Cycle;

use crate::warp::NEVER;

/// Per-cluster active-core bookkeeping plus the compact scheduled-core
/// event arrays the device run loop scans. See the module docs for the
/// segment equivalence that makes the two views one structure.
#[derive(Debug)]
pub(crate) struct Clusters {
    /// Cores per cluster (≥ 1); cluster `k` owns ids `k*cpc..(k+1)*cpc`.
    cores_per_cluster: usize,
    /// Scheduled core ids, ascending (compact: only live cores).
    order: Vec<usize>,
    /// Next pending event per scheduled core, parallel to `order`.
    due: Vec<Cycle>,
    /// Per-core membership flag (O(1) duplicate-schedule check).
    member: Vec<bool>,
    /// Cluster id of each live segment, ascending (compact: one entry
    /// per cluster containing at least one scheduled core).
    seg_cluster: Vec<usize>,
    /// Start of each live segment in `order`/`due`, parallel to
    /// `seg_cluster`; segment `s` spans `seg_start[s]..seg_end(s)`.
    seg_start: Vec<usize>,
    /// Cached `due` minimum of each live segment, parallel to
    /// `seg_cluster` — the first level of the hierarchical event scan.
    seg_min: Vec<Cycle>,
}

impl Clusters {
    /// An empty scheduler over `num_cores` cores grouped `cpc` per
    /// cluster.
    pub(crate) fn new(num_cores: usize, cores_per_cluster: usize) -> Self {
        assert!(cores_per_cluster > 0, "cluster needs at least one core");
        Clusters {
            cores_per_cluster,
            order: Vec::new(),
            due: Vec::new(),
            member: vec![false; num_cores],
            seg_cluster: Vec::new(),
            seg_start: Vec::new(),
            seg_min: Vec::new(),
        }
    }

    /// Cluster owning `core`.
    fn cluster_of(&self, core: usize) -> usize {
        core / self.cores_per_cluster
    }

    /// Number of clusters currently containing at least one live core
    /// (== the number of live segments).
    pub(crate) fn live_clusters(&self) -> usize {
        self.seg_cluster.len()
    }

    /// The scheduled core ids, ascending.
    pub(crate) fn order(&self) -> &[usize] {
        &self.order
    }

    /// The pending-event array, parallel to [`order`](Clusters::order).
    pub(crate) fn due(&self) -> &[Cycle] {
        &self.due
    }

    /// The cached per-segment minima, parallel to the live segments in
    /// ascending cluster order — the array the run loop's first-level
    /// scan walks.
    pub(crate) fn seg_min(&self) -> &[Cycle] {
        &self.seg_min
    }

    /// The span of segment `s` in `order`/`due`.
    pub(crate) fn seg_bounds(&self, s: usize) -> (usize, usize) {
        let lo = self.seg_start[s];
        let hi = self.seg_start.get(s + 1).copied().unwrap_or(self.order.len());
        (lo, hi)
    }

    /// The cluster id of segment `s`.
    pub(crate) fn seg_cluster_id(&self, s: usize) -> usize {
        self.seg_cluster[s]
    }

    /// Recomputes segment `s`'s cached minimum from its `due` span (after
    /// the run loop rewrote entries with [`set_due`](Clusters::set_due)).
    pub(crate) fn refresh_seg(&mut self, s: usize) {
        let (lo, hi) = self.seg_bounds(s);
        self.seg_min[s] = self.due[lo..hi].iter().copied().min().unwrap_or(NEVER);
    }

    /// Rewrites the pending event of the scheduled core at `pos`. The
    /// segment's cached minimum is **not** updated — callers batch their
    /// rewrites and call [`refresh_seg`](Clusters::refresh_seg) once per
    /// touched segment.
    pub(crate) fn set_due(&mut self, pos: usize, at: Cycle) {
        self.due[pos] = at;
    }

    /// Rewrites the pending event of the core at `pos` in segment `s`
    /// and updates the segment's cached minimum in O(1), given
    /// `others_min`, the minimum of the segment's *other* entries (the
    /// in-segment runner-up the run loop's solo path already computed).
    pub(crate) fn set_due_with_min(&mut self, s: usize, pos: usize, at: Cycle, others_min: Cycle) {
        self.due[pos] = at;
        self.seg_min[s] = at.min(others_min);
    }

    /// Schedules `core`, keeping `order` ascending. Returns `false` (and
    /// does nothing) when the core is already scheduled.
    pub(crate) fn schedule(&mut self, core: usize) -> bool {
        if self.member[core] {
            return false;
        }
        self.member[core] = true;
        let pos = self.order.partition_point(|&c| c < core);
        self.order.insert(pos, core);
        // A newly scheduled core has no pending event until the next run
        // marks it due, so the segment minimum is unaffected.
        self.due.insert(pos, NEVER);
        let k = self.cluster_of(core);
        let s = self.seg_cluster.partition_point(|&c| c < k);
        if self.seg_cluster.get(s) != Some(&k) {
            self.seg_cluster.insert(s, k);
            self.seg_start.insert(s, pos);
            self.seg_min.insert(s, NEVER);
        }
        for start in &mut self.seg_start[s + 1..] {
            *start += 1;
        }
        true
    }

    /// Removes the scheduled core at `pos` (it drained to idle) and
    /// refreshes its segment's cached minimum (dropping the segment when
    /// it empties).
    pub(crate) fn remove_at(&mut self, pos: usize) {
        let core = self.order.remove(pos);
        self.due.remove(pos);
        self.member[core] = false;
        let s = self.seg_start.partition_point(|&start| start <= pos) - 1;
        for start in &mut self.seg_start[s + 1..] {
            *start -= 1;
        }
        let (lo, hi) = self.seg_bounds(s);
        if lo == hi {
            self.seg_cluster.remove(s);
            self.seg_start.remove(s);
            self.seg_min.remove(s);
        } else {
            self.seg_min[s] = self.due[lo..hi].iter().copied().min().unwrap_or(NEVER);
        }
    }

    /// Marks every scheduled core due at `now` — the O(live) run-entry
    /// step that replaced the full-topology rebuild scan.
    pub(crate) fn begin_run(&mut self, now: Cycle) {
        for d in &mut self.due {
            *d = now;
        }
        for m in &mut self.seg_min {
            *m = now;
        }
    }

    /// Unschedules everything (device reset), touching only live state.
    pub(crate) fn clear(&mut self) {
        for &core in &self.order {
            self.member[core] = false;
        }
        self.order.clear();
        self.due.clear();
        self.seg_cluster.clear();
        self.seg_start.clear();
        self.seg_min.clear();
    }

    /// Cluster `k`'s active-core list: the contiguous segment of the
    /// compact arrays holding its scheduled cores (ascending ids).
    pub(crate) fn active_in(&self, cluster: usize) -> &[usize] {
        let s = self.seg_cluster.partition_point(|&c| c < cluster);
        if self.seg_cluster.get(s) != Some(&cluster) {
            return &[];
        }
        let (lo, hi) = self.seg_bounds(s);
        &self.order[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_keeps_order_ascending_and_dedups() {
        let mut cl = Clusters::new(8, 4);
        assert!(cl.schedule(5));
        assert!(cl.schedule(1));
        assert!(cl.schedule(3));
        assert!(!cl.schedule(5), "duplicate schedule must be a no-op");
        assert_eq!(cl.order(), &[1, 3, 5]);
        assert_eq!(cl.order().len(), 3);
    }

    #[test]
    fn live_cluster_count_tracks_segments() {
        let mut cl = Clusters::new(8, 4);
        assert_eq!(cl.live_clusters(), 0);
        cl.schedule(1);
        cl.schedule(2);
        assert_eq!(cl.live_clusters(), 1, "both cores share cluster 0");
        cl.schedule(6);
        assert_eq!(cl.live_clusters(), 2);
        // Remove core 6 (position 2 in [1, 2, 6]) — cluster 1 empties.
        cl.remove_at(2);
        assert_eq!(cl.live_clusters(), 1);
        cl.remove_at(0);
        cl.remove_at(0);
        assert_eq!(cl.live_clusters(), 0);
        assert_eq!(cl.order().len(), 0);
    }

    #[test]
    fn per_cluster_active_lists_are_segments() {
        let mut cl = Clusters::new(12, 4);
        for core in [0, 2, 3, 5, 9, 11] {
            cl.schedule(core);
        }
        assert_eq!(cl.active_in(0), &[0, 2, 3]);
        assert_eq!(cl.active_in(1), &[5]);
        assert_eq!(cl.active_in(2), &[9, 11]);
        // Segments concatenate to the full scan order.
        let concat: Vec<usize> = (0..3).flat_map(|k| cl.active_in(k).iter().copied()).collect();
        assert_eq!(concat, cl.order());
        // Segment bookkeeping agrees with the membership view.
        assert_eq!(cl.live_clusters(), 3);
        assert_eq!(cl.seg_bounds(0), (0, 3));
        assert_eq!(cl.seg_bounds(1), (3, 4));
        assert_eq!(cl.seg_bounds(2), (4, 6));
        assert_eq!(cl.seg_cluster_id(2), 2);
    }

    #[test]
    fn begin_run_and_clear_touch_only_live_state() {
        let mut cl = Clusters::new(256, 16);
        cl.schedule(7);
        cl.schedule(200);
        cl.begin_run(42);
        assert_eq!(cl.due(), &[42, 42]);
        cl.set_due(0, 50);
        assert_eq!(cl.due(), &[50, 42]);
        cl.clear();
        assert_eq!(cl.order().len(), 0);
        assert_eq!(cl.live_clusters(), 0);
        // Re-scheduling after clear works (membership flags were reset).
        assert!(cl.schedule(7));
        assert_eq!(cl.order(), &[7]);
    }

    #[test]
    fn segment_minima_track_due_rewrites_and_removals() {
        let mut cl = Clusters::new(32, 4);
        for core in [0, 1, 4, 5, 9] {
            cl.schedule(core);
        }
        cl.begin_run(10);
        assert_eq!(cl.seg_min(), &[10, 10, 10]);

        // set_due defers the min; refresh_seg recomputes it.
        cl.set_due(0, 25);
        cl.set_due(1, 17);
        cl.refresh_seg(0);
        assert_eq!(cl.seg_min(), &[17, 10, 10]);

        // Removing a segment's earliest core re-derives the min from the
        // survivors; removing the last core drops the segment.
        cl.set_due(2, 12);
        cl.set_due(3, 30);
        cl.remove_at(2); // cluster 1 keeps core 5 @ 30
        assert_eq!(cl.seg_min(), &[17, 30, 10]);
        cl.remove_at(2); // cluster 1 empties
        assert_eq!(cl.seg_min(), &[17, 10]);
        assert_eq!(cl.live_clusters(), 2);
        assert_eq!(cl.active_in(1), &[] as &[usize]);
        assert_eq!(cl.active_in(2), &[9]);
    }
}
