//! Trace hooks: the simulator's view of instruction issue events.

use vortex_isa::Instr;
use vortex_mem::Cycle;

/// One instruction issue, as observed by the paper's trace analysis
/// (Fig. 1 plots exactly these fields: timestamp, PC, warp and the active
/// thread mask).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IssueEvent {
    /// Issue cycle.
    pub cycle: Cycle,
    /// Core index.
    pub core: usize,
    /// Warp index within the core.
    pub warp: usize,
    /// Program counter of the instruction.
    pub pc: u32,
    /// Active thread mask at issue.
    pub tmask: u32,
    /// The issued instruction.
    pub instr: Instr,
}

impl IssueEvent {
    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        self.tmask.count_ones()
    }
}

/// One architecturally-dynamic outcome of an issued instruction — the
/// minimal record a timing-only replay needs. Statically-determined
/// behaviour (fall-through PCs, `jal` targets, write-back registers and
/// latencies) is reconstructed from the decoded instruction at replay
/// time; only outcomes that depend on register *values* are recorded:
/// control transfers and mask updates, warp spawns, barrier operands, and
/// the lane-address footprint of each memory access (pre-coalescing, so
/// replay re-coalesces against its own cache geometry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WarpEvent {
    /// A value-dependent control outcome: the PC and thread mask *after*
    /// the instruction (branch, `jalr`, `vx_split`, `vx_join`, non-zero
    /// `vx_tmc`).
    Ctl {
        /// The next PC of the warp.
        next_pc: u32,
        /// The thread mask after the instruction.
        tmask: u32,
    },
    /// `vx_tmc` to an empty mask: the warp halts.
    Halt,
    /// `vx_wspawn` operands (warp count and target PC).
    Wspawn {
        /// Number of warps in the round (slots `1..count` are started).
        count: u32,
        /// Start PC of the spawned warps.
        target: u32,
    },
    /// `vx_bar` operands (barrier id and arrival count).
    Bar {
        /// Barrier identifier.
        id: u32,
        /// Warps that must arrive before release.
        count: u32,
    },
    /// A contiguous ascending memory span (the broadcast / unit-stride
    /// fast paths): raw byte addresses of the first and last word.
    MemSpan {
        /// First byte address.
        addr0: u32,
        /// Last byte address.
        last: u32,
        /// Whether the access was a store.
        store: bool,
    },
    /// A general gather/scatter: the active lanes' byte addresses in lane
    /// order, before coalescing.
    MemLanes {
        /// Active-lane addresses, ascending lane index.
        addrs: Vec<u32>,
        /// Whether the access was a store.
        store: bool,
    },
}

/// Receiver for issue events.
///
/// Implementations must be cheap; the sink runs on the simulator's hot
/// path. Collect first, analyse later (see `vortex-trace`).
///
/// Beyond the per-issue hook, sinks may opt into *warp-event* recording —
/// the value-dependent outcome stream a timing-only replay consumes (see
/// [`WarpEvent`]). The extra hooks default to no-ops and are only invoked
/// when [`wants_warp_events`](TraceSink::wants_warp_events) returns
/// `true`, so ordinary sinks pay one inlined boolean check.
pub trait TraceSink {
    /// Called once per issued instruction, in global time order per core.
    fn on_issue(&mut self, event: &IssueEvent);

    /// Whether the sink wants [`WarpEvent`]s. Default `false`; the core
    /// skips all event assembly (including lane-address collection) when
    /// this is off.
    fn wants_warp_events(&self) -> bool {
        false
    }

    /// Called once per dynamic outcome of `(core, warp)`, in that warp's
    /// program order (the only order replay needs — cross-warp ordering
    /// is reconstructed by the replay scheduler itself).
    fn on_warp_event(&mut self, _core: usize, _warp: usize, _event: &WarpEvent) {}

    /// Called at the start of every [`Device::run`](crate::Device) —
    /// i.e. once per kernel launch — so multi-launch recordings keep
    /// per-launch stream boundaries.
    fn on_launch_begin(&mut self) {}

    /// Called when a warp reads a timing-dependent CSR (`mcycle`,
    /// `minstret`, `active_warps`): the recorded stream is then only
    /// valid for the exact configuration that produced it, and a
    /// recorder must refuse to offer it for cross-configuration replay.
    fn on_timing_csr_read(&mut self) {}
}

/// The no-op sink: discards every event.
///
/// Untraced runs are monomorphised against this type (see
/// [`Device::run_untraced`](crate::Device::run_untraced)), so the entire
/// trace hook — virtual dispatch included — compiles away on the
/// simulator's hot path.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn on_issue(&mut self, _event: &IssueEvent) {}
}

/// The trivial sink: collects every event into a vector.
///
/// # Examples
///
/// ```
/// use vortex_sim::{IssueEvent, TraceSink, VecTraceSink};
/// let mut sink = VecTraceSink::new();
/// // ... pass `&mut sink` to `Device::run` ...
/// assert!(sink.events().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct VecTraceSink {
    events: Vec<IssueEvent>,
}

impl VecTraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected events.
    pub fn events(&self) -> &[IssueEvent] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<IssueEvent> {
        self.events
    }
}

impl TraceSink for VecTraceSink {
    fn on_issue(&mut self, event: &IssueEvent) {
        self.events.push(*event);
    }
}

/// The warp-event streams of one kernel launch: one vector of
/// [`WarpEvent`]s per `(core, warp)` slot, in that warp's program order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LaunchRecord {
    /// Warps per core (the stream-index stride).
    warps: usize,
    /// `cores × warps` streams, indexed `core * warps + warp`.
    streams: Vec<Vec<WarpEvent>>,
}

impl LaunchRecord {
    /// An empty record for a `cores × warps` device.
    pub fn new(cores: usize, warps: usize) -> Self {
        LaunchRecord { warps, streams: vec![Vec::new(); cores * warps] }
    }

    /// Rebuilds a record from raw streams (the trace decoder's entry).
    ///
    /// # Panics
    ///
    /// Panics if `streams.len()` is not a multiple of `warps`.
    pub fn from_streams(warps: usize, streams: Vec<Vec<WarpEvent>>) -> Self {
        assert!(warps > 0 && streams.len().is_multiple_of(warps), "stream count must cover whole cores");
        LaunchRecord { warps, streams }
    }

    /// Warps per core.
    pub fn warps(&self) -> usize {
        self.warps
    }

    /// The raw streams, indexed `core * warps + warp` (codec access).
    pub fn streams(&self) -> &[Vec<WarpEvent>] {
        &self.streams
    }

    /// Appends an event to `(core, warp)`'s stream.
    pub fn push(&mut self, core: usize, warp: usize, event: WarpEvent) {
        self.streams[core * self.warps + warp].push(event);
    }

    /// Total events across all streams.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether no stream holds any event.
    pub fn is_empty(&self) -> bool {
        self.streams.iter().all(Vec::is_empty)
    }

    /// A fresh cursor positioned at the start of every stream.
    pub fn cursor(&self) -> ReplayCursor {
        ReplayCursor { pos: vec![0; self.streams.len()] }
    }

    /// Events `cursor` has not consumed. A successful replay must end
    /// with zero left over — a surplus means the replayed run diverged
    /// from the recorded one.
    pub fn leftover(&self, cursor: &ReplayCursor) -> usize {
        self.streams.iter().zip(&cursor.pos).map(|(s, &p)| s.len().saturating_sub(p)).sum()
    }
}

/// A complete recorded trace: one [`LaunchRecord`] per kernel launch, in
/// launch order, plus the topology it is bound to and the taint flag.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Cores of the recording device.
    pub cores: usize,
    /// Warps per core of the recording device.
    pub warps: usize,
    /// Whether a timing-dependent CSR was read during recording: a
    /// tainted stream is only valid for the exact configuration that
    /// produced it and must never be offered for cross-configuration
    /// replay.
    pub tainted: bool,
    /// Per-launch event streams, in launch order.
    pub launches: Vec<LaunchRecord>,
}

/// A [`TraceSink`] that records the warp-event streams of every launch —
/// the *record* half of the record/replay engine.
///
/// # Examples
///
/// ```
/// use vortex_sim::TraceRecorder;
/// let recorder = TraceRecorder::new(2, 4);
/// let trace = recorder.finish();
/// assert_eq!((trace.cores, trace.warps), (2, 4));
/// assert!(trace.launches.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct TraceRecorder {
    trace: RecordedTrace,
}

impl TraceRecorder {
    /// A recorder for a `cores × warps` device.
    pub fn new(cores: usize, warps: usize) -> Self {
        TraceRecorder {
            trace: RecordedTrace { cores, warps, tainted: false, launches: Vec::new() },
        }
    }

    /// Consumes the recorder, returning the trace.
    pub fn finish(self) -> RecordedTrace {
        self.trace
    }
}

impl TraceSink for TraceRecorder {
    fn on_issue(&mut self, _event: &IssueEvent) {}

    fn wants_warp_events(&self) -> bool {
        true
    }

    fn on_warp_event(&mut self, core: usize, warp: usize, event: &WarpEvent) {
        self.trace.launches.last_mut().expect("on_launch_begin precedes every warp event").push(
            core,
            warp,
            event.clone(),
        );
    }

    fn on_launch_begin(&mut self) {
        let (c, w) = (self.trace.cores, self.trace.warps);
        self.trace.launches.push(LaunchRecord::new(c, w));
    }

    fn on_timing_csr_read(&mut self) {
        self.trace.tainted = true;
    }
}

/// Per-stream read positions into a [`LaunchRecord`] — the replay run's
/// only mutable trace state, owned by the caller so the record itself can
/// be shared immutably (and re-replayed with a fresh cursor).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayCursor {
    pos: Vec<usize>,
}

/// The core-facing replay handle: the launch's streams plus the cursor
/// positions, borrowed together for one run.
pub(crate) struct ReplayCtx<'a> {
    rec: &'a LaunchRecord,
    pos: &'a mut [usize],
}

impl<'a> ReplayCtx<'a> {
    /// Borrows `rec` and `cursor` for one run.
    ///
    /// # Panics
    ///
    /// Panics if the cursor was built for a different stream count.
    pub fn new(rec: &'a LaunchRecord, cursor: &'a mut ReplayCursor) -> Self {
        assert_eq!(rec.streams.len(), cursor.pos.len(), "cursor/record stream count mismatch");
        ReplayCtx { rec, pos: &mut cursor.pos }
    }

    /// The next recorded event of `(core, warp)`, advancing the cursor.
    /// The returned reference borrows the *record*, not the cursor, so a
    /// caller may keep it while re-emitting to a sink.
    pub fn next(&mut self, core: usize, warp: usize) -> Option<&'a WarpEvent> {
        let i = core * self.rec.warps + warp;
        let ev = self.rec.streams[i].get(self.pos[i])?;
        self.pos[i] += 1;
        Some(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::Instr;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecTraceSink::new();
        for cycle in 0..3 {
            sink.on_issue(&IssueEvent {
                cycle,
                core: 0,
                warp: 0,
                pc: 0x8000_0000 + 4 * cycle as u32,
                tmask: 0xF,
                instr: Instr::Join,
            });
        }
        assert_eq!(sink.events().len(), 3);
        assert_eq!(sink.events()[2].pc, 0x8000_0008);
        assert_eq!(sink.events()[0].active_lanes(), 4);
    }
}
