//! Trace hooks: the simulator's view of instruction issue events.

use vortex_isa::Instr;
use vortex_mem::Cycle;

/// One instruction issue, as observed by the paper's trace analysis
/// (Fig. 1 plots exactly these fields: timestamp, PC, warp and the active
/// thread mask).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IssueEvent {
    /// Issue cycle.
    pub cycle: Cycle,
    /// Core index.
    pub core: usize,
    /// Warp index within the core.
    pub warp: usize,
    /// Program counter of the instruction.
    pub pc: u32,
    /// Active thread mask at issue.
    pub tmask: u32,
    /// The issued instruction.
    pub instr: Instr,
}

impl IssueEvent {
    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        self.tmask.count_ones()
    }
}

/// Receiver for issue events.
///
/// Implementations must be cheap; the sink runs on the simulator's hot
/// path. Collect first, analyse later (see `vortex-trace`).
pub trait TraceSink {
    /// Called once per issued instruction, in global time order per core.
    fn on_issue(&mut self, event: &IssueEvent);
}

/// The no-op sink: discards every event.
///
/// Untraced runs are monomorphised against this type (see
/// [`Device::run_untraced`](crate::Device::run_untraced)), so the entire
/// trace hook — virtual dispatch included — compiles away on the
/// simulator's hot path.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn on_issue(&mut self, _event: &IssueEvent) {}
}

/// The trivial sink: collects every event into a vector.
///
/// # Examples
///
/// ```
/// use vortex_sim::{IssueEvent, TraceSink, VecTraceSink};
/// let mut sink = VecTraceSink::new();
/// // ... pass `&mut sink` to `Device::run` ...
/// assert!(sink.events().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct VecTraceSink {
    events: Vec<IssueEvent>,
}

impl VecTraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected events.
    pub fn events(&self) -> &[IssueEvent] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<IssueEvent> {
        self.events
    }
}

impl TraceSink for VecTraceSink {
    fn on_issue(&mut self, event: &IssueEvent) {
        self.events.push(*event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::Instr;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecTraceSink::new();
        for cycle in 0..3 {
            sink.on_issue(&IssueEvent {
                cycle,
                core: 0,
                warp: 0,
                pc: 0x8000_0000 + 4 * cycle as u32,
                tmask: 0xF,
                instr: Instr::Join,
            });
        }
        assert_eq!(sink.events().len(), 3);
        assert_eq!(sink.events()[2].pc, 0x8000_0008);
        assert_eq!(sink.events()[0].active_lanes(), 4);
    }
}
