//! One SIMT core: warp scheduling, hazard checking and instruction
//! execution.

use std::collections::HashMap;

use vortex_isa::{
    csrs, AluImmOp, AluOp, BranchOp, Csr, ExecClass, FpBinOp, FpCmpOp, FmaOp, Instr,
    LoadWidth, StoreWidth, VoteOp,
};
use vortex_mem::{coalesce_lines, Cycle, MainMemory, MemSystem};

use crate::config::TimingConfig;
use crate::counters::DeviceCounters;
use crate::error::SimError;
use crate::ipdom::IpdomEntry;
use crate::trace_api::{IssueEvent, TraceSink};
use crate::warp::{WarpState, NEVER};

/// Everything a core needs from the device while stepping.
///
/// Generic over the trace sink so untraced runs (`S = NullSink`) are
/// monomorphised with the trace hook compiled away entirely — no virtual
/// dispatch on the per-instruction hot path.
pub(crate) struct CoreCtx<'a, S: TraceSink + ?Sized> {
    pub code: &'a [Instr],
    pub code_base: u32,
    pub mem: &'a mut MainMemory,
    pub memsys: &'a mut MemSystem,
    pub timing: &'a TimingConfig,
    pub num_cores: usize,
    pub ipdom_depth: usize,
    pub counters: &'a mut DeviceCounters,
    pub trace: Option<&'a mut S>,
    /// Latest completion time of any memory event (for drain accounting).
    pub horizon: &'a mut Cycle,
    /// Cache-line size (hoisted from the memory system once per run).
    pub line_bytes: u32,
    /// L1 bank count (hoisted once per run; ≥ 1).
    pub l1_banks: usize,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
}

/// The outcome of asking a core to make progress.
pub(crate) enum StepOutcome {
    /// An instruction was issued; the core wants to run again at the cycle.
    Issued(Cycle),
    /// Nothing issuable yet; earliest time something could issue.
    Waiting(Cycle),
    /// All warps halted; core is idle.
    Idle,
}

/// Cached scheduling state for one warp's *next* instruction, filled
/// eagerly when the warp issues (or lazily on first examination), so a
/// warp wakes exactly at its next issue cycle with the instruction already
/// fetched and its register hazards already resolved.
#[derive(Copy, Clone, Debug)]
struct NextIssue {
    /// The fetched instruction.
    instr: Instr,
    /// PC the cache was computed for; a mismatch (branch target rewrite,
    /// respawn) invalidates it.
    pc: u32,
    /// Earliest issue cycle from warp-local state only (control gap and
    /// register hazards). Warp-local state cannot change while the warp is
    /// dormant, so this stays exact until the warp issues again.
    t_local: Cycle,
    /// Whether the instruction also contends for the memory port
    /// (`mem_port_free` moves when *other* warps issue, so it is folded in
    /// at wake time rather than cached).
    is_mem: bool,
    /// Whether the entry is usable at all.
    valid: bool,
}

impl NextIssue {
    const INVALID: NextIssue =
        NextIssue { instr: Instr::Join, pc: 0, t_local: 0, is_mem: false, valid: false };
}

#[derive(Debug)]
pub(crate) struct Core {
    id: usize,
    pub(crate) warps: Vec<WarpState>,
    barriers: HashMap<u32, BarrierState>,
    last_issued: usize,
    mem_port_free: Cycle,
    /// Per-warp lower bound on the next possible issue cycle (`NEVER` for
    /// halted or barrier-blocked warps). Kept exact-or-early at every
    /// scheduling-state transition, so the scheduler may skip any warp
    /// with `warp_next[w] > now` without fetching or hazard-checking it —
    /// the cached bound never exceeds the true earliest issue time, which
    /// keeps cycle results bit-identical to the full rescan.
    warp_next: Vec<Cycle>,
    /// Per-warp pre-fetched next instruction and its hazard time.
    next_issue: Vec<NextIssue>,
}

impl Core {
    pub fn new(id: usize, warps: usize, threads: usize) -> Self {
        Core {
            id,
            warps: (0..warps).map(|_| WarpState::new(threads)).collect(),
            barriers: HashMap::new(),
            last_issued: 0,
            mem_port_free: 0,
            warp_next: vec![NEVER; warps],
            next_issue: vec![NextIssue::INVALID; warps],
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Activates warp `w` at `pc` with a full thread mask.
    pub fn start_warp(&mut self, w: usize, pc: u32, ready_at: Cycle) {
        let full = self.warps[w].full_mask();
        self.warps[w].start(pc, full, ready_at);
        self.warp_next[w] = if self.warps[w].active { ready_at } else { NEVER };
        self.next_issue[w].valid = false;
    }

    /// Earliest cached next-issue bound across warps (`NEVER` when no warp
    /// is schedulable).
    fn next_event(&self) -> Cycle {
        self.warp_next.iter().copied().min().unwrap_or(NEVER)
    }

    pub fn any_active(&self) -> bool {
        self.warps.iter().any(|w| w.active)
    }

    /// Bit mask of active warps (CSR `active_warps`).
    fn active_warp_mask(&self) -> u32 {
        let mut m = 0;
        for (i, w) in self.warps.iter().enumerate() {
            if w.active {
                m |= 1 << i;
            }
        }
        m
    }

    pub fn reset(&mut self) {
        for w in &mut self.warps {
            w.deactivate();
        }
        self.barriers.clear();
        self.last_issued = 0;
        self.mem_port_free = 0;
        self.warp_next.fill(NEVER);
        self.next_issue.fill(NextIssue::INVALID);
    }

    fn fetch<S: TraceSink + ?Sized>(&self, w: usize, ctx: &CoreCtx<'_, S>) -> Result<Instr, SimError> {
        let pc = self.warps[w].pc;
        if pc < ctx.code_base || pc % 4 != 0 {
            return Err(SimError::UnmappedPc { core: self.id, warp: w, pc });
        }
        let idx = ((pc - ctx.code_base) / 4) as usize;
        ctx.code
            .get(idx)
            .copied()
            .ok_or(SimError::UnmappedPc { core: self.id, warp: w, pc })
    }

    /// Earliest cycle warp `w` could issue `instr` considering only
    /// warp-local state: the control gap and register hazards. The
    /// memory-port structural hazard is folded in by the caller (it moves
    /// when *other* warps issue, so it cannot be cached per warp).
    fn earliest_issue_local(&self, w: usize, instr: Instr) -> Cycle {
        let warp = &self.warps[w];
        let mut t = warp.ready_at;
        for src in instr.src_regs().into_iter().flatten() {
            if !src.is_zero() {
                t = t.max(warp.busy_until[src.dense_index()]);
            }
        }
        if let Some(dst) = instr.dst_reg() {
            t = t.max(warp.busy_until[dst.dense_index()]);
        }
        t
    }

    /// The warp's fetched-and-hazard-checked next instruction, from the
    /// cache when the warp's PC still matches, fetched on demand
    /// otherwise. Returns the instruction and its earliest issue cycle.
    fn next_for<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        ctx: &CoreCtx<'_, S>,
    ) -> Result<(Instr, Cycle), SimError> {
        let cached = self.next_issue[w];
        if cached.valid && cached.pc == self.warps[w].pc {
            let t = if cached.is_mem {
                cached.t_local.max(self.mem_port_free)
            } else {
                cached.t_local
            };
            return Ok((cached.instr, t));
        }
        let instr = self.fetch(w, ctx)?;
        let t_local = self.earliest_issue_local(w, instr);
        let is_mem = instr.is_mem();
        self.next_issue[w] =
            NextIssue { instr, pc: self.warps[w].pc, t_local, is_mem, valid: true };
        let t = if is_mem { t_local.max(self.mem_port_free) } else { t_local };
        Ok((instr, t))
    }

    /// Eagerly prepares warp `w`'s next wake-up after it issued: fetch the
    /// next instruction, resolve its hazards, and point `warp_next` at the
    /// exact issue cycle so no intermediate scheduler steps are wasted. A
    /// fetch failure is deliberately swallowed — the warp wakes at its
    /// control-gap bound and the error surfaces on that scheduled scan.
    /// Note this can report a fault a few cycles later than the seed
    /// scheduler did (which fetched even not-yet-ready warps on every
    /// step), and a `max_cycles` limit falling inside that gap yields
    /// `CycleLimit` instead of the fetch fault. Only failing programs are
    /// affected; successful runs are cycle-for-cycle identical.
    fn refresh_after_issue<S: TraceSink + ?Sized>(&mut self, w: usize, ctx: &CoreCtx<'_, S>) {
        if !self.warps[w].schedulable() {
            return;
        }
        match self.fetch(w, ctx) {
            Ok(instr) => {
                let t_local = self.earliest_issue_local(w, instr);
                let is_mem = instr.is_mem();
                self.next_issue[w] =
                    NextIssue { instr, pc: self.warps[w].pc, t_local, is_mem, valid: true };
                // `mem_port_free` only grows, so folding today's value in
                // keeps `warp_next` a valid lower bound.
                self.warp_next[w] =
                    if is_mem { t_local.max(self.mem_port_free) } else { t_local };
            }
            Err(_) => {
                self.next_issue[w].valid = false;
                self.warp_next[w] = self.warps[w].ready_at;
            }
        }
    }

    /// Attempts to issue one instruction at cycle `now`.
    ///
    /// Warps whose cached [`warp_next`](Core::warp_next) bound lies in the
    /// future are skipped without a fetch or hazard check; the bound is
    /// refreshed whenever a warp is actually examined, so repeated steps
    /// while every warp waits on long latencies cost one `u64` compare per
    /// warp instead of a full rescan.
    pub fn step<S: TraceSink + ?Sized>(
        &mut self,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<StepOutcome, SimError> {
        let n = self.warps.len();
        let mut earliest: Cycle = NEVER;
        for i in 1..=n {
            let w = (self.last_issued + i) % n;
            let bound = self.warp_next[w];
            if bound > now {
                earliest = earliest.min(bound);
                continue;
            }
            let (instr, t) = self.next_for(w, ctx)?;
            if t <= now {
                self.issue(w, instr, now, ctx)?;
                self.last_issued = w;
                self.refresh_after_issue(w, ctx);
                let next = self.next_event();
                return if next != NEVER {
                    // One issue per core per cycle; beyond that, resume at
                    // the earliest time any warp could possibly issue.
                    Ok(StepOutcome::Issued(next.max(now + 1)))
                } else if self.warps.iter().any(|x| x.active) {
                    // Only barrier-blocked warps remain.
                    Err(SimError::BarrierDeadlock { cycle: now })
                } else {
                    Ok(StepOutcome::Idle)
                };
            }
            self.warp_next[w] = t;
            earliest = earliest.min(t);
        }
        if earliest != NEVER {
            Ok(StepOutcome::Waiting(earliest))
        } else if self.warps.iter().any(|x| x.active) {
            Err(SimError::BarrierDeadlock { cycle: now })
        } else {
            Ok(StepOutcome::Idle)
        }
    }

    /// Executes `instr` for warp `w` at cycle `now`.
    fn issue<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        instr: Instr,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<(), SimError> {
        let pc = self.warps[w].pc;
        let tmask = self.warps[w].tmask;

        ctx.counters.instructions += 1;
        ctx.counters.lane_instructions += u64::from(tmask.count_ones());
        ctx.counters.classes.record(instr.exec_class());
        if let Some(sink) = ctx.trace.as_mut() {
            sink.on_issue(&IssueEvent { cycle: now, core: self.id, warp: w, pc, tmask, instr });
        }

        let timing = ctx.timing;
        let mut next_pc = pc.wrapping_add(4);
        let mut halted = false;

        // Each arm hoists one `&mut` borrow of its warp (`wp`): repeated
        // `self.warps[w]` indexing inside per-lane loops costs a bounds
        // check and a struct-stride multiply per register access, which
        // measurably dominates the interpreter on wide warps.
        macro_rules! lanes {
            ($wp:expr) => {
                (0..$wp.threads()).filter(|&l| tmask & (1 << l) != 0)
            };
        }
        macro_rules! wb_int {
            ($wp:expr, $rd:expr, $lat:expr) => {
                if !$rd.is_zero() {
                    $wp.busy_until[$rd.num() as usize] = now + $lat;
                }
            };
        }
        macro_rules! wb_fp {
            ($wp:expr, $rd:expr, $lat:expr) => {
                $wp.busy_until[32 + $rd.num() as usize] = now + $lat;
            };
        }

        match instr {
            Instr::Lui { rd, imm } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    wp.set_ireg(lane, rd, imm as u32);
                }
                wb_int!(wp, rd, timing.alu);
            }
            Instr::Auipc { rd, imm } => {
                let v = pc.wrapping_add(imm as u32);
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    wp.set_ireg(lane, rd, v);
                }
                wb_int!(wp, rd, timing.alu);
            }
            Instr::Jal { rd, offset } => {
                let link = pc.wrapping_add(4);
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    wp.set_ireg(lane, rd, link);
                }
                wb_int!(wp, rd, timing.alu);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let base = self.uniform(w, rs1, pc)?;
                let link = pc.wrapping_add(4);
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    wp.set_ireg(lane, rd, link);
                }
                wb_int!(wp, rd, timing.alu);
                next_pc = base.wrapping_add(offset as u32) & !1;
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                let mut cond: Option<bool> = None;
                let wp = &self.warps[w];
                for lane in lanes!(wp) {
                    let a = wp.ireg(lane, rs1);
                    let b = wp.ireg(lane, rs2);
                    let c = match op {
                        BranchOp::Eq => a == b,
                        BranchOp::Ne => a != b,
                        BranchOp::Lt => (a as i32) < (b as i32),
                        BranchOp::Ge => (a as i32) >= (b as i32),
                        BranchOp::Ltu => a < b,
                        BranchOp::Geu => a >= b,
                    };
                    match cond {
                        None => cond = Some(c),
                        Some(prev) if prev != c => {
                            return Err(SimError::DivergentBranch { core: self.id, warp: w, pc })
                        }
                        _ => {}
                    }
                }
                if cond.unwrap_or(false) {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load { width, rd, rs1, offset } => {
                let (bytes, _) = load_width_bytes(width);
                let mut addrs = [0u32; 32];
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let addr = wp.ireg(lane, rs1).wrapping_add(offset as u32);
                    if addr & (bytes - 1) != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                    }
                    let raw = match width {
                        LoadWidth::Byte => ctx.mem.read_u8(addr) as i8 as i32 as u32,
                        LoadWidth::ByteU => ctx.mem.read_u8(addr) as u32,
                        LoadWidth::Half => ctx.mem.read_u16(addr) as i16 as i32 as u32,
                        LoadWidth::HalfU => ctx.mem.read_u16(addr) as u32,
                        LoadWidth::Word => ctx.mem.read_u32(addr),
                    };
                    wp.set_ireg(lane, rd, raw);
                    addrs[lane] = addr;
                }
                let completion = self.memory_access(w, &addrs, tmask, false, now, ctx);
                if !rd.is_zero() {
                    self.warps[w].busy_until[rd.num() as usize] = completion;
                }
            }
            Instr::Store { width, rs2, rs1, offset } => {
                let (bytes, _) = load_width_bytes(match width {
                    StoreWidth::Byte => LoadWidth::Byte,
                    StoreWidth::Half => LoadWidth::Half,
                    StoreWidth::Word => LoadWidth::Word,
                });
                let mut addrs = [0u32; 32];
                let wp = &self.warps[w];
                for lane in lanes!(wp) {
                    let addr = wp.ireg(lane, rs1).wrapping_add(offset as u32);
                    if addr & (bytes - 1) != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                    }
                    let v = wp.ireg(lane, rs2);
                    match width {
                        StoreWidth::Byte => ctx.mem.write_u8(addr, v as u8),
                        StoreWidth::Half => ctx.mem.write_u16(addr, v as u16),
                        StoreWidth::Word => ctx.mem.write_u32(addr, v),
                    }
                    addrs[lane] = addr;
                }
                self.memory_access(w, &addrs, tmask, true, now, ctx);
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let a = wp.ireg(lane, rs1);
                    let v = alu_imm(op, a, imm);
                    wp.set_ireg(lane, rd, v);
                }
                wb_int!(wp, rd, timing.alu);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let a = wp.ireg(lane, rs1);
                    let b = wp.ireg(lane, rs2);
                    let v = alu(op, a, b);
                    wp.set_ireg(lane, rd, v);
                }
                let lat = match instr.exec_class() {
                    ExecClass::Mul => timing.mul,
                    ExecClass::Div => timing.div,
                    _ => timing.alu,
                };
                wb_int!(wp, rd, lat);
            }
            Instr::Fence => {}
            Instr::Ecall => return Err(SimError::Trap { pc, breakpoint: false }),
            Instr::Ebreak => return Err(SimError::Trap { pc, breakpoint: true }),
            Instr::Csr { op: _, rd, src, csr } => {
                // All architectural CSRs are read-only; writes are ignored.
                let _ = src;
                if csr == csrs::THREAD_ID {
                    let wp = &mut self.warps[w];
                    for lane in lanes!(wp) {
                        wp.set_ireg(lane, rd, lane as u32);
                    }
                    wb_int!(wp, rd, timing.alu);
                } else {
                    // Every other CSR is lane-invariant: resolve it once
                    // and broadcast instead of re-matching per lane.
                    let v = self.read_csr(csr, w, 0, now, ctx);
                    let wp = &mut self.warps[w];
                    for lane in lanes!(wp) {
                        wp.set_ireg(lane, rd, v);
                    }
                    wb_int!(wp, rd, timing.alu);
                }
            }
            Instr::Flw { rd, rs1, offset } => {
                let mut addrs = [0u32; 32];
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let addr = wp.ireg(lane, rs1).wrapping_add(offset as u32);
                    if addr & 3 != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: 4 });
                    }
                    let bits = ctx.mem.read_u32(addr);
                    wp.set_freg_bits(lane, rd, bits);
                    addrs[lane] = addr;
                }
                let completion = self.memory_access(w, &addrs, tmask, false, now, ctx);
                self.warps[w].busy_until[32 + rd.num() as usize] = completion;
            }
            Instr::Fsw { rs2, rs1, offset } => {
                let mut addrs = [0u32; 32];
                let wp = &self.warps[w];
                for lane in lanes!(wp) {
                    let addr = wp.ireg(lane, rs1).wrapping_add(offset as u32);
                    if addr & 3 != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: 4 });
                    }
                    let bits = wp.freg_bits(lane, rs2);
                    ctx.mem.write_u32(addr, bits);
                    addrs[lane] = addr;
                }
                self.memory_access(w, &addrs, tmask, true, now, ctx);
            }
            Instr::FpOp { op, rd, rs1, rs2 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let a = wp.freg(lane, rs1);
                    let b = wp.freg(lane, rs2);
                    let v = fp_bin(op, a, b);
                    wp.set_freg_bits(lane, rd, v);
                }
                let lat = if matches!(op, FpBinOp::Div) { timing.fdiv } else { timing.fpu };
                wb_fp!(wp, rd, lat);
            }
            Instr::FpFma { op, rd, rs1, rs2, rs3 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let a = wp.freg(lane, rs1);
                    let b = wp.freg(lane, rs2);
                    let c = wp.freg(lane, rs3);
                    let v = match op {
                        FmaOp::MAdd => a.mul_add(b, c),
                        FmaOp::MSub => a.mul_add(b, -c),
                        FmaOp::NMSub => (-a).mul_add(b, c),
                        FmaOp::NMAdd => (-a).mul_add(b, -c),
                    };
                    wp.set_freg(lane, rd, v);
                }
                wb_fp!(wp, rd, timing.fpu);
            }
            Instr::FpSqrt { rd, rs1 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let v = wp.freg(lane, rs1).sqrt();
                    wp.set_freg(lane, rd, v);
                }
                wb_fp!(wp, rd, timing.fsqrt);
            }
            Instr::FpCmp { op, rd, rs1, rs2 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let a = wp.freg(lane, rs1);
                    let b = wp.freg(lane, rs2);
                    let v = match op {
                        FpCmpOp::Eq => a == b,
                        FpCmpOp::Lt => a < b,
                        FpCmpOp::Le => a <= b,
                    };
                    wp.set_ireg(lane, rd, v as u32);
                }
                wb_int!(wp, rd, timing.fpu);
            }
            Instr::FpCvtToInt { signed, rd, rs1 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let v = wp.freg(lane, rs1);
                    let bits = if signed {
                        if v.is_nan() {
                            i32::MAX as u32
                        } else {
                            (v as i32) as u32
                        }
                    } else if v.is_nan() {
                        u32::MAX
                    } else {
                        v as u32
                    };
                    wp.set_ireg(lane, rd, bits);
                }
                wb_int!(wp, rd, timing.fpu);
            }
            Instr::FpCvtFromInt { signed, rd, rs1 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let raw = wp.ireg(lane, rs1);
                    let v = if signed { raw as i32 as f32 } else { raw as f32 };
                    wp.set_freg(lane, rd, v);
                }
                wb_fp!(wp, rd, timing.fpu);
            }
            Instr::FpMvToInt { rd, rs1 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let bits = wp.freg_bits(lane, rs1);
                    wp.set_ireg(lane, rd, bits);
                }
                wb_int!(wp, rd, timing.fpu);
            }
            Instr::FpMvFromInt { rd, rs1 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let bits = wp.ireg(lane, rs1);
                    wp.set_freg_bits(lane, rd, bits);
                }
                wb_fp!(wp, rd, timing.fpu);
            }
            Instr::FpClass { rd, rs1 } => {
                let wp = &mut self.warps[w];
                for lane in lanes!(wp) {
                    let v = wp.freg(lane, rs1);
                    wp.set_ireg(lane, rd, fclass(v));
                }
                wb_int!(wp, rd, timing.fpu);
            }
            Instr::Tmc { rs1 } => {
                let mask = self.uniform(w, rs1, pc)? & self.warps[w].full_mask();
                if mask == 0 {
                    self.warps[w].halt();
                    self.warp_next[w] = NEVER;
                    halted = true;
                } else {
                    self.warps[w].tmask = mask;
                }
            }
            Instr::Wspawn { rs1, rs2 } => {
                let count = self.uniform(w, rs1, pc)?;
                let target = self.uniform(w, rs2, pc)?;
                if count as usize > self.warps.len() {
                    return Err(SimError::WspawnTooManyWarps {
                        requested: count,
                        available: self.warps.len(),
                    });
                }
                for i in 1..count as usize {
                    if i != w {
                        let full = self.warps[i].full_mask();
                        self.warps[i].start(target, full, now + timing.wspawn);
                        self.warp_next[i] = now + timing.wspawn;
                        // Respawn resets scheduling state; a cached entry
                        // could alias the same PC with stale hazards.
                        self.next_issue[i].valid = false;
                    }
                }
            }
            Instr::Split { rs1, offset } => {
                if self.warps[w].ipdom.len() >= ctx.ipdom_depth {
                    return Err(SimError::IpdomOverflow { pc });
                }
                let mut taken = 0u32;
                let wp = &self.warps[w];
                for lane in lanes!(wp) {
                    if wp.ireg(lane, rs1) != 0 {
                        taken |= 1 << lane;
                    }
                }
                let not_taken = tmask & !taken;
                let else_pc = pc.wrapping_add(offset as u32);
                if not_taken == 0 {
                    self.warps[w].ipdom.push(IpdomEntry::Uniform { restore_mask: tmask });
                } else if taken == 0 {
                    self.warps[w].ipdom.push(IpdomEntry::Uniform { restore_mask: tmask });
                    next_pc = else_pc;
                } else {
                    self.warps[w].ipdom.push(IpdomEntry::ElsePending {
                        restore_mask: tmask,
                        else_mask: not_taken,
                        else_pc,
                    });
                    self.warps[w].tmask = taken;
                }
            }
            Instr::Join => match self.warps[w].ipdom.pop() {
                None => return Err(SimError::IpdomUnderflow { pc }),
                Some(IpdomEntry::Uniform { restore_mask })
                | Some(IpdomEntry::ElseRunning { restore_mask }) => {
                    self.warps[w].tmask = restore_mask;
                }
                Some(IpdomEntry::ElsePending { restore_mask, else_mask, else_pc }) => {
                    self.warps[w].ipdom.push(IpdomEntry::ElseRunning { restore_mask });
                    self.warps[w].tmask = else_mask;
                    next_pc = else_pc;
                }
            },
            Instr::Bar { rs1, rs2 } => {
                let id = self.uniform(w, rs1, pc)?;
                let count = self.uniform(w, rs2, pc)? as usize;
                let state = self.barriers.entry(id).or_default();
                state.arrived.push(w);
                if state.arrived.len() >= count {
                    let released = self.barriers.remove(&id).expect("just inserted");
                    for rw in released.arrived {
                        self.warps[rw].at_barrier = None;
                        self.warps[rw].ready_at = now + timing.barrier;
                        self.warp_next[rw] = now + timing.barrier;
                        self.next_issue[rw].valid = false;
                    }
                    // `self` (warp w) is among the released warps.
                    self.warps[w].pc = next_pc;
                    return Ok(());
                } else {
                    self.warps[w].at_barrier = Some(id);
                    self.warps[w].ready_at = NEVER;
                    self.warp_next[w] = NEVER;
                    self.warps[w].pc = next_pc;
                    return Ok(());
                }
            }
            Instr::Vote { op, rd, rs1 } => {
                let wp = &mut self.warps[w];
                let mut ballot = 0u32;
                for lane in lanes!(wp) {
                    if wp.ireg(lane, rs1) != 0 {
                        ballot |= 1 << lane;
                    }
                }
                let result = match op {
                    VoteOp::Any => u32::from(ballot != 0),
                    VoteOp::All => u32::from(ballot == tmask),
                    VoteOp::Ballot => ballot,
                };
                for lane in lanes!(wp) {
                    wp.set_ireg(lane, rd, result);
                }
                wb_int!(wp, rd, timing.alu);
            }
        }

        if !halted {
            let taken = next_pc != pc.wrapping_add(4);
            let gap = if taken && instr.is_control() { 1 + timing.branch_bubble } else { 1 };
            self.warps[w].pc = next_pc;
            self.warps[w].ready_at = now + gap;
            // `ready_at` ignores the next instruction's register hazards,
            // so it is a valid (early) lower bound for the skip cache.
            self.warp_next[w] = now + gap;
        }
        Ok(())
    }

    /// Coalesces and submits the line requests of one SIMT memory
    /// instruction. Returns the completion cycle of the last line.
    fn memory_access<S: TraceSink + ?Sized>(
        &mut self,
        _w: usize,
        addrs: &[u32; 32],
        tmask: u32,
        is_store: bool,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Cycle {
        let line_bytes = ctx.line_bytes;
        let banks = ctx.l1_banks;
        // Iterate set bits directly: cost scales with active lanes, not
        // with the 32-lane SIMT width.
        let mut mask = tmask;
        let lanes = std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(addrs[l])
        });
        let lines = coalesce_lines(lanes, line_bytes);
        let mut completion = now;
        for (i, line) in lines.as_slice().iter().enumerate() {
            // The banked L1 accepts `banks` lines per cycle.
            let at = now + (i / banks) as Cycle;
            let done = if is_store {
                ctx.memsys.store(self.id, *line, at)
            } else {
                ctx.memsys.load(self.id, *line, at)
            };
            completion = completion.max(done);
            *ctx.horizon = (*ctx.horizon).max(done);
        }
        self.mem_port_free = now + (lines.len().div_ceil(banks)).max(1) as Cycle;
        completion
    }

    fn uniform(&self, w: usize, reg: vortex_isa::Reg, pc: u32) -> Result<u32, SimError> {
        self.warps[w]
            .uniform_ireg(reg)
            .ok_or(SimError::NonUniformOperand { core: self.id, warp: w, pc })
    }

    fn read_csr<S: TraceSink + ?Sized>(
        &self,
        csr: Csr,
        w: usize,
        lane: usize,
        now: Cycle,
        ctx: &CoreCtx<'_, S>,
    ) -> u32 {
        match csr {
            c if c == csrs::THREAD_ID => lane as u32,
            c if c == csrs::WARP_ID => w as u32,
            c if c == csrs::CORE_ID => self.id as u32,
            c if c == csrs::THREAD_MASK => self.warps[w].tmask,
            c if c == csrs::ACTIVE_WARPS => self.active_warp_mask(),
            c if c == csrs::NUM_THREADS => self.warps[w].threads() as u32,
            c if c == csrs::NUM_WARPS => self.warps.len() as u32,
            c if c == csrs::NUM_CORES => ctx.num_cores as u32,
            c if c == csrs::MCYCLE => now as u32,
            c if c == csrs::MCYCLE_H => (now >> 32) as u32,
            c if c == csrs::MINSTRET => ctx.counters.instructions as u32,
            c if c == csrs::MINSTRET_H => (ctx.counters.instructions >> 32) as u32,
            _ => 0,
        }
    }
}

fn load_width_bytes(width: LoadWidth) -> (u32, bool) {
    match width {
        LoadWidth::Byte => (1, true),
        LoadWidth::ByteU => (1, false),
        LoadWidth::Half => (2, true),
        LoadWidth::HalfU => (2, false),
        LoadWidth::Word => (4, false),
    }
}

fn alu_imm(op: AluImmOp, a: u32, imm: i32) -> u32 {
    match op {
        AluImmOp::Add => a.wrapping_add(imm as u32),
        AluImmOp::Slt => u32::from((a as i32) < imm),
        AluImmOp::Sltu => u32::from(a < imm as u32),
        AluImmOp::Xor => a ^ imm as u32,
        AluImmOp::Or => a | imm as u32,
        AluImmOp::And => a & imm as u32,
        AluImmOp::Sll => a.wrapping_shl(imm as u32),
        AluImmOp::Srl => a.wrapping_shr(imm as u32),
        AluImmOp::Sra => ((a as i32).wrapping_shr(imm as u32)) as u32,
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: i32::MIN / -1
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Divu => {
            if b == 0 {
                u32::MAX
            } else {
                a / b
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn fp_bin(op: FpBinOp, a: f32, b: f32) -> u32 {
    let v = match op {
        FpBinOp::Add => a + b,
        FpBinOp::Sub => a - b,
        FpBinOp::Mul => a * b,
        FpBinOp::Div => a / b,
        FpBinOp::SgnJ => f32::from_bits((a.to_bits() & 0x7FFF_FFFF) | (b.to_bits() & 0x8000_0000)),
        FpBinOp::SgnJN => {
            f32::from_bits((a.to_bits() & 0x7FFF_FFFF) | (!b.to_bits() & 0x8000_0000))
        }
        FpBinOp::SgnJX => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
        FpBinOp::Min => a.min(b),
        FpBinOp::Max => a.max(b),
    };
    v.to_bits()
}

/// RISC-V `fclass.s` result mask.
fn fclass(v: f32) -> u32 {
    use std::num::FpCategory;
    let neg = v.is_sign_negative();
    match (v.classify(), neg) {
        (FpCategory::Infinite, true) => 1 << 0,
        (FpCategory::Normal, true) => 1 << 1,
        (FpCategory::Subnormal, true) => 1 << 2,
        (FpCategory::Zero, true) => 1 << 3,
        (FpCategory::Zero, false) => 1 << 4,
        (FpCategory::Subnormal, false) => 1 << 5,
        (FpCategory::Normal, false) => 1 << 6,
        (FpCategory::Infinite, false) => 1 << 7,
        (FpCategory::Nan, _) => {
            if v.to_bits() & 0x0040_0000 != 0 {
                1 << 9 // quiet NaN
            } else {
                1 << 8 // signaling NaN
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics_match_riscv() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Mulhu, u32::MAX, u32::MAX), 0xFFFF_FFFE);
        assert_eq!(alu(AluOp::Mulh, (-1i32) as u32, (-1i32) as u32), 0);
    }

    #[test]
    fn division_edge_cases_follow_spec() {
        // Division by zero.
        assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Divu, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        // Signed overflow.
        assert_eq!(alu(AluOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(alu(AluOp::Rem, 0x8000_0000, u32::MAX), 0);
    }

    #[test]
    fn sign_injection() {
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJ, 1.5, -2.0)), -1.5);
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJN, 1.5, -2.0)), 1.5);
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJX, -1.5, -2.0)), 1.5);
    }

    #[test]
    fn fclass_categories() {
        assert_eq!(fclass(f32::NEG_INFINITY), 1 << 0);
        assert_eq!(fclass(-1.0), 1 << 1);
        assert_eq!(fclass(-0.0), 1 << 3);
        assert_eq!(fclass(0.0), 1 << 4);
        assert_eq!(fclass(2.5), 1 << 6);
        assert_eq!(fclass(f32::INFINITY), 1 << 7);
        assert_eq!(fclass(f32::NAN), 1 << 9);
    }

    #[test]
    fn shift_immediates_mask_amount() {
        assert_eq!(alu_imm(AluImmOp::Sll, 1, 4), 16);
        assert_eq!(alu_imm(AluImmOp::Sra, (-16i32) as u32, 2), (-4i32) as u32);
    }
}
