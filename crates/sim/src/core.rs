//! One SIMT core: warp scheduling, hazard checking and instruction
//! execution.
//!
//! The execute loops are written against the core-owned lane-major
//! register file ([`RegFile`]): each opcode arm materialises its source
//! rows (a contiguous `threads`-word copy into a stack buffer, which also
//! resolves `dst == src` aliasing without `unsafe`), then writes the
//! destination row in a single pass — branch-free when the thread mask is
//! full, a set-bit walk otherwise. The register scoreboard is a flat
//! per-core array rather than a per-warp heap allocation, so hazard
//! checks stay within one cache line per warp.

use std::collections::HashMap;

use vortex_isa::{
    csrs, AluImmOp, AluOp, Csr, ExecClass, FpBinOp, Instr, LoadWidth, StoreWidth, VoteOp,
};
use vortex_mem::{coalesce_lines, Cycle, MainMemory, MemSystem};

use crate::config::TimingConfig;
use crate::counters::DeviceCounters;
use crate::decoded::{DecodedInstr, InstrMeta};
use crate::error::SimError;
use crate::exec::block::{BlockPlan, Step, StepOp};
use crate::exec::span::{self, Span};
use crate::exec::tables;
use crate::exec::{BinKernel, FmaKernel, ImmKernel, UnKernel};
use crate::ipdom::IpdomEntry;
use crate::regfile::{RegFile, FP_BASE};
use crate::trace_api::{IssueEvent, ReplayCtx, TraceSink, WarpEvent};
use crate::warp::{WarpState, NEVER};

/// Everything a core needs from the device while stepping.
///
/// Generic over the trace sink so untraced runs (`S = NullSink`) are
/// monomorphised with the trace hook compiled away entirely — no virtual
/// dispatch on the per-instruction hot path.
pub(crate) struct CoreCtx<'a, S: TraceSink + ?Sized> {
    /// The loaded program with its decode cache, one entry per slot.
    pub code: &'a [DecodedInstr],
    pub code_base: u32,
    pub mem: &'a mut MainMemory,
    pub memsys: &'a mut MemSystem,
    pub timing: &'a TimingConfig,
    pub num_cores: usize,
    pub ipdom_depth: usize,
    pub counters: &'a mut DeviceCounters,
    pub trace: Option<&'a mut S>,
    /// Latest completion time of any memory event (for drain accounting).
    pub horizon: &'a mut Cycle,
    /// Cache-line size (hoisted from the memory system once per run).
    pub line_bytes: u32,
    /// The program's fused basic-block plan (see
    /// [`BlockPlan`](crate::exec::block::BlockPlan)).
    pub blocks: &'a BlockPlan,
    /// Whether the fused block dispatch path is enabled (A/B switch for
    /// the bit-identity gate; cycle results are identical either way).
    pub fuse: bool,
    /// When set, the run is a *replay*: [`Core::issue`] consumes recorded
    /// [`WarpEvent`]s instead of executing row kernels — scheduling,
    /// hazards and memory-system timing run unchanged off trace-visible
    /// data, so cycles and counters are bit-identical to execute mode.
    pub replay: Option<ReplayCtx<'a>>,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
}

/// The outcome of running a core up to an event horizon.
pub(crate) enum CoreOutcome {
    /// The core's next internal event lies at this cycle (≥ the horizon);
    /// re-run it when global time gets there.
    Next(Cycle),
    /// All warps halted; core is idle.
    Idle,
}

/// Cached scheduling state for one warp's *next* instruction, filled
/// eagerly when the warp issues (or lazily on first examination), so a
/// warp wakes exactly at its next issue cycle with the instruction already
/// fetched and its register hazards already resolved.
#[derive(Copy, Clone, Debug)]
struct NextIssue {
    /// The fetched instruction.
    instr: Instr,
    /// The instruction's decode-cache entry.
    meta: InstrMeta,
    /// PC the cache was computed for; a mismatch (branch target rewrite,
    /// respawn) invalidates it.
    pc: u32,
    /// Earliest issue cycle from warp-local state only (control gap and
    /// register hazards). Warp-local state cannot change while the warp is
    /// dormant, so this stays exact until the warp issues again.
    t_local: Cycle,
    /// Whether the instruction also contends for the memory port
    /// (`mem_port_free` moves when *other* warps issue, so it is folded in
    /// at wake time rather than cached).
    is_mem: bool,
    /// Whether the entry is usable at all.
    valid: bool,
}

impl NextIssue {
    const INVALID: NextIssue = NextIssue {
        instr: Instr::Join,
        meta: InstrMeta::INVALID,
        pc: 0,
        t_local: 0,
        is_mem: false,
        valid: false,
    };
}

#[derive(Debug)]
pub(crate) struct Core {
    id: usize,
    pub(crate) warps: Vec<WarpState>,
    /// Lane-major register rows + scoreboard of every warp (see
    /// [`RegFile`]).
    rf: RegFile,
    barriers: HashMap<u32, BarrierState>,
    last_issued: usize,
    mem_port_free: Cycle,
    /// Per-warp lower bound on the next possible issue cycle (`NEVER` for
    /// halted or barrier-blocked warps). Kept exact-or-early at every
    /// scheduling-state transition, so the scheduler may skip any warp
    /// with `warp_next[w] > now` without fetching or hazard-checking it —
    /// the cached bound never exceeds the true earliest issue time, which
    /// keeps cycle results bit-identical to the full rescan.
    warp_next: Vec<Cycle>,
    /// Per-warp pre-fetched next instruction and its hazard time.
    next_issue: Vec<NextIssue>,
    /// Whether any warp was ever started since the last reset. An
    /// untouched core holds only default state, so [`Core::reset`] can
    /// skip it entirely — device resets stay O(touched cores), not
    /// O(topology).
    touched: bool,
}

impl Core {
    pub fn new(id: usize, warps: usize, threads: usize) -> Self {
        Core {
            id,
            warps: (0..warps).map(|_| WarpState::new(threads)).collect(),
            rf: RegFile::new(warps, threads),
            barriers: HashMap::new(),
            last_issued: 0,
            mem_port_free: 0,
            warp_next: vec![NEVER; warps],
            next_issue: vec![NextIssue::INVALID; warps],
            touched: false,
        }
    }

    /// Activates warp `w` at `pc` with a full thread mask.
    pub fn start_warp(&mut self, w: usize, pc: u32, ready_at: Cycle) {
        self.touched = true;
        let full = self.warps[w].full_mask();
        self.warps[w].start(pc, full, ready_at);
        self.rf.clear_warp(w);
        self.warp_next[w] = if self.warps[w].active { ready_at } else { NEVER };
        self.next_issue[w].valid = false;
    }

    /// Earliest cached next-issue bound across warps (`NEVER` when no warp
    /// is schedulable).
    fn next_event(&self) -> Cycle {
        self.warp_next.iter().copied().min().unwrap_or(NEVER)
    }

    pub fn any_active(&self) -> bool {
        self.warps.iter().any(|w| w.active)
    }

    /// Whether any warp was ever started since the last reset — the flag
    /// the device's O(touched) start/reset bookkeeping rides.
    pub fn is_touched(&self) -> bool {
        self.touched
    }

    /// Bit mask of active warps (CSR `active_warps`).
    fn active_warp_mask(&self) -> u32 {
        let mut m = 0;
        for (i, w) in self.warps.iter().enumerate() {
            if w.active {
                m |= 1 << i;
            }
        }
        m
    }

    /// Returns a core to its post-construction state. A core no warp was
    /// ever started on still *is* in that state, so the sweep is skipped
    /// wholesale; the return value reports whether any work was done
    /// (the device aggregates it into [`ResetWork`](crate::ResetWork)).
    pub fn reset(&mut self) -> bool {
        if !self.touched {
            return false;
        }
        for w in &mut self.warps {
            w.deactivate();
        }
        // Register rows and scoreboard entries are deliberately left
        // stale: a warp's block is zeroed when the warp (re)starts, and a
        // dormant warp's contents are unobservable (see
        // `WarpState::deactivate`).
        self.barriers.clear();
        self.last_issued = 0;
        self.mem_port_free = 0;
        self.warp_next.fill(NEVER);
        self.next_issue.fill(NextIssue::INVALID);
        self.touched = false;
        true
    }

    fn fetch<S: TraceSink + ?Sized>(
        &self,
        w: usize,
        ctx: &CoreCtx<'_, S>,
    ) -> Result<(Instr, InstrMeta), SimError> {
        let pc = self.warps[w].pc;
        if pc < ctx.code_base || !pc.is_multiple_of(4) {
            return Err(SimError::UnmappedPc { core: self.id, warp: w, pc });
        }
        let idx = ((pc - ctx.code_base) / 4) as usize;
        match ctx.code.get(idx) {
            Some(&DecodedInstr { instr, meta }) => Ok((instr, meta)),
            None => Err(SimError::UnmappedPc { core: self.id, warp: w, pc }),
        }
    }

    /// Earliest cycle warp `w` could issue considering only warp-local
    /// state: the control gap and register hazards. Branchless: the
    /// decode cache encodes absent operands as dense index 0, whose
    /// scoreboard entry is permanently zero, so four unconditional
    /// `max`es cover every operand shape. The memory-port structural
    /// hazard is folded in by the caller (it moves when *other* warps
    /// issue, so it cannot be cached per warp).
    fn earliest_issue_local(&self, w: usize, meta: &InstrMeta) -> Cycle {
        let ready = self.warps[w].ready_at;
        // Every scoreboard entry is bounded by the warp watermark; when
        // that bound is already covered by the control gap, the operand
        // loads cannot raise the answer (exactness argued at
        // [`RegFile::busy_watermark`]).
        if self.rf.busy_watermark(w) <= ready {
            return ready;
        }
        ready
            .max(self.rf.busy_until(w, meta.src[0] as usize))
            .max(self.rf.busy_until(w, meta.src[1] as usize))
            .max(self.rf.busy_until(w, meta.src[2] as usize))
            .max(self.rf.busy_until(w, meta.dst as usize))
    }

    /// The warp's fetched-and-hazard-checked next instruction, from the
    /// cache when the warp's PC still matches, fetched on demand
    /// otherwise. Returns the instruction and its earliest issue cycle.
    fn next_for<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        ctx: &CoreCtx<'_, S>,
    ) -> Result<(Instr, InstrMeta, Cycle), SimError> {
        let cached = self.next_issue[w];
        if cached.valid && cached.pc == self.warps[w].pc {
            let t =
                if cached.is_mem { cached.t_local.max(self.mem_port_free) } else { cached.t_local };
            return Ok((cached.instr, cached.meta, t));
        }
        let (instr, meta) = self.fetch(w, ctx)?;
        let t_local = self.earliest_issue_local(w, &meta);
        let is_mem = meta.is_mem;
        self.next_issue[w] =
            NextIssue { instr, meta, pc: self.warps[w].pc, t_local, is_mem, valid: true };
        let t = if is_mem { t_local.max(self.mem_port_free) } else { t_local };
        Ok((instr, meta, t))
    }

    /// Eagerly prepares warp `w`'s next wake-up after it issued: fetch the
    /// next instruction, resolve its hazards, and point `warp_next` at the
    /// exact issue cycle so no intermediate scheduler steps are wasted. A
    /// fetch failure is deliberately swallowed — the warp wakes at its
    /// control-gap bound and the error surfaces on that scheduled scan.
    /// Note this can report a fault a few cycles later than the seed
    /// scheduler did (which fetched even not-yet-ready warps on every
    /// step), and a `max_cycles` limit falling inside that gap yields
    /// `CycleLimit` instead of the fetch fault. Only failing programs are
    /// affected; successful runs are cycle-for-cycle identical.
    fn refresh_after_issue<S: TraceSink + ?Sized>(&mut self, w: usize, ctx: &CoreCtx<'_, S>) {
        if !self.warps[w].schedulable() {
            return;
        }
        match self.fetch(w, ctx) {
            Ok((instr, meta)) => {
                let t_local = self.earliest_issue_local(w, &meta);
                let is_mem = meta.is_mem;
                self.next_issue[w] =
                    NextIssue { instr, meta, pc: self.warps[w].pc, t_local, is_mem, valid: true };
                // `mem_port_free` only grows, so folding today's value in
                // keeps `warp_next` a valid lower bound.
                self.warp_next[w] = if is_mem { t_local.max(self.mem_port_free) } else { t_local };
            }
            Err(_) => {
                self.next_issue[w].valid = false;
                self.warp_next[w] = self.warps[w].ready_at;
            }
        }
    }

    /// Runs this core from cycle `start` until its next internal event
    /// would land at or beyond `horizon` — the conservative-lookahead
    /// core of the event loop. The caller (the device) guarantees that no
    /// *other* core acts in `[start, horizon)`, so everything this core
    /// does in that window — issues, counter increments, memory-system
    /// traffic, trace events — happens in exactly the global
    /// `(cycle, core)` order the one-step-per-pop loop produced, while
    /// paying the event-queue cost once per *window* instead of once per
    /// issue. `clock` tracks the last cycle actually simulated (the
    /// device's clock, also read by `mcycle`).
    ///
    /// Within one cycle: warps whose cached
    /// [`warp_next`](Core::warp_next) bound lies in the future are
    /// skipped with a single `u64` compare, and at most one instruction
    /// issues per cycle (in-order SIMT pipe).
    pub fn run_until<S: TraceSink + ?Sized>(
        &mut self,
        start: Cycle,
        horizon: Cycle,
        clock: &mut Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<CoreOutcome, SimError> {
        let n = self.warps.len();
        let mut now = start;
        loop {
            *clock = now;
            // Arbitration: the first warp in round-robin order (wrapping
            // by compare — `% n` would put a hardware division on every
            // slot) whose resolved issue time is due. Slots whose cached
            // bound lies in the future are skipped with a single `u64`
            // compare; optimistic bounds resolve through `next_for` and
            // are tightened in place, so a lost round never repeats work.
            let mut issued = false;
            let mut issued_next: Cycle = 0;
            let mut w = self.last_issued;
            for _ in 0..n {
                w += 1;
                if w >= n {
                    w = 0;
                }
                if self.warp_next[w] > now {
                    continue;
                }
                let (instr, meta, t) = self.next_for(w, ctx)?;
                if t <= now {
                    // Fused block dispatch: when the warp sits at the
                    // start of a precompiled basic block whose schedule
                    // fits strictly inside this core's uncontested window,
                    // the whole run executes here in one walk — same issue
                    // cycles, write-backs, counters and trace events as
                    // the per-instruction loop below, minus its per-cycle
                    // scheduler rounds (see [`Core::fuse_block`]).
                    if ctx.fuse {
                        if let Some(end) = self.fuse_block(w, now, horizon, ctx) {
                            self.last_issued = w;
                            self.refresh_after_issue(w, ctx);
                            now = end;
                            *clock = now;
                            issued = true;
                            issued_next = self.warp_next[w];
                            break;
                        }
                    }
                    self.issue(w, instr, &meta, now, ctx)?;
                    self.last_issued = w;
                    self.refresh_after_issue(w, ctx);
                    issued = true;
                    issued_next = self.warp_next[w];
                    break;
                }
                self.warp_next[w] = t;
            }
            // Next event. An issued warp due again by `now + 1`
            // (latency-1 result, untaken branch) short-circuits the
            // bounds min — the dominant case in ALU-dense stretches.
            // Otherwise one vectorisable min pass over the contiguous
            // bounds array decides the jump; it runs *after* the issue,
            // so bounds rewritten by the instruction itself (barrier
            // release, wspawn) are already visible. During a stall no
            // warp is walked at all beyond the arbitration pass that
            // tightened the bounds.
            let next = if issued && issued_next <= now + 1 {
                now + 1
            } else {
                let m = self.next_event();
                if m == NEVER {
                    return if self.warps.iter().any(|x| x.active) {
                        // Only barrier-blocked warps remain.
                        Err(SimError::BarrierDeadlock { cycle: now })
                    } else {
                        Ok(CoreOutcome::Idle)
                    };
                }
                // One issue per core per cycle; beyond that, resume at
                // the earliest time any warp could possibly issue.
                if issued {
                    m.max(now + 1)
                } else {
                    m
                }
            };
            if next >= horizon {
                return Ok(CoreOutcome::Next(next));
            }
            now = next;
        }
    }

    /// Executes `instr` for warp `w` at cycle `now`.
    fn issue<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        instr: Instr,
        meta: &InstrMeta,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<(), SimError> {
        // A replay run consumes recorded outcomes instead of executing
        // row kernels; the twin issues with identical timing.
        if ctx.replay.is_some() {
            return self.issue_replay(w, instr, meta, now, ctx);
        }
        let pc = self.warps[w].pc;
        let tmask = self.warps[w].tmask;
        // Whether every lane participates: selects the branch-free
        // contiguous row loops over the masked set-bit walks.
        let full = tmask == self.warps[w].full_mask();

        ctx.counters.instructions += 1;
        ctx.counters.lane_instructions += u64::from(tmask.count_ones());
        ctx.counters.classes.record(meta.class);
        if let Some(sink) = ctx.trace.as_mut() {
            sink.on_issue(&IssueEvent { cycle: now, core: self.id, warp: w, pc, tmask, instr });
        }

        let timing = ctx.timing;
        let mut next_pc = pc.wrapping_add(4);
        let mut halted = false;

        // Walks the active lanes of `tmask` (cost scales with set bits,
        // not the warp width).
        macro_rules! for_lanes {
            (|$l:ident| $body:expr) => {{
                let mut m = tmask;
                while m != 0 {
                    let $l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    $body
                }
            }};
        }
        // Fills the destination row `$dense` with `$val` (an expression of
        // the lane index): a contiguous pass under a full mask, a set-bit
        // walk otherwise. `$val` must not touch `self` — sources are
        // snapshot into stack buffers first (`RegFile::copy_row`).
        macro_rules! write_row {
            ($dense:expr, |$l:ident| $val:expr) => {{
                let dst = self.rf.row_mut(w, $dense);
                if full {
                    for $l in 0..dst.len() {
                        dst[$l] = $val;
                    }
                } else {
                    for_lanes!(|$l| dst[$l] = $val);
                }
            }};
        }
        // The row-kernel application paths (broadcast, binary, immediate,
        // unary, FMA, div/rem strength reduction) are shared methods —
        // `broadcast_k`, `run_bin_k`, … — because the fused block walk
        // ([`Core::exec_step`]) dispatches to exactly the same code.
        macro_rules! wb_int {
            ($rd:expr, $lat:expr) => {{
                if !$rd.is_zero() {
                    self.rf.set_busy(w, $rd.num() as usize, now + $lat);
                }
            }};
        }
        macro_rules! wb_fp {
            ($rd:expr, $lat:expr) => {{
                self.rf.set_busy(w, FP_BASE + $rd.num() as usize, now + $lat);
            }};
        }

        match instr {
            Instr::Lui { rd, imm } => {
                if !rd.is_zero() {
                    self.broadcast_k(w, full, tmask, rd.num() as usize, imm as u32);
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Auipc { rd, imm } => {
                if !rd.is_zero() {
                    self.broadcast_k(
                        w,
                        full,
                        tmask,
                        rd.num() as usize,
                        pc.wrapping_add(imm as u32),
                    );
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Jal { rd, offset } => {
                if !rd.is_zero() {
                    self.broadcast_k(w, full, tmask, rd.num() as usize, pc.wrapping_add(4));
                }
                wb_int!(rd, timing.alu);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let base = self.uniform(w, rs1, pc)?;
                if !rd.is_zero() {
                    self.broadcast_k(w, full, tmask, rd.num() as usize, pc.wrapping_add(4));
                }
                wb_int!(rd, timing.alu);
                next_pc = base.wrapping_add(offset as u32) & !1;
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                let ra = self.rf.row(w, rs1.num() as usize);
                let rb = self.rf.row(w, rs2.num() as usize);
                let k = tables::branch_kernel(op);
                let ballot = if full { (k.full)(ra, rb) } else { (k.masked)(ra, rb, tmask) };
                if ballot != 0 {
                    if ballot != tmask {
                        return Err(SimError::DivergentBranch { core: self.id, warp: w, pc });
                    }
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load { width, rd, rs1, offset } => 'load: {
                let (bytes, _) = load_width_bytes(width);
                let mut addrs = [0u32; 32];
                // Full-mask word-load fast paths for the two dominant SIMT
                // shapes — broadcast and unit-stride — via the shared
                // helper (see [`Core::fast_word_load`]). Only this path
                // snapshots the base row (the helper needs `&mut self`).
                if full && !rd.is_zero() && matches!(width, LoadWidth::Word) {
                    let mut base = [0u32; 32];
                    let _ = self.rf.copy_row(w, rs1.num() as usize, &mut base);
                    if self.fast_word_load(w, rd.num() as usize, &base, offset, pc, now, ctx)? {
                        break 'load;
                    }
                }
                // General paths read the base row in place: every active
                // lane's address is validated first (fault on the lowest
                // bad lane, as the fused loop did), which also ends the
                // row borrow before the destination row is taken.
                {
                    let base = self.rf.row(w, rs1.num() as usize);
                    for_lanes!(|l| {
                        let addr = base[l].wrapping_add(offset as u32);
                        if addr & (bytes - 1) != 0 {
                            return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                        }
                        addrs[l] = addr;
                    });
                }
                if rd.is_zero() {
                    // Address fault/timing only; x0 swallows the values.
                } else if matches!(width, LoadWidth::Word) {
                    // Masked/strided word gather: batch the functional
                    // reads page run by page run instead of one page walk
                    // per lane.
                    let dst = self.rf.row_mut(w, rd.num() as usize);
                    ctx.mem.read_u32_gather(&addrs, tmask, dst);
                } else {
                    let dst = self.rf.row_mut(w, rd.num() as usize);
                    for_lanes!(|l| {
                        let addr = addrs[l];
                        dst[l] = match width {
                            LoadWidth::Byte => ctx.mem.read_u8(addr) as i8 as i32 as u32,
                            LoadWidth::ByteU => ctx.mem.read_u8(addr) as u32,
                            LoadWidth::Half => ctx.mem.read_u16(addr) as i16 as i32 as u32,
                            LoadWidth::HalfU => ctx.mem.read_u16(addr) as u32,
                            LoadWidth::Word => ctx.mem.read_u32(addr),
                        };
                    });
                }
                let completion = self.memory_access(w, &addrs, tmask, false, now, ctx);
                if !rd.is_zero() {
                    self.rf.set_busy(w, rd.num() as usize, completion);
                }
            }
            Instr::Store { width, rs2, rs1, offset } => 'store: {
                let bytes = match width {
                    StoreWidth::Byte => 1,
                    StoreWidth::Half => 2,
                    StoreWidth::Word => 4,
                };
                // Unit-stride full-mask word stores take the shared bulk
                // helper; broadcast stores stay on the lane loop (see
                // [`Core::fast_word_store`]).
                if full
                    && matches!(width, StoreWidth::Word)
                    && self.fast_word_store(
                        w,
                        rs1.num() as usize,
                        rs2.num() as usize,
                        offset,
                        now,
                        ctx,
                    )
                {
                    break 'store;
                }
                let mut addrs = [0u32; 32];
                let base = self.rf.row(w, rs1.num() as usize);
                let vals = self.rf.row(w, rs2.num() as usize);
                for_lanes!(|l| {
                    let addr = base[l].wrapping_add(offset as u32);
                    if addr & (bytes - 1) != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                    }
                    match width {
                        StoreWidth::Byte => ctx.mem.write_u8(addr, vals[l] as u8),
                        StoreWidth::Half => ctx.mem.write_u16(addr, vals[l] as u16),
                        StoreWidth::Word => ctx.mem.write_u32(addr, vals[l]),
                    }
                    addrs[l] = addr;
                });
                self.memory_access(w, &addrs, tmask, true, now, ctx);
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                if !rd.is_zero() {
                    self.run_imm_k(
                        w,
                        full,
                        tmask,
                        tables::alu_imm_kernel(op),
                        rd.num() as usize,
                        rs1.num() as usize,
                        imm,
                    );
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                if !rd.is_zero() {
                    if matches!(op, AluOp::Divu | AluOp::Remu) {
                        // Uniform power-of-two strength reduction (see
                        // [`Core::run_divrem_k`]).
                        self.run_divrem_k(
                            w,
                            full,
                            tmask,
                            matches!(op, AluOp::Remu),
                            tables::alu_kernel(op),
                            rd.num() as usize,
                            rs1.num() as usize,
                            rs2.num() as usize,
                        );
                    } else {
                        self.run_bin_k(
                            w,
                            full,
                            tmask,
                            tables::alu_kernel(op),
                            rd.num() as usize,
                            rs1.num() as usize,
                            rs2.num() as usize,
                        );
                    }
                }
                let lat = match meta.class {
                    ExecClass::Mul => timing.mul,
                    ExecClass::Div => timing.div,
                    _ => timing.alu,
                };
                wb_int!(rd, lat);
            }
            Instr::Fence => {}
            Instr::Ecall => return Err(SimError::Trap { pc, breakpoint: false }),
            Instr::Ebreak => return Err(SimError::Trap { pc, breakpoint: true }),
            Instr::Csr { op: _, rd, src, csr } => {
                // All architectural CSRs are read-only; writes are ignored.
                let _ = src;
                // Timing-dependent CSR values poison cross-configuration
                // replay; a recording sink taints the trace.
                if csr == csrs::MCYCLE
                    || csr == csrs::MCYCLE_H
                    || csr == csrs::MINSTRET
                    || csr == csrs::MINSTRET_H
                    || csr == csrs::ACTIVE_WARPS
                {
                    if let Some(sink) = ctx.trace.as_mut() {
                        if sink.wants_warp_events() {
                            sink.on_timing_csr_read();
                        }
                    }
                }
                if csr == csrs::THREAD_ID {
                    if !rd.is_zero() {
                        write_row!(rd.num() as usize, |l| l as u32);
                    }
                } else {
                    // Every other CSR is lane-invariant: resolve it once
                    // and broadcast instead of re-matching per lane.
                    let v = self.read_csr(csr, w, 0, now, ctx);
                    if !rd.is_zero() {
                        self.broadcast_k(w, full, tmask, rd.num() as usize, v);
                    }
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Flw { rd, rs1, offset } => 'flw: {
                let mut addrs = [0u32; 32];
                // Broadcast / unit-stride fast paths via the shared
                // helper, as for integer word loads.
                if full {
                    let mut base = [0u32; 32];
                    let _ = self.rf.copy_row(w, rs1.num() as usize, &mut base);
                    if self.fast_word_load(
                        w,
                        FP_BASE + rd.num() as usize,
                        &base,
                        offset,
                        pc,
                        now,
                        ctx,
                    )? {
                        break 'flw;
                    }
                }
                // Masked/strided gather, as for integer word loads (the
                // base row is read in place; validation ends its borrow).
                {
                    let base = self.rf.row(w, rs1.num() as usize);
                    for_lanes!(|l| {
                        let addr = base[l].wrapping_add(offset as u32);
                        if addr & 3 != 0 {
                            return Err(SimError::MisalignedAccess { pc, addr, align: 4 });
                        }
                        addrs[l] = addr;
                    });
                }
                let dst = self.rf.row_mut(w, FP_BASE + rd.num() as usize);
                ctx.mem.read_u32_gather(&addrs, tmask, dst);
                let completion = self.memory_access(w, &addrs, tmask, false, now, ctx);
                self.rf.set_busy(w, FP_BASE + rd.num() as usize, completion);
            }
            Instr::Fsw { rs2, rs1, offset } => 'fsw: {
                // Unit-stride full-mask bulk path via the shared helper,
                // as for word stores.
                if full
                    && self.fast_word_store(
                        w,
                        rs1.num() as usize,
                        FP_BASE + rs2.num() as usize,
                        offset,
                        now,
                        ctx,
                    )
                {
                    break 'fsw;
                }
                let mut addrs = [0u32; 32];
                let base = self.rf.row(w, rs1.num() as usize);
                let vals = self.rf.row(w, FP_BASE + rs2.num() as usize);
                for_lanes!(|l| {
                    let addr = base[l].wrapping_add(offset as u32);
                    if addr & 3 != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: 4 });
                    }
                    ctx.mem.write_u32(addr, vals[l]);
                    addrs[l] = addr;
                });
                self.memory_access(w, &addrs, tmask, true, now, ctx);
            }
            Instr::FpOp { op, rd, rs1, rs2 } => {
                self.run_bin_k(
                    w,
                    full,
                    tmask,
                    tables::fp_bin_kernel(op),
                    FP_BASE + rd.num() as usize,
                    FP_BASE + rs1.num() as usize,
                    FP_BASE + rs2.num() as usize,
                );
                let lat = if matches!(op, FpBinOp::Div) { timing.fdiv } else { timing.fpu };
                wb_fp!(rd, lat);
            }
            Instr::FpFma { op, rd, rs1, rs2, rs3 } => {
                self.run_fma_k(
                    w,
                    full,
                    tmask,
                    tables::fma_kernel(op),
                    FP_BASE + rd.num() as usize,
                    FP_BASE + rs1.num() as usize,
                    FP_BASE + rs2.num() as usize,
                    FP_BASE + rs3.num() as usize,
                );
                wb_fp!(rd, timing.fpu);
            }
            Instr::FpSqrt { rd, rs1 } => {
                self.run_un_k(
                    w,
                    full,
                    tmask,
                    tables::fsqrt_kernel(),
                    FP_BASE + rd.num() as usize,
                    FP_BASE + rs1.num() as usize,
                );
                wb_fp!(rd, timing.fsqrt);
            }
            Instr::FpCmp { op, rd, rs1, rs2 } => {
                if !rd.is_zero() {
                    self.run_bin_k(
                        w,
                        full,
                        tmask,
                        tables::fp_cmp_kernel(op),
                        rd.num() as usize,
                        FP_BASE + rs1.num() as usize,
                        FP_BASE + rs2.num() as usize,
                    );
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::FpCvtToInt { signed, rd, rs1 } => {
                if !rd.is_zero() {
                    self.run_un_k(
                        w,
                        full,
                        tmask,
                        tables::fcvt_to_int_kernel(signed),
                        rd.num() as usize,
                        FP_BASE + rs1.num() as usize,
                    );
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::FpCvtFromInt { signed, rd, rs1 } => {
                self.run_un_k(
                    w,
                    full,
                    tmask,
                    tables::fcvt_from_int_kernel(signed),
                    FP_BASE + rd.num() as usize,
                    rs1.num() as usize,
                );
                wb_fp!(rd, timing.fpu);
            }
            Instr::FpMvToInt { rd, rs1 } => {
                if !rd.is_zero() {
                    self.run_un_k(
                        w,
                        full,
                        tmask,
                        tables::fmv_bits_kernel(),
                        rd.num() as usize,
                        FP_BASE + rs1.num() as usize,
                    );
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::FpMvFromInt { rd, rs1 } => {
                self.run_un_k(
                    w,
                    full,
                    tmask,
                    tables::fmv_bits_kernel(),
                    FP_BASE + rd.num() as usize,
                    rs1.num() as usize,
                );
                wb_fp!(rd, timing.fpu);
            }
            Instr::FpClass { rd, rs1 } => {
                if !rd.is_zero() {
                    self.run_un_k(
                        w,
                        full,
                        tmask,
                        tables::fclass_kernel(),
                        rd.num() as usize,
                        FP_BASE + rs1.num() as usize,
                    );
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::Tmc { rs1 } => {
                let mask = self.uniform(w, rs1, pc)? & self.warps[w].full_mask();
                if mask == 0 {
                    self.warps[w].halt();
                    self.warp_next[w] = NEVER;
                    halted = true;
                } else {
                    self.warps[w].tmask = mask;
                }
            }
            Instr::Wspawn { rs1, rs2 } => {
                let count = self.uniform(w, rs1, pc)?;
                let target = self.uniform(w, rs2, pc)?;
                if count as usize > self.warps.len() {
                    return Err(SimError::WspawnTooManyWarps {
                        requested: count,
                        available: self.warps.len(),
                    });
                }
                if let Some(sink) = ctx.trace.as_mut() {
                    if sink.wants_warp_events() {
                        sink.on_warp_event(self.id, w, &WarpEvent::Wspawn { count, target });
                    }
                }
                self.activate_round(w, count as usize, target, now + timing.wspawn);
            }
            Instr::Split { rs1, offset } => {
                if self.warps[w].ipdom.len() >= ctx.ipdom_depth {
                    return Err(SimError::IpdomOverflow { pc });
                }
                let row = self.rf.row(w, rs1.num() as usize);
                let mut taken = 0u32;
                for_lanes!(|l| taken |= u32::from(row[l] != 0) << l);
                let not_taken = tmask & !taken;
                let else_pc = pc.wrapping_add(offset as u32);
                if not_taken == 0 {
                    self.warps[w].ipdom.push(IpdomEntry::Uniform { restore_mask: tmask });
                } else if taken == 0 {
                    self.warps[w].ipdom.push(IpdomEntry::Uniform { restore_mask: tmask });
                    next_pc = else_pc;
                } else {
                    self.warps[w].ipdom.push(IpdomEntry::ElsePending {
                        restore_mask: tmask,
                        else_mask: not_taken,
                        else_pc,
                    });
                    self.warps[w].tmask = taken;
                }
            }
            Instr::Join => match self.warps[w].ipdom.pop() {
                None => return Err(SimError::IpdomUnderflow { pc }),
                Some(IpdomEntry::Uniform { restore_mask })
                | Some(IpdomEntry::ElseRunning { restore_mask }) => {
                    self.warps[w].tmask = restore_mask;
                }
                Some(IpdomEntry::ElsePending { restore_mask, else_mask, else_pc }) => {
                    self.warps[w].ipdom.push(IpdomEntry::ElseRunning { restore_mask });
                    self.warps[w].tmask = else_mask;
                    next_pc = else_pc;
                }
            },
            Instr::Bar { rs1, rs2 } => {
                let id = self.uniform(w, rs1, pc)?;
                let count = self.uniform(w, rs2, pc)?;
                if let Some(sink) = ctx.trace.as_mut() {
                    if sink.wants_warp_events() {
                        sink.on_warp_event(self.id, w, &WarpEvent::Bar { id, count });
                    }
                }
                let count = count as usize;
                let state = self.barriers.entry(id).or_default();
                state.arrived.push(w);
                if state.arrived.len() >= count {
                    let released = self.barriers.remove(&id).expect("just inserted");
                    for rw in released.arrived {
                        self.warps[rw].at_barrier = None;
                        self.warps[rw].ready_at = now + timing.barrier;
                        self.warp_next[rw] = now + timing.barrier;
                        self.next_issue[rw].valid = false;
                    }
                    // `self` (warp w) is among the released warps.
                    self.warps[w].pc = next_pc;
                    return Ok(());
                } else {
                    self.warps[w].at_barrier = Some(id);
                    self.warps[w].ready_at = NEVER;
                    self.warp_next[w] = NEVER;
                    self.warps[w].pc = next_pc;
                    return Ok(());
                }
            }
            Instr::Vote { op, rd, rs1 } => {
                let row = self.rf.row(w, rs1.num() as usize);
                let mut ballot = 0u32;
                for_lanes!(|l| ballot |= u32::from(row[l] != 0) << l);
                let result = match op {
                    VoteOp::Any => u32::from(ballot != 0),
                    VoteOp::All => u32::from(ballot == tmask),
                    VoteOp::Ballot => ballot,
                };
                if !rd.is_zero() {
                    self.broadcast_k(w, full, tmask, rd.num() as usize, result);
                }
                wb_int!(rd, timing.alu);
            }
        }

        // Value-dependent control outcomes, recorded *after* the arm so
        // the post-instruction PC and mask are final. (`Bar` returned
        // above and records in its arm; `Jal` is static and needs none.)
        if let Some(sink) = ctx.trace.as_mut() {
            if sink.wants_warp_events() {
                match instr {
                    Instr::Branch { .. }
                    | Instr::Jalr { .. }
                    | Instr::Split { .. }
                    | Instr::Join => {
                        let tmask = self.warps[w].tmask;
                        sink.on_warp_event(self.id, w, &WarpEvent::Ctl { next_pc, tmask });
                    }
                    Instr::Tmc { .. } => {
                        let ev = if halted {
                            WarpEvent::Halt
                        } else {
                            WarpEvent::Ctl { next_pc, tmask: self.warps[w].tmask }
                        };
                        sink.on_warp_event(self.id, w, &ev);
                    }
                    _ => {}
                }
            }
        }

        if !halted {
            let taken = next_pc != pc.wrapping_add(4);
            let gap = if taken && meta.is_control { 1 + timing.branch_bubble } else { 1 };
            self.warps[w].pc = next_pc;
            self.warps[w].ready_at = now + gap;
            // `ready_at` ignores the next instruction's register hazards,
            // so it is a valid (early) lower bound for the skip cache.
            self.warp_next[w] = now + gap;
        }
        Ok(())
    }

    /// The replay twin of [`Core::issue`]: consumes recorded
    /// [`WarpEvent`]s for every value-dependent outcome and skips all row
    /// kernels and functional memory traffic, while issuing with exactly
    /// the same write-back registers, latencies, control gaps, barrier
    /// bookkeeping and memory-system timing calls as execute mode —
    /// cycles and counters are bit-identical by construction (CI gates
    /// the identity over the extended cycle_dump grid). Register *values*
    /// are not maintained: value-shaped work (CSR reads, votes, loads)
    /// only touches the scoreboard, and uniformity/divergence checks are
    /// skipped — the recorded run already passed them.
    fn issue_replay<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        instr: Instr,
        meta: &InstrMeta,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<(), SimError> {
        let pc = self.warps[w].pc;
        let tmask = self.warps[w].tmask;

        ctx.counters.instructions += 1;
        ctx.counters.lane_instructions += u64::from(tmask.count_ones());
        ctx.counters.classes.record(meta.class);
        if let Some(sink) = ctx.trace.as_mut() {
            sink.on_issue(&IssueEvent { cycle: now, core: self.id, warp: w, pc, tmask, instr });
        }

        let timing = ctx.timing;
        let mut next_pc = pc.wrapping_add(4);
        let mut halted = false;

        macro_rules! wb_int {
            ($rd:expr, $lat:expr) => {{
                if !$rd.is_zero() {
                    self.rf.set_busy(w, $rd.num() as usize, now + $lat);
                }
            }};
        }
        macro_rules! wb_fp {
            ($rd:expr, $lat:expr) => {{
                self.rf.set_busy(w, FP_BASE + $rd.num() as usize, now + $lat);
            }};
        }

        // Write-back register and latency mirror `issue` arm by arm (on
        // the *instruction*, not the exec class: `vote`/`csr` write at ALU
        // latency despite their classes, FP compares/converts write
        // integer registers at FPU latency — a class-based mapping would
        // break bit-identity under non-default timing).
        match instr {
            Instr::Lui { rd, .. } | Instr::Auipc { rd, .. } => wb_int!(rd, timing.alu),
            Instr::Jal { rd, offset } => {
                wb_int!(rd, timing.alu);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, .. } => {
                wb_int!(rd, timing.alu);
                let (npc, tm) = self.replay_ctl(w, pc, ctx)?;
                self.warps[w].tmask = tm;
                next_pc = npc;
            }
            Instr::Branch { .. } | Instr::Split { .. } | Instr::Join => {
                let (npc, tm) = self.replay_ctl(w, pc, ctx)?;
                self.warps[w].tmask = tm;
                next_pc = npc;
            }
            Instr::Load { rd, .. } => {
                let completion = self.replay_mem(w, pc, false, now, ctx)?;
                if !rd.is_zero() {
                    self.rf.set_busy(w, rd.num() as usize, completion);
                }
            }
            Instr::Store { .. } => {
                self.replay_mem(w, pc, true, now, ctx)?;
            }
            Instr::OpImm { rd, .. } => wb_int!(rd, timing.alu),
            Instr::Op { rd, .. } => {
                let lat = match meta.class {
                    ExecClass::Mul => timing.mul,
                    ExecClass::Div => timing.div,
                    _ => timing.alu,
                };
                wb_int!(rd, lat);
            }
            Instr::Fence => {}
            Instr::Ecall => return Err(SimError::Trap { pc, breakpoint: false }),
            Instr::Ebreak => return Err(SimError::Trap { pc, breakpoint: true }),
            Instr::Csr { rd, .. } => wb_int!(rd, timing.alu),
            Instr::Flw { rd, .. } => {
                let completion = self.replay_mem(w, pc, false, now, ctx)?;
                self.rf.set_busy(w, FP_BASE + rd.num() as usize, completion);
            }
            Instr::Fsw { .. } => {
                self.replay_mem(w, pc, true, now, ctx)?;
            }
            Instr::FpOp { op, rd, .. } => {
                let lat = if matches!(op, FpBinOp::Div) { timing.fdiv } else { timing.fpu };
                wb_fp!(rd, lat);
            }
            Instr::FpFma { rd, .. } => wb_fp!(rd, timing.fpu),
            Instr::FpSqrt { rd, .. } => wb_fp!(rd, timing.fsqrt),
            Instr::FpCmp { rd, .. }
            | Instr::FpCvtToInt { rd, .. }
            | Instr::FpMvToInt { rd, .. }
            | Instr::FpClass { rd, .. } => wb_int!(rd, timing.fpu),
            Instr::FpCvtFromInt { rd, .. } | Instr::FpMvFromInt { rd, .. } => {
                wb_fp!(rd, timing.fpu);
            }
            Instr::Tmc { .. } => match self.replay_next(w, pc, ctx)? {
                WarpEvent::Halt => {
                    self.warps[w].halt();
                    self.warp_next[w] = NEVER;
                    halted = true;
                }
                &WarpEvent::Ctl { next_pc: npc, tmask: tm } => {
                    self.warps[w].tmask = tm;
                    next_pc = npc;
                }
                _ => return Err(SimError::ReplayDiverged { core: self.id, warp: w, pc }),
            },
            Instr::Wspawn { .. } => match self.replay_next(w, pc, ctx)? {
                &WarpEvent::Wspawn { count, target } => {
                    self.activate_round(w, count as usize, target, now + timing.wspawn);
                }
                _ => return Err(SimError::ReplayDiverged { core: self.id, warp: w, pc }),
            },
            Instr::Bar { .. } => match self.replay_next(w, pc, ctx)? {
                &WarpEvent::Bar { id, count } => {
                    let count = count as usize;
                    let state = self.barriers.entry(id).or_default();
                    state.arrived.push(w);
                    if state.arrived.len() >= count {
                        let released = self.barriers.remove(&id).expect("just inserted");
                        for rw in released.arrived {
                            self.warps[rw].at_barrier = None;
                            self.warps[rw].ready_at = now + timing.barrier;
                            self.warp_next[rw] = now + timing.barrier;
                            self.next_issue[rw].valid = false;
                        }
                        // `self` (warp w) is among the released warps.
                        self.warps[w].pc = next_pc;
                        return Ok(());
                    } else {
                        self.warps[w].at_barrier = Some(id);
                        self.warps[w].ready_at = NEVER;
                        self.warp_next[w] = NEVER;
                        self.warps[w].pc = next_pc;
                        return Ok(());
                    }
                }
                _ => return Err(SimError::ReplayDiverged { core: self.id, warp: w, pc }),
            },
            Instr::Vote { rd, .. } => wb_int!(rd, timing.alu),
        }

        if !halted {
            let taken = next_pc != pc.wrapping_add(4);
            let gap = if taken && meta.is_control { 1 + timing.branch_bubble } else { 1 };
            self.warps[w].pc = next_pc;
            self.warps[w].ready_at = now + gap;
            self.warp_next[w] = now + gap;
        }
        Ok(())
    }

    /// The next recorded event of warp `w`, re-emitted to an attached
    /// recording sink (so replay-under-record reproduces the trace
    /// byte-for-byte — the idempotence half of the format tests).
    ///
    /// # Errors
    ///
    /// [`SimError::ReplayDiverged`] when the stream is exhausted.
    fn replay_next<'e, S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        pc: u32,
        ctx: &mut CoreCtx<'e, S>,
    ) -> Result<&'e WarpEvent, SimError> {
        let ev = ctx
            .replay
            .as_mut()
            .expect("issue_replay runs only with a replay context")
            .next(self.id, w)
            .ok_or(SimError::ReplayDiverged { core: self.id, warp: w, pc })?;
        if let Some(sink) = ctx.trace.as_mut() {
            if sink.wants_warp_events() {
                sink.on_warp_event(self.id, w, ev);
            }
        }
        Ok(ev)
    }

    /// Consumes a [`WarpEvent::Ctl`] record, returning `(next_pc, tmask)`.
    fn replay_ctl<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        pc: u32,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<(u32, u32), SimError> {
        match self.replay_next(w, pc, ctx)? {
            &WarpEvent::Ctl { next_pc, tmask } => Ok((next_pc, tmask)),
            _ => Err(SimError::ReplayDiverged { core: self.id, warp: w, pc }),
        }
    }

    /// Consumes a memory record and re-times it against the *current*
    /// hierarchy: spans via the arithmetic span walk, lane sets by
    /// re-coalescing the recorded pre-coalescing addresses against this
    /// run's line size — so a trace recorded under one cache geometry
    /// replays correctly under another. The memory-system call shape
    /// (span vs batch) is preserved exactly as recorded.
    fn replay_mem<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        pc: u32,
        is_store: bool,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<Cycle, SimError> {
        match self.replay_next(w, pc, ctx)? {
            &WarpEvent::MemSpan { addr0, last, store } if store == is_store => {
                let out = ctx.memsys.access_span(self.id, addr0, last, now, is_store);
                self.mem_port_free = now + out.port_slots;
                *ctx.horizon = (*ctx.horizon).max(out.completion);
                Ok(out.completion)
            }
            WarpEvent::MemLanes { addrs, store } if *store == is_store => {
                let lines = coalesce_lines(addrs.iter().copied(), ctx.line_bytes);
                let out = ctx.memsys.access_batch(self.id, lines.as_slice(), now, is_store);
                self.mem_port_free = now + out.port_slots;
                if !lines.is_empty() {
                    *ctx.horizon = (*ctx.horizon).max(out.completion);
                }
                Ok(out.completion)
            }
            _ => Err(SimError::ReplayDiverged { core: self.id, warp: w, pc }),
        }
    }

    /// Attempts to dispatch warp `w`'s next instructions as one fused
    /// basic-block walk. Returns `Some(end)` — the issue cycle of the
    /// last fused instruction, i.e. the new "now" — when at least two
    /// steps executed, `None` to fall back to the per-instruction path.
    ///
    /// Exactness argument. Fusion requires (a) the warp to sit at the
    /// first slot of a precompiled block, (b) every block-touched
    /// register to be idle at `now`, so the block's static schedule
    /// (computed for an all-idle entry) gives each step's true issue
    /// cycle, and (c) each fused step's issue cycle `now + dt` to lie
    /// **strictly** below `lim`, the minimum of this core's event horizon
    /// and every *other* warp's next-issue lower bound. Under (c) no
    /// other warp (or core) can become due at or before any fused issue
    /// cycle, so the per-instruction scheduler would have picked warp `w`
    /// at exactly those cycles anyway — the walk replays the identical
    /// issue sequence, write-back times, counter increments and trace
    /// events, and merely skips the scheduler rounds in between. A block
    /// whose tail crosses `lim` is cut: the prefix executes fused (with
    /// per-step scoreboard updates, leaving exactly the mid-block state
    /// the per-instruction path would hold) and the rest re-arbitrates.
    fn fuse_block<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        now: Cycle,
        horizon: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Option<Cycle> {
        let pc = self.warps[w].pc;
        // `next_for` just fetched successfully, so `pc` is in range.
        let idx = ((pc - ctx.code_base) / 4) as usize;
        let b = ctx.blocks.fused_at(idx)?;
        let blk = ctx.blocks.block(b);
        let steps = ctx.blocks.steps(blk);
        // The uncontested window: no other warp's bound, and nothing on
        // any other core, may precede a fused issue cycle. Fusing fewer
        // than two steps is pure overhead, so the scan folds that bound
        // in and bails at the first contender — with ready warps resident
        // (the common contested case) this exits on the first probe.
        let bound = now + steps[1].dt;
        if bound >= horizon {
            return None;
        }
        let mut lim = horizon;
        for (v, &at) in self.warp_next.iter().enumerate() {
            if v != w && at < lim {
                if at <= bound {
                    return None;
                }
                lim = at;
            }
        }
        // Hazard entry: the static schedule is exact only if every row
        // the block touches is idle. The warp watermark usually answers
        // in one compare; otherwise check the block's touched-row set.
        if self.rf.busy_watermark(w) > now {
            for &r in ctx.blocks.regs(blk) {
                if self.rf.busy_until(w, r as usize) > now {
                    return None;
                }
            }
        }
        let tmask = self.warps[w].tmask;
        let full = tmask == self.warps[w].full_mask();
        // How many steps fit: the whole block in the common case, else
        // the longest prefix whose issue cycles stay inside the window.
        let whole = now + blk.dt_last < lim;
        let count = if whole {
            steps.len()
        } else {
            let mut c = 2;
            while c < steps.len() && now + steps[c].dt < lim {
                c += 1;
            }
            c
        };
        for (i, step) in steps[..count].iter().enumerate() {
            if let Some(sink) = ctx.trace.as_mut() {
                sink.on_issue(&IssueEvent {
                    cycle: now + step.dt,
                    core: self.id,
                    warp: w,
                    pc: pc.wrapping_add(4 * i as u32),
                    tmask,
                    instr: ctx.code[idx + i].instr,
                });
            }
            // Fused blocks hold only straight-line register arithmetic
            // (no memory, control or value-dependent outcomes), so replay
            // keeps the fused timing walk and skips only the row kernels.
            if ctx.replay.is_none() {
                self.exec_step(w, full, tmask, step);
            }
            if !whole && step.wb != 0 {
                // Prefix path: per-step releases, so the continuation
                // sees the exact mid-block scoreboard.
                self.rf.set_busy(w, step.wb as usize, now + step.wb_at);
            }
        }
        if whole {
            for &(r, at) in ctx.blocks.writes(blk) {
                self.rf.set_busy(w, r as usize, now + at);
            }
            ctx.counters.classes.merge(&blk.classes);
        } else {
            for step in &steps[..count] {
                ctx.counters.classes.record(step.class);
            }
        }
        ctx.counters.instructions += count as u64;
        ctx.counters.lane_instructions += (count as u64) * u64::from(tmask.count_ones());
        ctx.counters.fused_instructions += count as u64;
        ctx.counters.fused_blocks += 1;
        let end = now + steps[count - 1].dt;
        self.warps[w].pc = pc.wrapping_add(4 * count as u32);
        self.warps[w].ready_at = end + 1;
        self.warp_next[w] = end + 1;
        Some(end)
    }

    /// Executes the architectural effect of one fused step (the same row
    /// kernels the per-instruction arms dispatch to).
    #[inline]
    fn exec_step(&mut self, w: usize, full: bool, tmask: u32, step: &Step) {
        let d = step.wb as usize;
        match step.op {
            StepOp::Nop => {}
            StepOp::Broadcast { v } => self.broadcast_k(w, full, tmask, d, v),
            StepOp::Imm { k, s, imm } => self.run_imm_k(w, full, tmask, k, d, s as usize, imm),
            StepOp::Bin { k, s1, s2 } => {
                self.run_bin_k(w, full, tmask, k, d, s1 as usize, s2 as usize);
            }
            StepOp::DivRem { rem, k, s1, s2 } => {
                self.run_divrem_k(w, full, tmask, rem, k, d, s1 as usize, s2 as usize);
            }
            StepOp::Un { k, s } => self.run_un_k(w, full, tmask, k, d, s as usize),
            StepOp::Fma { k, s1, s2, s3 } => {
                self.run_fma_k(w, full, tmask, k, d, s1 as usize, s2 as usize, s3 as usize);
            }
        }
    }

    /// Snapshots source row `dense` into `buf`: whole-row move under a
    /// full mask, active-lane gather otherwise (divergent wide warps
    /// would pay more for the 128-byte copy than for the compute).
    #[inline]
    fn read_src(&self, w: usize, full: bool, tmask: u32, dense: usize, buf: &mut [u32; 32]) {
        if full {
            let _ = self.rf.copy_row(w, dense, buf);
        } else {
            self.rf.gather_row(w, dense, tmask, buf);
        }
    }

    /// Broadcasts one value to every active lane of destination row `d`.
    #[inline]
    fn broadcast_k(&mut self, w: usize, full: bool, tmask: u32, d: usize, v: u32) {
        let dst = self.rf.row_mut(w, d);
        if full {
            dst.fill(v);
        } else {
            let mut m = tmask;
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                dst[l] = v;
            }
        }
    }

    /// Applies a two-source row kernel: copy-free when no source row
    /// aliases the destination ([`RegFile::dst_src2`]), snapshot buffers
    /// otherwise. Identical values either way — the copy path exists only
    /// to resolve `dst == src` aliasing.
    #[inline]
    #[allow(clippy::too_many_arguments)] // hot-path kernel call: flat scalar args keep it register-passed
    fn run_bin_k(
        &mut self,
        w: usize,
        full: bool,
        tmask: u32,
        k: &'static BinKernel,
        d: usize,
        s1: usize,
        s2: usize,
    ) {
        match self.rf.dst_src2(w, d, s1, s2) {
            Some((dst, a, b)) => {
                if full {
                    (k.full)(dst, a, b)
                } else {
                    (k.masked)(dst, a, b, tmask)
                }
            }
            None => {
                let mut a = [0u32; 32];
                let mut b = [0u32; 32];
                self.read_src(w, full, tmask, s1, &mut a);
                self.read_src(w, full, tmask, s2, &mut b);
                let dst = self.rf.row_mut(w, d);
                if full {
                    (k.full)(dst, &a, &b)
                } else {
                    (k.masked)(dst, &a, &b, tmask)
                }
            }
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // hot-path kernel call: flat scalar args keep it register-passed
    fn run_imm_k(
        &mut self,
        w: usize,
        full: bool,
        tmask: u32,
        k: &'static ImmKernel,
        d: usize,
        s: usize,
        imm: i32,
    ) {
        match self.rf.dst_src1(w, d, s) {
            Some((dst, a)) => {
                if full {
                    (k.full)(dst, a, imm)
                } else {
                    (k.masked)(dst, a, imm, tmask)
                }
            }
            None => {
                let mut a = [0u32; 32];
                self.read_src(w, full, tmask, s, &mut a);
                let dst = self.rf.row_mut(w, d);
                if full {
                    (k.full)(dst, &a, imm)
                } else {
                    (k.masked)(dst, &a, imm, tmask)
                }
            }
        }
    }

    #[inline]
    fn run_un_k(
        &mut self,
        w: usize,
        full: bool,
        tmask: u32,
        k: &'static UnKernel,
        d: usize,
        s: usize,
    ) {
        match self.rf.dst_src1(w, d, s) {
            Some((dst, a)) => {
                if full {
                    (k.full)(dst, a)
                } else {
                    (k.masked)(dst, a, tmask)
                }
            }
            None => {
                let mut a = [0u32; 32];
                self.read_src(w, full, tmask, s, &mut a);
                let dst = self.rf.row_mut(w, d);
                if full {
                    (k.full)(dst, &a)
                } else {
                    (k.masked)(dst, &a, tmask)
                }
            }
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)] // the operand shape of an FMA
    fn run_fma_k(
        &mut self,
        w: usize,
        full: bool,
        tmask: u32,
        k: &'static FmaKernel,
        d: usize,
        s1: usize,
        s2: usize,
        s3: usize,
    ) {
        match self.rf.dst_src3(w, d, s1, s2, s3) {
            Some((dst, a, b, c)) => {
                if full {
                    (k.full)(dst, a, b, c)
                } else {
                    (k.masked)(dst, a, b, c, tmask)
                }
            }
            None => {
                let mut a = [0u32; 32];
                let mut b = [0u32; 32];
                let mut c = [0u32; 32];
                self.read_src(w, full, tmask, s1, &mut a);
                self.read_src(w, full, tmask, s2, &mut b);
                self.read_src(w, full, tmask, s3, &mut c);
                let dst = self.rf.row_mut(w, d);
                if full {
                    (k.full)(dst, &a, &b, &c)
                } else {
                    (k.masked)(dst, &a, &b, &c, tmask)
                }
            }
        }
    }

    /// `divu`/`remu` by a uniform power-of-two divisor (the `item / hs`,
    /// `item % hs` indexing idiom) becomes a shift/mask — a host hardware
    /// division per lane is the single most expensive ALU op and cannot
    /// be vectorised. The uniformity check reads the divisor row in
    /// place; the rewrite reuses the `srli`/`andi` kernels, whose scalar
    /// semantics are exactly `a >> sh` and `a & mask`.
    #[inline]
    #[allow(clippy::too_many_arguments)] // mirrors the binary-op shape plus the op flag
    fn run_divrem_k(
        &mut self,
        w: usize,
        full: bool,
        tmask: u32,
        rem: bool,
        k: &'static BinKernel,
        d: usize,
        s1: usize,
        s2: usize,
    ) {
        let b = self.rf.row(w, s2);
        let uni = if full {
            if b[1..].iter().all(|&x| x == b[0]) {
                Some(b[0])
            } else {
                None
            }
        } else {
            let first = tmask.trailing_zeros() as usize;
            let mut m = tmask;
            let mut uni = Some(b[first]);
            while m != 0 {
                let l = m.trailing_zeros() as usize;
                m &= m - 1;
                if b[l] != b[first] {
                    uni = None;
                    break;
                }
            }
            uni
        };
        if let Some(dv) = uni {
            if dv != 0 && dv.is_power_of_two() {
                let (ik, imm) = if rem {
                    (tables::alu_imm_kernel(AluImmOp::And), (dv - 1) as i32)
                } else {
                    (tables::alu_imm_kernel(AluImmOp::Srl), dv.trailing_zeros() as i32)
                };
                self.run_imm_k(w, full, tmask, ik, d, s1, imm);
                return;
            }
        }
        self.run_bin_k(w, full, tmask, k, d, s1, s2);
    }

    /// First-class dispatch-round activation — the `vx_wspawn` half of
    /// the in-kernel round loop (spawn → work → barrier → respawn).
    /// (Re)starts warps `1..count`, except the spawning warp, at
    /// `target`: the warp slots stay **resident** across rounds — a
    /// reactivation reuses the slot's control block, divergence stack
    /// and register storage in place (one bulk [`RegFile::clear_warp`]
    /// per slot; a *dirty-row* clear that re-zeroed only the previous
    /// round's writes was prototyped here and reverted — tracking
    /// dirtiness cost more on the per-instruction path than the bulk
    /// clear it saved, see README "PR5 results").
    fn activate_round(&mut self, spawner: usize, count: usize, target: u32, ready_at: Cycle) {
        for i in 1..count {
            if i == spawner {
                continue;
            }
            let full = self.warps[i].full_mask();
            self.warps[i].start(target, full, ready_at);
            self.rf.clear_warp(i);
            self.warp_next[i] = ready_at;
            // Respawn resets scheduling state; a cached entry could alias
            // the same PC with stale hazards.
            self.next_issue[i].valid = false;
        }
    }

    /// Coalesces the line requests of one SIMT memory instruction and
    /// hands the whole batch to the hierarchy in **one**
    /// [`MemSystem::access_batch`] call (L1 bank serialisation, L2
    /// bandwidth slots and DRAM queueing all happen inside the walk).
    /// Returns the completion cycle of the last line.
    fn memory_access<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        addrs: &[u32; 32],
        tmask: u32,
        is_store: bool,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Cycle {
        if let Some(sink) = ctx.trace.as_mut() {
            if sink.wants_warp_events() {
                // Record the *pre-coalescing* lane addresses (in lane
                // order): replay re-coalesces against its own line size,
                // so the trace stays valid across cache geometries.
                let mut m = tmask;
                let mut lanes = Vec::with_capacity(m.count_ones() as usize);
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    lanes.push(addrs[l]);
                }
                sink.on_warp_event(
                    self.id,
                    w,
                    &WarpEvent::MemLanes { addrs: lanes, store: is_store },
                );
            }
        }
        // Iterate set bits directly: cost scales with active lanes, not
        // with the 32-lane SIMT width.
        let mut mask = tmask;
        let lanes = std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(addrs[l])
        });
        let lines = coalesce_lines(lanes, ctx.line_bytes);
        let out = ctx.memsys.access_batch(self.id, lines.as_slice(), now, is_store);
        self.mem_port_free = now + out.port_slots;
        if !lines.is_empty() {
            *ctx.horizon = (*ctx.horizon).max(out.completion);
        }
        out.completion
    }

    /// [`memory_access`](Core::memory_access) for a contiguous ascending
    /// span of lane addresses `addr0..=addr_last` (the broadcast and
    /// unit-stride fast paths): the coalesced line sequence of such a span
    /// is exactly the ascending run of line bases it covers, so the
    /// hierarchy generates it arithmetically inside the batched walk
    /// ([`MemSystem::access_span`]) instead of walking 32 lanes through
    /// the dedup buffer.
    fn memory_access_span<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        addr0: u32,
        addr_last: u32,
        is_store: bool,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Cycle {
        if let Some(sink) = ctx.trace.as_mut() {
            if sink.wants_warp_events() {
                sink.on_warp_event(
                    self.id,
                    w,
                    &WarpEvent::MemSpan { addr0, last: addr_last, store: is_store },
                );
            }
        }
        let out = ctx.memsys.access_span(self.id, addr0, addr_last, now, is_store);
        self.mem_port_free = now + out.port_slots;
        *ctx.horizon = (*ctx.horizon).max(out.completion);
        out.completion
    }

    /// Full-mask broadcast / unit-stride word-**load** fast path into the
    /// dense destination row `dense` — the one shared copy of what used to
    /// be four near-identical inline blocks (integer `Load` and `Flw`;
    /// `fast_word_store` is the store dual). Returns `Ok(true)` when the
    /// access was served bulk, with values, coalesced line sequence, port
    /// accounting and misalignment faults identical to the lane loop: a
    /// misaligned *broadcast* faults here (lane 0 is the first lane the
    /// general path would check), while a misaligned *stride* never
    /// classifies and falls back to the lane loop, which raises the same
    /// fault on lane 0.
    #[allow(clippy::too_many_arguments)] // mirrors `issue`'s hot-path locals
    fn fast_word_load<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        dense: usize,
        base: &[u32; 32],
        offset: i32,
        pc: u32,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<bool, SimError> {
        let n = self.warps[w].threads();
        match span::classify(&base[..n], offset) {
            Span::Broadcast { addr0 } => {
                if addr0 & 3 != 0 {
                    return Err(SimError::MisalignedAccess { pc, addr: addr0, align: 4 });
                }
                let v = ctx.mem.read_u32(addr0);
                self.rf.row_mut(w, dense).fill(v);
                let completion = self.memory_access_span(w, addr0, addr0, false, now, ctx);
                self.rf.set_busy(w, dense, completion);
                Ok(true)
            }
            Span::UnitStride { addr0, last } => {
                let dst = self.rf.row_mut(w, dense);
                ctx.mem.read_u32_into(addr0, dst);
                let completion = self.memory_access_span(w, addr0, last, false, now, ctx);
                self.rf.set_busy(w, dense, completion);
                Ok(true)
            }
            Span::Irregular => Ok(false),
        }
    }

    /// Unit-stride full-mask word-**store** fast path (the shared copy
    /// behind integer `Store` and `Fsw`). Broadcast rows are deliberately
    /// rejected: overlapping stores must land in lane order, which only
    /// the lane loop preserves. Returns `true` when the store was served
    /// bulk.
    fn fast_word_store<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        base_dense: usize,
        vals_dense: usize,
        offset: i32,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> bool {
        let base = self.rf.row(w, base_dense);
        let (addr0, last) = match span::classify(base, offset) {
            Span::UnitStride { addr0, last } => (addr0, last),
            Span::Broadcast { .. } | Span::Irregular => return false,
        };
        let vals = self.rf.row(w, vals_dense);
        ctx.mem.write_u32_from(addr0, vals);
        self.memory_access_span(w, addr0, last, true, now, ctx);
        true
    }

    /// The value of `reg` in the lowest active lane of warp `w`, with a
    /// uniformity check across all active lanes.
    fn uniform(&self, w: usize, reg: vortex_isa::Reg, pc: u32) -> Result<u32, SimError> {
        let tmask = self.warps[w].tmask;
        let err = SimError::NonUniformOperand { core: self.id, warp: w, pc };
        if tmask == 0 {
            return Err(err);
        }
        let row = self.rf.row(w, reg.num() as usize);
        let v = row[tmask.trailing_zeros() as usize];
        let mut m = tmask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if row[l] != v {
                return Err(err);
            }
        }
        Ok(v)
    }

    fn read_csr<S: TraceSink + ?Sized>(
        &self,
        csr: Csr,
        w: usize,
        lane: usize,
        now: Cycle,
        ctx: &CoreCtx<'_, S>,
    ) -> u32 {
        match csr {
            c if c == csrs::THREAD_ID => lane as u32,
            c if c == csrs::WARP_ID => w as u32,
            c if c == csrs::CORE_ID => self.id as u32,
            c if c == csrs::THREAD_MASK => self.warps[w].tmask,
            c if c == csrs::ACTIVE_WARPS => self.active_warp_mask(),
            c if c == csrs::NUM_THREADS => self.warps[w].threads() as u32,
            c if c == csrs::NUM_WARPS => self.warps.len() as u32,
            c if c == csrs::NUM_CORES => ctx.num_cores as u32,
            c if c == csrs::MCYCLE => now as u32,
            c if c == csrs::MCYCLE_H => (now >> 32) as u32,
            c if c == csrs::MINSTRET => ctx.counters.instructions as u32,
            c if c == csrs::MINSTRET_H => (ctx.counters.instructions >> 32) as u32,
            _ => 0,
        }
    }
}

fn load_width_bytes(width: LoadWidth) -> (u32, bool) {
    match width {
        LoadWidth::Byte => (1, true),
        LoadWidth::ByteU => (1, false),
        LoadWidth::Half => (2, true),
        LoadWidth::HalfU => (2, false),
        LoadWidth::Word => (4, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::reg;

    #[test]
    fn uniform_check_reads_active_lanes_only() {
        let mut core = Core::new(0, 1, 4);
        core.start_warp(0, 0x100, 0);
        core.warps[0].tmask = 0b0110;
        core.rf.row_mut(0, reg::T1.num() as usize).copy_from_slice(&[99, 7, 7, 99]);
        assert_eq!(core.uniform(0, reg::T1, 0x100).unwrap(), 7);
        core.rf.row_mut(0, reg::T1.num() as usize)[2] = 8;
        assert!(core.uniform(0, reg::T1, 0x100).is_err());
        // x0 is uniform zero regardless of lane contents.
        assert_eq!(core.uniform(0, reg::ZERO, 0x100).unwrap(), 0);
    }

    #[test]
    fn start_warp_clears_register_block() {
        let mut core = Core::new(0, 2, 4);
        core.start_warp(0, 0x100, 0);
        core.rf.row_mut(0, 5)[1] = 42;
        core.rf.set_busy(0, 5, 9);
        core.rf.row_mut(1, 5)[0] = 17;
        core.start_warp(0, 0x200, 0);
        assert_eq!(core.rf.row(0, 5), &[0; 4]);
        assert_eq!(core.rf.busy_until(0, 5), 0);
        // Warp 1's rows are untouched by warp 0's restart.
        assert_eq!(core.rf.read(1, 5, 0), 17);
    }
}
