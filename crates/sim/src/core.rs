//! One SIMT core: warp scheduling, hazard checking and instruction
//! execution.
//!
//! The execute loops are written against the core-owned lane-major
//! register file ([`RegFile`]): each opcode arm materialises its source
//! rows (a contiguous `threads`-word copy into a stack buffer, which also
//! resolves `dst == src` aliasing without `unsafe`), then writes the
//! destination row in a single pass — branch-free when the thread mask is
//! full, a set-bit walk otherwise. The register scoreboard is a flat
//! per-core array rather than a per-warp heap allocation, so hazard
//! checks stay within one cache line per warp.

use std::collections::HashMap;

use vortex_isa::{
    csrs, AluImmOp, AluOp, BranchOp, Csr, ExecClass, FpBinOp, FpCmpOp, FmaOp, Instr,
    LoadWidth, StoreWidth, VoteOp,
};
use vortex_mem::{coalesce_lines, Cycle, MainMemory, MemSystem};

use crate::config::TimingConfig;
use crate::counters::DeviceCounters;
use crate::decoded::{DecodedInstr, InstrMeta};
use crate::error::SimError;
use crate::ipdom::IpdomEntry;
use crate::regfile::{RegFile, FP_BASE};
use crate::trace_api::{IssueEvent, TraceSink};
use crate::warp::{WarpState, NEVER};

/// Everything a core needs from the device while stepping.
///
/// Generic over the trace sink so untraced runs (`S = NullSink`) are
/// monomorphised with the trace hook compiled away entirely — no virtual
/// dispatch on the per-instruction hot path.
pub(crate) struct CoreCtx<'a, S: TraceSink + ?Sized> {
    /// The loaded program with its decode cache, one entry per slot.
    pub code: &'a [DecodedInstr],
    pub code_base: u32,
    pub mem: &'a mut MainMemory,
    pub memsys: &'a mut MemSystem,
    pub timing: &'a TimingConfig,
    pub num_cores: usize,
    pub ipdom_depth: usize,
    pub counters: &'a mut DeviceCounters,
    pub trace: Option<&'a mut S>,
    /// Latest completion time of any memory event (for drain accounting).
    pub horizon: &'a mut Cycle,
    /// Cache-line size (hoisted from the memory system once per run).
    pub line_bytes: u32,
    /// L1 bank count (hoisted once per run; ≥ 1).
    pub l1_banks: usize,
}

#[derive(Debug, Default)]
struct BarrierState {
    arrived: Vec<usize>,
}

/// The outcome of running a core up to an event horizon.
pub(crate) enum CoreOutcome {
    /// The core's next internal event lies at this cycle (≥ the horizon);
    /// re-run it when global time gets there.
    Next(Cycle),
    /// All warps halted; core is idle.
    Idle,
}

/// Cached scheduling state for one warp's *next* instruction, filled
/// eagerly when the warp issues (or lazily on first examination), so a
/// warp wakes exactly at its next issue cycle with the instruction already
/// fetched and its register hazards already resolved.
#[derive(Copy, Clone, Debug)]
struct NextIssue {
    /// The fetched instruction.
    instr: Instr,
    /// The instruction's decode-cache entry.
    meta: InstrMeta,
    /// PC the cache was computed for; a mismatch (branch target rewrite,
    /// respawn) invalidates it.
    pc: u32,
    /// Earliest issue cycle from warp-local state only (control gap and
    /// register hazards). Warp-local state cannot change while the warp is
    /// dormant, so this stays exact until the warp issues again.
    t_local: Cycle,
    /// Whether the instruction also contends for the memory port
    /// (`mem_port_free` moves when *other* warps issue, so it is folded in
    /// at wake time rather than cached).
    is_mem: bool,
    /// Whether the entry is usable at all.
    valid: bool,
}

impl NextIssue {
    const INVALID: NextIssue = NextIssue {
        instr: Instr::Join,
        meta: InstrMeta::INVALID,
        pc: 0,
        t_local: 0,
        is_mem: false,
        valid: false,
    };
}

#[derive(Debug)]
pub(crate) struct Core {
    id: usize,
    pub(crate) warps: Vec<WarpState>,
    /// Lane-major register rows + scoreboard of every warp (see
    /// [`RegFile`]).
    rf: RegFile,
    barriers: HashMap<u32, BarrierState>,
    last_issued: usize,
    mem_port_free: Cycle,
    /// Per-warp lower bound on the next possible issue cycle (`NEVER` for
    /// halted or barrier-blocked warps). Kept exact-or-early at every
    /// scheduling-state transition, so the scheduler may skip any warp
    /// with `warp_next[w] > now` without fetching or hazard-checking it —
    /// the cached bound never exceeds the true earliest issue time, which
    /// keeps cycle results bit-identical to the full rescan.
    warp_next: Vec<Cycle>,
    /// Per-warp pre-fetched next instruction and its hazard time.
    next_issue: Vec<NextIssue>,
}

impl Core {
    pub fn new(id: usize, warps: usize, threads: usize) -> Self {
        Core {
            id,
            warps: (0..warps).map(|_| WarpState::new(threads)).collect(),
            rf: RegFile::new(warps, threads),
            barriers: HashMap::new(),
            last_issued: 0,
            mem_port_free: 0,
            warp_next: vec![NEVER; warps],
            next_issue: vec![NextIssue::INVALID; warps],
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Activates warp `w` at `pc` with a full thread mask.
    pub fn start_warp(&mut self, w: usize, pc: u32, ready_at: Cycle) {
        let full = self.warps[w].full_mask();
        self.warps[w].start(pc, full, ready_at);
        self.rf.clear_warp(w);
        self.warp_next[w] = if self.warps[w].active { ready_at } else { NEVER };
        self.next_issue[w].valid = false;
    }

    /// Earliest cached next-issue bound across warps (`NEVER` when no warp
    /// is schedulable).
    fn next_event(&self) -> Cycle {
        self.warp_next.iter().copied().min().unwrap_or(NEVER)
    }

    pub fn any_active(&self) -> bool {
        self.warps.iter().any(|w| w.active)
    }

    /// Bit mask of active warps (CSR `active_warps`).
    fn active_warp_mask(&self) -> u32 {
        let mut m = 0;
        for (i, w) in self.warps.iter().enumerate() {
            if w.active {
                m |= 1 << i;
            }
        }
        m
    }

    pub fn reset(&mut self) {
        for w in &mut self.warps {
            w.deactivate();
        }
        // Register rows and scoreboard entries are deliberately left
        // stale: a warp's block is zeroed when the warp (re)starts, and a
        // dormant warp's contents are unobservable (see
        // `WarpState::deactivate`).
        self.barriers.clear();
        self.last_issued = 0;
        self.mem_port_free = 0;
        self.warp_next.fill(NEVER);
        self.next_issue.fill(NextIssue::INVALID);
    }

    fn fetch<S: TraceSink + ?Sized>(
        &self,
        w: usize,
        ctx: &CoreCtx<'_, S>,
    ) -> Result<(Instr, InstrMeta), SimError> {
        let pc = self.warps[w].pc;
        if pc < ctx.code_base || pc % 4 != 0 {
            return Err(SimError::UnmappedPc { core: self.id, warp: w, pc });
        }
        let idx = ((pc - ctx.code_base) / 4) as usize;
        match ctx.code.get(idx) {
            Some(&DecodedInstr { instr, meta }) => Ok((instr, meta)),
            None => Err(SimError::UnmappedPc { core: self.id, warp: w, pc }),
        }
    }

    /// Earliest cycle warp `w` could issue considering only warp-local
    /// state: the control gap and register hazards. Branchless: the
    /// decode cache encodes absent operands as dense index 0, whose
    /// scoreboard entry is permanently zero, so four unconditional
    /// `max`es cover every operand shape. The memory-port structural
    /// hazard is folded in by the caller (it moves when *other* warps
    /// issue, so it cannot be cached per warp).
    fn earliest_issue_local(&self, w: usize, meta: &InstrMeta) -> Cycle {
        self.warps[w]
            .ready_at
            .max(self.rf.busy_until(w, meta.src[0] as usize))
            .max(self.rf.busy_until(w, meta.src[1] as usize))
            .max(self.rf.busy_until(w, meta.src[2] as usize))
            .max(self.rf.busy_until(w, meta.dst as usize))
    }

    /// The warp's fetched-and-hazard-checked next instruction, from the
    /// cache when the warp's PC still matches, fetched on demand
    /// otherwise. Returns the instruction and its earliest issue cycle.
    fn next_for<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        ctx: &CoreCtx<'_, S>,
    ) -> Result<(Instr, InstrMeta, Cycle), SimError> {
        let cached = self.next_issue[w];
        if cached.valid && cached.pc == self.warps[w].pc {
            let t = if cached.is_mem {
                cached.t_local.max(self.mem_port_free)
            } else {
                cached.t_local
            };
            return Ok((cached.instr, cached.meta, t));
        }
        let (instr, meta) = self.fetch(w, ctx)?;
        let t_local = self.earliest_issue_local(w, &meta);
        let is_mem = meta.is_mem;
        self.next_issue[w] =
            NextIssue { instr, meta, pc: self.warps[w].pc, t_local, is_mem, valid: true };
        let t = if is_mem { t_local.max(self.mem_port_free) } else { t_local };
        Ok((instr, meta, t))
    }

    /// Eagerly prepares warp `w`'s next wake-up after it issued: fetch the
    /// next instruction, resolve its hazards, and point `warp_next` at the
    /// exact issue cycle so no intermediate scheduler steps are wasted. A
    /// fetch failure is deliberately swallowed — the warp wakes at its
    /// control-gap bound and the error surfaces on that scheduled scan.
    /// Note this can report a fault a few cycles later than the seed
    /// scheduler did (which fetched even not-yet-ready warps on every
    /// step), and a `max_cycles` limit falling inside that gap yields
    /// `CycleLimit` instead of the fetch fault. Only failing programs are
    /// affected; successful runs are cycle-for-cycle identical.
    fn refresh_after_issue<S: TraceSink + ?Sized>(&mut self, w: usize, ctx: &CoreCtx<'_, S>) {
        if !self.warps[w].schedulable() {
            return;
        }
        match self.fetch(w, ctx) {
            Ok((instr, meta)) => {
                let t_local = self.earliest_issue_local(w, &meta);
                let is_mem = meta.is_mem;
                self.next_issue[w] =
                    NextIssue { instr, meta, pc: self.warps[w].pc, t_local, is_mem, valid: true };
                // `mem_port_free` only grows, so folding today's value in
                // keeps `warp_next` a valid lower bound.
                self.warp_next[w] =
                    if is_mem { t_local.max(self.mem_port_free) } else { t_local };
            }
            Err(_) => {
                self.next_issue[w].valid = false;
                self.warp_next[w] = self.warps[w].ready_at;
            }
        }
    }

    /// Runs this core from cycle `start` until its next internal event
    /// would land at or beyond `horizon` — the conservative-lookahead
    /// core of the event loop. The caller (the device) guarantees that no
    /// *other* core acts in `[start, horizon)`, so everything this core
    /// does in that window — issues, counter increments, memory-system
    /// traffic, trace events — happens in exactly the global
    /// `(cycle, core)` order the one-step-per-pop loop produced, while
    /// paying the event-queue cost once per *window* instead of once per
    /// issue. `clock` tracks the last cycle actually simulated (the
    /// device's clock, also read by `mcycle`).
    ///
    /// Within one cycle: warps whose cached
    /// [`warp_next`](Core::warp_next) bound lies in the future are
    /// skipped with a single `u64` compare, and at most one instruction
    /// issues per cycle (in-order SIMT pipe).
    pub fn run_until<S: TraceSink + ?Sized>(
        &mut self,
        start: Cycle,
        horizon: Cycle,
        clock: &mut Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<CoreOutcome, SimError> {
        let n = self.warps.len();
        let mut now = start;
        'cycles: loop {
            *clock = now;
            let mut earliest: Cycle = NEVER;
            // Round-robin from the warp after `last_issued`, wrapping by
            // compare — `(last_issued + i) % n` would put a hardware
            // integer division on every scanned slot.
            let mut w = self.last_issued;
            for _ in 0..n {
                w += 1;
                if w >= n {
                    w = 0;
                }
                let bound = self.warp_next[w];
                if bound > now {
                    earliest = earliest.min(bound);
                    continue;
                }
                let (instr, meta, t) = self.next_for(w, ctx)?;
                if t <= now {
                    self.issue(w, instr, &meta, now, ctx)?;
                    self.last_issued = w;
                    self.refresh_after_issue(w, ctx);
                    // The next event is `max(min over warp_next, now+1)`.
                    // When the issued warp itself is due again by `now+1`
                    // (latency-1 result, untaken branch) the min can only
                    // be ≤ its bound, so the answer is exactly `now + 1`
                    // — no scan over the other warps needed. This covers
                    // the bulk of issues in ALU-dense stretches.
                    let next = if self.warp_next[w] <= now + 1 {
                        now + 1
                    } else {
                        let next = self.next_event();
                        if next == NEVER {
                            return if self.warps.iter().any(|x| x.active) {
                                // Only barrier-blocked warps remain.
                                Err(SimError::BarrierDeadlock { cycle: now })
                            } else {
                                Ok(CoreOutcome::Idle)
                            };
                        }
                        // One issue per core per cycle; beyond that,
                        // resume at the earliest time any warp could
                        // possibly issue.
                        next.max(now + 1)
                    };
                    if next >= horizon {
                        return Ok(CoreOutcome::Next(next));
                    }
                    now = next;
                    continue 'cycles;
                }
                self.warp_next[w] = t;
                earliest = earliest.min(t);
            }
            if earliest == NEVER {
                return if self.warps.iter().any(|x| x.active) {
                    Err(SimError::BarrierDeadlock { cycle: now })
                } else {
                    Ok(CoreOutcome::Idle)
                };
            }
            if earliest >= horizon {
                return Ok(CoreOutcome::Next(earliest));
            }
            now = earliest;
        }
    }

    /// Executes `instr` for warp `w` at cycle `now`.
    fn issue<S: TraceSink + ?Sized>(
        &mut self,
        w: usize,
        instr: Instr,
        meta: &InstrMeta,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Result<(), SimError> {
        let pc = self.warps[w].pc;
        let tmask = self.warps[w].tmask;
        // Whether every lane participates: selects the branch-free
        // contiguous row loops over the masked set-bit walks.
        let full = tmask == self.warps[w].full_mask();

        ctx.counters.instructions += 1;
        ctx.counters.lane_instructions += u64::from(tmask.count_ones());
        ctx.counters.classes.record(meta.class);
        if let Some(sink) = ctx.trace.as_mut() {
            sink.on_issue(&IssueEvent { cycle: now, core: self.id, warp: w, pc, tmask, instr });
        }

        let timing = ctx.timing;
        let mut next_pc = pc.wrapping_add(4);
        let mut halted = false;

        // Walks the active lanes of `tmask` (cost scales with set bits,
        // not the warp width).
        macro_rules! for_lanes {
            (|$l:ident| $body:expr) => {{
                let mut m = tmask;
                while m != 0 {
                    let $l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    $body
                }
            }};
        }
        // Fills the destination row `$dense` with `$val` (an expression of
        // the lane index): a contiguous pass under a full mask, a set-bit
        // walk otherwise. `$val` must not touch `self` — sources are
        // snapshot into stack buffers first (`RegFile::copy_row`).
        macro_rules! write_row {
            ($dense:expr, |$l:ident| $val:expr) => {{
                let dst = self.rf.row_mut(w, $dense);
                if full {
                    for $l in 0..dst.len() {
                        dst[$l] = $val;
                    }
                } else {
                    for_lanes!(|$l| dst[$l] = $val);
                }
            }};
        }
        // Broadcasts one value to every active lane of the destination row.
        macro_rules! broadcast_row {
            ($dense:expr, $v:expr) => {{
                let v = $v;
                let dst = self.rf.row_mut(w, $dense);
                if full {
                    dst.fill(v);
                } else {
                    for_lanes!(|l| dst[l] = v);
                }
            }};
        }
        // Snapshots a source row into a stack buffer: whole-row move when
        // every lane is live, active-lane gather otherwise (divergent wide
        // warps would pay more for the 128-byte copy than for the compute).
        macro_rules! read_src {
            ($dense:expr, $buf:ident) => {
                if full {
                    let _ = self.rf.copy_row(w, $dense, &mut $buf);
                } else {
                    self.rf.gather_row(w, $dense, tmask, &mut $buf);
                }
            };
        }
        macro_rules! wb_int {
            ($rd:expr, $lat:expr) => {
                if !$rd.is_zero() {
                    self.rf.set_busy(w, $rd.num() as usize, now + $lat);
                }
            };
        }
        macro_rules! wb_fp {
            ($rd:expr, $lat:expr) => {
                self.rf.set_busy(w, FP_BASE + $rd.num() as usize, now + $lat);
            };
        }

        match instr {
            Instr::Lui { rd, imm } => {
                if !rd.is_zero() {
                    broadcast_row!(rd.num() as usize, imm as u32);
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Auipc { rd, imm } => {
                if !rd.is_zero() {
                    broadcast_row!(rd.num() as usize, pc.wrapping_add(imm as u32));
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Jal { rd, offset } => {
                if !rd.is_zero() {
                    broadcast_row!(rd.num() as usize, pc.wrapping_add(4));
                }
                wb_int!(rd, timing.alu);
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let base = self.uniform(w, rs1, pc)?;
                if !rd.is_zero() {
                    broadcast_row!(rd.num() as usize, pc.wrapping_add(4));
                }
                wb_int!(rd, timing.alu);
                next_pc = base.wrapping_add(offset as u32) & !1;
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                let ra = self.rf.row(w, rs1.num() as usize);
                let rb = self.rf.row(w, rs2.num() as usize);
                let mut ballot = 0u32;
                if full {
                    for l in 0..ra.len() {
                        ballot |= u32::from(branch_cmp(op, ra[l], rb[l])) << l;
                    }
                } else {
                    for_lanes!(|l| ballot |= u32::from(branch_cmp(op, ra[l], rb[l])) << l);
                }
                if ballot != 0 {
                    if ballot != tmask {
                        return Err(SimError::DivergentBranch { core: self.id, warp: w, pc });
                    }
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load { width, rd, rs1, offset } => 'load: {
                let (bytes, _) = load_width_bytes(width);
                let mut addrs = [0u32; 32];
                let mut base = [0u32; 32];
                read_src!(rs1.num() as usize, base);
                // Full-mask word-load fast paths for the two dominant SIMT
                // shapes: *broadcast* (every lane reads one uniform
                // address — the dispatch-block/argument pattern) and
                // *unit-stride* (lane-consecutive words — the streaming
                // pattern). Both collapse 32 per-lane page walks into one
                // bulk access, with identical values, identical coalesced
                // line sequence, and identical misalignment faults (lane 0
                // is the first checked lane either way).
                if full && !rd.is_zero() && matches!(width, LoadWidth::Word) {
                    let n = self.warps[w].threads();
                    let addr0 = base[0].wrapping_add(offset as u32);
                    if n >= 2 {
                        if base[1..n].iter().all(|&b| b == base[0]) {
                            if addr0 & 3 != 0 {
                                return Err(SimError::MisalignedAccess { pc, addr: addr0, align: 4 });
                            }
                            let v = ctx.mem.read_u32(addr0);
                            self.rf.row_mut(w, rd.num() as usize).fill(v);
                            let completion = self.memory_access_span(addr0, addr0, false, now, ctx);
                            self.rf.set_busy(w, rd.num() as usize, completion);
                            break 'load;
                        }
                        if addr0 & 3 == 0
                            && addr0.checked_add(4 * (n as u32 - 1)).is_some()
                            && base[1..n]
                                .iter()
                                .enumerate()
                                .all(|(i, &b)| b == base[0].wrapping_add(4 * (i as u32 + 1)))
                        {
                            let dst = self.rf.row_mut(w, rd.num() as usize);
                            ctx.mem.read_u32_into(addr0, dst);
                            let last = addr0 + 4 * (n as u32 - 1);
                            let completion = self.memory_access_span(addr0, last, false, now, ctx);
                            self.rf.set_busy(w, rd.num() as usize, completion);
                            break 'load;
                        }
                    }
                }
                if rd.is_zero() {
                    for_lanes!(|l| {
                        let addr = base[l].wrapping_add(offset as u32);
                        if addr & (bytes - 1) != 0 {
                            return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                        }
                        addrs[l] = addr;
                    });
                } else {
                    let dst = self.rf.row_mut(w, rd.num() as usize);
                    for_lanes!(|l| {
                        let addr = base[l].wrapping_add(offset as u32);
                        if addr & (bytes - 1) != 0 {
                            return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                        }
                        dst[l] = match width {
                            LoadWidth::Byte => ctx.mem.read_u8(addr) as i8 as i32 as u32,
                            LoadWidth::ByteU => ctx.mem.read_u8(addr) as u32,
                            LoadWidth::Half => ctx.mem.read_u16(addr) as i16 as i32 as u32,
                            LoadWidth::HalfU => ctx.mem.read_u16(addr) as u32,
                            LoadWidth::Word => ctx.mem.read_u32(addr),
                        };
                        addrs[l] = addr;
                    });
                }
                let completion = self.memory_access(w, &addrs, tmask, false, now, ctx);
                if !rd.is_zero() {
                    self.rf.set_busy(w, rd.num() as usize, completion);
                }
            }
            Instr::Store { width, rs2, rs1, offset } => 'store: {
                let bytes = match width {
                    StoreWidth::Byte => 1,
                    StoreWidth::Half => 2,
                    StoreWidth::Word => 4,
                };
                let mut addrs = [0u32; 32];
                let base = self.rf.row(w, rs1.num() as usize);
                let vals = self.rf.row(w, rs2.num() as usize);
                // Unit-stride full-mask word stores take the bulk path
                // (identical bytes, line sequence and fault behaviour).
                // Broadcast stores stay on the lane loop: overlapping
                // writes must land in lane order.
                if full && matches!(width, StoreWidth::Word) {
                    let n = base.len();
                    let addr0 = base[0].wrapping_add(offset as u32);
                    if n >= 2
                        && addr0 & 3 == 0
                        && addr0.checked_add(4 * (n as u32 - 1)).is_some()
                        && base[1..]
                            .iter()
                            .enumerate()
                            .all(|(i, &b)| b == base[0].wrapping_add(4 * (i as u32 + 1)))
                    {
                        ctx.mem.write_u32_from(addr0, vals);
                        let last = addr0 + 4 * (n as u32 - 1);
                        self.memory_access_span(addr0, last, true, now, ctx);
                        break 'store;
                    }
                }
                for_lanes!(|l| {
                    let addr = base[l].wrapping_add(offset as u32);
                    if addr & (bytes - 1) != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: bytes });
                    }
                    match width {
                        StoreWidth::Byte => ctx.mem.write_u8(addr, vals[l] as u8),
                        StoreWidth::Half => ctx.mem.write_u16(addr, vals[l] as u16),
                        StoreWidth::Word => ctx.mem.write_u32(addr, vals[l]),
                    }
                    addrs[l] = addr;
                });
                self.memory_access(w, &addrs, tmask, true, now, ctx);
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                if !rd.is_zero() {
                    let mut a = [0u32; 32];
                    read_src!(rs1.num() as usize, a);
                    write_row!(rd.num() as usize, |l| alu_imm(op, a[l], imm));
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Op { op, rd, rs1, rs2 } => 'op: {
                if !rd.is_zero() {
                    let mut a = [0u32; 32];
                    let mut b = [0u32; 32];
                    read_src!(rs1.num() as usize, a);
                    read_src!(rs2.num() as usize, b);
                    // Unsigned divide/remainder by a uniform power-of-two
                    // divisor (the `item / hs`, `item % hs` indexing idiom)
                    // becomes a shift/mask — a host hardware division per
                    // lane is the single most expensive ALU op and cannot
                    // be vectorised.
                    if matches!(op, AluOp::Divu | AluOp::Remu) {
                        let d = if full {
                            let n = self.warps[w].threads();
                            if b[1..n].iter().all(|&x| x == b[0]) { Some(b[0]) } else { None }
                        } else {
                            let first = tmask.trailing_zeros() as usize;
                            let mut m = tmask;
                            let mut uni = Some(b[first]);
                            while m != 0 {
                                let l = m.trailing_zeros() as usize;
                                m &= m - 1;
                                if b[l] != b[first] {
                                    uni = None;
                                    break;
                                }
                            }
                            uni
                        };
                        if let Some(d) = d {
                            if d != 0 && d.is_power_of_two() {
                                let sh = d.trailing_zeros();
                                let mask = d - 1;
                                match op {
                                    AluOp::Divu => write_row!(rd.num() as usize, |l| a[l] >> sh),
                                    _ => write_row!(rd.num() as usize, |l| a[l] & mask),
                                }
                                wb_int!(rd, timing.div);
                                break 'op;
                            }
                        }
                    }
                    write_row!(rd.num() as usize, |l| alu(op, a[l], b[l]));
                }
                let lat = match meta.class {
                    ExecClass::Mul => timing.mul,
                    ExecClass::Div => timing.div,
                    _ => timing.alu,
                };
                wb_int!(rd, lat);
            }
            Instr::Fence => {}
            Instr::Ecall => return Err(SimError::Trap { pc, breakpoint: false }),
            Instr::Ebreak => return Err(SimError::Trap { pc, breakpoint: true }),
            Instr::Csr { op: _, rd, src, csr } => {
                // All architectural CSRs are read-only; writes are ignored.
                let _ = src;
                if csr == csrs::THREAD_ID {
                    if !rd.is_zero() {
                        write_row!(rd.num() as usize, |l| l as u32);
                    }
                } else {
                    // Every other CSR is lane-invariant: resolve it once
                    // and broadcast instead of re-matching per lane.
                    let v = self.read_csr(csr, w, 0, now, ctx);
                    if !rd.is_zero() {
                        broadcast_row!(rd.num() as usize, v);
                    }
                }
                wb_int!(rd, timing.alu);
            }
            Instr::Flw { rd, rs1, offset } => 'flw: {
                let mut addrs = [0u32; 32];
                let mut base = [0u32; 32];
                read_src!(rs1.num() as usize, base);
                // Broadcast / unit-stride fast paths, as for word loads.
                if full {
                    let n = self.warps[w].threads();
                    let addr0 = base[0].wrapping_add(offset as u32);
                    if n >= 2 {
                        if base[1..n].iter().all(|&b| b == base[0]) {
                            if addr0 & 3 != 0 {
                                return Err(SimError::MisalignedAccess { pc, addr: addr0, align: 4 });
                            }
                            let v = ctx.mem.read_u32(addr0);
                            self.rf.row_mut(w, FP_BASE + rd.num() as usize).fill(v);
                            let completion = self.memory_access_span(addr0, addr0, false, now, ctx);
                            self.rf.set_busy(w, FP_BASE + rd.num() as usize, completion);
                            break 'flw;
                        }
                        if addr0 & 3 == 0
                            && addr0.checked_add(4 * (n as u32 - 1)).is_some()
                            && base[1..n]
                                .iter()
                                .enumerate()
                                .all(|(i, &b)| b == base[0].wrapping_add(4 * (i as u32 + 1)))
                        {
                            let dst = self.rf.row_mut(w, FP_BASE + rd.num() as usize);
                            ctx.mem.read_u32_into(addr0, dst);
                            let last = addr0 + 4 * (n as u32 - 1);
                            let completion = self.memory_access_span(addr0, last, false, now, ctx);
                            self.rf.set_busy(w, FP_BASE + rd.num() as usize, completion);
                            break 'flw;
                        }
                    }
                }
                let dst = self.rf.row_mut(w, FP_BASE + rd.num() as usize);
                for_lanes!(|l| {
                    let addr = base[l].wrapping_add(offset as u32);
                    if addr & 3 != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: 4 });
                    }
                    dst[l] = ctx.mem.read_u32(addr);
                    addrs[l] = addr;
                });
                let completion = self.memory_access(w, &addrs, tmask, false, now, ctx);
                self.rf.set_busy(w, FP_BASE + rd.num() as usize, completion);
            }
            Instr::Fsw { rs2, rs1, offset } => 'fsw: {
                let mut addrs = [0u32; 32];
                let base = self.rf.row(w, rs1.num() as usize);
                let vals = self.rf.row(w, FP_BASE + rs2.num() as usize);
                // Unit-stride full-mask bulk path, as for word stores.
                if full {
                    let n = base.len();
                    let addr0 = base[0].wrapping_add(offset as u32);
                    if n >= 2
                        && addr0 & 3 == 0
                        && addr0.checked_add(4 * (n as u32 - 1)).is_some()
                        && base[1..]
                            .iter()
                            .enumerate()
                            .all(|(i, &b)| b == base[0].wrapping_add(4 * (i as u32 + 1)))
                    {
                        ctx.mem.write_u32_from(addr0, vals);
                        let last = addr0 + 4 * (n as u32 - 1);
                        self.memory_access_span(addr0, last, true, now, ctx);
                        break 'fsw;
                    }
                }
                for_lanes!(|l| {
                    let addr = base[l].wrapping_add(offset as u32);
                    if addr & 3 != 0 {
                        return Err(SimError::MisalignedAccess { pc, addr, align: 4 });
                    }
                    ctx.mem.write_u32(addr, vals[l]);
                    addrs[l] = addr;
                });
                self.memory_access(w, &addrs, tmask, true, now, ctx);
            }
            Instr::FpOp { op, rd, rs1, rs2 } => {
                let mut a = [0u32; 32];
                let mut b = [0u32; 32];
                read_src!(FP_BASE + rs1.num() as usize, a);
                read_src!(FP_BASE + rs2.num() as usize, b);
                write_row!(FP_BASE + rd.num() as usize, |l| fp_bin(
                    op,
                    f32::from_bits(a[l]),
                    f32::from_bits(b[l])
                ));
                let lat = if matches!(op, FpBinOp::Div) { timing.fdiv } else { timing.fpu };
                wb_fp!(rd, lat);
            }
            Instr::FpFma { op, rd, rs1, rs2, rs3 } => {
                let mut a = [0u32; 32];
                let mut b = [0u32; 32];
                let mut c = [0u32; 32];
                read_src!(FP_BASE + rs1.num() as usize, a);
                read_src!(FP_BASE + rs2.num() as usize, b);
                read_src!(FP_BASE + rs3.num() as usize, c);
                write_row!(FP_BASE + rd.num() as usize, |l| {
                    let (x, y, z) =
                        (f32::from_bits(a[l]), f32::from_bits(b[l]), f32::from_bits(c[l]));
                    let v = match op {
                        FmaOp::MAdd => x.mul_add(y, z),
                        FmaOp::MSub => x.mul_add(y, -z),
                        FmaOp::NMSub => (-x).mul_add(y, z),
                        FmaOp::NMAdd => (-x).mul_add(y, -z),
                    };
                    v.to_bits()
                });
                wb_fp!(rd, timing.fpu);
            }
            Instr::FpSqrt { rd, rs1 } => {
                let mut a = [0u32; 32];
                read_src!(FP_BASE + rs1.num() as usize, a);
                write_row!(FP_BASE + rd.num() as usize, |l| f32::from_bits(a[l])
                    .sqrt()
                    .to_bits());
                wb_fp!(rd, timing.fsqrt);
            }
            Instr::FpCmp { op, rd, rs1, rs2 } => {
                if !rd.is_zero() {
                    let mut a = [0u32; 32];
                    let mut b = [0u32; 32];
                    read_src!(FP_BASE + rs1.num() as usize, a);
                    read_src!(FP_BASE + rs2.num() as usize, b);
                    write_row!(rd.num() as usize, |l| {
                        let (x, y) = (f32::from_bits(a[l]), f32::from_bits(b[l]));
                        u32::from(match op {
                            FpCmpOp::Eq => x == y,
                            FpCmpOp::Lt => x < y,
                            FpCmpOp::Le => x <= y,
                        })
                    });
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::FpCvtToInt { signed, rd, rs1 } => {
                if !rd.is_zero() {
                    let mut a = [0u32; 32];
                    read_src!(FP_BASE + rs1.num() as usize, a);
                    write_row!(rd.num() as usize, |l| {
                        let v = f32::from_bits(a[l]);
                        if signed {
                            if v.is_nan() {
                                i32::MAX as u32
                            } else {
                                (v as i32) as u32
                            }
                        } else if v.is_nan() {
                            u32::MAX
                        } else {
                            v as u32
                        }
                    });
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::FpCvtFromInt { signed, rd, rs1 } => {
                let mut a = [0u32; 32];
                read_src!(rs1.num() as usize, a);
                write_row!(FP_BASE + rd.num() as usize, |l| {
                    let v = if signed { a[l] as i32 as f32 } else { a[l] as f32 };
                    v.to_bits()
                });
                wb_fp!(rd, timing.fpu);
            }
            Instr::FpMvToInt { rd, rs1 } => {
                if !rd.is_zero() {
                    let mut a = [0u32; 32];
                    read_src!(FP_BASE + rs1.num() as usize, a);
                    write_row!(rd.num() as usize, |l| a[l]);
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::FpMvFromInt { rd, rs1 } => {
                let mut a = [0u32; 32];
                read_src!(rs1.num() as usize, a);
                write_row!(FP_BASE + rd.num() as usize, |l| a[l]);
                wb_fp!(rd, timing.fpu);
            }
            Instr::FpClass { rd, rs1 } => {
                if !rd.is_zero() {
                    let mut a = [0u32; 32];
                    read_src!(FP_BASE + rs1.num() as usize, a);
                    write_row!(rd.num() as usize, |l| fclass(f32::from_bits(a[l])));
                }
                wb_int!(rd, timing.fpu);
            }
            Instr::Tmc { rs1 } => {
                let mask = self.uniform(w, rs1, pc)? & self.warps[w].full_mask();
                if mask == 0 {
                    self.warps[w].halt();
                    self.warp_next[w] = NEVER;
                    halted = true;
                } else {
                    self.warps[w].tmask = mask;
                }
            }
            Instr::Wspawn { rs1, rs2 } => {
                let count = self.uniform(w, rs1, pc)?;
                let target = self.uniform(w, rs2, pc)?;
                if count as usize > self.warps.len() {
                    return Err(SimError::WspawnTooManyWarps {
                        requested: count,
                        available: self.warps.len(),
                    });
                }
                for i in 1..count as usize {
                    if i != w {
                        let full = self.warps[i].full_mask();
                        self.warps[i].start(target, full, now + timing.wspawn);
                        self.rf.clear_warp(i);
                        self.warp_next[i] = now + timing.wspawn;
                        // Respawn resets scheduling state; a cached entry
                        // could alias the same PC with stale hazards.
                        self.next_issue[i].valid = false;
                    }
                }
            }
            Instr::Split { rs1, offset } => {
                if self.warps[w].ipdom.len() >= ctx.ipdom_depth {
                    return Err(SimError::IpdomOverflow { pc });
                }
                let row = self.rf.row(w, rs1.num() as usize);
                let mut taken = 0u32;
                for_lanes!(|l| taken |= u32::from(row[l] != 0) << l);
                let not_taken = tmask & !taken;
                let else_pc = pc.wrapping_add(offset as u32);
                if not_taken == 0 {
                    self.warps[w].ipdom.push(IpdomEntry::Uniform { restore_mask: tmask });
                } else if taken == 0 {
                    self.warps[w].ipdom.push(IpdomEntry::Uniform { restore_mask: tmask });
                    next_pc = else_pc;
                } else {
                    self.warps[w].ipdom.push(IpdomEntry::ElsePending {
                        restore_mask: tmask,
                        else_mask: not_taken,
                        else_pc,
                    });
                    self.warps[w].tmask = taken;
                }
            }
            Instr::Join => match self.warps[w].ipdom.pop() {
                None => return Err(SimError::IpdomUnderflow { pc }),
                Some(IpdomEntry::Uniform { restore_mask })
                | Some(IpdomEntry::ElseRunning { restore_mask }) => {
                    self.warps[w].tmask = restore_mask;
                }
                Some(IpdomEntry::ElsePending { restore_mask, else_mask, else_pc }) => {
                    self.warps[w].ipdom.push(IpdomEntry::ElseRunning { restore_mask });
                    self.warps[w].tmask = else_mask;
                    next_pc = else_pc;
                }
            },
            Instr::Bar { rs1, rs2 } => {
                let id = self.uniform(w, rs1, pc)?;
                let count = self.uniform(w, rs2, pc)? as usize;
                let state = self.barriers.entry(id).or_default();
                state.arrived.push(w);
                if state.arrived.len() >= count {
                    let released = self.barriers.remove(&id).expect("just inserted");
                    for rw in released.arrived {
                        self.warps[rw].at_barrier = None;
                        self.warps[rw].ready_at = now + timing.barrier;
                        self.warp_next[rw] = now + timing.barrier;
                        self.next_issue[rw].valid = false;
                    }
                    // `self` (warp w) is among the released warps.
                    self.warps[w].pc = next_pc;
                    return Ok(());
                } else {
                    self.warps[w].at_barrier = Some(id);
                    self.warps[w].ready_at = NEVER;
                    self.warp_next[w] = NEVER;
                    self.warps[w].pc = next_pc;
                    return Ok(());
                }
            }
            Instr::Vote { op, rd, rs1 } => {
                let row = self.rf.row(w, rs1.num() as usize);
                let mut ballot = 0u32;
                for_lanes!(|l| ballot |= u32::from(row[l] != 0) << l);
                let result = match op {
                    VoteOp::Any => u32::from(ballot != 0),
                    VoteOp::All => u32::from(ballot == tmask),
                    VoteOp::Ballot => ballot,
                };
                if !rd.is_zero() {
                    broadcast_row!(rd.num() as usize, result);
                }
                wb_int!(rd, timing.alu);
            }
        }

        if !halted {
            let taken = next_pc != pc.wrapping_add(4);
            let gap = if taken && meta.is_control { 1 + timing.branch_bubble } else { 1 };
            self.warps[w].pc = next_pc;
            self.warps[w].ready_at = now + gap;
            // `ready_at` ignores the next instruction's register hazards,
            // so it is a valid (early) lower bound for the skip cache.
            self.warp_next[w] = now + gap;
        }
        Ok(())
    }

    /// Coalesces and submits the line requests of one SIMT memory
    /// instruction. Returns the completion cycle of the last line.
    fn memory_access<S: TraceSink + ?Sized>(
        &mut self,
        _w: usize,
        addrs: &[u32; 32],
        tmask: u32,
        is_store: bool,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Cycle {
        let line_bytes = ctx.line_bytes;
        let banks = ctx.l1_banks;
        // Iterate set bits directly: cost scales with active lanes, not
        // with the 32-lane SIMT width.
        let mut mask = tmask;
        let lanes = std::iter::from_fn(move || {
            if mask == 0 {
                return None;
            }
            let l = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            Some(addrs[l])
        });
        let lines = coalesce_lines(lanes, line_bytes);
        let mut completion = now;
        for (i, line) in lines.as_slice().iter().enumerate() {
            // The banked L1 accepts `banks` lines per cycle. (`i < banks`
            // covers nearly every access — at most 32 lines exist — and
            // skips a hardware division.)
            let at = if i < banks { now } else { now + (i / banks) as Cycle };
            let done = if is_store {
                ctx.memsys.store(self.id, *line, at)
            } else {
                ctx.memsys.load(self.id, *line, at)
            };
            completion = completion.max(done);
            *ctx.horizon = (*ctx.horizon).max(done);
        }
        self.mem_port_free =
            now + if lines.len() <= banks { 1 } else { lines.len().div_ceil(banks) as Cycle };
        completion
    }

    /// [`memory_access`](Core::memory_access) for a contiguous ascending
    /// span of lane addresses `addr0..=addr_last` (the broadcast and
    /// unit-stride fast paths): the coalesced line sequence of such a span
    /// is exactly the ascending run of line bases it covers, so it is
    /// generated arithmetically instead of walking 32 lanes through the
    /// dedup buffer. Port accounting and completion match the general
    /// path line for line.
    fn memory_access_span<S: TraceSink + ?Sized>(
        &mut self,
        addr0: u32,
        addr_last: u32,
        is_store: bool,
        now: Cycle,
        ctx: &mut CoreCtx<'_, S>,
    ) -> Cycle {
        let line_bytes = ctx.line_bytes;
        let banks = ctx.l1_banks;
        let first = addr0 & !(line_bytes - 1);
        let last = addr_last & !(line_bytes - 1);
        let nlines = ((last - first) / line_bytes + 1) as usize;
        let mut completion = now;
        for i in 0..nlines {
            let line = first + i as u32 * line_bytes;
            // The banked L1 accepts `banks` lines per cycle.
            let at = if i < banks { now } else { now + (i / banks) as Cycle };
            let done = if is_store {
                ctx.memsys.store(self.id, line, at)
            } else {
                ctx.memsys.load(self.id, line, at)
            };
            completion = completion.max(done);
            *ctx.horizon = (*ctx.horizon).max(done);
        }
        self.mem_port_free =
            now + if nlines <= banks { 1 } else { nlines.div_ceil(banks) as Cycle };
        completion
    }

    /// The value of `reg` in the lowest active lane of warp `w`, with a
    /// uniformity check across all active lanes.
    fn uniform(&self, w: usize, reg: vortex_isa::Reg, pc: u32) -> Result<u32, SimError> {
        let tmask = self.warps[w].tmask;
        let err = SimError::NonUniformOperand { core: self.id, warp: w, pc };
        if tmask == 0 {
            return Err(err);
        }
        let row = self.rf.row(w, reg.num() as usize);
        let v = row[tmask.trailing_zeros() as usize];
        let mut m = tmask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            if row[l] != v {
                return Err(err);
            }
        }
        Ok(v)
    }

    fn read_csr<S: TraceSink + ?Sized>(
        &self,
        csr: Csr,
        w: usize,
        lane: usize,
        now: Cycle,
        ctx: &CoreCtx<'_, S>,
    ) -> u32 {
        match csr {
            c if c == csrs::THREAD_ID => lane as u32,
            c if c == csrs::WARP_ID => w as u32,
            c if c == csrs::CORE_ID => self.id as u32,
            c if c == csrs::THREAD_MASK => self.warps[w].tmask,
            c if c == csrs::ACTIVE_WARPS => self.active_warp_mask(),
            c if c == csrs::NUM_THREADS => self.warps[w].threads() as u32,
            c if c == csrs::NUM_WARPS => self.warps.len() as u32,
            c if c == csrs::NUM_CORES => ctx.num_cores as u32,
            c if c == csrs::MCYCLE => now as u32,
            c if c == csrs::MCYCLE_H => (now >> 32) as u32,
            c if c == csrs::MINSTRET => ctx.counters.instructions as u32,
            c if c == csrs::MINSTRET_H => (ctx.counters.instructions >> 32) as u32,
            _ => 0,
        }
    }
}

fn load_width_bytes(width: LoadWidth) -> (u32, bool) {
    match width {
        LoadWidth::Byte => (1, true),
        LoadWidth::ByteU => (1, false),
        LoadWidth::Half => (2, true),
        LoadWidth::HalfU => (2, false),
        LoadWidth::Word => (4, false),
    }
}

#[inline]
fn branch_cmp(op: BranchOp, a: u32, b: u32) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i32) < (b as i32),
        BranchOp::Ge => (a as i32) >= (b as i32),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

fn alu_imm(op: AluImmOp, a: u32, imm: i32) -> u32 {
    match op {
        AluImmOp::Add => a.wrapping_add(imm as u32),
        AluImmOp::Slt => u32::from((a as i32) < imm),
        AluImmOp::Sltu => u32::from(a < imm as u32),
        AluImmOp::Xor => a ^ imm as u32,
        AluImmOp::Or => a | imm as u32,
        AluImmOp::And => a & imm as u32,
        AluImmOp::Sll => a.wrapping_shl(imm as u32),
        AluImmOp::Srl => a.wrapping_shr(imm as u32),
        AluImmOp::Sra => ((a as i32).wrapping_shr(imm as u32)) as u32,
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: i32::MIN / -1
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Divu => {
            if b == 0 {
                u32::MAX
            } else {
                a / b
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

fn fp_bin(op: FpBinOp, a: f32, b: f32) -> u32 {
    let v = match op {
        FpBinOp::Add => a + b,
        FpBinOp::Sub => a - b,
        FpBinOp::Mul => a * b,
        FpBinOp::Div => a / b,
        FpBinOp::SgnJ => f32::from_bits((a.to_bits() & 0x7FFF_FFFF) | (b.to_bits() & 0x8000_0000)),
        FpBinOp::SgnJN => {
            f32::from_bits((a.to_bits() & 0x7FFF_FFFF) | (!b.to_bits() & 0x8000_0000))
        }
        FpBinOp::SgnJX => f32::from_bits(a.to_bits() ^ (b.to_bits() & 0x8000_0000)),
        FpBinOp::Min => a.min(b),
        FpBinOp::Max => a.max(b),
    };
    v.to_bits()
}

/// RISC-V `fclass.s` result mask.
fn fclass(v: f32) -> u32 {
    use std::num::FpCategory;
    let neg = v.is_sign_negative();
    match (v.classify(), neg) {
        (FpCategory::Infinite, true) => 1 << 0,
        (FpCategory::Normal, true) => 1 << 1,
        (FpCategory::Subnormal, true) => 1 << 2,
        (FpCategory::Zero, true) => 1 << 3,
        (FpCategory::Zero, false) => 1 << 4,
        (FpCategory::Subnormal, false) => 1 << 5,
        (FpCategory::Normal, false) => 1 << 6,
        (FpCategory::Infinite, false) => 1 << 7,
        (FpCategory::Nan, _) => {
            if v.to_bits() & 0x0040_0000 != 0 {
                1 << 9 // quiet NaN
            } else {
                1 << 8 // signaling NaN
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::reg;

    #[test]
    fn alu_semantics_match_riscv() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Mulhu, u32::MAX, u32::MAX), 0xFFFF_FFFE);
        assert_eq!(alu(AluOp::Mulh, (-1i32) as u32, (-1i32) as u32), 0);
    }

    #[test]
    fn division_edge_cases_follow_spec() {
        // Division by zero.
        assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Divu, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        // Signed overflow.
        assert_eq!(alu(AluOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(alu(AluOp::Rem, 0x8000_0000, u32::MAX), 0);
    }

    #[test]
    fn sign_injection() {
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJ, 1.5, -2.0)), -1.5);
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJN, 1.5, -2.0)), 1.5);
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJX, -1.5, -2.0)), 1.5);
    }

    #[test]
    fn fclass_categories() {
        assert_eq!(fclass(f32::NEG_INFINITY), 1 << 0);
        assert_eq!(fclass(-1.0), 1 << 1);
        assert_eq!(fclass(-0.0), 1 << 3);
        assert_eq!(fclass(0.0), 1 << 4);
        assert_eq!(fclass(2.5), 1 << 6);
        assert_eq!(fclass(f32::INFINITY), 1 << 7);
        assert_eq!(fclass(f32::NAN), 1 << 9);
    }

    #[test]
    fn shift_immediates_mask_amount() {
        assert_eq!(alu_imm(AluImmOp::Sll, 1, 4), 16);
        assert_eq!(alu_imm(AluImmOp::Sra, (-16i32) as u32, 2), (-4i32) as u32);
    }

    #[test]
    fn uniform_check_reads_active_lanes_only() {
        let mut core = Core::new(0, 1, 4);
        core.start_warp(0, 0x100, 0);
        core.warps[0].tmask = 0b0110;
        core.rf.row_mut(0, reg::T1.num() as usize).copy_from_slice(&[99, 7, 7, 99]);
        assert_eq!(core.uniform(0, reg::T1, 0x100).unwrap(), 7);
        core.rf.row_mut(0, reg::T1.num() as usize)[2] = 8;
        assert!(core.uniform(0, reg::T1, 0x100).is_err());
        // x0 is uniform zero regardless of lane contents.
        assert_eq!(core.uniform(0, reg::ZERO, 0x100).unwrap(), 0);
    }

    #[test]
    fn start_warp_clears_register_block() {
        let mut core = Core::new(0, 2, 4);
        core.start_warp(0, 0x100, 0);
        core.rf.row_mut(0, 5)[1] = 42;
        core.rf.set_busy(0, 5, 9);
        core.rf.row_mut(1, 5)[0] = 17;
        core.start_warp(0, 0x200, 0);
        assert_eq!(core.rf.row(0, 5), &[0; 4]);
        assert_eq!(core.rf.busy_until(0, 5), 0);
        // Warp 1's rows are untouched by warp 0's restart.
        assert_eq!(core.rf.read(1, 5, 0), 17);
    }
}

