//! The decode cache: per-instruction static metadata derived once at
//! program-load time.
//!
//! Before this cache the hot path re-ran five separate matches over
//! [`Instr`] per issued instruction (`src_regs` building an option array,
//! `dst_reg`, `exec_class` twice, `is_control`); now each is one field
//! load. The instruction and its metadata are stored side by side
//! ([`DecodedInstr`]) so a fetch touches one contiguous entry instead of
//! two parallel arrays. The per-op monomorphic execute kernels of the
//! big ALU/FPU arms are *not* cached here: their op-indexed dispatch
//! tables (see [`exec::tables`](crate::exec::tables)) resolve from the
//! cached instruction's operation in one table load at issue, so caching
//! the pointer would only grow this entry (and the per-warp next-issue
//! cache) by 16 bytes per slot — measured as a net loss.

use vortex_isa::{ExecClass, Instr};

/// Static facts about one instruction, in load-and-go form.
#[derive(Copy, Clone, Debug)]
pub(crate) struct InstrMeta {
    /// Dense scoreboard indices of the source operands; `0` (= `x0`,
    /// whose scoreboard entry is permanently zero) encodes "no operand",
    /// which makes the hazard check a branchless chain of four `max`es.
    pub src: [u8; 3],
    /// Dense scoreboard index of the destination (`0` = none).
    pub dst: u8,
    /// Functional-unit class (drives the class counters and the `Op`
    /// latency pick).
    pub class: ExecClass,
    /// Contends for the memory port.
    pub is_mem: bool,
    /// May redirect control flow (taken-branch bubble accounting).
    pub is_control: bool,
}

impl InstrMeta {
    /// Decodes the static facts of one instruction.
    pub fn of(instr: &Instr) -> Self {
        let mut src = [0u8; 3];
        for (slot, reg) in src.iter_mut().zip(instr.src_regs()) {
            if let Some(r) = reg {
                if !r.is_zero() {
                    *slot = r.dense_index() as u8;
                }
            }
        }
        let dst = instr.dst_reg().map_or(0, |d| d.dense_index() as u8);
        InstrMeta {
            src,
            dst,
            class: instr.exec_class(),
            is_mem: instr.is_mem(),
            is_control: instr.is_control(),
        }
    }

    pub(crate) const INVALID: InstrMeta =
        InstrMeta { src: [0; 3], dst: 0, class: ExecClass::Simt, is_mem: false, is_control: false };
}

/// One fetchable program slot: the instruction plus its decoded facts.
#[derive(Copy, Clone, Debug)]
pub(crate) struct DecodedInstr {
    pub instr: Instr,
    pub meta: InstrMeta,
}

impl DecodedInstr {
    /// Decodes one instruction.
    pub fn of(instr: Instr) -> Self {
        DecodedInstr { meta: InstrMeta::of(&instr), instr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_isa::{fregs, reg, AluOp, BranchOp, LoadWidth};

    #[test]
    fn operand_indices_use_the_dense_scoreboard_space() {
        let m =
            InstrMeta::of(&Instr::Op { op: AluOp::Add, rd: reg::A0, rs1: reg::T1, rs2: reg::ZERO });
        assert_eq!(m.src[0], reg::T1.num());
        assert_eq!(m.src[1], 0, "x0 source encodes as no-operand");
        assert_eq!(m.src[2], 0);
        assert_eq!(m.dst, reg::A0.num());
        assert!(!m.is_mem);
        assert!(!m.is_control);

        let fp = InstrMeta::of(&Instr::Flw { rd: fregs::FA0, rs1: reg::A1, offset: 0 });
        assert_eq!(fp.dst, 32 + fregs::FA0.num(), "FP file sits above the integer file");
        assert!(fp.is_mem);
    }

    #[test]
    fn control_and_class_flags_match_the_instruction() {
        let br = InstrMeta::of(&Instr::Branch {
            op: BranchOp::Eq,
            rs1: reg::A0,
            rs2: reg::A1,
            offset: 8,
        });
        assert!(br.is_control);
        assert_eq!(br.class, ExecClass::Branch);
        assert_eq!(br.dst, 0, "branches write no register");

        let ld = InstrMeta::of(&Instr::Load {
            width: LoadWidth::Word,
            rd: reg::A0,
            rs1: reg::A1,
            offset: 0,
        });
        assert!(ld.is_mem);
        assert_eq!(ld.class, ExecClass::Load);
    }
}
