//! Simulation failure modes.

use std::error::Error;
use std::fmt;

use vortex_mem::Cycle;

/// A fatal condition detected by the simulator.
///
/// These are *checked invariants* of the SIMT execution model: well-formed
/// kernels never trigger them, and the test suite exercises each one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A scalar branch condition differed across active lanes. Divergent
    /// control flow must use `vx_split`/`vx_join`.
    DivergentBranch {
        /// Core executing the branch.
        core: usize,
        /// Warp executing the branch.
        warp: usize,
        /// Address of the branch.
        pc: u32,
    },
    /// A register expected to be warp-uniform (e.g. a `jalr` target or
    /// `vx_tmc` mask) differed across active lanes.
    NonUniformOperand {
        /// Core executing the instruction.
        core: usize,
        /// Warp executing the instruction.
        warp: usize,
        /// Address of the instruction.
        pc: u32,
    },
    /// Instruction fetch left the loaded program image.
    UnmappedPc {
        /// Core that fetched.
        core: usize,
        /// Warp that fetched.
        warp: usize,
        /// The out-of-range address.
        pc: u32,
    },
    /// A load/store address was not aligned to its access width.
    MisalignedAccess {
        /// Address of the instruction.
        pc: u32,
        /// The offending data address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// `vx_split` exceeded the configured IPDOM stack depth.
    IpdomOverflow {
        /// Address of the split.
        pc: u32,
    },
    /// `vx_join` executed with an empty IPDOM stack.
    IpdomUnderflow {
        /// Address of the join.
        pc: u32,
    },
    /// An `ecall`/`ebreak` trap was raised (kernels use these as guards).
    Trap {
        /// Address of the trap instruction.
        pc: u32,
        /// `true` for `ebreak`, `false` for `ecall`.
        breakpoint: bool,
    },
    /// All remaining warps are blocked on barriers that can never be
    /// satisfied.
    BarrierDeadlock {
        /// Cycle at which the deadlock was detected.
        cycle: Cycle,
    },
    /// The run exceeded its cycle budget.
    CycleLimit {
        /// The exhausted budget.
        limit: Cycle,
    },
    /// `vx_wspawn` requested more warps than the core has.
    WspawnTooManyWarps {
        /// Requested warp count.
        requested: u32,
        /// Hardware warps available.
        available: usize,
    },
    /// A replayed run needed a recorded outcome the trace does not hold
    /// (stream exhausted, or the next record's kind does not match the
    /// instruction): the trace was recorded for different code, data or
    /// mapping than the run consuming it.
    ReplayDiverged {
        /// Core whose warp diverged.
        core: usize,
        /// Warp whose stream mismatched.
        warp: usize,
        /// PC of the instruction that needed the record.
        pc: u32,
    },
    /// A replayed run completed without consuming the whole trace: the
    /// recorded run executed more than the replayed one.
    ReplayIncomplete {
        /// Recorded events left unconsumed.
        leftover: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DivergentBranch { core, warp, pc } => write!(
                f,
                "divergent scalar branch at {pc:#010x} (core {core}, warp {warp}); \
                 use vx_split for divergent control flow"
            ),
            SimError::NonUniformOperand { core, warp, pc } => write!(
                f,
                "non-uniform operand for uniform instruction at {pc:#010x} \
                 (core {core}, warp {warp})"
            ),
            SimError::UnmappedPc { core, warp, pc } => {
                write!(f, "fetch outside program image at {pc:#010x} (core {core}, warp {warp})")
            }
            SimError::MisalignedAccess { pc, addr, align } => write!(
                f,
                "misaligned {align}-byte access to {addr:#010x} by instruction at {pc:#010x}"
            ),
            SimError::IpdomOverflow { pc } => {
                write!(f, "IPDOM stack overflow at split {pc:#010x}")
            }
            SimError::IpdomUnderflow { pc } => {
                write!(f, "vx_join with empty IPDOM stack at {pc:#010x}")
            }
            SimError::Trap { pc, breakpoint } => {
                let kind = if *breakpoint { "ebreak" } else { "ecall" };
                write!(f, "{kind} trap at {pc:#010x}")
            }
            SimError::BarrierDeadlock { cycle } => {
                write!(f, "barrier deadlock detected at cycle {cycle}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "cycle limit of {limit} exhausted before completion")
            }
            SimError::WspawnTooManyWarps { requested, available } => {
                write!(f, "vx_wspawn requested {requested} warps, core has {available}")
            }
            SimError::ReplayDiverged { core, warp, pc } => write!(
                f,
                "replay diverged from recorded trace at {pc:#010x} (core {core}, warp {warp}); \
                 the trace was recorded for different code, data or mapping"
            ),
            SimError::ReplayIncomplete { leftover } => {
                write!(f, "replay finished with {leftover} recorded events unconsumed")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_actionable() {
        let e = SimError::DivergentBranch { core: 1, warp: 2, pc: 0x8000_0010 };
        assert!(e.to_string().contains("vx_split"));
        let e = SimError::CycleLimit { limit: 500 };
        assert!(e.to_string().contains("500"));
    }
}
