//! The op-indexed kernel tables: one monomorphic pair of row loops per
//! operation, instantiated from the scalar semantics in
//! [`scalar`](super::scalar).
//!
//! Each table entry is a `static` kernel struct holding two function
//! pointers — the branch-free full-mask loop and the set-bit masked walk
//! — both monomorphised over a zero-sized op type whose `eval` calls the
//! scalar function with a *constant* operation. The operation match
//! therefore folds away at compile time and every kernel body contains
//! exactly one operation, which is what lets LLVM vectorise the full-mask
//! loops without relying on loop unswitching of an 18-way `match`.
//!
//! Lookup happens at issue time: the execute arm resolves the operation
//! held in the [`DecodedInstr`](crate::decoded::DecodedInstr) cache
//! through its family's table function — a match over a fieldless enum
//! returning statics, i.e. one table load — and pays one indirect call
//! per instruction instead of one operation match per lane. (Storing the
//! kernel pointer in the decode entry instead was tried and measured a
//! net loss; see the note in `decoded.rs`.)

use vortex_isa::{AluImmOp, AluOp, BranchOp, FmaOp, FpBinOp, FpCmpOp};

use super::scalar;
use super::{BinKernel, CmpKernel, FmaKernel, ImmKernel, UnKernel};

/// Scalar op of a two-source row kernel.
pub(super) trait Op2 {
    fn eval(a: u32, b: u32) -> u32;
}

/// Scalar op of a source+immediate row kernel.
pub(super) trait OpImm {
    fn eval(a: u32, imm: i32) -> u32;
}

/// Scalar op of a three-source row kernel.
pub(super) trait Op3 {
    fn eval(a: u32, b: u32, c: u32) -> u32;
}

/// Scalar op of a one-source row kernel.
pub(super) trait Op1 {
    fn eval(a: u32) -> u32;
}

/// Scalar predicate of a ballot kernel.
pub(super) trait Pred2 {
    fn eval(a: u32, b: u32) -> bool;
}

// The generic row loops. Full-mask variants zip over the destination row
// (bounds checks elided, auto-vectorisable); masked variants walk the set
// bits of the thread mask so cost scales with active lanes. Lane order —
// ascending — matches the pre-kernel `write_row!`/`for_lanes!` loops
// bit-for-bit.

fn bin_full<O: Op2>(dst: &mut [u32], a: &[u32], b: &[u32]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = O::eval(x, y);
    }
}

fn bin_masked<O: Op2>(dst: &mut [u32], a: &[u32], b: &[u32], mut m: u32) {
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        dst[l] = O::eval(a[l], b[l]);
    }
}

fn imm_full<O: OpImm>(dst: &mut [u32], a: &[u32], imm: i32) {
    for (d, &x) in dst.iter_mut().zip(a) {
        *d = O::eval(x, imm);
    }
}

fn imm_masked<O: OpImm>(dst: &mut [u32], a: &[u32], imm: i32, mut m: u32) {
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        dst[l] = O::eval(a[l], imm);
    }
}

fn fma_full<O: Op3>(dst: &mut [u32], a: &[u32], b: &[u32], c: &[u32]) {
    for (((d, &x), &y), &z) in dst.iter_mut().zip(a).zip(b).zip(c) {
        *d = O::eval(x, y, z);
    }
}

fn fma_masked<O: Op3>(dst: &mut [u32], a: &[u32], b: &[u32], c: &[u32], mut m: u32) {
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        dst[l] = O::eval(a[l], b[l], c[l]);
    }
}

fn un_full<O: Op1>(dst: &mut [u32], a: &[u32]) {
    for (d, &x) in dst.iter_mut().zip(a) {
        *d = O::eval(x);
    }
}

fn un_masked<O: Op1>(dst: &mut [u32], a: &[u32], mut m: u32) {
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        dst[l] = O::eval(a[l]);
    }
}

fn cmp_full<O: Pred2>(a: &[u32], b: &[u32]) -> u32 {
    let mut ballot = 0u32;
    for (l, (&x, &y)) in a.iter().zip(b).enumerate() {
        ballot |= u32::from(O::eval(x, y)) << l;
    }
    ballot
}

fn cmp_masked<O: Pred2>(a: &[u32], b: &[u32], mut m: u32) -> u32 {
    let mut ballot = 0u32;
    while m != 0 {
        let l = m.trailing_zeros() as usize;
        m &= m - 1;
        ballot |= u32::from(O::eval(a[l], b[l])) << l;
    }
    ballot
}

/// Generates `fn $name(op) -> &'static $kernel`: one match whose arms
/// each hold a per-op ZST, its scalar-constant `eval`, and the `static`
/// kernel pair monomorphised over it. One macro per arity, because the
/// `eval` signature differs.
macro_rules! bin_table {
    ($name:ident, $opty:ty, $scalar:path, [$($variant:ident),+ $(,)?]) => {
        pub(crate) fn $name(op: $opty) -> &'static BinKernel {
            match op {
                $(<$opty>::$variant => {
                    struct Z;
                    impl Op2 for Z {
                        #[inline(always)]
                        fn eval(a: u32, b: u32) -> u32 {
                            $scalar(<$opty>::$variant, a, b)
                        }
                    }
                    static K: BinKernel = BinKernel { full: bin_full::<Z>, masked: bin_masked::<Z> };
                    &K
                })+
            }
        }
    };
}

macro_rules! imm_table {
    ($name:ident, $opty:ty, $scalar:path, [$($variant:ident),+ $(,)?]) => {
        pub(crate) fn $name(op: $opty) -> &'static ImmKernel {
            match op {
                $(<$opty>::$variant => {
                    struct Z;
                    impl OpImm for Z {
                        #[inline(always)]
                        fn eval(a: u32, imm: i32) -> u32 {
                            $scalar(<$opty>::$variant, a, imm)
                        }
                    }
                    static K: ImmKernel = ImmKernel { full: imm_full::<Z>, masked: imm_masked::<Z> };
                    &K
                })+
            }
        }
    };
}

macro_rules! fma_table {
    ($name:ident, $opty:ty, $scalar:path, [$($variant:ident),+ $(,)?]) => {
        pub(crate) fn $name(op: $opty) -> &'static FmaKernel {
            match op {
                $(<$opty>::$variant => {
                    struct Z;
                    impl Op3 for Z {
                        #[inline(always)]
                        fn eval(a: u32, b: u32, c: u32) -> u32 {
                            $scalar(<$opty>::$variant, a, b, c)
                        }
                    }
                    static K: FmaKernel = FmaKernel { full: fma_full::<Z>, masked: fma_masked::<Z> };
                    &K
                })+
            }
        }
    };
}

macro_rules! cmp_table {
    ($name:ident, $opty:ty, $scalar:path, [$($variant:ident),+ $(,)?]) => {
        pub(crate) fn $name(op: $opty) -> &'static CmpKernel {
            match op {
                $(<$opty>::$variant => {
                    struct Z;
                    impl Pred2 for Z {
                        #[inline(always)]
                        fn eval(a: u32, b: u32) -> bool {
                            $scalar(<$opty>::$variant, a, b)
                        }
                    }
                    static K: CmpKernel = CmpKernel { full: cmp_full::<Z>, masked: cmp_masked::<Z> };
                    &K
                })+
            }
        }
    };
}

bin_table!(
    alu_kernel,
    AluOp,
    scalar::alu,
    [
        Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And, Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem,
        Remu,
    ]
);

imm_table!(
    alu_imm_kernel,
    AluImmOp,
    scalar::alu_imm,
    [Add, Slt, Sltu, Xor, Or, And, Sll, Srl, Sra,]
);

bin_table!(
    fp_bin_kernel,
    FpBinOp,
    scalar::fp_bin,
    [Add, Sub, Mul, Div, SgnJ, SgnJN, SgnJX, Min, Max,]
);

fma_table!(fma_kernel, FmaOp, scalar::fma, [MAdd, MSub, NMSub, NMAdd]);

bin_table!(fp_cmp_kernel, FpCmpOp, scalar::fp_cmp, [Eq, Lt, Le]);

cmp_table!(branch_kernel, BranchOp, scalar::branch_cmp, [Eq, Ne, Lt, Ge, Ltu, Geu]);

/// Generates `fn $name() -> &'static UnKernel` for a fixed unary op.
macro_rules! un_kernel {
    ($name:ident, |$a:ident| $e:expr) => {
        pub(crate) fn $name() -> &'static UnKernel {
            struct Z;
            impl Op1 for Z {
                #[inline(always)]
                fn eval($a: u32) -> u32 {
                    $e
                }
            }
            static K: UnKernel = UnKernel { full: un_full::<Z>, masked: un_masked::<Z> };
            &K
        }
    };
}

un_kernel!(fsqrt_kernel, |a| f32::from_bits(a).sqrt().to_bits());

/// `fcvt.w.s` / `fcvt.wu.s` kernel, picked by signedness.
pub(crate) fn fcvt_to_int_kernel(signed: bool) -> &'static UnKernel {
    if signed {
        fcvt_w_s_kernel()
    } else {
        fcvt_wu_s_kernel()
    }
}

/// `fcvt.s.w` / `fcvt.s.wu` kernel, picked by signedness.
pub(crate) fn fcvt_from_int_kernel(signed: bool) -> &'static UnKernel {
    if signed {
        fcvt_s_w_kernel()
    } else {
        fcvt_s_wu_kernel()
    }
}
un_kernel!(fcvt_w_s_kernel, |a| scalar::fcvt_to_int(true, a));
un_kernel!(fcvt_wu_s_kernel, |a| scalar::fcvt_to_int(false, a));
un_kernel!(fcvt_s_w_kernel, |a| scalar::fcvt_from_int(true, a));
un_kernel!(fcvt_s_wu_kernel, |a| scalar::fcvt_from_int(false, a));
un_kernel!(fmv_bits_kernel, |a| a);
un_kernel!(fclass_kernel, |a| scalar::fclass(a));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_masked_loops_agree_per_lane() {
        let a = [10u32, 20, 7, u32::MAX, 0, 3, 100, 8];
        let b = [3u32, 5, 0, 1, 9, 3, 10, 2];
        for op in [AluOp::Add, AluOp::Sub, AluOp::Mulhu, AluOp::Divu, AluOp::Remu, AluOp::Sra] {
            let k = alu_kernel(op);
            let mut full = [0u32; 8];
            (k.full)(&mut full, &a, &b);
            let mut masked = [0u32; 8];
            (k.masked)(&mut masked, &a, &b, 0xFF);
            assert_eq!(full, masked, "{op:?}: full vs masked drift");
            for (l, &v) in full.iter().enumerate() {
                assert_eq!(v, scalar::alu(op, a[l], b[l]), "{op:?} lane {l}");
            }
        }
    }

    #[test]
    fn masked_loops_write_only_active_lanes() {
        let a = [1u32; 8];
        let b = [2u32; 8];
        let k = alu_kernel(AluOp::Add);
        let mut dst = [99u32; 8];
        (k.masked)(&mut dst, &a, &b, 0b1010_0001);
        assert_eq!(dst, [3, 99, 99, 99, 99, 3, 99, 3]);
    }

    #[test]
    fn ballot_kernels_match_lane_comparisons() {
        let a = [0u32, 1, 5, 5, (-3i32) as u32, 9, 0, 2];
        let b = [0u32, 2, 5, 4, 0, 9, 1, 2];
        for op in [BranchOp::Eq, BranchOp::Ne, BranchOp::Lt, BranchOp::Geu] {
            let k = branch_kernel(op);
            let mut expect = 0u32;
            for l in 0..8 {
                expect |= u32::from(scalar::branch_cmp(op, a[l], b[l])) << l;
            }
            assert_eq!((k.full)(&a, &b), expect, "{op:?} full ballot");
            let m = 0b0110_1100;
            let mut expect_masked = 0u32;
            for l in [2usize, 3, 5, 6] {
                expect_masked |= u32::from(scalar::branch_cmp(op, a[l], b[l])) << l;
            }
            assert_eq!((k.masked)(&a, &b, m), expect_masked, "{op:?} masked ballot");
        }
    }

    #[test]
    fn fma_kernel_is_fused_per_lane() {
        let x = 1.0000001f32.to_bits();
        let k = fma_kernel(FmaOp::MAdd);
        let a = [x; 4];
        let b = [x; 4];
        let c = [(-1.0f32).to_bits(); 4];
        let mut dst = [0u32; 4];
        (k.full)(&mut dst, &a, &b, &c);
        let expect = 1.0000001f32.mul_add(1.0000001, -1.0).to_bits();
        assert_eq!(dst, [expect; 4]);
    }

    #[test]
    fn unary_kernels_cover_the_conversion_family() {
        let vals = [2.5f32.to_bits(), (-1.5f32).to_bits(), f32::NAN.to_bits()];
        let mut dst = [0u32; 3];
        (fcvt_w_s_kernel().full)(&mut dst, &vals);
        assert_eq!(dst, [2, (-1i32) as u32, i32::MAX as u32]);
        (fsqrt_kernel().full)(&mut dst, &[4.0f32.to_bits(), 2.25f32.to_bits(), 0]);
        assert_eq!(dst[0], 2.0f32.to_bits());
        assert_eq!(dst[1], 1.5f32.to_bits());
        (fmv_bits_kernel().full)(&mut dst, &[7, 8, 9]);
        assert_eq!(dst, [7, 8, 9]);
    }
}
