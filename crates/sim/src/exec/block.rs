//! Basic-block superinstruction plans: decode-once block traces for the
//! fused row-kernel execute path.
//!
//! At program load the instruction stream is cut into straight-line
//! **basic blocks** at every instruction that can redirect control flow,
//! touch memory, synchronise warps or observe global state (branches,
//! jumps, loads/stores, CSR reads, votes, SIMT mask ops, barriers,
//! traps), and additionally at every *static* branch target, so a fused
//! block is entered only at its first slot. Each block of two or more
//! fusable instructions is pre-resolved once into a [`Block`]: per
//! instruction the `&'static` row kernel, operand row indices and
//! write-back row ([`Step`]), plus the block's **static issue schedule**
//! — for each step the issue offset `dt` and scoreboard release offset
//! `wb_at` relative to block entry, computed by replaying the in-order
//! scoreboard over the block (sources/destination busy times plus the
//! one-issue-per-cycle advance). The schedule is exact whenever the warp
//! enters the block with every block-touched register idle, which is
//! precisely the entry condition [`Core`](crate::core::Core) checks: all
//! external busy times then contribute ≤ 0 relative to entry, so the
//! intra-block hazard recurrence has no free inputs left.
//!
//! Execution stays cycle-exact by construction: fusion changes *host*
//! dispatch (one block walk instead of N scheduler rounds), never the
//! simulated issue cycles, write-back times, counter increments or trace
//! events, all of which are replayed per instruction from the schedule.

use vortex_isa::{AluOp, ExecClass, FpBinOp, Instr};

use crate::config::TimingConfig;
use crate::counters::ClassCounts;
use crate::decoded::DecodedInstr;
use crate::exec::tables;
use crate::exec::{BinKernel, FmaKernel, ImmKernel, UnKernel};
use crate::regfile::REGS_PER_WARP;

/// Sentinel in [`BlockPlan::start_of`]: this slot does not start a fused
/// block.
const NO_BLOCK: u32 = u32::MAX;

/// The pre-resolved execute action of one fused step. Operand fields are
/// dense register-file row indices (integer file at `0..32`, FP file at
/// `32..64`); row 0 is `x0`, permanently zero, so an `x0` source needs no
/// special case.
#[derive(Copy, Clone, Debug)]
pub(crate) enum StepOp {
    /// No architectural write (integer destination `x0`, `fence`). The
    /// step still occupies its issue cycle.
    Nop,
    /// Broadcasts a load-time constant (`lui`, and `auipc` with the
    /// target PC folded in at plan-build time).
    Broadcast {
        v: u32,
    },
    Imm {
        k: &'static ImmKernel,
        s: u16,
        imm: i32,
    },
    Bin {
        k: &'static BinKernel,
        s1: u16,
        s2: u16,
    },
    /// `divu`/`remu`, keeping the per-instruction path's uniform
    /// power-of-two strength reduction (value- and timing-identical to
    /// the general kernel either way).
    DivRem {
        rem: bool,
        k: &'static BinKernel,
        s1: u16,
        s2: u16,
    },
    Un {
        k: &'static UnKernel,
        s: u16,
    },
    Fma {
        k: &'static FmaKernel,
        s1: u16,
        s2: u16,
        s3: u16,
    },
}

/// One instruction of a fused block: its execute action plus its slot in
/// the block's static issue schedule.
#[derive(Copy, Clone, Debug)]
pub(crate) struct Step {
    /// Issue cycle relative to block entry (step 0 issues at 0).
    pub dt: u64,
    /// Scoreboard release of the write-back, relative to block entry
    /// (`dt + latency`; meaningless when `wb == 0`).
    pub wb_at: u64,
    /// Dense destination row (0 = no write-back).
    pub wb: u16,
    /// Functional-unit class (per-step counter record on the partial
    /// path).
    pub class: ExecClass,
    pub op: StepOp,
}

/// One fused basic block: a slice of [`Step`]s plus the pre-merged
/// epilogue data (final scoreboard releases, touched-row set, class
/// counts) the whole-block fast path applies in one pass.
#[derive(Clone, Debug)]
pub(crate) struct Block {
    pub len: u32,
    /// Issue offset of the last step — the block spans issue cycles
    /// `entry ..= entry + dt_last`.
    pub dt_last: u64,
    step_base: u32,
    write_base: u32,
    write_len: u32,
    reg_base: u32,
    reg_len: u32,
    /// Per-class issue counts of the whole block, merged once in the
    /// whole-block epilogue instead of recorded per step.
    pub classes: ClassCounts,
}

/// The per-program table of fused basic blocks, built once at load time
/// next to the decode cache. Arena-backed: all steps, final write-backs
/// and touched-row sets live in three shared vectors indexed by range,
/// so a plan is two pointer-sized loads away from any block's data.
#[derive(Clone, Debug, Default)]
pub(crate) struct BlockPlan {
    /// `start_of[idx]` = fused block id starting at slot `idx`, or
    /// [`NO_BLOCK`].
    start_of: Vec<u32>,
    blocks: Vec<Block>,
    steps: Vec<Step>,
    /// Deduplicated final scoreboard releases `(row, wb_at)` per block.
    writes: Vec<(u16, u64)>,
    /// Deduplicated rows read or written anywhere in the block, for the
    /// hazard entry check when the warp watermark is still busy.
    regs: Vec<u16>,
    /// The complete partition of the instruction stream into cells
    /// `(first_idx, len)`, fused or not — every slot belongs to exactly
    /// one cell (white-box invariant; see the partition property test).
    cells: Vec<(u32, u32)>,
}

impl BlockPlan {
    /// Cuts `code` into basic blocks and compiles every fusable block of
    /// length ≥ 2. `code_base` is the address of slot 0 (needed to fold
    /// `auipc` targets into broadcast constants).
    pub fn build(code: &[DecodedInstr], code_base: u32, timing: &TimingConfig) -> Self {
        let n = code.len();
        let mut plan = BlockPlan { start_of: vec![NO_BLOCK; n], ..Default::default() };
        if n == 0 {
            return plan;
        }

        // Pass 1: cut points. `cut[i]` opens a cell at slot i; a
        // non-fusable instruction is a singleton cell (cut on both
        // sides), and every *static* control-flow target opens a cell so
        // fused blocks are only ever entered at their first slot.
        // (Dynamic targets — `jalr`, `wspawn` — can still land mid-cell;
        // such an entry simply finds no block start and runs per
        // instruction. Correctness never depends on a cut.)
        let mut cut = vec![false; n + 1];
        cut[0] = true;
        cut[n] = true;
        for (idx, di) in code.iter().enumerate() {
            if step_of(di, 0, timing).is_none() {
                cut[idx] = true;
                cut[idx + 1] = true;
            }
            let target = match di.instr {
                Instr::Branch { offset, .. } | Instr::Jal { offset, .. } => Some(offset),
                Instr::Split { offset, .. } => Some(offset),
                _ => None,
            };
            if let Some(offset) = target {
                let t = idx as i64 + i64::from(offset) / 4;
                if i64::from(offset) % 4 == 0 && (0..=n as i64).contains(&t) {
                    cut[t as usize] = true;
                }
            }
        }

        // Pass 2: walk the cells; compile each fusable run of ≥ 2.
        let mut a = 0usize;
        for (b, &is_cut) in cut.iter().enumerate().take(n + 1).skip(1) {
            if !is_cut {
                continue;
            }
            plan.cells.push((a as u32, (b - a) as u32));
            if b - a >= 2 {
                plan.compile_block(code, code_base, timing, a, b);
            }
            a = b;
        }
        plan
    }

    /// Compiles slots `a..b` (all fusable, by construction of the cuts)
    /// into a [`Block`], replaying the in-order scoreboard to fix the
    /// static issue schedule.
    fn compile_block(
        &mut self,
        code: &[DecodedInstr],
        code_base: u32,
        timing: &TimingConfig,
        a: usize,
        b: usize,
    ) {
        let step_base = self.steps.len() as u32;
        let write_base = self.writes.len() as u32;
        let reg_base = self.regs.len() as u32;
        // Relative busy times of every row, as the scoreboard would hold
        // them if the block were entered with all rows idle.
        let mut busy = [0u64; REGS_PER_WARP];
        let mut written: Vec<u16> = Vec::new();
        let mut classes = ClassCounts::default();
        let mut ready = 0u64;
        let mut dt_last = 0u64;
        for (idx, di) in code.iter().enumerate().take(b).skip(a) {
            let pc = code_base.wrapping_add((idx as u32) * 4);
            let (op, lat) = step_of(di, pc, timing).expect("cell contains only fusable steps");
            let m = &di.meta;
            // Issue when the control gap and every operand (sources and
            // the destination, exactly as `earliest_issue_local`) clear.
            let mut t = ready;
            for &s in &m.src {
                t = t.max(busy[s as usize]);
                self.touch(reg_base, s);
            }
            t = t.max(busy[m.dst as usize]);
            self.touch(reg_base, m.dst);
            let wb = if matches!(op, StepOp::Nop) { 0 } else { u16::from(m.dst) };
            let wb_at = t + lat;
            if wb != 0 {
                busy[wb as usize] = wb_at;
                if !written.contains(&wb) {
                    written.push(wb);
                }
            }
            classes.record(m.class);
            dt_last = t;
            ready = t + 1;
            self.steps.push(Step { dt: t, wb_at, wb, class: m.class, op });
        }
        for &r in &written {
            self.writes.push((r, busy[r as usize]));
        }
        self.start_of[a] = self.blocks.len() as u32;
        self.blocks.push(Block {
            len: (b - a) as u32,
            dt_last,
            step_base,
            write_base,
            write_len: self.writes.len() as u32 - write_base,
            reg_base,
            reg_len: self.regs.len() as u32 - reg_base,
            classes,
        });
    }

    /// Adds row `r` to the current block's touched set (row 0 = `x0` has
    /// a permanently-zero scoreboard entry and is skipped).
    fn touch(&mut self, reg_base: u32, r: u8) {
        if r != 0 && !self.regs[reg_base as usize..].contains(&u16::from(r)) {
            self.regs.push(u16::from(r));
        }
    }

    /// The fused block starting exactly at slot `idx`, if any.
    #[inline]
    pub fn fused_at(&self, idx: usize) -> Option<u32> {
        match self.start_of.get(idx) {
            Some(&b) if b != NO_BLOCK => Some(b),
            _ => None,
        }
    }

    #[inline]
    pub fn block(&self, b: u32) -> &Block {
        &self.blocks[b as usize]
    }

    #[inline]
    pub fn steps(&self, blk: &Block) -> &[Step] {
        &self.steps[blk.step_base as usize..(blk.step_base + blk.len) as usize]
    }

    #[inline]
    pub fn writes(&self, blk: &Block) -> &[(u16, u64)] {
        &self.writes[blk.write_base as usize..(blk.write_base + blk.write_len) as usize]
    }

    #[inline]
    pub fn regs(&self, blk: &Block) -> &[u16] {
        &self.regs[blk.reg_base as usize..(blk.reg_base + blk.reg_len) as usize]
    }

    /// The complete cell partition (white-box tests).
    #[cfg(test)]
    pub fn cells(&self) -> &[(u32, u32)] {
        &self.cells
    }

    /// Number of fused blocks (white-box tests).
    #[cfg(test)]
    pub fn fused_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Classifies one instruction: `Some((action, write-back latency))` when
/// it can be a fused step, `None` when it must stay a block boundary.
/// Boundaries are everything that redirects control flow (`branch`,
/// `jal`, `jalr`, `split`/`join`, `tmc`, `wspawn`, `bar`, traps), touches
/// memory (loads/stores contend for the memory port, whose release time
/// moves with *other* warps' issues), or observes global state (`csr`
/// reads `mcycle`/`minstret`, `vote` reads the live ballot).
fn step_of(di: &DecodedInstr, pc: u32, timing: &TimingConfig) -> Option<(StepOp, u64)> {
    let m = &di.meta;
    let int_dst = m.dst != 0;
    let step = match di.instr {
        Instr::Lui { imm, .. } => {
            (if int_dst { StepOp::Broadcast { v: imm as u32 } } else { StepOp::Nop }, timing.alu)
        }
        Instr::Auipc { imm, .. } => (
            if int_dst {
                StepOp::Broadcast { v: pc.wrapping_add(imm as u32) }
            } else {
                StepOp::Nop
            },
            timing.alu,
        ),
        Instr::OpImm { op, imm, .. } => (
            if int_dst {
                StepOp::Imm { k: tables::alu_imm_kernel(op), s: u16::from(m.src[0]), imm }
            } else {
                StepOp::Nop
            },
            timing.alu,
        ),
        Instr::Op { op, .. } => {
            let lat = match m.class {
                ExecClass::Mul => timing.mul,
                ExecClass::Div => timing.div,
                _ => timing.alu,
            };
            let action = if !int_dst {
                StepOp::Nop
            } else if matches!(op, AluOp::Divu | AluOp::Remu) {
                StepOp::DivRem {
                    rem: matches!(op, AluOp::Remu),
                    k: tables::alu_kernel(op),
                    s1: u16::from(m.src[0]),
                    s2: u16::from(m.src[1]),
                }
            } else {
                StepOp::Bin {
                    k: tables::alu_kernel(op),
                    s1: u16::from(m.src[0]),
                    s2: u16::from(m.src[1]),
                }
            };
            (action, lat)
        }
        Instr::Fence => (StepOp::Nop, timing.alu),
        Instr::FpOp { op, .. } => (
            StepOp::Bin {
                k: tables::fp_bin_kernel(op),
                s1: u16::from(m.src[0]),
                s2: u16::from(m.src[1]),
            },
            if matches!(op, FpBinOp::Div) { timing.fdiv } else { timing.fpu },
        ),
        Instr::FpFma { op, .. } => (
            StepOp::Fma {
                k: tables::fma_kernel(op),
                s1: u16::from(m.src[0]),
                s2: u16::from(m.src[1]),
                s3: u16::from(m.src[2]),
            },
            timing.fpu,
        ),
        Instr::FpSqrt { .. } => {
            (StepOp::Un { k: tables::fsqrt_kernel(), s: u16::from(m.src[0]) }, timing.fsqrt)
        }
        Instr::FpCmp { op, .. } => (
            if int_dst {
                StepOp::Bin {
                    k: tables::fp_cmp_kernel(op),
                    s1: u16::from(m.src[0]),
                    s2: u16::from(m.src[1]),
                }
            } else {
                StepOp::Nop
            },
            timing.fpu,
        ),
        Instr::FpCvtToInt { signed, .. } => (
            if int_dst {
                StepOp::Un { k: tables::fcvt_to_int_kernel(signed), s: u16::from(m.src[0]) }
            } else {
                StepOp::Nop
            },
            timing.fpu,
        ),
        Instr::FpCvtFromInt { signed, .. } => (
            StepOp::Un { k: tables::fcvt_from_int_kernel(signed), s: u16::from(m.src[0]) },
            timing.fpu,
        ),
        Instr::FpMvToInt { .. } => (
            if int_dst {
                StepOp::Un { k: tables::fmv_bits_kernel(), s: u16::from(m.src[0]) }
            } else {
                StepOp::Nop
            },
            timing.fpu,
        ),
        Instr::FpMvFromInt { .. } => {
            (StepOp::Un { k: tables::fmv_bits_kernel(), s: u16::from(m.src[0]) }, timing.fpu)
        }
        Instr::FpClass { .. } => (
            if int_dst {
                StepOp::Un { k: tables::fclass_kernel(), s: u16::from(m.src[0]) }
            } else {
                StepOp::Nop
            },
            timing.fpu,
        ),
        // Boundaries: control flow, memory, CSR/vote observation, SIMT
        // mask ops, barriers, traps.
        Instr::Jal { .. }
        | Instr::Jalr { .. }
        | Instr::Branch { .. }
        | Instr::Load { .. }
        | Instr::Store { .. }
        | Instr::Flw { .. }
        | Instr::Fsw { .. }
        | Instr::Csr { .. }
        | Instr::Ecall
        | Instr::Ebreak
        | Instr::Tmc { .. }
        | Instr::Wspawn { .. }
        | Instr::Split { .. }
        | Instr::Join
        | Instr::Bar { .. }
        | Instr::Vote { .. } => return None,
    };
    Some(step)
}

#[cfg(test)]
mod tests {
    use vortex_asm::Assembler;
    use vortex_isa::{fregs, reg};

    use super::*;

    const BASE: u32 = 0x8000_0000;

    fn plan_of(build: impl FnOnce(&mut Assembler)) -> (BlockPlan, Vec<DecodedInstr>) {
        let mut asm = Assembler::new(BASE);
        build(&mut asm);
        let program = asm.assemble().expect("assembles");
        let code: Vec<DecodedInstr> =
            program.instrs().iter().copied().map(DecodedInstr::of).collect();
        let plan = BlockPlan::build(&code, BASE, &TimingConfig::default());
        (plan, code)
    }

    /// Every slot belongs to exactly one cell, in order.
    fn assert_partition(plan: &BlockPlan, n: usize) {
        let mut next = 0u32;
        for &(first, len) in plan.cells() {
            assert_eq!(first, next, "cells must tile the stream without gaps");
            assert!(len >= 1);
            next = first + len;
        }
        assert_eq!(next as usize, n, "cells must cover every slot");
    }

    #[test]
    fn straight_line_alu_is_one_block() {
        let (plan, code) = plan_of(|a| {
            a.li(reg::T0, 5);
            a.addi(reg::T1, reg::T0, 1);
            a.mul(reg::T2, reg::T1, reg::T0);
            a.vx_tmc(reg::ZERO);
        });
        assert_partition(&plan, code.len());
        let b = plan.fused_at(0).expect("block at slot 0");
        let blk = plan.block(b);
        assert_eq!(blk.len, 3);
        assert!(plan.fused_at(1).is_none(), "mid-block slots are not entry points");
        assert!(plan.fused_at(3).is_none(), "tmc is a boundary");
        // Schedule: li@0 (alu, wb@1) → addi hazard on t0 ⇒ @1, wb@2 →
        // mul hazard on t1 ⇒ @2, wb@2+mul.
        let t = TimingConfig::default();
        let steps = plan.steps(blk);
        assert_eq!(steps[0].dt, 0);
        assert_eq!(steps[1].dt, t.alu);
        assert_eq!(steps[2].dt, steps[1].dt + t.alu);
        assert_eq!(steps[2].wb_at, steps[2].dt + t.mul);
        assert_eq!(blk.dt_last, steps[2].dt);
        // Final writes are deduplicated per row.
        let writes = plan.writes(blk);
        assert_eq!(writes.len(), 3);
        assert_eq!(blk.classes.total(), 3);
    }

    #[test]
    fn branch_targets_cut_blocks() {
        let (plan, code) = plan_of(|a| {
            let top = a.label("loop");
            a.li(reg::T0, 0); // 0
            a.li(reg::T1, 10); // 1
            a.bind(top).expect("fresh"); // target → slot 2 must start a cell
            a.addi(reg::T0, reg::T0, 1); // 2
            a.addi(reg::T2, reg::T0, 0); // 3
            a.bne(reg::T0, reg::T1, top); // 4: boundary
            a.vx_tmc(reg::ZERO); // 5
        });
        assert_partition(&plan, code.len());
        let head = plan.fused_at(0).expect("slots 0..2 fuse");
        assert_eq!(plan.block(head).len, 2, "the loop target ends the entry block");
        let body = plan.fused_at(2).expect("loop body fuses");
        assert_eq!(plan.block(body).len, 2, "branch is a boundary");
        assert!(plan.fused_at(4).is_none());
    }

    #[test]
    fn memory_ops_are_singleton_cells() {
        let (plan, code) = plan_of(|a| {
            a.li(reg::S0, 0x1000);
            a.lw(reg::T0, 0, reg::S0);
            a.sw(reg::T0, 4, reg::S0);
            a.vx_tmc(reg::ZERO);
        });
        assert_partition(&plan, code.len());
        // li alone is a 1-cell (no fusion partner), loads/stores/tmc are
        // boundaries: no fused block anywhere.
        assert_eq!(plan.fused_blocks(), 0);
        assert!(code.iter().enumerate().all(|(i, _)| plan.fused_at(i).is_none()));
    }

    #[test]
    fn dst_eq_src_hazard_is_serialised_in_the_schedule() {
        let (plan, _) = plan_of(|a| {
            a.li(reg::T0, 3);
            a.mul(reg::T0, reg::T0, reg::T0); // dst == both srcs
            a.addi(reg::T0, reg::T0, 1); // reads the mul result
            a.vx_tmc(reg::ZERO);
        });
        let t = TimingConfig::default();
        let blk = plan.block(plan.fused_at(0).unwrap());
        let steps = plan.steps(blk);
        assert_eq!(steps[1].dt, t.alu, "mul waits for li's write-back");
        assert_eq!(steps[2].dt, steps[1].dt + t.mul, "addi waits the full mul latency");
        // One written row (t0), released at the *last* write.
        assert_eq!(plan.writes(blk), &[(u16::from(reg::T0.num()), steps[2].wb_at)]);
        assert_eq!(plan.regs(blk), &[u16::from(reg::T0.num())]);
    }

    #[test]
    fn fp_rows_live_in_the_upper_file() {
        let (plan, _) = plan_of(|a| {
            a.fmv_w_x(fregs::FT0, reg::T0);
            a.fadd_s(fregs::FT1, fregs::FT0, fregs::FT0);
            a.vx_tmc(reg::ZERO);
        });
        let blk = plan.block(plan.fused_at(0).unwrap());
        let steps = plan.steps(blk);
        assert_eq!(steps[0].wb, 32 + u16::from(fregs::FT0.num()));
        match steps[1].op {
            StepOp::Bin { s1, s2, .. } => {
                assert_eq!(
                    (s1, s2),
                    (32 + u16::from(fregs::FT0.num()), 32 + u16::from(fregs::FT0.num()))
                );
            }
            ref other => panic!("expected Bin, got {other:?}"),
        }
        let t = TimingConfig::default();
        assert_eq!(steps[1].dt, t.fpu, "fadd waits for the fmv write-back");
    }

    #[test]
    fn x0_destinations_become_nop_steps() {
        let (plan, _) = plan_of(|a| {
            a.li(reg::T0, 1);
            a.add(reg::ZERO, reg::T0, reg::T0); // architectural nop
            a.addi(reg::T1, reg::T0, 2);
            a.vx_tmc(reg::ZERO);
        });
        let blk = plan.block(plan.fused_at(0).unwrap());
        let steps = plan.steps(blk);
        assert!(matches!(steps[1].op, StepOp::Nop));
        assert_eq!(steps[1].wb, 0, "x0 never enters the scoreboard");
        // The nop still costs its issue cycle and stalls on its sources.
        assert_eq!(steps[1].dt, TimingConfig::default().alu);
    }

    /// Block cutting partitions any instruction stream exactly: cells
    /// tile `0..n`, every fused block matches a cell, and every fused
    /// slot is covered by exactly the block that starts its cell.
    #[test]
    fn cutting_partitions_arbitrary_streams() {
        // Deterministic xorshift so failures reproduce.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..64 {
            let len = 1 + (next() % 40) as usize;
            let mut asm = Assembler::new(BASE);
            let end = asm.label("end");
            for _ in 0..len {
                match next() % 8 {
                    0 => asm.li(reg::T0, (next() % 1000) as i32),
                    1 => asm.addi(reg::T1, reg::T0, 7),
                    2 => asm.mul(reg::T2, reg::T1, reg::T0),
                    3 => asm.divu(reg::T3, reg::T2, reg::T1),
                    4 => asm.lw(reg::T4, 0, reg::S0),
                    5 => asm.sw(reg::T4, 0, reg::S0),
                    6 => asm.beq(reg::T0, reg::T1, end),
                    _ => asm.nop(),
                }
            }
            asm.bind(end).expect("fresh");
            asm.vx_tmc(reg::ZERO);
            let program = asm.assemble().expect("assembles");
            let code: Vec<DecodedInstr> =
                program.instrs().iter().copied().map(DecodedInstr::of).collect();
            let plan = BlockPlan::build(&code, BASE, &TimingConfig::default());
            assert_partition(&plan, code.len());
            // Fused blocks coincide with cells of length ≥ 2 made of
            // fusable instructions only, and start_of agrees.
            let mut covered = vec![false; code.len()];
            for &(first, len) in plan.cells() {
                let fusable = (first..first + len)
                    .all(|i| step_of(&code[i as usize], 0, &TimingConfig::default()).is_some());
                let fused = plan.fused_at(first as usize);
                assert_eq!(
                    fused.is_some(),
                    len >= 2 && fusable,
                    "cell ({first},{len}) fusability mismatch"
                );
                if let Some(b) = fused {
                    let blk = plan.block(b);
                    assert_eq!(blk.len, len);
                    for i in first..first + len {
                        assert!(!covered[i as usize], "slot {i} covered twice");
                        covered[i as usize] = true;
                    }
                    for i in first + 1..first + len {
                        assert!(plan.fused_at(i as usize).is_none());
                    }
                }
            }
        }
    }
}
