//! Scalar semantics of every ALU/FPU operation: the single source of
//! truth the per-op row kernels in [`tables`](super::tables) are
//! instantiated from.
//!
//! Each function here takes the *operation* as its first argument; the
//! kernel tables call them with a compile-time-constant op, so the match
//! below constant-folds away and each monomorphic kernel ends up with
//! exactly one operation in its loop body. Everything is `#[inline(always)]`
//! to guarantee that folding — these are two-instruction bodies, not
//! code-size risks.
//!
//! All floating-point semantics are exact IEEE single-precision host
//! operations (`mul_add` for the fused family), which is what keeps cycle
//! results independent of the simulated op order.

use vortex_isa::{AluImmOp, AluOp, BranchOp, FmaOp, FpBinOp, FpCmpOp};

/// Conditional-branch comparison.
#[inline(always)]
pub(crate) fn branch_cmp(op: BranchOp, a: u32, b: u32) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i32) < (b as i32),
        BranchOp::Ge => (a as i32) >= (b as i32),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

/// Register-immediate ALU operation.
#[inline(always)]
pub(crate) fn alu_imm(op: AluImmOp, a: u32, imm: i32) -> u32 {
    match op {
        AluImmOp::Add => a.wrapping_add(imm as u32),
        AluImmOp::Slt => u32::from((a as i32) < imm),
        AluImmOp::Sltu => u32::from(a < imm as u32),
        AluImmOp::Xor => a ^ imm as u32,
        AluImmOp::Or => a | imm as u32,
        AluImmOp::And => a & imm as u32,
        AluImmOp::Sll => a.wrapping_shl(imm as u32),
        AluImmOp::Srl => a.wrapping_shr(imm as u32),
        AluImmOp::Sra => ((a as i32).wrapping_shr(imm as u32)) as u32,
    }
}

/// Register-register ALU operation (including the M extension), with
/// RISC-V division edge-case semantics.
#[inline(always)]
pub(crate) fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
        AluOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
        AluOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: i32::MIN / -1
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
        AluOp::Remu => a.checked_rem(b).unwrap_or(a),
    }
}

/// Two-operand single-precision FP operation, on raw bit patterns.
#[inline(always)]
pub(crate) fn fp_bin(op: FpBinOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    let v = match op {
        FpBinOp::Add => x + y,
        FpBinOp::Sub => x - y,
        FpBinOp::Mul => x * y,
        FpBinOp::Div => x / y,
        FpBinOp::SgnJ => f32::from_bits((a & 0x7FFF_FFFF) | (b & 0x8000_0000)),
        FpBinOp::SgnJN => f32::from_bits((a & 0x7FFF_FFFF) | (!b & 0x8000_0000)),
        FpBinOp::SgnJX => f32::from_bits(a ^ (b & 0x8000_0000)),
        FpBinOp::Min => x.min(y),
        FpBinOp::Max => x.max(y),
    };
    v.to_bits()
}

/// Fused multiply-add family, on raw bit patterns (exact `mul_add`).
#[inline(always)]
pub(crate) fn fma(op: FmaOp, a: u32, b: u32, c: u32) -> u32 {
    let (x, y, z) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(c));
    let v = match op {
        FmaOp::MAdd => x.mul_add(y, z),
        FmaOp::MSub => x.mul_add(y, -z),
        FmaOp::NMSub => (-x).mul_add(y, z),
        FmaOp::NMAdd => (-x).mul_add(y, -z),
    };
    v.to_bits()
}

/// FP comparison producing 0/1 in an integer register.
#[inline(always)]
pub(crate) fn fp_cmp(op: FpCmpOp, a: u32, b: u32) -> u32 {
    let (x, y) = (f32::from_bits(a), f32::from_bits(b));
    u32::from(match op {
        FpCmpOp::Eq => x == y,
        FpCmpOp::Lt => x < y,
        FpCmpOp::Le => x <= y,
    })
}

/// `fcvt.w.s` / `fcvt.wu.s`: float → integer with RISC-V NaN semantics.
#[inline(always)]
pub(crate) fn fcvt_to_int(signed: bool, bits: u32) -> u32 {
    let v = f32::from_bits(bits);
    if signed {
        if v.is_nan() {
            i32::MAX as u32
        } else {
            (v as i32) as u32
        }
    } else if v.is_nan() {
        u32::MAX
    } else {
        v as u32
    }
}

/// `fcvt.s.w` / `fcvt.s.wu`: integer → float.
#[inline(always)]
pub(crate) fn fcvt_from_int(signed: bool, a: u32) -> u32 {
    let v = if signed { a as i32 as f32 } else { a as f32 };
    v.to_bits()
}

/// RISC-V `fclass.s` result mask.
#[inline(always)]
pub(crate) fn fclass(bits: u32) -> u32 {
    use std::num::FpCategory;
    let v = f32::from_bits(bits);
    let neg = v.is_sign_negative();
    match (v.classify(), neg) {
        (FpCategory::Infinite, true) => 1 << 0,
        (FpCategory::Normal, true) => 1 << 1,
        (FpCategory::Subnormal, true) => 1 << 2,
        (FpCategory::Zero, true) => 1 << 3,
        (FpCategory::Zero, false) => 1 << 4,
        (FpCategory::Subnormal, false) => 1 << 5,
        (FpCategory::Normal, false) => 1 << 6,
        (FpCategory::Infinite, false) => 1 << 7,
        (FpCategory::Nan, _) => {
            if bits & 0x0040_0000 != 0 {
                1 << 9 // quiet NaN
            } else {
                1 << 8 // signaling NaN
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics_match_riscv() {
        assert_eq!(alu(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu(AluOp::Sub, 0, 1), u32::MAX);
        assert_eq!(alu(AluOp::Slt, (-1i32) as u32, 0), 1);
        assert_eq!(alu(AluOp::Sltu, (-1i32) as u32, 0), 0);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31), u32::MAX);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(alu(AluOp::Mulhu, u32::MAX, u32::MAX), 0xFFFF_FFFE);
        assert_eq!(alu(AluOp::Mulh, (-1i32) as u32, (-1i32) as u32), 0);
    }

    #[test]
    fn division_edge_cases_follow_spec() {
        // Division by zero.
        assert_eq!(alu(AluOp::Div, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Divu, 7, 0), u32::MAX);
        assert_eq!(alu(AluOp::Rem, 7, 0), 7);
        assert_eq!(alu(AluOp::Remu, 7, 0), 7);
        // Signed overflow.
        assert_eq!(alu(AluOp::Div, 0x8000_0000, u32::MAX), 0x8000_0000);
        assert_eq!(alu(AluOp::Rem, 0x8000_0000, u32::MAX), 0);
    }

    #[test]
    fn sign_injection() {
        let bits = |v: f32| v.to_bits();
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJ, bits(1.5), bits(-2.0))), -1.5);
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJN, bits(1.5), bits(-2.0))), 1.5);
        assert_eq!(f32::from_bits(fp_bin(FpBinOp::SgnJX, bits(-1.5), bits(-2.0))), 1.5);
    }

    #[test]
    fn fclass_categories() {
        assert_eq!(fclass(f32::NEG_INFINITY.to_bits()), 1 << 0);
        assert_eq!(fclass((-1.0f32).to_bits()), 1 << 1);
        assert_eq!(fclass((-0.0f32).to_bits()), 1 << 3);
        assert_eq!(fclass(0.0f32.to_bits()), 1 << 4);
        assert_eq!(fclass(2.5f32.to_bits()), 1 << 6);
        assert_eq!(fclass(f32::INFINITY.to_bits()), 1 << 7);
        assert_eq!(fclass(f32::NAN.to_bits()), 1 << 9);
        // Signaling NaN (quiet bit clear).
        assert_eq!(fclass(0x7F80_0001), 1 << 8);
    }

    #[test]
    fn shift_immediates_mask_amount() {
        assert_eq!(alu_imm(AluImmOp::Sll, 1, 4), 16);
        assert_eq!(alu_imm(AluImmOp::Sra, (-16i32) as u32, 2), (-4i32) as u32);
    }

    #[test]
    fn fma_is_fused() {
        // (1+ε)·(1−ε) = 1 − ε² rounds to exactly 1.0 in f32, so the
        // unfused x*y+z is 0.0 while the fused product keeps −ε².
        let (x, y, z) = (1.0 + f32::EPSILON, 1.0 - f32::EPSILON, -1.0f32);
        let fused = x.mul_add(y, z);
        assert_eq!(f32::from_bits(fma(FmaOp::MAdd, x.to_bits(), y.to_bits(), z.to_bits())), fused);
        assert_ne!(fused, x * y + z, "operands chosen to expose fusion");
        assert_eq!(x * y + z, 0.0);
    }

    #[test]
    fn conversions_follow_riscv_nan_rules() {
        assert_eq!(fcvt_to_int(true, f32::NAN.to_bits()), i32::MAX as u32);
        assert_eq!(fcvt_to_int(false, f32::NAN.to_bits()), u32::MAX);
        assert_eq!(fcvt_to_int(true, (-2.75f32).to_bits()), (-2i32) as u32);
        assert_eq!(fcvt_from_int(true, (-1i32) as u32), (-1.0f32).to_bits());
        assert_eq!(fcvt_from_int(false, u32::MAX), (u32::MAX as f32).to_bits());
    }

    #[test]
    fn branch_comparisons_cover_signedness() {
        assert!(branch_cmp(BranchOp::Lt, (-1i32) as u32, 0));
        assert!(!branch_cmp(BranchOp::Ltu, (-1i32) as u32, 0));
        assert!(branch_cmp(BranchOp::Geu, u32::MAX, 1));
        assert!(branch_cmp(BranchOp::Eq, 7, 7));
    }

    #[test]
    fn fp_cmp_handles_nan() {
        let nan = f32::NAN.to_bits();
        assert_eq!(fp_cmp(FpCmpOp::Eq, nan, nan), 0);
        assert_eq!(fp_cmp(FpCmpOp::Lt, nan, 0), 0);
        assert_eq!(fp_cmp(FpCmpOp::Le, 0, 0x3F80_0000), 1);
    }
}
