//! Full-mask lane-address pattern classification for the word-access
//! fast paths.
//!
//! Broadcast (every lane reads one uniform address — the
//! dispatch-block/argument idiom) and unit-stride (lane-consecutive words
//! — the streaming idiom) together cover the overwhelming majority of
//! full-mask SIMT word accesses; both collapse 32 per-lane page walks
//! into one bulk access. This classifier is the single copy of the
//! pattern detection that used to be duplicated across the
//! Load/Flw/Store/Fsw arms of `Core::issue`.

/// The detected shape of a full-mask lane-address row.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Span {
    /// Every lane addresses the same word (`addr0`, alignment **not yet**
    /// checked — the caller faults on a misaligned broadcast exactly like
    /// the general path, whose first checked lane is lane 0).
    Broadcast { addr0: u32 },
    /// Lane `l` addresses `addr0 + 4·l`; the whole span `addr0..=last` is
    /// word-aligned and does not wrap the address space.
    UnitStride { addr0: u32, last: u32 },
    /// Neither shape: serve lane by lane.
    Irregular,
}

/// Classifies the lane base-register row of a full-mask word access.
///
/// `base` must be exactly the warp's live lane rows (`threads` entries).
/// Single-lane warps are reported [`Irregular`](Span::Irregular): the
/// general path is already one access, and the broadcast/unit-stride
/// distinction is meaningless.
///
/// The check order mirrors the four former inline copies bit-for-bit:
/// broadcast is detected *before* any alignment test (a misaligned
/// broadcast faults rather than falling through), while unit-stride
/// requires alignment and no wrap-around as part of the pattern itself
/// (a misaligned stride falls back to the lane loop, which faults on
/// lane 0 with the identical error).
pub(crate) fn classify(base: &[u32], offset: i32) -> Span {
    let n = base.len();
    if n < 2 {
        return Span::Irregular;
    }
    let addr0 = base[0].wrapping_add(offset as u32);
    if base[1..].iter().all(|&b| b == base[0]) {
        return Span::Broadcast { addr0 };
    }
    if addr0 & 3 == 0
        && addr0.checked_add(4 * (n as u32 - 1)).is_some()
        && base[1..].iter().enumerate().all(|(i, &b)| b == base[0].wrapping_add(4 * (i as u32 + 1)))
    {
        return Span::UnitStride { addr0, last: addr0 + 4 * (n as u32 - 1) };
    }
    Span::Irregular
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_rows_are_detected_before_alignment() {
        assert_eq!(classify(&[0x1000; 8], 4), Span::Broadcast { addr0: 0x1004 });
        // Misaligned broadcast still classifies (the caller faults).
        assert_eq!(classify(&[0x1001; 4], 0), Span::Broadcast { addr0: 0x1001 });
    }

    #[test]
    fn unit_stride_requires_alignment_and_no_wrap() {
        assert_eq!(
            classify(&[0x2000, 0x2004, 0x2008, 0x200C], 8),
            Span::UnitStride { addr0: 0x2008, last: 0x2014 }
        );
        // Misaligned stride falls back to the lane loop.
        assert_eq!(classify(&[0x2001, 0x2005, 0x2009, 0x200D], 0), Span::Irregular);
        // Wrap-around at the top of the address space falls back.
        assert_eq!(
            classify(&[0xFFFF_FFF8, 0xFFFF_FFFC, 0x0000_0000, 0x0000_0004], 0),
            Span::Irregular
        );
    }

    #[test]
    fn irregular_patterns_and_single_lanes_fall_through() {
        assert_eq!(classify(&[0x3000, 0x3008, 0x3010, 0x3018], 0), Span::Irregular);
        assert_eq!(classify(&[0x3000], 0), Span::Irregular);
        assert_eq!(classify(&[0x3000, 0x3004, 0x3008, 0x300A], 0), Span::Irregular);
    }
}
