//! The per-op specialised execute engine.
//!
//! The interpreter used to run the big ALU/FPU arms of `Core::issue`
//! through one generic row loop per arm, matching on the operation *per
//! lane* and relying on LLVM loop unswitching to hoist the match. This
//! module replaces that with **op-indexed dispatch into monomorphic slice
//! kernels**: each execute arm resolves the operation held in the
//! [`DecodedInstr`](crate::decoded::DecodedInstr) cache to a `&'static`
//! kernel — a pair of row loops (branch-free full-mask, set-bit masked)
//! compiled for exactly one operation — through a per-family dispatch
//! table ([`tables`]), then pays one indirect call per instruction where
//! it used to pay one operation match per lane. (Caching the kernel
//! pointer *inside* the decode entry was tried and measured a net loss:
//! it grows every `DecodedInstr` and per-warp next-issue slot by 16
//! bytes, and the table resolve is a single load the branch predictor
//! eats.)
//!
//! Layout:
//!
//! * [`scalar`] — the scalar semantics of every operation (single source
//!   of truth, RISC-V edge cases included);
//! * [`tables`] — the generic row loops and the per-op kernel statics;
//! * [`span`] — the full-mask address-pattern classifier shared by the
//!   broadcast/unit-stride memory fast paths.
//!
//! Everything is timing-neutral by construction: kernels compute the same
//! values in the same lane order as the loops they replaced, and the
//! whole module is gated by the bit-identity suite
//! (`tests/cycle_golden.rs`, the 180-run `cycle_dump` grid).

pub(crate) mod block;
pub(crate) mod scalar;
pub(crate) mod span;
pub(crate) mod tables;

/// A two-source row kernel (`dst[l] = op(a[l], b[l])`).
#[derive(Debug)]
pub(crate) struct BinKernel {
    /// Branch-free loop over the whole destination row.
    pub full: fn(&mut [u32], &[u32], &[u32]),
    /// Set-bit walk over the active lanes of the thread mask.
    pub masked: fn(&mut [u32], &[u32], &[u32], u32),
}

/// A source+immediate row kernel (`dst[l] = op(a[l], imm)`).
#[derive(Debug)]
pub(crate) struct ImmKernel {
    pub full: fn(&mut [u32], &[u32], i32),
    pub masked: fn(&mut [u32], &[u32], i32, u32),
}

/// Full-mask loop of a three-source row kernel.
pub(crate) type FmaFull = fn(&mut [u32], &[u32], &[u32], &[u32]);
/// Masked loop of a three-source row kernel.
pub(crate) type FmaMasked = fn(&mut [u32], &[u32], &[u32], &[u32], u32);

/// A three-source row kernel (the fused multiply-add family).
#[derive(Debug)]
pub(crate) struct FmaKernel {
    pub full: FmaFull,
    pub masked: FmaMasked,
}

/// A one-source row kernel (sqrt, conversions, moves, classify).
#[derive(Debug)]
pub(crate) struct UnKernel {
    pub full: fn(&mut [u32], &[u32]),
    pub masked: fn(&mut [u32], &[u32], u32),
}

/// A two-source ballot kernel (`ballot |= op(a[l], b[l]) << l`), used by
/// the warp-uniform branch check.
#[derive(Debug)]
pub(crate) struct CmpKernel {
    pub full: fn(&[u32], &[u32]) -> u32,
    pub masked: fn(&[u32], &[u32], u32) -> u32,
}

#[cfg(test)]
mod tests {
    use vortex_isa::AluOp;

    use super::tables;

    #[test]
    fn dispatch_is_per_operation_not_per_family() {
        let ka = tables::alu_kernel(AluOp::Add);
        let ks = tables::alu_kernel(AluOp::Sub);
        assert!(!std::ptr::eq(ka, ks), "distinct ops must get distinct kernels");
        let (mut da, mut ds) = ([0u32; 4], [0u32; 4]);
        (ka.full)(&mut da, &[10, 10, 10, 10], &[3, 3, 3, 3]);
        (ks.full)(&mut ds, &[10, 10, 10, 10], &[3, 3, 3, 3]);
        assert_eq!(da, [13; 4]);
        assert_eq!(ds, [7; 4]);
    }

    #[test]
    fn signedness_helpers_route_to_distinct_kernels() {
        assert!(!std::ptr::eq(tables::fcvt_to_int_kernel(true), tables::fcvt_to_int_kernel(false)));
        assert!(!std::ptr::eq(
            tables::fcvt_from_int_kernel(true),
            tables::fcvt_from_int_kernel(false)
        ));
    }
}
