//! The multi-core device and its event-driven run loop.

use vortex_asm::Program;
use vortex_mem::{Cycle, MainMemory, MemStats, MemSystem};

use crate::cluster::Clusters;
use crate::config::DeviceConfig;
use crate::core::{Core, CoreCtx, CoreOutcome};
use crate::counters::DeviceCounters;
use crate::decoded::DecodedInstr;
use crate::error::SimError;
use crate::exec::block::BlockPlan;
use crate::trace_api::{LaunchRecord, NullSink, ReplayCtx, ReplayCursor, TraceSink};

/// How much state the last [`Device::reset`] actually swept — the
/// observable half of the O(touched-state) reset contract: a reset after
/// a 1-core launch on a 16-core device must report one core and one L1,
/// not the full topology.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ResetWork {
    /// Cores whose scheduling state was actually cleared (cores never
    /// started since the previous reset are skipped).
    pub cores: usize,
    /// L1 caches whose ways were actually swept (caches that served no
    /// access since the previous reset are skipped).
    pub l1_caches: usize,
}

/// A complete Vortex-like GPGPU device.
///
/// The device is driven by a host runtime (see `vortex-core`): load a
/// program once, then for each kernel call activate warp 0 of the
/// participating cores with [`start_warp`](Device::start_warp) and
/// [`run`](Device::run) to completion. The cycle counter is monotonic
/// across runs, so multi-call launches (the paper's `lws < gws/hp` regime)
/// accumulate time naturally; host-side dispatch overhead is modelled with
/// [`advance_time`](Device::advance_time).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    cores: Vec<Core>,
    mem: MainMemory,
    memsys: MemSystem,
    /// The loaded program, pre-decoded: each slot pairs the instruction
    /// with its static metadata (operand scoreboard indices,
    /// functional-unit class, control/memory flags), derived once here
    /// instead of being re-matched on every issue.
    code: Vec<DecodedInstr>,
    /// The raw word image of the loaded program, cached at
    /// [`load_program`](Device::load_program) time so [`reset`](Device::reset)
    /// re-materialises it with one bulk copy instead of re-encoding every
    /// instruction.
    code_words: Vec<u32>,
    code_base: u32,
    /// The program's fused basic-block plan, compiled next to the decode
    /// cache at [`load_program`](Device::load_program) time (see
    /// [`BlockPlan`]).
    blocks: BlockPlan,
    /// Whether the fused block dispatch path is used. On by default;
    /// `VORTEX_BLOCK_FUSION=0` (or `off`) disables it at construction,
    /// and [`set_block_fusion`](Device::set_block_fusion) flips it per
    /// device — cycle results are bit-identical either way (the A/B
    /// switch exists for the determinism gate and perf probes).
    block_fusion: bool,
    /// Work done by the most recent [`reset`](Device::reset).
    last_reset_work: ResetWork,
    cycle: Cycle,
    horizon: Cycle,
    counters: DeviceCounters,
    /// The cluster-grouped scheduler state: compact ascending
    /// scheduled-core / next-event arrays plus a cached per-cluster
    /// minimum, so a scheduling round scans one entry per live cluster
    /// and descends into only the segments holding the earliest event. The
    /// structure is *persistent*: [`start_warp`](Device::start_warp) and
    /// friends insert cores as the host activates them and the run loop
    /// removes cores as they drain, so entering a run is O(live cores) —
    /// an idle core costs zero bytes touched, whatever the topology. See
    /// [`cluster`](crate::cluster) for the layout and invariants.
    clusters: Clusters,
    /// Cores started (touched) since the last [`reset`](Device::reset),
    /// in first-touch order — the O(touched) reset walks exactly this
    /// list instead of scanning the topology for `touched` flags.
    started: Vec<usize>,
}

impl Device {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates a hardware limit (see
    /// [`DeviceConfig::validate`]).
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        Device {
            cores: (0..config.cores).map(|i| Core::new(i, config.warps, config.threads)).collect(),
            mem: MainMemory::new(),
            memsys: MemSystem::new(config.cores, config.mem),
            code: Vec::new(),
            code_words: Vec::new(),
            code_base: 0,
            blocks: BlockPlan::default(),
            block_fusion: !matches!(
                std::env::var("VORTEX_BLOCK_FUSION").as_deref(),
                Ok("0") | Ok("off")
            ),
            last_reset_work: ResetWork::default(),
            cycle: 0,
            horizon: 0,
            counters: DeviceCounters::default(),
            clusters: Clusters::new(config.cores, config.cores_per_cluster),
            started: Vec::new(),
            config,
        }
    }

    /// Registers a host-side activation of `core`: first-touch cores join
    /// the O(touched) reset list, and the core joins its cluster's
    /// active-core list (idempotent for already-scheduled cores).
    fn note_activation(&mut self, core: usize) {
        if !self.cores[core].is_touched() {
            self.started.push(core);
        }
        self.clusters.schedule(core);
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Loads a program image (instructions become fetchable, and the raw
    /// words are also written to main memory at the program's base).
    pub fn load_program(&mut self, program: &Program) {
        self.code = program.instrs().iter().copied().map(DecodedInstr::of).collect();
        self.code_words = program.words().to_vec();
        self.code_base = program.entry();
        self.blocks = BlockPlan::build(&self.code, self.code_base, &self.config.timing);
        self.mem.write_u32_slice(program.entry(), program.words());
    }

    /// Enables or disables the fused block dispatch path (the in-process
    /// A/B switch; cycle results are bit-identical either way).
    pub fn set_block_fusion(&mut self, on: bool) {
        self.block_fusion = on;
    }

    /// Whether the fused block dispatch path is enabled.
    pub fn block_fusion(&self) -> bool {
        self.block_fusion
    }

    /// How much state the most recent [`reset`](Device::reset) actually
    /// swept (the O(touched-state) reset contract, white-box testable).
    pub fn last_reset_work(&self) -> ResetWork {
        self.last_reset_work
    }

    /// Read access to architectural memory (host side).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Write access to architectural memory (host side).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Advances time without executing anything — models host-side
    /// overhead such as kernel dispatch.
    pub fn advance_time(&mut self, cycles: Cycle) {
        self.cycle += cycles;
    }

    /// Activates warp 0 of `core` at `pc` with a full thread mask,
    /// becoming runnable at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn start_warp(&mut self, core: usize, pc: u32) {
        let now = self.cycle;
        self.note_activation(core);
        self.cores[core].start_warp(0, pc, now);
    }

    /// Activates warp 0 of every core in `cores` at `pc` — the batched
    /// form of [`start_warp`](Device::start_warp) a precompiled launch
    /// plan uses to start its whole warp-0 set in one call.
    ///
    /// # Panics
    ///
    /// Panics if any core id is out of range.
    pub fn start_warps(&mut self, cores: &[usize], pc: u32) {
        let now = self.cycle;
        for &core in cores {
            self.note_activation(core);
            self.cores[core].start_warp(0, pc, now);
        }
    }

    /// Activates an arbitrary warp (for white-box tests).
    ///
    /// # Panics
    ///
    /// Panics if `core` or `warp` is out of range.
    pub fn start_warp_at(&mut self, core: usize, warp: usize, pc: u32) {
        let now = self.cycle;
        self.note_activation(core);
        self.cores[core].start_warp(warp, pc, now);
    }

    /// Whether every warp of every core has halted. O(live cores): a
    /// core outside the scheduler's active set cannot have an active warp
    /// (activation always passes through [`start_warp`](Device::start_warp)).
    pub fn all_idle(&self) -> bool {
        self.clusters.order().iter().all(|&c| !self.cores[c].any_active())
    }

    /// Number of clusters currently containing at least one live core
    /// (the activity measure the run loop's cost is proportional to).
    pub fn live_clusters(&self) -> usize {
        self.clusters.live_clusters()
    }

    /// Core ids in `cluster` currently holding live warps, ascending.
    /// Because the scheduled set is kept sorted, each cluster's members
    /// form a contiguous segment of it — this is a sub-slice, not a copy.
    pub fn cluster_active_cores(&self, cluster: usize) -> &[usize] {
        self.clusters.active_in(cluster)
    }

    /// Runs until all warps halt, the cycle budget is exhausted, or a
    /// simulation error is detected. Returns the finish time (including
    /// memory drain).
    ///
    /// An untraced run (`trace = None`) dispatches to the monomorphised
    /// [`run_untraced`](Device::run_untraced) fast path automatically, so
    /// callers holding a `dyn` option pay virtual dispatch only when a
    /// sink is actually attached.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] describing the first fatal condition: an
    /// execution-model violation, a trap, a barrier deadlock, or
    /// [`SimError::CycleLimit`] when `limit` is reached.
    pub fn run<'a, 'b>(
        &mut self,
        limit: Cycle,
        trace: Option<&'a mut (dyn TraceSink + 'b)>,
    ) -> Result<Cycle, SimError> {
        match trace {
            Some(sink) => self.run_with(limit, Some(sink)),
            None => self.run_untraced(limit),
        }
    }

    /// [`run`](Device::run) without a trace sink, monomorphised against
    /// [`NullSink`] — the per-issue trace hook compiles away entirely.
    /// This is the path the 450-configuration campaigns take.
    ///
    /// # Errors
    ///
    /// As for [`run`](Device::run).
    pub fn run_untraced(&mut self, limit: Cycle) -> Result<Cycle, SimError> {
        self.run_with::<NullSink>(limit, None)
    }

    /// [`run`](Device::run), generic over the trace sink type.
    ///
    /// # Errors
    ///
    /// As for [`run`](Device::run).
    pub fn run_with<S: TraceSink + ?Sized>(
        &mut self,
        limit: Cycle,
        trace: Option<&mut S>,
    ) -> Result<Cycle, SimError> {
        self.run_inner(limit, trace, None)
    }

    /// [`run`](Device::run) in **replay** mode: every value-dependent
    /// outcome (control transfers, barrier operands, memory address sets)
    /// is consumed from `rec` — recorded by a [`TraceRecorder`] over the
    /// same launch — instead of executed, while scheduling, hazards and
    /// memory-system timing run unchanged, so cycles and counters are
    /// bit-identical to execute mode. Register and memory *values* are
    /// not maintained; only timing-visible state is.
    ///
    /// `cursor` tracks per-warp stream positions across the run and is
    /// owned by the caller so a multi-phase kernel can validate full
    /// consumption (see [`LaunchRecord::leftover`]).
    ///
    /// [`TraceRecorder`]: crate::TraceRecorder
    ///
    /// # Errors
    ///
    /// As for [`run`](Device::run), plus [`SimError::ReplayDiverged`]
    /// when the run needs a record the trace does not hold.
    pub fn run_replay<S: TraceSink + ?Sized>(
        &mut self,
        limit: Cycle,
        trace: Option<&mut S>,
        rec: &LaunchRecord,
        cursor: &mut ReplayCursor,
    ) -> Result<Cycle, SimError> {
        let replay = ReplayCtx::new(rec, cursor);
        self.run_inner(limit, trace, Some(replay))
    }

    fn run_inner<S: TraceSink + ?Sized>(
        &mut self,
        limit: Cycle,
        mut trace: Option<&mut S>,
        replay: Option<ReplayCtx<'_>>,
    ) -> Result<Cycle, SimError> {
        // A recording sink opens one launch record per device run (the
        // runtime calls `run` exactly once per launch).
        if let Some(sink) = trace.as_mut() {
            if sink.wants_warp_events() {
                sink.on_launch_begin();
            }
        }
        let Device {
            config,
            cores,
            mem,
            memsys,
            code,
            code_words: _,
            code_base,
            blocks,
            block_fusion,
            last_reset_work: _,
            cycle,
            horizon,
            counters,
            clusters,
            started: _,
        } = self;

        // One pending event per scheduled core, in a compact array
        // scanned with a vectorisable min pass instead of a binary heap.
        // The heap survived two calendar-queue prototypes (ROADMAP item
        // c, see README "PR2 results"), but it charged every *core-cycle*
        // of a lockstep many-core run one pop+push sift pair; a
        // contiguous `u64` min scan per scheduling round costs less than
        // one sift, and the round still hands each due core a
        // conservative-lookahead window (see [`Core::run_until`]). Unlike
        // the PR 2 wake-slot table, the scan is per *round* (window), not
        // per simulated cycle, so desynchronised runs do not degrade.
        //
        // The scheduled set is maintained *incrementally* by the
        // `start_warp*` entry points and the drain removals below (see
        // [`Clusters`]): entering a run marks the already-known live
        // cores due now in O(live), with no per-entry topology scan — a
        // 2-core launch on a 256-core device pays for 2 entries, and an
        // idle core costs zero bytes touched. The arrays stay ascending
        // by core id, so per-cluster active lists are contiguous segments
        // of the same scan. Cores cannot *become* active mid-run (wspawn
        // is core-local), and a core that drains to idle is removed in
        // place, so rounds of a shrinking launch keep getting cheaper.
        clusters.begin_run(*cycle);

        // One context for the whole run: it borrows device state disjoint
        // from `cores`, so it does not need rebuilding per step.
        let line_bytes = memsys.line_bytes();
        let mut ctx = CoreCtx {
            code,
            code_base: *code_base,
            mem: &mut *mem,
            memsys: &mut *memsys,
            timing: &config.timing,
            num_cores: config.cores,
            ipdom_depth: config.ipdom_depth,
            counters: &mut *counters,
            trace,
            horizon: &mut *horizon,
            line_bytes,
            blocks,
            fuse: *block_fusion,
            replay,
        };

        // Conservative-lookahead event loop: find the earliest-due cores
        // and let each simulate up to the next *other* core's event time
        // in one call — no other core can act inside its window, so the
        // partition into windows is observationally irrelevant; what is
        // pinned is the global `(cycle, core)` order of simulated
        // actions, and the scan visits same-cycle cores in ascending id
        // order, exactly as the heap's tie-break did. A solo due core
        // (always the case on single-core devices, and the common case
        // once many-core runs desynchronise) gets the full window to the
        // runner-up event; same-cycle peers each get one cycle.
        //
        // The scan is *hierarchical*: a first pass walks one cached
        // minimum per live cluster segment, and only the segments that
        // can hold the earliest event are descended into. Desynchronised
        // rounds of a 256-core device clustered 16-per-cluster touch ~16
        // segment minima plus one 16-entry segment instead of 256 event
        // entries; on a flat device (one core per segment) the first
        // pass *is* the old flat scan. Segments sit back to back in
        // ascending core-id order, so the hierarchical walk visits cores
        // in exactly the flat scan's order — ties still resolve
        // ascending by core id for every `cores_per_cluster`, which the
        // clustered-vs-flat cycle_dump gate in CI pins.
        loop {
            // Pass 1 over the cached segment minima: earliest event, its
            // segment, how many segments share it, and the best other
            // segment's minimum (the cross-segment runner-up).
            let mut t = crate::warp::NEVER;
            let mut first_seg = 0usize;
            let mut segs_due = 0usize;
            let mut seg_second = crate::warp::NEVER;
            for (s, &m) in clusters.seg_min().iter().enumerate() {
                if m < t {
                    seg_second = t;
                    t = m;
                    first_seg = s;
                    segs_due = 1;
                } else if m == t && m != crate::warp::NEVER {
                    segs_due += 1;
                } else if m < seg_second {
                    seg_second = m;
                }
            }
            if t == crate::warp::NEVER {
                break;
            }
            if t > limit {
                return Err(SimError::CycleLimit { limit });
            }
            if segs_due == 1 {
                // Pass 2 over the single candidate segment: position of
                // its first due core, how many are due, and the best
                // other in-segment time (the in-segment runner-up).
                let (lo, hi) = clusters.seg_bounds(first_seg);
                let mut first = lo;
                let mut due = 0usize;
                let mut runner = crate::warp::NEVER;
                for pos in lo..hi {
                    let at = clusters.due()[pos];
                    if at == t {
                        if due == 0 {
                            first = pos;
                        }
                        due += 1;
                    } else if at < runner {
                        runner = at;
                    }
                }
                if due == 1 {
                    // Solo core device-wide: its window runs to the
                    // global runner-up = min(in-segment runner-up, best
                    // other segment). The segment minimum updates in
                    // O(1): every other in-segment entry is ≥ `runner`.
                    let cid = clusters.order()[first];
                    let window = runner.min(seg_second).min(limit.saturating_add(1));
                    match cores[cid].run_until(t, window, cycle, &mut ctx)? {
                        CoreOutcome::Next(next) => {
                            clusters.set_due_with_min(first_seg, first, next, runner)
                        }
                        CoreOutcome::Idle => clusters.remove_at(first),
                    }
                } else {
                    // Lockstep within one segment: each due core gets one
                    // cycle, ascending by position; the segment minimum
                    // is recomputed once after the pass.
                    let owner = clusters.seg_cluster_id(first_seg);
                    let mut pos = first;
                    while first_seg < clusters.live_clusters()
                        && clusters.seg_cluster_id(first_seg) == owner
                        && pos < clusters.seg_bounds(first_seg).1
                    {
                        if clusters.due()[pos] != t {
                            pos += 1;
                            continue;
                        }
                        let cid = clusters.order()[pos];
                        match cores[cid].run_until(t, t + 1, cycle, &mut ctx)? {
                            CoreOutcome::Next(next) => {
                                clusters.set_due(pos, next);
                                pos += 1;
                            }
                            CoreOutcome::Idle => clusters.remove_at(pos),
                        }
                    }
                    if first_seg < clusters.live_clusters()
                        && clusters.seg_cluster_id(first_seg) == owner
                    {
                        clusters.refresh_seg(first_seg);
                    }
                }
            } else {
                // Several segments share the minimum: walk them in
                // ascending cluster order, and within each the due cores
                // in ascending position — the flat scan's exact order.
                // Draining a segment empty removes it and shifts later
                // segments down, so the index only advances when the
                // segment under it survives.
                let mut s = 0usize;
                while s < clusters.live_clusters() {
                    if clusters.seg_min()[s] != t {
                        s += 1;
                        continue;
                    }
                    let owner = clusters.seg_cluster_id(s);
                    let mut pos = clusters.seg_bounds(s).0;
                    while s < clusters.live_clusters()
                        && clusters.seg_cluster_id(s) == owner
                        && pos < clusters.seg_bounds(s).1
                    {
                        if clusters.due()[pos] != t {
                            pos += 1;
                            continue;
                        }
                        let cid = clusters.order()[pos];
                        match cores[cid].run_until(t, t + 1, cycle, &mut ctx)? {
                            CoreOutcome::Next(next) => {
                                clusters.set_due(pos, next);
                                pos += 1;
                            }
                            CoreOutcome::Idle => clusters.remove_at(pos),
                        }
                    }
                    if s < clusters.live_clusters() && clusters.seg_cluster_id(s) == owner {
                        clusters.refresh_seg(s);
                        s += 1;
                    }
                }
            }
        }

        // Account for the final issue plus any in-flight memory traffic.
        // (`ctx` borrows `cycle` and `horizon` mutably; end its scope.)
        let _ = ctx;
        *cycle = (*cycle + 1).max(*horizon);
        counters.finish_cycle = *cycle;
        Ok(*cycle)
    }

    /// Accumulated performance counters (monotonic across runs).
    pub fn counters(&self) -> &DeviceCounters {
        &self.counters
    }

    /// Memory hierarchy statistics (monotonic across runs).
    pub fn mem_stats(&self) -> MemStats {
        self.memsys.stats()
    }

    /// Device-wide SIMT memory-port counters `(accesses, stall_slots)`
    /// since the last reset — raw sums, exact to merge across shards.
    pub fn port_totals(&self) -> (u64, u64) {
        self.memsys.port_totals()
    }

    /// Per-cluster memory-port counters `(accesses, stall_slots)`,
    /// indexed by cluster id. Aggregated by walking only the cores that
    /// served traffic, so the cost is O(touched), not O(topology).
    pub fn cluster_port_counters(&self) -> Vec<(u64, u64)> {
        let mut out = vec![(0u64, 0u64); self.config.num_clusters()];
        for &core in self.memsys.touched_cores() {
            let (accesses, stalls) = self.memsys.port_counters(core);
            let k = self.config.cluster_of(core);
            out[k].0 += accesses;
            out[k].1 += stalls;
        }
        out
    }

    /// DRAM bandwidth utilisation over the elapsed simulation time.
    pub fn dram_utilization(&self) -> f64 {
        self.memsys.dram_utilization(self.cycle)
    }

    /// Full reset: halts warps, clears memory contents, timing state,
    /// counters and the clock. The loaded program is kept and its image is
    /// re-materialised from the words cached at load time — no
    /// re-encoding, no reallocation of the memory spine — which makes a
    /// reused device as cheap as the run it hosts.
    pub fn reset(&mut self) {
        let mut work = ResetWork::default();
        // Walk the first-touch list, not the topology: cores never
        // started since the previous reset are not visited at all.
        for &cid in &self.started {
            if self.cores[cid].reset() {
                work.cores += 1;
            }
        }
        self.started.clear();
        self.clusters.clear();
        self.mem.clear();
        work.l1_caches = self.memsys.reset();
        self.last_reset_work = work;
        self.cycle = 0;
        self.horizon = 0;
        self.counters = DeviceCounters::default();
        self.mem.write_u32_slice(self.code_base, &self.code_words);
    }

    /// Direct read of a warp's architectural state (white-box testing and
    /// trace tooling).
    pub fn warp(&self, core: usize, warp: usize) -> &crate::warp::WarpState {
        &self.cores[core].warps[warp]
    }
}
