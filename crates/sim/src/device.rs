//! The multi-core device and its event-driven run loop.

use vortex_asm::Program;
use vortex_mem::{Cycle, MainMemory, MemStats, MemSystem};

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::config::DeviceConfig;
use crate::core::{Core, CoreCtx, CoreOutcome};
use crate::decoded::DecodedInstr;
use crate::counters::DeviceCounters;
use crate::error::SimError;
use crate::trace_api::{NullSink, TraceSink};

/// A complete Vortex-like GPGPU device.
///
/// The device is driven by a host runtime (see `vortex-core`): load a
/// program once, then for each kernel call activate warp 0 of the
/// participating cores with [`start_warp`](Device::start_warp) and
/// [`run`](Device::run) to completion. The cycle counter is monotonic
/// across runs, so multi-call launches (the paper's `lws < gws/hp` regime)
/// accumulate time naturally; host-side dispatch overhead is modelled with
/// [`advance_time`](Device::advance_time).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Device {
    config: DeviceConfig,
    cores: Vec<Core>,
    mem: MainMemory,
    memsys: MemSystem,
    /// The loaded program, pre-decoded: each slot pairs the instruction
    /// with its static metadata (operand scoreboard indices,
    /// functional-unit class, control/memory flags), derived once here
    /// instead of being re-matched on every issue.
    code: Vec<DecodedInstr>,
    /// The raw word image of the loaded program, cached at
    /// [`load_program`](Device::load_program) time so [`reset`](Device::reset)
    /// re-materialises it with one bulk copy instead of re-encoding every
    /// instruction.
    code_words: Vec<u32>,
    code_base: u32,
    cycle: Cycle,
    horizon: Cycle,
    counters: DeviceCounters,
}

impl Device {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates a hardware limit (see
    /// [`DeviceConfig::validate`]).
    pub fn new(config: DeviceConfig) -> Self {
        config.validate();
        Device {
            cores: (0..config.cores).map(|i| Core::new(i, config.warps, config.threads)).collect(),
            mem: MainMemory::new(),
            memsys: MemSystem::new(config.cores, config.mem),
            code: Vec::new(),
            code_words: Vec::new(),
            code_base: 0,
            cycle: 0,
            horizon: 0,
            counters: DeviceCounters::default(),
            config,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// Loads a program image (instructions become fetchable, and the raw
    /// words are also written to main memory at the program's base).
    pub fn load_program(&mut self, program: &Program) {
        self.code = program.instrs().iter().copied().map(DecodedInstr::of).collect();
        self.code_words = program.words().to_vec();
        self.code_base = program.entry();
        self.mem.write_u32_slice(program.entry(), program.words());
    }

    /// Read access to architectural memory (host side).
    pub fn memory(&self) -> &MainMemory {
        &self.mem
    }

    /// Write access to architectural memory (host side).
    pub fn memory_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    /// The current simulation time.
    pub fn now(&self) -> Cycle {
        self.cycle
    }

    /// Advances time without executing anything — models host-side
    /// overhead such as kernel dispatch.
    pub fn advance_time(&mut self, cycles: Cycle) {
        self.cycle += cycles;
    }

    /// Activates warp 0 of `core` at `pc` with a full thread mask,
    /// becoming runnable at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn start_warp(&mut self, core: usize, pc: u32) {
        let now = self.cycle;
        self.cores[core].start_warp(0, pc, now);
    }

    /// Activates an arbitrary warp (for white-box tests).
    ///
    /// # Panics
    ///
    /// Panics if `core` or `warp` is out of range.
    pub fn start_warp_at(&mut self, core: usize, warp: usize, pc: u32) {
        let now = self.cycle;
        self.cores[core].start_warp(warp, pc, now);
    }

    /// Whether every warp of every core has halted.
    pub fn all_idle(&self) -> bool {
        self.cores.iter().all(|c| !c.any_active())
    }

    /// Runs until all warps halt, the cycle budget is exhausted, or a
    /// simulation error is detected. Returns the finish time (including
    /// memory drain).
    ///
    /// An untraced run (`trace = None`) dispatches to the monomorphised
    /// [`run_untraced`](Device::run_untraced) fast path automatically, so
    /// callers holding a `dyn` option pay virtual dispatch only when a
    /// sink is actually attached.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] describing the first fatal condition: an
    /// execution-model violation, a trap, a barrier deadlock, or
    /// [`SimError::CycleLimit`] when `limit` is reached.
    pub fn run<'a, 'b>(
        &mut self,
        limit: Cycle,
        trace: Option<&'a mut (dyn TraceSink + 'b)>,
    ) -> Result<Cycle, SimError> {
        match trace {
            Some(sink) => self.run_with(limit, Some(sink)),
            None => self.run_untraced(limit),
        }
    }

    /// [`run`](Device::run) without a trace sink, monomorphised against
    /// [`NullSink`] — the per-issue trace hook compiles away entirely.
    /// This is the path the 450-configuration campaigns take.
    ///
    /// # Errors
    ///
    /// As for [`run`](Device::run).
    pub fn run_untraced(&mut self, limit: Cycle) -> Result<Cycle, SimError> {
        self.run_with::<NullSink>(limit, None)
    }

    /// [`run`](Device::run), generic over the trace sink type.
    ///
    /// # Errors
    ///
    /// As for [`run`](Device::run).
    pub fn run_with<S: TraceSink + ?Sized>(
        &mut self,
        limit: Cycle,
        trace: Option<&mut S>,
    ) -> Result<Cycle, SimError> {
        let Device {
            config,
            cores,
            mem,
            memsys,
            code,
            code_words: _,
            code_base,
            cycle,
            horizon,
            counters,
        } = self;

        // The binary heap stays the event queue after measurement: both a
        // bucket-ring calendar queue and a flat per-core wake-slot table
        // were prototyped against it (ROADMAP item c) and lost on the
        // 450-configuration probe — see README "PR2 results". With one
        // pending event per core and n ≤ 64, heap sifts over a contiguous
        // 16-byte-entry array beat both the ring walk and the O(cores)
        // rescan per simulated cycle that desynchronised many-core runs
        // force on a slot table. More importantly, the heap is no longer
        // on the per-issue path at all: each pop hands the core a
        // conservative-lookahead window (see [`Core::run_until`]).
        let mut heap: BinaryHeap<Reverse<(Cycle, usize)>> = BinaryHeap::new();
        for core in cores.iter() {
            if core.any_active() {
                heap.push(Reverse((*cycle, core.id())));
            }
        }

        // One context for the whole run: it borrows device state disjoint
        // from `cores`, so it does not need rebuilding per step.
        let line_bytes = memsys.line_bytes();
        let l1_banks = memsys.config().l1_banks.max(1) as usize;
        let mut ctx = CoreCtx {
            code,
            code_base: *code_base,
            mem: &mut *mem,
            memsys: &mut *memsys,
            timing: &config.timing,
            num_cores: config.cores,
            ipdom_depth: config.ipdom_depth,
            counters: &mut *counters,
            trace,
            horizon: &mut *horizon,
            line_bytes,
            l1_banks,
        };

        // Conservative-lookahead event loop: pop the earliest-due core,
        // and let it simulate every cycle up to the next *other* core's
        // event time in one call — no other core can act in that window,
        // so batching it is observationally identical to stepping one
        // instruction per pop (counters, memory traffic and trace events
        // keep their global `(cycle, core)` order). Same-cycle cores pop
        // in ascending id order, exactly as before. Single-core devices
        // run to completion in a single `run_until` call.
        while let Some(Reverse((t, cid))) = heap.pop() {
            if t > limit {
                return Err(SimError::CycleLimit { limit });
            }
            let horizon = match heap.peek() {
                Some(&Reverse((t2, _))) => t2.min(limit.saturating_add(1)),
                None => limit.saturating_add(1),
            };
            match cores[cid].run_until(t, horizon, cycle, &mut ctx)? {
                CoreOutcome::Next(next) => heap.push(Reverse((next, cid))),
                CoreOutcome::Idle => {}
            }
        }

        // Account for the final issue plus any in-flight memory traffic.
        drop(ctx);
        *cycle = (*cycle + 1).max(*horizon);
        counters.finish_cycle = *cycle;
        Ok(*cycle)
    }

    /// Accumulated performance counters (monotonic across runs).
    pub fn counters(&self) -> &DeviceCounters {
        &self.counters
    }

    /// Memory hierarchy statistics (monotonic across runs).
    pub fn mem_stats(&self) -> MemStats {
        self.memsys.stats()
    }

    /// DRAM bandwidth utilisation over the elapsed simulation time.
    pub fn dram_utilization(&self) -> f64 {
        self.memsys.dram_utilization(self.cycle)
    }

    /// Full reset: halts warps, clears memory contents, timing state,
    /// counters and the clock. The loaded program is kept and its image is
    /// re-materialised from the words cached at load time — no
    /// re-encoding, no reallocation of the memory spine — which makes a
    /// reused device as cheap as the run it hosts.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            core.reset();
        }
        self.mem.clear();
        self.memsys.reset();
        self.cycle = 0;
        self.horizon = 0;
        self.counters = DeviceCounters::default();
        self.mem.write_u32_slice(self.code_base, &self.code_words);
    }

    /// Direct read of a warp's architectural state (white-box testing and
    /// trace tooling).
    pub fn warp(&self, core: usize, warp: usize) -> &crate::warp::WarpState {
        &self.cores[core].warps[warp]
    }
}
