//! The core-owned SIMT register file: lane-major structure-of-arrays
//! rows plus the flat per-register scoreboard.
//!
//! Every warp owns 64 architectural registers (32 integer + 32 FP, the
//! scoreboard's dense indexing), and every register is stored as one
//! contiguous *row* of `threads` lane values:
//!
//! ```text
//! words[(warp * 64 + dense_reg) * threads + lane]
//! ```
//!
//! This is the data layout the interpreter's execute loops are written
//! against: an opcode arm reads its source rows, then writes its
//! destination row in a single contiguous pass (branch-free when the
//! thread mask is full), instead of pointer-chasing a per-warp register
//! struct lane by lane. The scoreboard lives in a parallel flat array
//! (`busy[warp * 64 + dense_reg]`) so hazard checks touch one cache line
//! per warp rather than a heap allocation per warp.
//!
//! Invariant: the row of integer register `x0` (dense index 0) is never
//! written, so reading it always yields zeros — the hard-wired zero
//! register needs no per-lane branch in the execute loops.

use vortex_mem::Cycle;

/// Dense registers per warp: 32 integer followed by 32 floating-point
/// (matching [`vortex_isa::RegRef::dense_index`]).
pub(crate) const REGS_PER_WARP: usize = 64;

/// Dense-index offset of the FP register file.
pub(crate) const FP_BASE: usize = 32;

/// Lane-major register rows and scoreboard for every warp of one core.
///
/// Storage is **lazily allocated**: a fresh `RegFile` owns no backing
/// memory until the first warp (re)start calls
/// [`clear_warp`](RegFile::clear_warp), at which point the whole file is
/// allocated zeroed in one shot. Every architectural access happens on an
/// active warp, and a warp only becomes active through a start that
/// clears it, so the read/write paths never see the unallocated state —
/// and a core that never launches costs zero register bytes, whatever the
/// configured topology (256 cores × 16w16t would otherwise eagerly zero
/// ~16 MiB per device construction).
#[derive(Clone, Debug)]
pub(crate) struct RegFile {
    /// Hardware warps (row-group count once allocated).
    warps: usize,
    /// Lanes per warp (row length).
    threads: usize,
    /// Register rows, lane-major (see module docs).
    words: Vec<u32>,
    /// Per-register busy-until cycles: `busy[warp * 64 + dense_reg]`.
    busy: Vec<Cycle>,
    /// Per-warp upper bound on every `busy` entry (monotone `max` of all
    /// `set_busy` calls since the warp's last clear). When the bound is at
    /// or below the warp's control-gap bound, the four per-operand
    /// scoreboard loads of the hazard check cannot exceed it and are
    /// skipped entirely — the dominant case in ALU-dense stretches, where
    /// single-cycle results retire by the time the next instruction could
    /// issue anyway.
    watermark: Vec<Cycle>,
}

impl RegFile {
    /// A register file for `warps × threads` lanes. No backing memory is
    /// allocated until the first [`clear_warp`](RegFile::clear_warp).
    pub fn new(warps: usize, threads: usize) -> Self {
        RegFile { warps, threads, words: Vec::new(), busy: Vec::new(), watermark: Vec::new() }
    }

    /// Allocates the zeroed backing storage on first touch (idempotent).
    #[inline]
    fn ensure_allocated(&mut self) {
        if self.words.is_empty() {
            self.words = vec![0; self.warps * REGS_PER_WARP * self.threads];
            self.busy = vec![0; self.warps * REGS_PER_WARP];
            self.watermark = vec![0; self.warps];
        }
    }

    #[inline]
    fn base(&self, warp: usize, dense: usize) -> usize {
        (warp * REGS_PER_WARP + dense) * self.threads
    }

    /// The lane row of one register (read).
    #[inline]
    pub fn row(&self, warp: usize, dense: usize) -> &[u32] {
        let base = self.base(warp, dense);
        &self.words[base..base + self.threads]
    }

    /// The lane row of one register (write). Callers must never write the
    /// `x0` row (dense index 0) — see the module invariant.
    #[inline]
    pub fn row_mut(&mut self, warp: usize, dense: usize) -> &mut [u32] {
        debug_assert!(dense != 0, "the x0 row is read-only");
        let base = self.base(warp, dense);
        &mut self.words[base..base + self.threads]
    }

    /// Copies a register row into the head of a stack buffer, returning
    /// the filled prefix. This is how execute loops materialise *source*
    /// operands: the copy is one contiguous `threads`-word move, after
    /// which the destination row can be borrowed mutably without aliasing
    /// (the safe-Rust answer to `dst ← f(src1, src2)` with `dst == src`).
    #[inline]
    pub fn copy_row<'b>(&self, warp: usize, dense: usize, buf: &'b mut [u32; 32]) -> &'b [u32] {
        let row = self.row(warp, dense);
        buf[..self.threads].copy_from_slice(row);
        &buf[..self.threads]
    }

    /// [`copy_row`](RegFile::copy_row) restricted to the active lanes of
    /// `tmask`: a sparse gather instead of a whole-row move. On divergent
    /// wide warps (a handful of live lanes out of 32) the full copy costs
    /// more than the execute loop it feeds; the masked execute paths only
    /// ever read active-lane slots of the buffer, so the inactive slots
    /// may hold garbage.
    #[inline]
    pub fn gather_row(&self, warp: usize, dense: usize, tmask: u32, buf: &mut [u32; 32]) {
        let row = self.row(warp, dense);
        let mut m = tmask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            buf[l] = row[l];
        }
    }

    /// The destination row mutably together with one source row
    /// read-only, **copy-free**, when the source does not alias the
    /// destination. `None` asks the caller to take the snapshot path
    /// (the safe-Rust answer to `dst ← f(dst)`); since the rows are then
    /// disjoint, reading the source in place is indistinguishable from
    /// reading a snapshot of it.
    #[inline]
    pub fn dst_src1(&mut self, warp: usize, d: usize, s: usize) -> Option<(&mut [u32], &[u32])> {
        debug_assert!(d != 0, "the x0 row is read-only");
        if d == s {
            return None;
        }
        let t = self.threads;
        let db = self.base(warp, d);
        let sb = self.base(warp, s);
        let [dst, src] = self.words.get_disjoint_mut([db..db + t, sb..sb + t]).ok()?;
        Some((dst, &*src))
    }

    /// [`dst_src1`](RegFile::dst_src1) with two source rows (which may
    /// alias each other, but not the destination).
    #[inline]
    pub fn dst_src2(
        &mut self,
        warp: usize,
        d: usize,
        s1: usize,
        s2: usize,
    ) -> Option<(&mut [u32], &[u32], &[u32])> {
        debug_assert!(d != 0, "the x0 row is read-only");
        if d == s1 || d == s2 {
            return None;
        }
        let t = self.threads;
        let db = self.base(warp, d);
        if s1 == s2 {
            let sb = self.base(warp, s1);
            let [dst, src] = self.words.get_disjoint_mut([db..db + t, sb..sb + t]).ok()?;
            let src = &*src;
            return Some((dst, src, src));
        }
        let (b1, b2) = (self.base(warp, s1), self.base(warp, s2));
        let [dst, a, b] = self.words.get_disjoint_mut([db..db + t, b1..b1 + t, b2..b2 + t]).ok()?;
        Some((dst, &*a, &*b))
    }

    /// [`dst_src1`](RegFile::dst_src1) with three pairwise-distinct
    /// source rows (any duplicate source requests the snapshot path —
    /// rare enough for the fused-multiply-add family not to warrant the
    /// alias juggling).
    #[inline]
    #[allow(clippy::type_complexity)] // one dst row + three source rows
    pub fn dst_src3(
        &mut self,
        warp: usize,
        d: usize,
        s1: usize,
        s2: usize,
        s3: usize,
    ) -> Option<(&mut [u32], &[u32], &[u32], &[u32])> {
        debug_assert!(d != 0, "the x0 row is read-only");
        if d == s1 || d == s2 || d == s3 || s1 == s2 || s1 == s3 || s2 == s3 {
            return None;
        }
        let t = self.threads;
        let (db, b1, b2, b3) =
            (self.base(warp, d), self.base(warp, s1), self.base(warp, s2), self.base(warp, s3));
        let [dst, a, b, c] =
            self.words.get_disjoint_mut([db..db + t, b1..b1 + t, b2..b2 + t, b3..b3 + t]).ok()?;
        Some((dst, &*a, &*b, &*c))
    }

    /// One lane of one register.
    #[cfg(test)]
    pub fn read(&self, warp: usize, dense: usize, lane: usize) -> u32 {
        self.words[self.base(warp, dense) + lane]
    }

    /// The scoreboard entry of one register.
    #[inline]
    pub fn busy_until(&self, warp: usize, dense: usize) -> Cycle {
        self.busy[warp * REGS_PER_WARP + dense]
    }

    /// Marks a register busy until `t`. Callers must never mark `x0`
    /// (its scoreboard entry stays 0, like its row stays zeroed).
    #[inline]
    pub fn set_busy(&mut self, warp: usize, dense: usize, t: Cycle) {
        debug_assert!(dense != 0, "x0 never becomes busy");
        self.busy[warp * REGS_PER_WARP + dense] = t;
        if t > self.watermark[warp] {
            self.watermark[warp] = t;
        }
    }

    /// Upper bound on every scoreboard entry of `warp` (see the field
    /// docs). Never *below* the true maximum, so a caller observing
    /// `busy_watermark(w) <= bound` may take `bound` as the exact hazard
    /// time without reading any per-register entry.
    #[inline]
    pub fn busy_watermark(&self, warp: usize) -> Cycle {
        self.watermark[warp]
    }

    /// Zeroes one warp's rows and scoreboard — the architectural clear a
    /// (re)started warp requires. Dormant warps keep stale contents (the
    /// device-level reset relies on this staying cheap; see
    /// `WarpState::deactivate`).
    pub fn clear_warp(&mut self, warp: usize) {
        self.ensure_allocated();
        let base = self.base(warp, 0);
        self.words[base..base + REGS_PER_WARP * self.threads].fill(0);
        self.busy[warp * REGS_PER_WARP..(warp + 1) * REGS_PER_WARP].fill(0);
        self.watermark[warp] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous_per_register() {
        let mut rf = RegFile::new(2, 4);
        rf.clear_warp(1);
        for lane in 0..4 {
            rf.row_mut(1, 5)[lane] = 100 + lane as u32;
        }
        assert_eq!(rf.row(1, 5), &[100, 101, 102, 103]);
        assert_eq!(rf.read(1, 5, 2), 102);
        // Neighbouring registers and warps are untouched.
        assert_eq!(rf.row(1, 4), &[0; 4]);
        assert_eq!(rf.row(1, 6), &[0; 4]);
        assert_eq!(rf.row(0, 5), &[0; 4]);
    }

    #[test]
    fn copy_row_snapshots_sources() {
        let mut rf = RegFile::new(1, 3);
        rf.clear_warp(0);
        rf.row_mut(0, 7).copy_from_slice(&[1, 2, 3]);
        let mut buf = [0u32; 32];
        let src = rf.copy_row(0, 7, &mut buf);
        assert_eq!(src, &[1, 2, 3]);
    }

    #[test]
    fn zero_register_row_reads_zero() {
        let mut rf = RegFile::new(1, 8);
        rf.clear_warp(0);
        assert_eq!(rf.row(0, 0), &[0; 8]);
        assert_eq!(rf.busy_until(0, 0), 0);
    }

    #[test]
    fn storage_is_lazy_until_first_warp_clear() {
        let mut rf = RegFile::new(32, 32);
        assert_eq!(rf.words.len(), 0, "a never-started core owns no register bytes");
        rf.clear_warp(3);
        assert_eq!(rf.words.len(), 32 * REGS_PER_WARP * 32);
        assert_eq!(rf.row(3, 1), &[0; 32]);
    }

    #[test]
    fn clear_warp_is_warp_local() {
        let mut rf = RegFile::new(2, 2);
        rf.clear_warp(0);
        rf.row_mut(0, 3)[0] = 9;
        rf.row_mut(1, 3)[0] = 9;
        rf.set_busy(0, 3, 42);
        rf.set_busy(1, 3, 42);
        rf.clear_warp(0);
        assert_eq!(rf.row(0, 3), &[0, 0]);
        assert_eq!(rf.busy_until(0, 3), 0);
        assert_eq!(rf.row(1, 3), &[9, 0]);
        assert_eq!(rf.busy_until(1, 3), 42);
    }

    #[test]
    fn copy_free_accessors_split_disjoint_rows() {
        let mut rf = RegFile::new(1, 4);
        rf.clear_warp(0);
        rf.row_mut(0, 5).copy_from_slice(&[1, 2, 3, 4]);
        rf.row_mut(0, 6).copy_from_slice(&[10, 20, 30, 40]);
        let (dst, a, b) = rf.dst_src2(0, 7, 5, 6).expect("disjoint");
        assert_eq!(a, &[1, 2, 3, 4]);
        assert_eq!(b, &[10, 20, 30, 40]);
        dst.copy_from_slice(&[9, 9, 9, 9]);
        assert_eq!(rf.row(0, 7), &[9; 4]);
        // A duplicated source is shared, not copied.
        let (_, a, b) = rf.dst_src2(0, 7, 5, 5).expect("s1 == s2 is fine");
        assert_eq!(a, b);
        // Aliasing the destination requests the snapshot path.
        assert!(rf.dst_src2(0, 5, 5, 6).is_none());
        assert!(rf.dst_src1(0, 6, 6).is_none());
        assert!(rf.dst_src1(0, 6, 5).is_some());
        assert!(rf.dst_src3(0, 7, 1, 2, 3).is_some());
        assert!(rf.dst_src3(0, 7, 1, 2, 2).is_none(), "duplicate fma sources snapshot");
    }

    #[test]
    fn fp_rows_live_above_the_integer_file() {
        let mut rf = RegFile::new(1, 2);
        rf.clear_warp(0);
        rf.row_mut(0, FP_BASE + 1)[0] = 7;
        assert_eq!(rf.read(0, FP_BASE + 1, 0), 7);
        assert_eq!(rf.read(0, 1, 0), 0);
    }
}
