//! The core-owned SIMT register file: lane-major structure-of-arrays
//! rows plus the flat per-register scoreboard.
//!
//! Every warp owns 64 architectural registers (32 integer + 32 FP, the
//! scoreboard's dense indexing), and every register is stored as one
//! contiguous *row* of `threads` lane values:
//!
//! ```text
//! words[(warp * 64 + dense_reg) * threads + lane]
//! ```
//!
//! This is the data layout the interpreter's execute loops are written
//! against: an opcode arm reads its source rows, then writes its
//! destination row in a single contiguous pass (branch-free when the
//! thread mask is full), instead of pointer-chasing a per-warp register
//! struct lane by lane. The scoreboard lives in a parallel flat array
//! (`busy[warp * 64 + dense_reg]`) so hazard checks touch one cache line
//! per warp rather than a heap allocation per warp.
//!
//! Invariant: the row of integer register `x0` (dense index 0) is never
//! written, so reading it always yields zeros — the hard-wired zero
//! register needs no per-lane branch in the execute loops.

use vortex_mem::Cycle;

/// Dense registers per warp: 32 integer followed by 32 floating-point
/// (matching [`vortex_isa::RegRef::dense_index`]).
pub(crate) const REGS_PER_WARP: usize = 64;

/// Dense-index offset of the FP register file.
pub(crate) const FP_BASE: usize = 32;

/// Lane-major register rows and scoreboard for every warp of one core.
#[derive(Clone, Debug)]
pub(crate) struct RegFile {
    /// Lanes per warp (row length).
    threads: usize,
    /// Register rows, lane-major (see module docs).
    words: Vec<u32>,
    /// Per-register busy-until cycles: `busy[warp * 64 + dense_reg]`.
    busy: Vec<Cycle>,
}

impl RegFile {
    /// A zeroed register file for `warps × threads` lanes.
    pub fn new(warps: usize, threads: usize) -> Self {
        RegFile {
            threads,
            words: vec![0; warps * REGS_PER_WARP * threads],
            busy: vec![0; warps * REGS_PER_WARP],
        }
    }

    #[inline]
    fn base(&self, warp: usize, dense: usize) -> usize {
        (warp * REGS_PER_WARP + dense) * self.threads
    }

    /// The lane row of one register (read).
    #[inline]
    pub fn row(&self, warp: usize, dense: usize) -> &[u32] {
        let base = self.base(warp, dense);
        &self.words[base..base + self.threads]
    }

    /// The lane row of one register (write). Callers must never write the
    /// `x0` row (dense index 0) — see the module invariant.
    #[inline]
    pub fn row_mut(&mut self, warp: usize, dense: usize) -> &mut [u32] {
        debug_assert!(dense != 0, "the x0 row is read-only");
        let base = self.base(warp, dense);
        &mut self.words[base..base + self.threads]
    }

    /// Copies a register row into the head of a stack buffer, returning
    /// the filled prefix. This is how execute loops materialise *source*
    /// operands: the copy is one contiguous `threads`-word move, after
    /// which the destination row can be borrowed mutably without aliasing
    /// (the safe-Rust answer to `dst ← f(src1, src2)` with `dst == src`).
    #[inline]
    pub fn copy_row<'b>(&self, warp: usize, dense: usize, buf: &'b mut [u32; 32]) -> &'b [u32] {
        let row = self.row(warp, dense);
        buf[..self.threads].copy_from_slice(row);
        &buf[..self.threads]
    }

    /// [`copy_row`](RegFile::copy_row) restricted to the active lanes of
    /// `tmask`: a sparse gather instead of a whole-row move. On divergent
    /// wide warps (a handful of live lanes out of 32) the full copy costs
    /// more than the execute loop it feeds; the masked execute paths only
    /// ever read active-lane slots of the buffer, so the inactive slots
    /// may hold garbage.
    #[inline]
    pub fn gather_row(&self, warp: usize, dense: usize, tmask: u32, buf: &mut [u32; 32]) {
        let row = self.row(warp, dense);
        let mut m = tmask;
        while m != 0 {
            let l = m.trailing_zeros() as usize;
            m &= m - 1;
            buf[l] = row[l];
        }
    }

    /// One lane of one register.
    #[cfg(test)]
    pub fn read(&self, warp: usize, dense: usize, lane: usize) -> u32 {
        self.words[self.base(warp, dense) + lane]
    }

    /// The scoreboard entry of one register.
    #[inline]
    pub fn busy_until(&self, warp: usize, dense: usize) -> Cycle {
        self.busy[warp * REGS_PER_WARP + dense]
    }

    /// Marks a register busy until `t`. Callers must never mark `x0`
    /// (its scoreboard entry stays 0, like its row stays zeroed).
    #[inline]
    pub fn set_busy(&mut self, warp: usize, dense: usize, t: Cycle) {
        debug_assert!(dense != 0, "x0 never becomes busy");
        self.busy[warp * REGS_PER_WARP + dense] = t;
    }

    /// Zeroes one warp's rows and scoreboard — the architectural clear a
    /// (re)started warp requires. Dormant warps keep stale contents (the
    /// device-level reset relies on this staying cheap; see
    /// `WarpState::deactivate`).
    pub fn clear_warp(&mut self, warp: usize) {
        let base = self.base(warp, 0);
        self.words[base..base + REGS_PER_WARP * self.threads].fill(0);
        self.busy[warp * REGS_PER_WARP..(warp + 1) * REGS_PER_WARP].fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_contiguous_per_register() {
        let mut rf = RegFile::new(2, 4);
        for lane in 0..4 {
            rf.row_mut(1, 5)[lane] = 100 + lane as u32;
        }
        assert_eq!(rf.row(1, 5), &[100, 101, 102, 103]);
        assert_eq!(rf.read(1, 5, 2), 102);
        // Neighbouring registers and warps are untouched.
        assert_eq!(rf.row(1, 4), &[0; 4]);
        assert_eq!(rf.row(1, 6), &[0; 4]);
        assert_eq!(rf.row(0, 5), &[0; 4]);
    }

    #[test]
    fn copy_row_snapshots_sources() {
        let mut rf = RegFile::new(1, 3);
        rf.row_mut(0, 7).copy_from_slice(&[1, 2, 3]);
        let mut buf = [0u32; 32];
        let src = rf.copy_row(0, 7, &mut buf);
        assert_eq!(src, &[1, 2, 3]);
    }

    #[test]
    fn zero_register_row_reads_zero() {
        let rf = RegFile::new(1, 8);
        assert_eq!(rf.row(0, 0), &[0; 8]);
        assert_eq!(rf.busy_until(0, 0), 0);
    }

    #[test]
    fn clear_warp_is_warp_local() {
        let mut rf = RegFile::new(2, 2);
        rf.row_mut(0, 3)[0] = 9;
        rf.row_mut(1, 3)[0] = 9;
        rf.set_busy(0, 3, 42);
        rf.set_busy(1, 3, 42);
        rf.clear_warp(0);
        assert_eq!(rf.row(0, 3), &[0, 0]);
        assert_eq!(rf.busy_until(0, 3), 0);
        assert_eq!(rf.row(1, 3), &[9, 0]);
        assert_eq!(rf.busy_until(1, 3), 42);
    }

    #[test]
    fn fp_rows_live_above_the_integer_file() {
        let mut rf = RegFile::new(1, 2);
        rf.row_mut(0, FP_BASE + 1)[0] = 7;
        assert_eq!(rf.read(0, FP_BASE + 1, 0), 7);
        assert_eq!(rf.read(0, 1, 0), 0);
    }
}
