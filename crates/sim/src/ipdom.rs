//! The IPDOM (immediate post-dominator) reconvergence stack.

/// One entry of a warp's divergence stack.
///
/// `vx_split` pushes an entry; the matching `vx_join` consumes it in one or
/// two steps (see [`crate::Device`] docs and `Instr::Split` semantics).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum IpdomEntry {
    /// The split did not actually diverge (one side was empty): `join`
    /// simply restores the mask.
    Uniform {
        /// Mask to restore at the join.
        restore_mask: u32,
    },
    /// Both sides are populated and the else-path has not started yet.
    ElsePending {
        /// Mask to restore once both sides joined.
        restore_mask: u32,
        /// Lanes that took the else-path.
        else_mask: u32,
        /// Address of the else-path.
        else_pc: u32,
    },
    /// The else-path is currently executing; the next `join` reconverges.
    ElseRunning {
        /// Mask to restore at the join.
        restore_mask: u32,
    },
}

impl IpdomEntry {
    /// The mask this entry will restore on final reconvergence.
    pub fn restore_mask(&self) -> u32 {
        match *self {
            IpdomEntry::Uniform { restore_mask }
            | IpdomEntry::ElsePending { restore_mask, .. }
            | IpdomEntry::ElseRunning { restore_mask } => restore_mask,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restore_mask_is_preserved_through_states() {
        let pending =
            IpdomEntry::ElsePending { restore_mask: 0b1111, else_mask: 0b1100, else_pc: 64 };
        assert_eq!(pending.restore_mask(), 0b1111);
        let running = IpdomEntry::ElseRunning { restore_mask: 0b1111 };
        assert_eq!(running.restore_mask(), 0b1111);
        let uniform = IpdomEntry::Uniform { restore_mask: 0b0001 };
        assert_eq!(uniform.restore_mask(), 0b0001);
    }
}
