//! Device configuration: topology and timing parameters.

use std::fmt;
use std::str::FromStr;

use vortex_mem::MemConfig;

/// Functional-unit and pipeline latencies, in cycles.
///
/// A result produced with latency `L` at issue cycle `t` can feed a
/// dependent instruction issued at `t + L` (full bypass).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Integer ALU / CSR / LUI latency.
    pub alu: u64,
    /// Integer multiply latency.
    pub mul: u64,
    /// Integer divide/remainder latency.
    pub div: u64,
    /// Pipelined FPU latency (add/mul/FMA/convert/compare).
    pub fpu: u64,
    /// Floating divide latency.
    pub fdiv: u64,
    /// Floating square-root latency.
    pub fsqrt: u64,
    /// Extra cycles before the *same warp* can issue after a taken
    /// control transfer (front-end refill bubble).
    pub branch_bubble: u64,
    /// SIMT control op latency (tmc/split/join/vote).
    pub simt: u64,
    /// Cycles before a spawned warp may issue its first instruction.
    pub wspawn: u64,
    /// Cycles between barrier release and first issue of released warps.
    pub barrier: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            alu: 1,
            mul: 3,
            div: 16,
            fpu: 4,
            fdiv: 16,
            fsqrt: 20,
            branch_bubble: 2,
            simt: 1,
            wspawn: 16,
            barrier: 4,
        }
    }
}

/// Full device configuration: SIMT topology (the paper's `hp` parameters),
/// pipeline timing, memory hierarchy and IPDOM stack depth.
///
/// # Examples
///
/// ```
/// use vortex_sim::DeviceConfig;
/// let cfg = DeviceConfig::with_topology(4, 8, 16);
/// assert_eq!(cfg.hardware_parallelism(), 4 * 8 * 16);
/// assert_eq!(cfg.topology_name(), "4c8w16t");
/// let parsed: DeviceConfig = "4c8w16t".parse().unwrap();
/// assert_eq!(parsed.hardware_parallelism(), cfg.hardware_parallelism());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of cores.
    pub cores: usize,
    /// Hardware warps per core (≤ 32).
    pub warps: usize,
    /// Threads (lanes) per warp (≤ 32).
    pub threads: usize,
    /// Pipeline latencies.
    pub timing: TimingConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Maximum nesting depth of `vx_split` per warp.
    pub ipdom_depth: usize,
    /// Cores grouped per cluster (contiguous core-id ranges): cluster `k`
    /// owns cores `k*cpc .. (k+1)*cpc`. Clustering is a *host-side*
    /// scheduling and accounting structure — per-cluster active-core
    /// lists and per-cluster memory-port counters — and is
    /// timing-transparent by construction: simulated cycles and counters
    /// are bit-identical for every value of this knob (gated by the
    /// clustered-vs-flat cycle_dump diff in CI). `1` reproduces the flat
    /// per-core layout exactly.
    pub cores_per_cluster: usize,
}

impl DeviceConfig {
    /// Creates a configuration with the given topology and default timing.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or `warps`/`threads` exceed 32.
    pub fn with_topology(cores: usize, warps: usize, threads: usize) -> Self {
        let cfg = DeviceConfig {
            cores,
            warps,
            threads,
            timing: TimingConfig::default(),
            mem: MemConfig::default(),
            ipdom_depth: 32,
            cores_per_cluster: 1,
        };
        cfg.validate();
        cfg
    }

    /// Returns a copy with `cores_per_cluster` set.
    ///
    /// # Panics
    ///
    /// Panics if `cores_per_cluster` is zero.
    pub fn with_clustering(mut self, cores_per_cluster: usize) -> Self {
        self.cores_per_cluster = cores_per_cluster;
        self.validate();
        self
    }

    /// Number of clusters (`ceil(cores / cores_per_cluster)`); the last
    /// cluster may be partially filled.
    pub fn num_clusters(&self) -> usize {
        self.cores.div_ceil(self.cores_per_cluster)
    }

    /// Cluster owning `core`.
    pub fn cluster_of(&self, core: usize) -> usize {
        core / self.cores_per_cluster
    }

    /// Checks invariants (non-zero dimensions, mask-width limits).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when a limit is violated.
    pub fn validate(&self) {
        assert!(self.cores > 0, "device needs at least one core");
        assert!((1..=32).contains(&self.warps), "warps per core must be in 1..=32");
        assert!((1..=32).contains(&self.threads), "threads per warp must be in 1..=32");
        assert!(self.ipdom_depth > 0, "IPDOM stack needs at least one entry");
        assert!(self.cores_per_cluster > 0, "cluster needs at least one core");
    }

    /// Total hardware parallelism `hp = cores × warps × threads` (Eq. 1 of
    /// the paper).
    pub fn hardware_parallelism(&self) -> u64 {
        (self.cores * self.warps * self.threads) as u64
    }

    /// The paper's compact topology notation, e.g. `"64c32w32t"`. When
    /// clustering is enabled an `x<cores_per_cluster>` suffix is appended
    /// (e.g. `"64c32w32tx4"`); flat devices keep the historical name so
    /// store keys and manifests written before clustering existed remain
    /// valid.
    pub fn topology_name(&self) -> String {
        if self.cores_per_cluster == 1 {
            format!("{}c{}w{}t", self.cores, self.warps, self.threads)
        } else {
            format!("{}c{}w{}tx{}", self.cores, self.warps, self.threads, self.cores_per_cluster)
        }
    }
}

impl Default for DeviceConfig {
    /// A small single-core device (`1c4w4t`), handy for tests.
    fn default() -> Self {
        DeviceConfig::with_topology(1, 4, 4)
    }
}

impl fmt::Display for DeviceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.topology_name())
    }
}

impl FromStr for DeviceConfig {
    type Err = ParseTopologyError;

    /// Parses the `"<cores>c<warps>w<threads>t"` notation used throughout
    /// the paper, with default timing and memory parameters. An optional
    /// `x<cores_per_cluster>` suffix selects a clustered layout, e.g.
    /// `"256c4w8tx16"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTopologyError { input: s.to_owned() };
        let (base, cores_per_cluster) = match s.rsplit_once('x') {
            Some((head, tail)) if head.ends_with('t') => (head, tail.parse().map_err(|_| err())?),
            _ => (s, 1),
        };
        let rest = base.strip_suffix('t').ok_or_else(err)?;
        let (rest, threads) = split_num_suffix(rest, 'w').ok_or_else(err)?;
        let (rest, warps) = split_num_suffix(rest, 'c').ok_or_else(err)?;
        let cores: usize = rest.parse().map_err(|_| err())?;
        if cores == 0
            || cores_per_cluster == 0
            || !(1..=32).contains(&warps)
            || !(1..=32).contains(&threads)
        {
            return Err(err());
        }
        Ok(DeviceConfig::with_topology(cores, warps, threads).with_clustering(cores_per_cluster))
    }
}

/// Splits `"12c34"` on the *last* occurrence of `sep`, parsing the suffix.
fn split_num_suffix(s: &str, sep: char) -> Option<(&str, usize)> {
    let idx = s.rfind(sep)?;
    let n: usize = s[idx + 1..].parse().ok()?;
    Some((&s[..idx], n))
}

/// Error parsing a `"<cores>c<warps>w<threads>t"` topology string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    input: String,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology `{}` (expected e.g. `4c8w16t`)", self.input)
    }
}

impl std::error::Error for ParseTopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_roundtrip() {
        for name in ["1c2w2t", "64c32w32t", "3c5w7t", "256c4w8tx16", "16c16w16tx4"] {
            let cfg: DeviceConfig = name.parse().unwrap();
            assert_eq!(cfg.topology_name(), name);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in
            ["", "1c2w", "c2w2t", "1x2w2t", "0c2w2t", "1c33w2t", "1c2w0t", "4c2w2tx0", "4c2w2tx"]
        {
            assert!(bad.parse::<DeviceConfig>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn clustering_defaults_to_flat() {
        let cfg = DeviceConfig::with_topology(4, 8, 16);
        assert_eq!(cfg.cores_per_cluster, 1);
        assert_eq!(cfg.num_clusters(), 4);
        assert_eq!(cfg.topology_name(), "4c8w16t");
    }

    #[test]
    fn cluster_partitioning_covers_partial_tail() {
        let cfg = DeviceConfig::with_topology(10, 2, 2).with_clustering(4);
        assert_eq!(cfg.num_clusters(), 3);
        assert_eq!(cfg.cluster_of(0), 0);
        assert_eq!(cfg.cluster_of(3), 0);
        assert_eq!(cfg.cluster_of(4), 1);
        assert_eq!(cfg.cluster_of(9), 2);
        // Oversized clustering degenerates to a single cluster.
        let one = DeviceConfig::with_topology(4, 2, 2).with_clustering(64);
        assert_eq!(one.num_clusters(), 1);
    }

    #[test]
    fn hp_matches_eq1() {
        let cfg = DeviceConfig::with_topology(64, 32, 32);
        assert_eq!(cfg.hardware_parallelism(), 65536);
    }

    #[test]
    #[should_panic(expected = "warps per core")]
    fn oversized_warps_panic() {
        DeviceConfig::with_topology(1, 33, 2);
    }
}
