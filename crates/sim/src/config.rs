//! Device configuration: topology and timing parameters.

use std::fmt;
use std::str::FromStr;

use vortex_mem::MemConfig;

/// Functional-unit and pipeline latencies, in cycles.
///
/// A result produced with latency `L` at issue cycle `t` can feed a
/// dependent instruction issued at `t + L` (full bypass).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimingConfig {
    /// Integer ALU / CSR / LUI latency.
    pub alu: u64,
    /// Integer multiply latency.
    pub mul: u64,
    /// Integer divide/remainder latency.
    pub div: u64,
    /// Pipelined FPU latency (add/mul/FMA/convert/compare).
    pub fpu: u64,
    /// Floating divide latency.
    pub fdiv: u64,
    /// Floating square-root latency.
    pub fsqrt: u64,
    /// Extra cycles before the *same warp* can issue after a taken
    /// control transfer (front-end refill bubble).
    pub branch_bubble: u64,
    /// SIMT control op latency (tmc/split/join/vote).
    pub simt: u64,
    /// Cycles before a spawned warp may issue its first instruction.
    pub wspawn: u64,
    /// Cycles between barrier release and first issue of released warps.
    pub barrier: u64,
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            alu: 1,
            mul: 3,
            div: 16,
            fpu: 4,
            fdiv: 16,
            fsqrt: 20,
            branch_bubble: 2,
            simt: 1,
            wspawn: 16,
            barrier: 4,
        }
    }
}

/// Full device configuration: SIMT topology (the paper's `hp` parameters),
/// pipeline timing, memory hierarchy and IPDOM stack depth.
///
/// # Examples
///
/// ```
/// use vortex_sim::DeviceConfig;
/// let cfg = DeviceConfig::with_topology(4, 8, 16);
/// assert_eq!(cfg.hardware_parallelism(), 4 * 8 * 16);
/// assert_eq!(cfg.topology_name(), "4c8w16t");
/// let parsed: DeviceConfig = "4c8w16t".parse().unwrap();
/// assert_eq!(parsed.hardware_parallelism(), cfg.hardware_parallelism());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Number of cores.
    pub cores: usize,
    /// Hardware warps per core (≤ 32).
    pub warps: usize,
    /// Threads (lanes) per warp (≤ 32).
    pub threads: usize,
    /// Pipeline latencies.
    pub timing: TimingConfig,
    /// Memory hierarchy parameters.
    pub mem: MemConfig,
    /// Maximum nesting depth of `vx_split` per warp.
    pub ipdom_depth: usize,
}

impl DeviceConfig {
    /// Creates a configuration with the given topology and default timing.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, or `warps`/`threads` exceed 32.
    pub fn with_topology(cores: usize, warps: usize, threads: usize) -> Self {
        let cfg = DeviceConfig {
            cores,
            warps,
            threads,
            timing: TimingConfig::default(),
            mem: MemConfig::default(),
            ipdom_depth: 32,
        };
        cfg.validate();
        cfg
    }

    /// Checks invariants (non-zero dimensions, mask-width limits).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when a limit is violated.
    pub fn validate(&self) {
        assert!(self.cores > 0, "device needs at least one core");
        assert!((1..=32).contains(&self.warps), "warps per core must be in 1..=32");
        assert!((1..=32).contains(&self.threads), "threads per warp must be in 1..=32");
        assert!(self.ipdom_depth > 0, "IPDOM stack needs at least one entry");
    }

    /// Total hardware parallelism `hp = cores × warps × threads` (Eq. 1 of
    /// the paper).
    pub fn hardware_parallelism(&self) -> u64 {
        (self.cores * self.warps * self.threads) as u64
    }

    /// The paper's compact topology notation, e.g. `"64c32w32t"`.
    pub fn topology_name(&self) -> String {
        format!("{}c{}w{}t", self.cores, self.warps, self.threads)
    }
}

impl Default for DeviceConfig {
    /// A small single-core device (`1c4w4t`), handy for tests.
    fn default() -> Self {
        DeviceConfig::with_topology(1, 4, 4)
    }
}

impl fmt::Display for DeviceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.topology_name())
    }
}

impl FromStr for DeviceConfig {
    type Err = ParseTopologyError;

    /// Parses the `"<cores>c<warps>w<threads>t"` notation used throughout
    /// the paper, with default timing and memory parameters.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseTopologyError { input: s.to_owned() };
        let rest = s.strip_suffix('t').ok_or_else(err)?;
        let (rest, threads) = split_num_suffix(rest, 'w').ok_or_else(err)?;
        let (rest, warps) = split_num_suffix(rest, 'c').ok_or_else(err)?;
        let cores: usize = rest.parse().map_err(|_| err())?;
        if cores == 0 || !(1..=32).contains(&warps) || !(1..=32).contains(&threads) {
            return Err(err());
        }
        Ok(DeviceConfig::with_topology(cores, warps, threads))
    }
}

/// Splits `"12c34"` on the *last* occurrence of `sep`, parsing the suffix.
fn split_num_suffix(s: &str, sep: char) -> Option<(&str, usize)> {
    let idx = s.rfind(sep)?;
    let n: usize = s[idx + 1..].parse().ok()?;
    Some((&s[..idx], n))
}

/// Error parsing a `"<cores>c<warps>w<threads>t"` topology string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTopologyError {
    input: String,
}

impl fmt::Display for ParseTopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid topology `{}` (expected e.g. `4c8w16t`)", self.input)
    }
}

impl std::error::Error for ParseTopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_roundtrip() {
        for name in ["1c2w2t", "64c32w32t", "3c5w7t"] {
            let cfg: DeviceConfig = name.parse().unwrap();
            assert_eq!(cfg.topology_name(), name);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "1c2w", "c2w2t", "1x2w2t", "0c2w2t", "1c33w2t", "1c2w0t"] {
            assert!(bad.parse::<DeviceConfig>().is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn hp_matches_eq1() {
        let cfg = DeviceConfig::with_topology(64, 32, 32);
        assert_eq!(cfg.hardware_parallelism(), 65536);
    }

    #[test]
    #[should_panic(expected = "warps per core")]
    fn oversized_warps_panic() {
        DeviceConfig::with_topology(1, 33, 2);
    }
}
