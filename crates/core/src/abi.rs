//! The kernel ABI: the memory-map contract between the host runtime and
//! device kernels.
//!
//! Kernels are position-dependent images loaded at [`CODE_BASE`]. Before a
//! launch the runtime writes one **dispatch block** per core at
//! [`DISPATCH_BASE`]; the kernel prologue (see `vortex-kernels`) reads its
//! core's block to learn its task range, the `lws` iteration count, the
//! global size and the argument-block pointer.

/// Load/entry address of kernel code.
pub const CODE_BASE: u32 = 0x8000_0000;

/// Base address of the kernel argument block (32-bit words, laid out by
/// convention per kernel).
pub const ARGS_BASE: u32 = 0x9000_0000;

/// Base address of the per-core dispatch blocks.
pub const DISPATCH_BASE: u32 = 0x9F00_0000;

/// Bytes between consecutive cores' dispatch blocks.
pub const DISPATCH_STRIDE: u32 = 32;

/// First address of the device heap used for buffers.
pub const HEAP_BASE: u32 = 0xA000_0000;

/// Byte offsets of the dispatch-block fields.
pub mod dispatch {
    /// First task id owned by this core (inclusive).
    pub const TASK_BASE: u32 = 0;
    /// One past the last task id owned by this core.
    pub const TASK_END: u32 = 4;
    /// Kernel iterations per task (`local_work_size`).
    pub const LWS: u32 = 8;
    /// Global work size (total kernel iterations).
    pub const GWS: u32 = 12;
    /// Address of the argument block.
    pub const ARG_PTR: u32 = 16;
    /// Software mailbox: first task id of the *current* in-kernel round
    /// (written by warp 0's dispatch loop, read by spawned warps).
    pub const CURSOR: u32 = 20;
    /// Software mailbox: warps participating in the current round (for the
    /// round barrier).
    pub const ROUND_WARPS: u32 = 24;
}

/// Number of 32-bit words the host writes into a dispatch block at launch
/// time: the contiguous [`dispatch::TASK_BASE`]..=[`dispatch::CURSOR`]
/// prefix. [`dispatch::ROUND_WARPS`] is a software mailbox owned by the
/// kernel's round loop and is never rendered by the host.
pub const DISPATCH_HOST_WORDS: usize = 6;

/// The dispatch-block address for a core.
///
/// # Examples
///
/// ```
/// use vortex_core::abi;
/// assert_eq!(abi::dispatch_block_addr(0), abi::DISPATCH_BASE);
/// assert_eq!(abi::dispatch_block_addr(3), abi::DISPATCH_BASE + 96);
/// ```
pub fn dispatch_block_addr(core: usize) -> u32 {
    DISPATCH_BASE + (core as u32) * DISPATCH_STRIDE
}

/// Renders the host-written words of one core's dispatch block, in block
/// layout order, ready for a single bulk write at
/// [`dispatch_block_addr`]. This is the **only** place the host-side
/// field layout exists: both the `LaunchPlan` renderer and any direct
/// launch path go through it, so the ABI cannot drift between them.
///
/// The in-kernel round cursor starts at `task_base` (round 0 begins at
/// the core's first task).
///
/// # Examples
///
/// ```
/// use vortex_core::abi;
/// let words = abi::render_dispatch_block(8, 24, 4, 64, abi::ARGS_BASE);
/// assert_eq!(words[(abi::dispatch::TASK_END / 4) as usize], 24);
/// assert_eq!(words[(abi::dispatch::CURSOR / 4) as usize], 8);
/// ```
pub fn render_dispatch_block(
    task_base: u32,
    task_end: u32,
    lws: u32,
    gws: u32,
    arg_ptr: u32,
) -> [u32; DISPATCH_HOST_WORDS] {
    let mut words = [0u32; DISPATCH_HOST_WORDS];
    words[(dispatch::TASK_BASE / 4) as usize] = task_base;
    words[(dispatch::TASK_END / 4) as usize] = task_end;
    words[(dispatch::LWS / 4) as usize] = lws;
    words[(dispatch::GWS / 4) as usize] = gws;
    words[(dispatch::ARG_PTR / 4) as usize] = arg_ptr;
    words[(dispatch::CURSOR / 4) as usize] = task_base;
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // 1024 cores of dispatch blocks stay below the heap.
        assert!(dispatch_block_addr(1024) < HEAP_BASE);
        const { assert!(CODE_BASE < ARGS_BASE) };
        const { assert!(ARGS_BASE < DISPATCH_BASE) };
        const { assert!(DISPATCH_BASE < HEAP_BASE) };
    }

    #[test]
    fn dispatch_fields_fit_the_stride() {
        const { assert!(dispatch::ROUND_WARPS + 4 <= DISPATCH_STRIDE) };
    }
}
