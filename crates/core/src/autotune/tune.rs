//! The online tuning loop: probe K candidates, fit the cost model,
//! predict the rest of the grid, pick a winner.

use vortex_sim::DeviceConfig;

use crate::autotune::candidates::lws_candidates;
use crate::autotune::model::{CostModel, ProbedRow};
use crate::autotune::schedule::probe_schedule;

/// One entry of the tuner's final per-candidate ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateEstimate {
    /// The candidate `lws`.
    pub lws: u32,
    /// Estimated cycles: the measurement itself for probed candidates,
    /// the cost-model prediction for the rest.
    pub cycles: f64,
    /// Whether this candidate was actually probed (measured) rather
    /// than predicted.
    pub probed: bool,
}

/// The result of one tuning run over a launch's candidate grid.
#[derive(Clone, Debug, PartialEq)]
pub struct TuneOutcome {
    /// The full candidate grid searched (sorted ascending).
    pub candidates: Vec<u32>,
    /// The probed subset, in grid order, with measured counters.
    pub probes: Vec<ProbedRow>,
    /// The cost model fit from the probes.
    pub model: CostModel,
    /// Every candidate with its measured-or-predicted cycles, sorted by
    /// estimated cycles ascending (ties: smaller lws first).
    pub ranking: Vec<CandidateEstimate>,
    /// The chosen `lws` — the head of `ranking`.
    pub chosen_lws: u32,
    /// Estimated cycles of the chosen candidate (measured if it was
    /// probed).
    pub chosen_cycles: f64,
}

/// Runs the online autotuner for a launch of `gws` items on `config`
/// with a probe budget of `budget` configs.
///
/// `measure` executes (or fetches from a result store) one probe and
/// returns its measured cycles and counters; any error aborts the run
/// and is returned verbatim. Candidates the budget does not cover are
/// never measured — their cycles come from the [`CostModel`] fit on the
/// probes. The winner is the candidate with the smallest estimate over
/// the *union* of measured and predicted values, so a probed optimum is
/// never lost to a model error, and ties break to the smaller `lws`
/// (deterministic).
///
/// # Panics
///
/// Panics if `gws == 0` or `budget == 0`.
pub fn tune_lws<E>(
    gws: u32,
    config: &DeviceConfig,
    budget: usize,
    mut measure: impl FnMut(u32) -> Result<ProbedRow, E>,
) -> Result<TuneOutcome, E> {
    assert!(gws > 0, "gws must be positive");
    assert!(budget > 0, "probe budget must be positive");

    let candidates = lws_candidates(gws, config);
    let schedule = probe_schedule(&candidates, gws, config, budget);
    let mut probes = Vec::with_capacity(schedule.len());
    for &lws in &schedule {
        let row = measure(lws)?;
        debug_assert_eq!(row.lws, lws, "measure returned a row for the wrong lws");
        probes.push(row);
    }
    let model = CostModel::fit(gws, config, &probes);

    let mut ranking: Vec<CandidateEstimate> = candidates
        .iter()
        .map(|&lws| match probes.iter().find(|p| p.lws == lws) {
            Some(p) => CandidateEstimate { lws, cycles: p.cycles as f64, probed: true },
            None => CandidateEstimate { lws, cycles: model.predict(lws), probed: false },
        })
        .collect();
    ranking.sort_by(|a, b| a.cycles.total_cmp(&b.cycles).then(a.lws.cmp(&b.lws)));
    let chosen = ranking.first().expect("candidate grid is never empty").clone();

    Ok(TuneOutcome {
        candidates,
        probes,
        model,
        ranking,
        chosen_lws: chosen.lws,
        chosen_cycles: chosen.cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autotune::model::OccupancyFeatures;
    use crate::plan::DispatchStats;
    use std::convert::Infallible;

    /// A measure closure backed by a synthetic ground-truth law the
    /// model family can represent exactly.
    fn synthetic_measure(
        gws: u32,
        config: DeviceConfig,
    ) -> impl FnMut(u32) -> Result<ProbedRow, Infallible> {
        move |lws| {
            let f = OccupancyFeatures::for_launch(gws, lws, &config);
            let instructions =
                (f.total_warp_groups * (5.0 + 2.0 * f64::from(f.lws))).round() as u64;
            let issue = f.busiest_warp_groups * (5.0 + 2.0 * f64::from(f.lws));
            let cycles = (3.0 * issue + 25.0 * f.rounds + 200.0).round() as u64;
            let dispatch = DispatchStats { instructions, ..DispatchStats::default() };
            Ok(ProbedRow { lws, cycles, dispatch })
        }
    }

    #[test]
    fn tuner_recovers_the_true_optimum_under_budget() {
        let config = DeviceConfig::with_topology(2, 2, 4); // hp = 16
        let gws = 1024;
        // Ground truth over the full grid.
        let mut measure = synthetic_measure(gws, config);
        let grid = lws_candidates(gws, &config);
        let best = grid
            .iter()
            .map(|&l| (l, measure(l).unwrap().cycles))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap();
        // Budget 6 of a ~13-wide grid must still find it exactly (the
        // synthetic law is inside the model family).
        let outcome = tune_lws(gws, &config, 6, synthetic_measure(gws, config)).unwrap();
        assert_eq!(outcome.probes.len(), 6);
        assert_eq!(outcome.chosen_lws, best.0);
    }

    #[test]
    fn budget_covering_the_grid_degenerates_to_the_oracle() {
        let config = DeviceConfig::with_topology(1, 2, 4);
        let gws = 256;
        let outcome = tune_lws(gws, &config, 64, synthetic_measure(gws, config)).unwrap();
        assert_eq!(outcome.probes.len(), outcome.candidates.len());
        assert!(outcome.ranking.iter().all(|e| e.probed));
        // Chosen value equals the measured minimum.
        let min = outcome
            .probes
            .iter()
            .map(|p| (p.lws, p.cycles))
            .min_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
            .unwrap();
        assert_eq!(outcome.chosen_lws, min.0);
    }

    #[test]
    fn probed_minimum_beats_an_optimistic_prediction() {
        // The winner comes from the union of measured and predicted
        // values, so a measured optimum survives any model error.
        let config = DeviceConfig::with_topology(1, 2, 4);
        let outcome = tune_lws(512, &config, 3, synthetic_measure(512, config)).unwrap();
        let best_probe =
            outcome.probes.iter().map(|p| p.cycles as f64).fold(f64::INFINITY, f64::min);
        assert!(outcome.chosen_cycles <= best_probe);
    }

    #[test]
    fn measure_errors_abort_the_run() {
        let config = DeviceConfig::with_topology(1, 2, 4);
        let result = tune_lws(128, &config, 3, |_| Err::<ProbedRow, &str>("store offline"));
        assert_eq!(result.unwrap_err(), "store offline");
    }

    #[test]
    fn outcome_is_deterministic() {
        let config = DeviceConfig::with_topology(4, 4, 8);
        let a = tune_lws(4096, &config, 6, synthetic_measure(4096, config)).unwrap();
        let b = tune_lws(4096, &config, 6, synthetic_measure(4096, config)).unwrap();
        assert_eq!(a, b);
    }
}
