//! The occupancy × locality cost model: probed counters in, predicted
//! cycles per candidate out.
//!
//! The model is built on one structural fact of the POCL-style mapping
//! (see [`WorkMapping`]): a launch serialises into *warp groups* — warp
//! activations on the busiest core, each executing one task per lane in
//! lockstep — and every warp group issues the same per-task instruction
//! stream, whose length is affine in `lws` (dispatch-loop overhead plus
//! `lws` iterations of the kernel body). Cycles decompose as
//!
//! ```text
//! cycles(lws) ≈ α · WG(lws) · (i₀ + i₁·lws)  +  β · R(lws)  +  γ
//!               └─────────── occupancy ────────┘
//! ```
//!
//! where `WG` (busiest-core warp groups) and `R` (busiest-core dispatch
//! rounds) come from mapping arithmetic — no simulation — and the three
//! coefficients are **fit from probed counters**:
//!
//! * `i₀`, `i₁` (instructions per warp group, per task and per item) are
//!   regressed from the probes' measured issue counters
//!   ([`DispatchStats::instructions`]) against their analytic
//!   total-warp-group counts — stage 1, the *instruction sub-model*;
//! * `α` is the effective cycles per issued instruction on the critical
//!   core — the **locality** term: the probes' measured cycles embed
//!   their cache hit rates, DRAM stalls and divergence, so a
//!   memory-bound kernel fits a larger `α` than an ALU-bound one;
//! * `β` is the per-round overhead (respawn, barrier, drain overlap) and
//!   `γ` the fixed launch cost — stage 2, fit on measured cycles.
//!
//! Everything is deterministic f64 arithmetic in a fixed order (least
//! squares via scaled normal equations and Gaussian elimination — no
//! randomness, no iteration-order dependence), so a fit over the same
//! probes reproduces bit-identically.

use vortex_sim::DeviceConfig;

use crate::mapping::WorkMapping;
use crate::plan::DispatchStats;

/// One probed observation: a candidate `lws` actually executed (or
/// fetched from the campaign result store), with its measured cycles and
/// raw counters.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbedRow {
    /// The probed `local_work_size`.
    pub lws: u32,
    /// Measured device cycles of the run (all phases, drain included).
    pub cycles: u64,
    /// The run's dispatch/occupancy/issue counters; the instruction
    /// sub-model is fit from
    /// [`instructions`](DispatchStats::instructions).
    pub dispatch: DispatchStats,
}

/// The mapping-derived features of one candidate `lws` — pure
/// arithmetic over [`WorkMapping`], no simulation.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct OccupancyFeatures {
    /// The candidate `lws`.
    pub lws: u32,
    /// Dispatch rounds on the busiest core ([`WorkMapping::rounds`]).
    pub rounds: f64,
    /// Warp activations on the busiest core, summed over rounds
    /// ([`WorkMapping::busiest_warp_groups`]).
    pub busiest_warp_groups: f64,
    /// Warp activations summed over every core and round
    /// ([`WorkMapping::total_warp_groups`]) — the divisor that turns
    /// measured issue counts into instructions per warp group.
    pub total_warp_groups: f64,
}

impl OccupancyFeatures {
    /// Computes the features of running `gws` items at `lws` on `config`.
    /// `lws` is clamped to `1..=gws` exactly as the launch path clamps it.
    pub fn for_launch(gws: u32, lws: u32, config: &DeviceConfig) -> Self {
        let lws = lws.clamp(1, gws.max(1));
        let plan = WorkMapping::plan(gws, lws, config);
        OccupancyFeatures {
            lws,
            rounds: f64::from(plan.rounds()),
            busiest_warp_groups: plan.busiest_warp_groups() as f64,
            total_warp_groups: plan.total_warp_groups() as f64,
        }
    }
}

/// The fitted cost model (see the module docs for the functional form).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    gws: u32,
    config: DeviceConfig,
    /// Instructions per warp group: `i0 + i1·lws`.
    instr_per_task: f64,
    instr_per_item: f64,
    /// Stage-2 coefficients: cycles per busiest-core issued instruction
    /// (locality), cycles per round (overhead), fixed cycles (launch).
    cpi: f64,
    round_cost: f64,
    fixed_cost: f64,
}

impl CostModel {
    /// Fits the model to `probes` for a launch of `gws` items on
    /// `config`.
    ///
    /// One probe fixes only a proportionality constant (predictions
    /// scale the probe's cycles by the occupancy ratio); two probes fit
    /// the instruction sub-model and a `cpi`-plus-constant stage 2;
    /// three or more fit the full three-coefficient stage 2 by least
    /// squares.
    ///
    /// # Panics
    ///
    /// Panics if `probes` is empty or `gws == 0`.
    pub fn fit(gws: u32, config: &DeviceConfig, probes: &[ProbedRow]) -> Self {
        assert!(gws > 0, "gws must be positive");
        assert!(!probes.is_empty(), "cannot fit a cost model without probes");

        let feats: Vec<OccupancyFeatures> =
            probes.iter().map(|p| OccupancyFeatures::for_launch(gws, p.lws, config)).collect();

        // Stage 1: instructions per warp group is affine in lws.
        // Regress measured issue counts against [wg_total, wg_total·lws].
        let (instr_per_task, instr_per_item) = if probes.len() == 1 {
            let ipw = probes[0].dispatch.instructions as f64 / feats[0].total_warp_groups.max(1.0);
            (0.0, ipw / f64::from(feats[0].lws))
        } else {
            let rows: Vec<[f64; 2]> = feats
                .iter()
                .map(|f| [f.total_warp_groups, f.total_warp_groups * f64::from(f.lws)])
                .collect();
            let targets: Vec<f64> = probes.iter().map(|p| p.dispatch.instructions as f64).collect();
            let theta = least_squares::<2>(&rows, &targets);
            (theta[0], theta[1])
        };

        // Stage 2: cycles against [busiest-core issues, rounds, 1].
        let issue = |f: &OccupancyFeatures| {
            f.busiest_warp_groups * (instr_per_task + instr_per_item * f64::from(f.lws))
        };
        let targets: Vec<f64> = probes.iter().map(|p| p.cycles as f64).collect();
        let (cpi, round_cost, fixed_cost) = match probes.len() {
            1 => {
                let denom = issue(&feats[0]).max(1.0);
                (targets[0] / denom, 0.0, 0.0)
            }
            2 => {
                let rows: Vec<[f64; 2]> = feats.iter().map(|f| [issue(f), 1.0]).collect();
                let theta = least_squares::<2>(&rows, &targets);
                (theta[0], 0.0, theta[1])
            }
            _ => {
                let rows: Vec<[f64; 3]> = feats.iter().map(|f| [issue(f), f.rounds, 1.0]).collect();
                let theta = least_squares::<3>(&rows, &targets);
                (theta[0], theta[1], theta[2])
            }
        };

        CostModel {
            gws,
            config: *config,
            instr_per_task,
            instr_per_item,
            cpi,
            round_cost,
            fixed_cost,
        }
    }

    /// Predicted cycles at `lws` (clamped to at least 1.0 — a launch
    /// can never be free).
    pub fn predict(&self, lws: u32) -> f64 {
        let f = OccupancyFeatures::for_launch(self.gws, lws, &self.config);
        let issue =
            f.busiest_warp_groups * (self.instr_per_task + self.instr_per_item * f64::from(f.lws));
        (self.cpi * issue + self.round_cost * f.rounds + self.fixed_cost).max(1.0)
    }

    /// Predicted issue count of the whole device at `lws`, from the
    /// stage-1 instruction sub-model (diagnostic; comparable to
    /// [`DispatchStats::instructions`]).
    pub fn predict_instructions(&self, lws: u32) -> f64 {
        let f = OccupancyFeatures::for_launch(self.gws, lws, &self.config);
        (f.total_warp_groups * (self.instr_per_task + self.instr_per_item * f64::from(f.lws)))
            .max(0.0)
    }

    /// Fitted per-task instruction overhead `i₀` (dispatch-loop cost per
    /// warp group).
    pub fn instr_per_task(&self) -> f64 {
        self.instr_per_task
    }

    /// Fitted per-item instruction cost `i₁` (kernel body issues per
    /// `lws` iteration).
    pub fn instr_per_item(&self) -> f64 {
        self.instr_per_item
    }

    /// Fitted effective cycles per critical-core issued instruction `α`
    /// — the locality term (embeds the probes' cache hit rates and DRAM
    /// stalls).
    pub fn cycles_per_issue(&self) -> f64 {
        self.cpi
    }

    /// Fitted per-dispatch-round overhead `β` in cycles.
    pub fn round_cost(&self) -> f64 {
        self.round_cost
    }

    /// Fitted fixed launch cost `γ` in cycles.
    pub fn fixed_cost(&self) -> f64 {
        self.fixed_cost
    }
}

/// Least squares over `N` coefficients: minimises `‖X·θ − y‖²` via the
/// normal equations with per-column scaling (conditioning) and a tiny
/// relative ridge (determinism and solvability when probes are fewer
/// than coefficients or collinear). Fixed evaluation order throughout —
/// the same inputs reproduce bit-identical coefficients.
fn least_squares<const N: usize>(rows: &[[f64; N]], y: &[f64]) -> [f64; N] {
    // Column scales: max |x| per column, 1.0 for all-zero columns.
    let mut scale = [1.0f64; N];
    for (j, s) in scale.iter_mut().enumerate() {
        let m = rows.iter().map(|r| r[j].abs()).fold(0.0f64, f64::max);
        if m > 0.0 {
            *s = m;
        }
    }
    // Normal equations on the scaled columns.
    let mut ata = [[0.0f64; N]; N];
    let mut aty = [0.0f64; N];
    for (row, &target) in rows.iter().zip(y) {
        for j in 0..N {
            let xj = row[j] / scale[j];
            aty[j] += xj * target;
            for k in 0..N {
                ata[j][k] += xj * row[k] / scale[k];
            }
        }
    }
    // Relative ridge keeps the system solvable and the solution unique.
    let trace: f64 = (0..N).map(|j| ata[j][j]).sum();
    let ridge = 1e-12 * (trace / N as f64).max(1e-30);
    for (j, row) in ata.iter_mut().enumerate() {
        row[j] += ridge;
    }
    // Gaussian elimination with partial pivoting.
    let mut theta = solve(&mut ata, &mut aty);
    for j in 0..N {
        theta[j] /= scale[j];
    }
    theta
}

/// Solves `a·x = b` in place (partial pivoting; `a` is symmetric
/// positive definite after the ridge, so a pivot is always available).
fn solve<const N: usize>(a: &mut [[f64; N]; N], b: &mut [f64; N]) -> [f64; N] {
    for col in 0..N {
        let pivot = (col..N)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty pivot range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        let pivot_row = a[col];
        for row in col + 1..N {
            let factor = a[row][col] / diag;
            for (elem, p) in a[row].iter_mut().zip(pivot_row).skip(col) {
                *elem -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; N];
    for col in (0..N).rev() {
        let mut acc = b[col];
        for k in col + 1..N {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autotune::candidates::lws_candidates;

    /// Synthesises the counters a launch at `lws` would produce under a
    /// known ground-truth cost law, so fits can be checked exactly.
    fn synthetic_row(gws: u32, lws: u32, config: &DeviceConfig) -> (ProbedRow, u64) {
        let f = OccupancyFeatures::for_launch(gws, lws, config);
        let instructions = (f.total_warp_groups * (6.0 + 3.0 * f64::from(f.lws))).round() as u64;
        let issue = f.busiest_warp_groups * (6.0 + 3.0 * f64::from(f.lws));
        let cycles = (2.0 * issue + 40.0 * f.rounds + 500.0).round() as u64;
        let dispatch = DispatchStats { instructions, ..DispatchStats::default() };
        (ProbedRow { lws, cycles, dispatch }, cycles)
    }

    #[test]
    fn fit_on_synthetic_rows_predicts_the_exact_ordering() {
        let config = DeviceConfig::with_topology(2, 2, 4); // hp = 16
        let gws = 1024;
        let candidates = lws_candidates(gws, &config);
        let truth: Vec<(u32, u64)> =
            candidates.iter().map(|&lws| (lws, synthetic_row(gws, lws, &config).1)).collect();

        // Probe a 4-point subset and predict the whole grid.
        let probes: Vec<ProbedRow> =
            [1u32, 8, 64, 1024].iter().map(|&lws| synthetic_row(gws, lws, &config).0).collect();
        let model = CostModel::fit(gws, &config, &probes);

        let mut predicted: Vec<(u32, f64)> =
            candidates.iter().map(|&lws| (lws, model.predict(lws))).collect();
        predicted.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let mut expected = truth.clone();
        expected.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
        let predicted_order: Vec<u32> = predicted.iter().map(|(lws, _)| *lws).collect();
        let expected_order: Vec<u32> = expected.iter().map(|(lws, _)| *lws).collect();
        assert_eq!(predicted_order, expected_order, "fit must reproduce the exact cost ordering");

        // The synthetic law is inside the model family, so the fit is
        // exact (up to float round-off) — not just order-preserving.
        for (lws, cycles) in &truth {
            let rel = (model.predict(*lws) - *cycles as f64).abs() / *cycles as f64;
            assert!(rel < 1e-6, "lws={lws}: predicted {} vs true {cycles}", model.predict(*lws));
        }
    }

    #[test]
    fn stage1_recovers_the_instruction_law() {
        let config = DeviceConfig::with_topology(1, 2, 4);
        let gws = 512;
        let probes: Vec<ProbedRow> =
            [2u32, 16, 128].iter().map(|&lws| synthetic_row(gws, lws, &config).0).collect();
        let model = CostModel::fit(gws, &config, &probes);
        assert!((model.instr_per_task() - 6.0).abs() < 1e-5);
        assert!((model.instr_per_item() - 3.0).abs() < 1e-5);
        assert!((model.cycles_per_issue() - 2.0).abs() < 1e-4);
        assert!((model.round_cost() - 40.0).abs() < 1e-1);
        assert!((model.fixed_cost() - 500.0).abs() < 1.0);
        // The instruction sub-model predicts unprobed issue counts too.
        let (unprobed, _) = synthetic_row(gws, 32, &config);
        let rel = (model.predict_instructions(32) - unprobed.dispatch.instructions as f64).abs()
            / unprobed.dispatch.instructions as f64;
        assert!(rel < 1e-6);
    }

    #[test]
    fn degenerate_probe_counts_still_predict() {
        let config = DeviceConfig::with_topology(1, 2, 2);
        let gws = 256;
        // One probe: ratio model. busiest_wg·lws is near-constant across
        // the grid, so the curve may be flat — but predictions must stay
        // finite, positive and reproduce the probe itself.
        let (probe, cycles) = synthetic_row(gws, 4, &config);
        let model = CostModel::fit(gws, &config, &[probe]);
        for lws in [1u32, 4, 16, 64, 256] {
            let p = model.predict(lws);
            assert!(p.is_finite() && p >= 1.0, "lws={lws}: predicted {p}");
        }
        assert!((model.predict(4) - cycles as f64).abs() / (cycles as f64) < 1e-9);
        // Two probes pin the occupancy slope: cost must fall from the
        // serialisation extreme to the Eq. 1 point.
        let probes: Vec<ProbedRow> =
            [2u32, 32].iter().map(|&lws| synthetic_row(gws, lws, &config).0).collect();
        let model = CostModel::fit(gws, &config, &probes);
        assert!(model.predict(1) > model.predict(64));
        assert!(model.predict(64) >= 1.0);
    }

    #[test]
    fn fit_is_deterministic() {
        let config = DeviceConfig::with_topology(4, 4, 8);
        let gws = 4096;
        let probes: Vec<ProbedRow> = [1u32, 4, 32, 128, 1024, 4096]
            .iter()
            .map(|&l| synthetic_row(gws, l, &config).0)
            .collect();
        let a = CostModel::fit(gws, &config, &probes);
        let b = CostModel::fit(gws, &config, &probes);
        assert_eq!(a, b);
        assert_eq!(a.predict(512).to_bits(), b.predict(512).to_bits());
    }
}
