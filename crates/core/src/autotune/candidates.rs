//! The single source of lws-candidate arithmetic.
//!
//! Before PR 8 the Eq. 1 floor/ceiling variants and the candidate grid
//! were computed in two places with slightly different clamping
//! ([`LwsPolicy::lws_for`](crate::LwsPolicy::lws_for) and the oracle's
//! candidate enumeration). Both now delegate here, so the tuner, the
//! oracle and the online autotuner search exactly the same space.

use vortex_sim::DeviceConfig;

/// Eq. 1 of the paper with floor division: `max(1, ⌊gws / hp⌋)`,
/// clamped to `1..=gws`. The floor never exceeds `gws`, so the clamp
/// only enforces the lower bound — it is written out so the floor and
/// ceiling variants share one contract.
pub fn eq1_floor(gws: u32, hp: u64) -> u32 {
    debug_assert!(gws > 0, "gws must be positive");
    ((u64::from(gws) / hp.max(1)) as u32).clamp(1, gws.max(1))
}

/// Ceiling variant of Eq. 1: `max(1, ⌈gws / hp⌉)`, clamped to `1..=gws`
/// (the ceiling can exceed `gws` only when `gws = 0`, which the runtime
/// rejects; the clamp keeps the contract total anyway).
pub fn eq1_ceil(gws: u32, hp: u64) -> u32 {
    debug_assert!(gws > 0, "gws must be positive");
    (u64::from(gws).div_ceil(hp.max(1)) as u32).clamp(1, gws.max(1))
}

/// The candidate lws values any search over a launch of `gws` items on
/// `config` should consider: 1, every power of two below `gws`, `gws`
/// itself, and the two Eq. 1 variants — deduplicated and sorted
/// ascending.
///
/// This is the grid the exhaustive oracle measures, the grid the online
/// autotuner probes a subset of and predicts the rest of, and the grid
/// regret is computed over — one enumeration, three consumers.
///
/// # Examples
///
/// ```
/// use vortex_core::autotune::lws_candidates;
/// use vortex_sim::DeviceConfig;
/// let cfg = DeviceConfig::with_topology(1, 2, 4); // hp = 8
/// let c = lws_candidates(100, &cfg);
/// assert!(c.contains(&1) && c.contains(&64) && c.contains(&100));
/// assert!(c.contains(&12) && c.contains(&13)); // Eq. 1 floor and ceiling
/// assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
/// ```
pub fn lws_candidates(gws: u32, config: &DeviceConfig) -> Vec<u32> {
    let mut candidates = vec![1u32];
    let mut p = 2u32;
    while p < gws {
        candidates.push(p);
        p = p.saturating_mul(2);
    }
    candidates.push(gws.max(1));
    let hp = config.hardware_parallelism();
    candidates.push(eq1_floor(gws, hp));
    candidates.push(eq1_ceil(gws, hp));
    candidates.sort_unstable();
    candidates.dedup();
    candidates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_variants_agree_with_the_paper() {
        // Fig. 1: vecadd gws=128 on hp=8 -> 16 either way (divisible).
        assert_eq!(eq1_floor(128, 8), 16);
        assert_eq!(eq1_ceil(128, 8), 16);
        // hp > gws resolves to lws=1 in both variants.
        assert_eq!(eq1_floor(128, 256), 1);
        assert_eq!(eq1_ceil(128, 256), 1);
        // Non-divisible: floor and ceiling straddle the ratio.
        assert_eq!(eq1_floor(100, 8), 12);
        assert_eq!(eq1_ceil(100, 8), 13);
    }

    #[test]
    fn candidates_cover_extremes_and_eq1() {
        let cfg = DeviceConfig::with_topology(2, 4, 8); // hp = 64
        let c = lws_candidates(4096, &cfg);
        assert_eq!(*c.first().unwrap(), 1);
        assert_eq!(*c.last().unwrap(), 4096);
        assert!(c.contains(&64)); // Eq. 1
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn gws_one_collapses_to_a_single_candidate() {
        let cfg = DeviceConfig::with_topology(1, 1, 1);
        assert_eq!(lws_candidates(1, &cfg), vec![1]);
    }
}
