//! Deterministic probe scheduling: which K of the candidate grid to
//! actually simulate.
//!
//! The schedule is pure arithmetic over the candidate list — no
//! randomness, no measured data — so the same `(gws, config, budget)`
//! always probes the same configs and a warm campaign store replays a
//! tuning run without simulating anything.

use vortex_sim::DeviceConfig;

use crate::autotune::candidates::{eq1_floor, lws_candidates};

/// Picks the `budget` candidates to probe out of `candidates` (which
/// must be sorted ascending and deduplicated, as
/// [`lws_candidates`] returns them).
///
/// Selection order, deterministic:
///
/// 1. the Eq. 1 floor point (the paper's predicted optimum — the
///    anchor the cost model must get right),
/// 2. the smallest candidate (`lws = 1`, the serialisation extreme),
/// 3. the largest candidate (`lws = gws`, the under-fill extreme),
/// 4. then repeatedly the candidate that bisects the largest log₂ gap
///    between already-selected neighbours (ties: the leftmost gap, the
///    candidate closest to its geometric midpoint, then the smaller
///    lws).
///
/// The three seeds bracket the occupancy curve; gap bisection spreads
/// the remaining budget where the grid is least constrained. Returns
/// the probes sorted ascending. If `budget >= candidates.len()` every
/// candidate is probed (the tuner degenerates to the oracle).
pub fn probe_schedule(
    candidates: &[u32],
    gws: u32,
    config: &DeviceConfig,
    budget: usize,
) -> Vec<u32> {
    debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]), "candidates must be sorted+deduped");
    if budget >= candidates.len() {
        return candidates.to_vec();
    }
    let mut selected: Vec<u32> = Vec::with_capacity(budget);
    let eq1 = eq1_floor(gws, config.hardware_parallelism());
    // Seed with the Eq. 1 anchor (snapped to the nearest candidate) and
    // the extremes, respecting the budget.
    let anchor = nearest(candidates, eq1);
    for lws in [anchor, candidates[0], *candidates.last().expect("non-empty grid")] {
        if selected.len() < budget && !selected.contains(&lws) {
            selected.push(lws);
        }
    }
    selected.sort_unstable();
    // Fill the rest by bisecting the widest log2 gap.
    while selected.len() < budget {
        let Some(pick) = widest_gap_midpoint(candidates, &selected) else { break };
        let pos = selected.partition_point(|&s| s < pick);
        selected.insert(pos, pick);
    }
    selected
}

/// Convenience: the probe schedule over the full candidate grid of a
/// launch (`lws_candidates(gws, config)`).
pub fn probe_schedule_for(gws: u32, config: &DeviceConfig, budget: usize) -> Vec<u32> {
    probe_schedule(&lws_candidates(gws, config), gws, config, budget)
}

/// The candidate nearest to `target` in log₂ distance (ties: smaller).
fn nearest(candidates: &[u32], target: u32) -> u32 {
    *candidates
        .iter()
        .min_by(|&&a, &&b| log_dist(a, target).total_cmp(&log_dist(b, target)).then(a.cmp(&b)))
        .expect("non-empty grid")
}

fn log_dist(a: u32, b: u32) -> f64 {
    (f64::from(a.max(1)).log2() - f64::from(b.max(1)).log2()).abs()
}

/// The unselected candidate closest to the geometric midpoint of the
/// widest log₂ gap between consecutive selected probes (including the
/// gaps to the grid's ends). `None` when every candidate is selected.
fn widest_gap_midpoint(candidates: &[u32], selected: &[u32]) -> Option<u32> {
    let mut best: Option<(f64, u32)> = None; // (gap width, pick)
    let mut consider = |lo: u32, hi: u32| {
        if hi <= lo {
            return;
        }
        let width = log_dist(lo, hi);
        let mid = (f64::from(lo.max(1)).log2() + f64::from(hi.max(1)).log2()) / 2.0;
        // Closest unselected candidate strictly inside the gap.
        let pick = candidates
            .iter()
            .copied()
            .filter(|c| *c > lo && *c < hi && !selected.contains(c))
            .min_by(|&a, &b| {
                let da = (f64::from(a).log2() - mid).abs();
                let db = (f64::from(b).log2() - mid).abs();
                da.total_cmp(&db).then(a.cmp(&b))
            });
        if let Some(pick) = pick {
            let better = match best {
                None => true,
                // Strictly-wider wins; ties keep the leftmost gap.
                Some((w, _)) => width > w + 1e-12,
            };
            if better {
                best = Some((width, pick));
            }
        }
    };
    // Gaps between consecutive selected probes; selected always contains
    // the grid extremes (seeded first), so interior gaps cover the grid.
    for w in selected.windows(2) {
        consider(w[0], w[1]);
    }
    // Defensive: if extremes were cut by a tiny budget, cover the ends.
    if let (Some(&first), Some(&last)) = (selected.first(), selected.last()) {
        if let Some(&lo) = candidates.first() {
            consider(lo.min(first), first);
        }
        if let Some(&hi) = candidates.last() {
            consider(last, hi.max(last));
        }
    }
    best.map(|(_, pick)| pick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_eq1_and_extremes() {
        let cfg = DeviceConfig::with_topology(2, 2, 4); // hp = 16
        let grid = lws_candidates(4096, &cfg); // eq1 = 256
        let probes = probe_schedule(&grid, 4096, &cfg, 3);
        assert_eq!(probes, vec![1, 256, 4096]);
    }

    #[test]
    fn budget_six_bisects_the_gaps() {
        let cfg = DeviceConfig::with_topology(2, 2, 4); // hp = 16
        let grid = lws_candidates(4096, &cfg);
        let probes = probe_schedule(&grid, 4096, &cfg, 6);
        // Contains the three seeds plus three gap-bisectors.
        assert_eq!(probes.len(), 6);
        for seed in [1, 256, 4096] {
            assert!(probes.contains(&seed), "missing seed {seed} in {probes:?}");
        }
        assert!(probes.windows(2).all(|w| w[0] < w[1]));
        // Every probe is a grid member.
        assert!(probes.iter().all(|p| grid.contains(p)));
    }

    #[test]
    fn budget_at_least_grid_probes_everything() {
        let cfg = DeviceConfig::with_topology(1, 2, 4);
        let grid = lws_candidates(128, &cfg);
        assert_eq!(probe_schedule(&grid, 128, &cfg, 64), grid);
        assert_eq!(probe_schedule(&grid, 128, &cfg, grid.len()), grid);
    }

    #[test]
    fn schedule_is_deterministic_and_monotone_in_budget() {
        let cfg = DeviceConfig::with_topology(4, 8, 8);
        let grid = lws_candidates(8192, &cfg);
        let a = probe_schedule(&grid, 8192, &cfg, 6);
        let b = probe_schedule(&grid, 8192, &cfg, 6);
        assert_eq!(a, b);
        // A larger budget keeps all earlier probes (selection is greedy).
        let k3 = probe_schedule(&grid, 8192, &cfg, 3);
        let k12 = probe_schedule(&grid, 8192, &cfg, 12);
        assert!(k3.iter().all(|p| k12.contains(p)), "{k3:?} not in {k12:?}");
        assert_eq!(k12.len(), 12.min(grid.len()));
    }

    #[test]
    fn tiny_grid_small_budget() {
        let cfg = DeviceConfig::with_topology(1, 1, 1);
        let grid = lws_candidates(1, &cfg); // [1]
        assert_eq!(probe_schedule(&grid, 1, &cfg, 3), vec![1]);
        let grid = lws_candidates(4, &cfg); // [1, 2, 4]
        assert_eq!(probe_schedule(&grid, 4, &cfg, 1).len(), 1);
        assert_eq!(probe_schedule(&grid, 4, &cfg, 2).len(), 2);
    }
}
