//! Counter-driven online lws autotuning (PR 8, ROADMAP item 2).
//!
//! The paper's Eq. 1 predicts the best `local_work_size` from topology
//! alone; the exhaustive oracle measures every candidate. This module
//! closes the gap between the two: probe a **budget of K candidates**,
//! read their runtime counters, fit an occupancy × locality cost model,
//! and predict the remaining grid — an online autotuner that costs K
//! simulations instead of the full sweep, in the spirit of the
//! static+predictive autotuning literature (Lim et al., Brandt et al. —
//! see PAPERS.md).
//!
//! The pipeline, one sub-module per stage:
//!
//! 1. [`candidates`] — the single source of the lws grid (Eq. 1 floor
//!    and ceiling, the power-of-two ladder, the extremes). The static
//!    tuner and the oracle delegate here too.
//! 2. [`schedule`] — deterministic probe selection: Eq. 1 + extremes
//!    seeds, then largest-log₂-gap bisection up to the budget.
//! 3. [`model`] — the cost model `cycles ≈ α·WG(lws)·(i₀+i₁·lws) +
//!    β·rounds + γ`, fit from probed [`DispatchStats`] counters by
//!    deterministic least squares.
//! 4. [`tune`] — the loop: measure the schedule, fit, rank the union of
//!    measured and predicted cycles, pick the winner.
//!
//! Everything is deterministic integer/f64 arithmetic in fixed order —
//! same probes, same model, same choice, bit-for-bit. The bench-side
//! driver (`crates/bench/src/tune.rs`, `tune` binary) feeds this from
//! the content-addressed campaign store and evaluates regret against
//! the exhaustive oracle; `docs/TUNING.md` documents the methodology
//! end-to-end.
//!
//! [`DispatchStats`]: crate::DispatchStats
//!
//! # Examples
//!
//! Tune a launch with a synthetic cost function as the probe oracle:
//!
//! ```
//! use vortex_core::autotune::{tune_lws, ProbedRow};
//! use vortex_core::DispatchStats;
//! use vortex_sim::DeviceConfig;
//!
//! let cfg = DeviceConfig::with_topology(1, 2, 4); // hp = 8
//! let outcome = tune_lws::<std::convert::Infallible>(128, &cfg, 3, |lws| {
//!     // Stand-in for a simulated (or store-fetched) probe run.
//!     let cycles = 1000 / u64::from(lws) + 4 * u64::from(lws);
//!     let dispatch = DispatchStats { instructions: 640, ..Default::default() };
//!     Ok(ProbedRow { lws, cycles, dispatch })
//! })
//! .unwrap();
//! assert_eq!(outcome.probes.len(), 3);
//! assert!(outcome.candidates.contains(&outcome.chosen_lws));
//! ```

pub mod candidates;
pub mod model;
pub mod schedule;
pub mod tune;

pub use candidates::{eq1_ceil, eq1_floor, lws_candidates};
pub use model::{CostModel, OccupancyFeatures, ProbedRow};
pub use schedule::{probe_schedule, probe_schedule_for};
pub use tune::{tune_lws, CandidateEstimate, TuneOutcome};
