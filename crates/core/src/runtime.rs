//! The host-side runtime: buffers, argument blocks, kernel launches.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use vortex_asm::Program;
use vortex_mem::Cycle;
use vortex_sim::{Device, DeviceConfig, LaunchRecord, NullSink, ReplayCursor, SimError, TraceSink};

use crate::abi;
use crate::digest;
use crate::plan::LaunchPlan;
use crate::tuner::{LwsPolicy, MappingScenario};

/// A device-memory allocation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Buffer {
    /// Device address of the first byte.
    pub addr: u32,
    /// Size in bytes.
    pub bytes: u32,
}

impl Buffer {
    /// Number of 32-bit elements that fit in the buffer.
    pub fn len_words(&self) -> usize {
        (self.bytes / 4) as usize
    }
}

/// Parameters of one kernel launch.
#[derive(Copy, Clone, Debug)]
pub struct LaunchParams {
    /// Global work size (total kernel iterations). Must be positive.
    pub gws: u32,
    /// The `local_work_size` policy (the paper's tunable).
    pub policy: LwsPolicy,
    /// Simulation budget for this launch.
    pub max_cycles: Cycle,
    /// Entry address override for multi-phase programs (`None` = the
    /// loaded program's entry).
    pub entry: Option<u32>,
}

impl LaunchParams {
    /// A launch of `gws` items with the hardware-aware [`LwsPolicy::Auto`].
    pub fn new(gws: u32) -> Self {
        LaunchParams { gws, policy: LwsPolicy::Auto, max_cycles: 2_000_000_000, entry: None }
    }

    /// Starts execution at an explicit entry address (for programs holding
    /// several kernels).
    pub fn entry(mut self, addr: u32) -> Self {
        self.entry = Some(addr);
        self
    }

    /// Sets the lws policy.
    pub fn policy(mut self, policy: LwsPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the cycle budget.
    pub fn max_cycles(mut self, budget: Cycle) -> Self {
        self.max_cycles = budget;
        self
    }
}

/// What a launch did and what it cost.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaunchReport {
    /// The `lws` value the policy resolved to.
    pub lws: u32,
    /// Tasks created (`⌈gws/lws⌉`).
    pub n_tasks: u32,
    /// The paper's mapping regime for this launch.
    pub scenario: MappingScenario,
    /// In-kernel dispatch rounds of the busiest core.
    pub rounds: u32,
    /// Dispatch rounds summed over every participating core (the raw
    /// counter behind the probe's occupancy statistics).
    pub total_rounds: u64,
    /// Cores that received work.
    pub active_cores: usize,
    /// Elapsed device cycles, including dispatch overhead and drain.
    pub cycles: Cycle,
    /// Instructions issued during the launch.
    pub instructions: u64,
    /// Instructions issued through the fused basic-block path (subset of
    /// [`instructions`](LaunchReport::instructions)).
    pub fused_instructions: u64,
    /// Fused block dispatches during the launch.
    pub fused_blocks: u64,
}

/// An error raised by [`Runtime::launch`].
#[derive(Debug)]
pub enum LaunchError {
    /// The launch parameters are unusable.
    InvalidParams {
        /// Explanation.
        reason: String,
    },
    /// No program is loaded.
    NoProgram,
    /// The device reported an execution error.
    Sim(SimError),
    /// The device heap is exhausted.
    OutOfMemory {
        /// Bytes requested.
        requested: u32,
    },
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::InvalidParams { reason } => write!(f, "invalid launch: {reason}"),
            LaunchError::NoProgram => f.write_str("no kernel program loaded"),
            LaunchError::Sim(e) => write!(f, "device error: {e}"),
            LaunchError::OutOfMemory { requested } => {
                write!(f, "device heap exhausted allocating {requested} bytes")
            }
        }
    }
}

impl Error for LaunchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LaunchError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for LaunchError {
    fn from(e: SimError) -> Self {
        LaunchError::Sim(e)
    }
}

/// The OpenCL-style host runtime.
///
/// Owns a [`Device`], a bump allocator over the device heap, and a cache
/// of precompiled [`LaunchPlan`]s: a launch resolves its lws policy, looks
/// the plan up by `(gws, lws)` (compiling it on first use), writes the
/// plan's pre-rendered dispatch blocks and starts warp 0 of each
/// participating core (the in-kernel dispatch loop does the rest — see
/// `vortex-kernels`). Plans depend only on `(gws, lws)` and the fixed
/// device configuration, so the cache survives [`reset`](Runtime::reset)
/// and policy sweeps re-execute plans instead of re-deriving them.
///
/// # Examples
///
/// See the crate-level example of `vortex-kernels`, which builds a real
/// kernel; at the runtime level a launch looks like:
///
/// ```no_run
/// use vortex_core::{LaunchParams, LwsPolicy, Runtime};
/// use vortex_sim::DeviceConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rt = Runtime::new(DeviceConfig::with_topology(2, 4, 8));
/// # let program = vortex_asm::Assembler::new(0x8000_0000).assemble()?;
/// rt.load_program(&program);
/// let report = rt.launch(&LaunchParams::new(4096).policy(LwsPolicy::Auto), None)?;
/// println!("{} cycles with lws={}", report.cycles, report.lws);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Runtime {
    device: Device,
    heap_next: u32,
    entry: Option<u32>,
    dispatch_overhead: Cycle,
    /// Precompiled launch plans keyed by `(gws, resolved lws)` — policies
    /// resolving to the same `lws` share one plan.
    plans: HashMap<(u32, u32), LaunchPlan>,
    plan_hits: u64,
    plan_misses: u64,
    /// Canonical digest of the device configuration (computed once at
    /// construction — the configuration is immutable afterwards).
    config_digest: u64,
    /// Canonical digest of the loaded program image, if any.
    program_digest: Option<u64>,
}

impl Runtime {
    /// Creates a runtime around a fresh device with the default host
    /// dispatch overhead (256 cycles per launch).
    pub fn new(config: DeviceConfig) -> Self {
        Runtime {
            device: Device::new(config),
            heap_next: abi::HEAP_BASE,
            entry: None,
            dispatch_overhead: 256,
            plans: HashMap::new(),
            plan_hits: 0,
            plan_misses: 0,
            config_digest: digest::digest_device_config(&config),
            program_digest: None,
        }
    }

    /// Overrides the host-side per-launch dispatch overhead.
    pub fn with_dispatch_overhead(mut self, cycles: Cycle) -> Self {
        self.dispatch_overhead = cycles;
        self
    }

    /// The underlying device.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable access to the underlying device.
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Loads the kernel image and records its entry point (and canonical
    /// content digest — see [`Runtime::program_digest`]).
    pub fn load_program(&mut self, program: &Program) {
        self.device.load_program(program);
        self.entry = Some(program.entry());
        self.program_digest = Some(digest::digest_program(program));
    }

    /// Canonical [`digest`](crate::digest) of the loaded program image
    /// (`None` before [`load_program`](Runtime::load_program)). Together
    /// with [`config_digest`](Runtime::config_digest) this identifies the
    /// pure-function inputs of a run — the campaign result cache keys on
    /// them.
    pub fn program_digest(&self) -> Option<u64> {
        self.program_digest
    }

    /// Canonical digest of the device configuration (stable across runs
    /// and builds; survives [`reset`](Runtime::reset) by construction).
    pub fn config_digest(&self) -> u64 {
        self.config_digest
    }

    /// Returns the runtime to its post-[`load_program`](Runtime::load_program)
    /// state: device memory, caches, counters and the clock are cleared,
    /// the heap allocator rewinds, and the loaded program stays resident.
    /// The launch-plan cache also stays resident — plans depend only on
    /// `(gws, lws)` and the device configuration, neither of which a
    /// reset changes.
    ///
    /// This is what lets a measurement campaign reuse one runtime across
    /// many launches instead of rebuilding the device (and re-assembling
    /// the kernel) for every data point.
    pub fn reset(&mut self) {
        self.device.reset();
        self.heap_next = abi::HEAP_BASE;
    }

    /// `(hits, misses)` of the launch-plan cache since construction. A
    /// hit means the launch re-executed a precompiled plan; a miss means
    /// it compiled (and cached) a new one.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.plan_hits, self.plan_misses)
    }

    /// Number of distinct `(gws, lws)` plans currently cached.
    pub fn plan_cache_len(&self) -> usize {
        self.plans.len()
    }

    /// Allocates `bytes` of device memory (64-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`LaunchError::OutOfMemory`] when the 32-bit heap would
    /// overflow.
    pub fn alloc(&mut self, bytes: u32) -> Result<Buffer, LaunchError> {
        let aligned = bytes.div_ceil(64) * 64;
        let addr = self.heap_next;
        let next =
            addr.checked_add(aligned).ok_or(LaunchError::OutOfMemory { requested: bytes })?;
        self.heap_next = next;
        Ok(Buffer { addr, bytes })
    }

    /// Allocates and fills a buffer of `f32` values.
    ///
    /// # Errors
    ///
    /// Propagates [`LaunchError::OutOfMemory`].
    pub fn alloc_f32(&mut self, data: &[f32]) -> Result<Buffer, LaunchError> {
        let buf = self.alloc((data.len() * 4) as u32)?;
        self.device.memory_mut().write_f32_slice(buf.addr, data);
        Ok(buf)
    }

    /// Allocates and fills a buffer of `u32` values.
    ///
    /// # Errors
    ///
    /// Propagates [`LaunchError::OutOfMemory`].
    pub fn alloc_u32(&mut self, data: &[u32]) -> Result<Buffer, LaunchError> {
        let buf = self.alloc((data.len() * 4) as u32)?;
        self.device.memory_mut().write_u32_slice(buf.addr, data);
        Ok(buf)
    }

    /// Reads a buffer back as `f32` values.
    pub fn read_f32(&self, buf: Buffer) -> Vec<f32> {
        self.device.memory().read_f32_vec(buf.addr, (buf.bytes / 4) as usize)
    }

    /// Reads a buffer back as `u32` values.
    pub fn read_u32(&self, buf: Buffer) -> Vec<u32> {
        self.device.memory().read_u32_vec(buf.addr, (buf.bytes / 4) as usize)
    }

    /// Writes the kernel argument block (32-bit words at
    /// [`abi::ARGS_BASE`]).
    pub fn set_args(&mut self, words: &[u32]) {
        self.device.memory_mut().write_u32_slice(abi::ARGS_BASE, words);
    }

    /// Launches the loaded kernel over `params.gws` iterations.
    ///
    /// Resolves the lws policy against the device's micro-architecture
    /// parameters (Eq. 1 for [`LwsPolicy::Auto`]), looks up (or compiles)
    /// the [`LaunchPlan`] for `(gws, lws)`, writes its pre-rendered
    /// dispatch blocks, pays the host dispatch overhead once, starts the
    /// plan's warp-0 set and runs the device to completion.
    ///
    /// # Errors
    ///
    /// [`LaunchError::NoProgram`] before [`Runtime::load_program`],
    /// [`LaunchError::InvalidParams`] for a zero
    /// `gws`, or [`LaunchError::Sim`] if the device faults.
    pub fn launch<'a, 'b>(
        &mut self,
        params: &LaunchParams,
        trace: Option<&'a mut (dyn TraceSink + 'b)>,
    ) -> Result<LaunchReport, LaunchError> {
        match trace {
            Some(sink) => self.launch_with(params, Some(sink)),
            None => self.launch_with::<NullSink>(params, None),
        }
    }

    /// [`launch`](Runtime::launch), generic over the trace sink type, so
    /// untraced callers run the device's monomorphised fast path.
    ///
    /// # Errors
    ///
    /// As for [`launch`](Runtime::launch).
    pub fn launch_with<S: TraceSink + ?Sized>(
        &mut self,
        params: &LaunchParams,
        trace: Option<&mut S>,
    ) -> Result<LaunchReport, LaunchError> {
        let entry = match params.entry {
            Some(addr) => {
                if self.entry.is_none() {
                    return Err(LaunchError::NoProgram);
                }
                addr
            }
            None => self.entry.ok_or(LaunchError::NoProgram)?,
        };
        if params.gws == 0 {
            return Err(LaunchError::InvalidParams { reason: "gws must be positive".into() });
        }
        let config = *self.device.config();
        let lws = params.policy.lws_for(params.gws, &config);
        let plan = match self.plans.entry((params.gws, lws)) {
            Entry::Occupied(e) => {
                self.plan_hits += 1;
                e.into_mut()
            }
            Entry::Vacant(v) => {
                self.plan_misses += 1;
                v.insert(LaunchPlan::compile(params.gws, lws, &config))
            }
        };
        let device = &mut self.device;

        let start_cycle = device.now();
        let start = *device.counters();

        // Host writes the pre-rendered dispatch blocks word by word
        // (`write_u32_slice` would heap-allocate a staging buffer per
        // call — a per-launch cost on exactly the path this cache
        // exists to strip), then pays the dispatch latency and starts
        // the plan's warp-0 set.
        let mem = device.memory_mut();
        for i in 0..plan.active_cores() {
            let (addr, words) = plan.core_block(i);
            for (j, &word) in words.iter().enumerate() {
                mem.write_u32(addr + 4 * j as u32, word);
            }
        }
        device.advance_time(self.dispatch_overhead);

        device.start_warps(plan.starts(), entry);
        let limit = start_cycle + params.max_cycles;
        device.run_with(limit, trace)?;

        let end = device.counters();
        Ok(plan.report(
            device.now() - start_cycle,
            end.instructions - start.instructions,
            end.fused_instructions - start.fused_instructions,
            end.fused_blocks - start.fused_blocks,
        ))
    }

    /// [`launch`](Runtime::launch) in **replay** mode: the launch's
    /// value-dependent outcomes are consumed from `rec` (recorded over
    /// the same program, data and `(gws, lws)` by a
    /// [`TraceRecorder`](vortex_sim::TraceRecorder)) instead of executed.
    /// Plan resolution, dispatch overhead and warp start run exactly as
    /// in execute mode, so the report is bit-identical; the dispatch
    /// blocks are *not* written to device memory — replay never reads
    /// memory, the in-kernel dispatch loads were recorded like any other
    /// access.
    ///
    /// `cursor` must come from [`LaunchRecord::cursor`] on `rec`; the
    /// launch fails with [`SimError::ReplayIncomplete`] if it halts
    /// without consuming the whole record.
    ///
    /// # Errors
    ///
    /// As for [`launch`](Runtime::launch), plus
    /// [`SimError::ReplayDiverged`] / [`SimError::ReplayIncomplete`]
    /// (via [`LaunchError::Sim`]) when the trace does not match the run.
    pub fn launch_replay<S: TraceSink + ?Sized>(
        &mut self,
        params: &LaunchParams,
        trace: Option<&mut S>,
        rec: &LaunchRecord,
        cursor: &mut ReplayCursor,
    ) -> Result<LaunchReport, LaunchError> {
        let entry = match params.entry {
            Some(addr) => {
                if self.entry.is_none() {
                    return Err(LaunchError::NoProgram);
                }
                addr
            }
            None => self.entry.ok_or(LaunchError::NoProgram)?,
        };
        if params.gws == 0 {
            return Err(LaunchError::InvalidParams { reason: "gws must be positive".into() });
        }
        let config = *self.device.config();
        let lws = params.policy.lws_for(params.gws, &config);
        let plan = match self.plans.entry((params.gws, lws)) {
            Entry::Occupied(e) => {
                self.plan_hits += 1;
                e.into_mut()
            }
            Entry::Vacant(v) => {
                self.plan_misses += 1;
                v.insert(LaunchPlan::compile(params.gws, lws, &config))
            }
        };
        let device = &mut self.device;

        let start_cycle = device.now();
        let start = *device.counters();

        device.advance_time(self.dispatch_overhead);
        device.start_warps(plan.starts(), entry);
        let limit = start_cycle + params.max_cycles;
        device.run_replay(limit, trace, rec, cursor)?;
        let leftover = rec.leftover(cursor);
        if leftover != 0 {
            return Err(LaunchError::Sim(SimError::ReplayIncomplete { leftover }));
        }

        let end = device.counters();
        Ok(plan.report(
            device.now() - start_cycle,
            end.instructions - start.instructions,
            end.fused_instructions - start.fused_instructions,
            end.fused_blocks - start.fused_blocks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vortex_asm::Assembler;
    use vortex_isa::reg;

    fn trivial_program() -> Program {
        // Every started warp halts immediately.
        let mut a = Assembler::new(abi::CODE_BASE);
        a.vx_tmc(reg::ZERO);
        a.assemble().unwrap()
    }

    #[test]
    fn launch_without_program_fails() {
        let mut rt = Runtime::new(DeviceConfig::default());
        let err = rt.launch(&LaunchParams::new(16), None).unwrap_err();
        assert!(matches!(err, LaunchError::NoProgram));
    }

    #[test]
    fn zero_gws_is_rejected() {
        let mut rt = Runtime::new(DeviceConfig::default());
        rt.load_program(&trivial_program());
        let err = rt.launch(&LaunchParams::new(0), None).unwrap_err();
        assert!(matches!(err, LaunchError::InvalidParams { .. }));
    }

    #[test]
    fn trivial_launch_reports_costs() {
        let mut rt = Runtime::new(DeviceConfig::with_topology(2, 2, 4));
        rt.load_program(&trivial_program());
        let report = rt.launch(&LaunchParams::new(16), None).unwrap();
        assert_eq!(report.lws, 1); // 16 items / hp 16
        assert_eq!(report.n_tasks, 16);
        assert_eq!(report.active_cores, 2);
        assert!(report.cycles >= 256, "includes dispatch overhead");
        assert!(report.instructions >= 2); // one tmc per core's warp 0
    }

    #[test]
    fn allocator_aligns_and_advances() {
        let mut rt = Runtime::new(DeviceConfig::default());
        let a = rt.alloc(10).unwrap();
        let b = rt.alloc(100).unwrap();
        assert_eq!(a.addr % 64, 0);
        assert_eq!(b.addr, a.addr + 64);
        assert_eq!(b.addr % 64, 0);
    }

    #[test]
    fn buffers_roundtrip_data() {
        let mut rt = Runtime::new(DeviceConfig::default());
        let data = vec![1.0f32, -2.5, 3.25];
        let buf = rt.alloc_f32(&data).unwrap();
        assert_eq!(rt.read_f32(buf), data);
        let words = vec![7u32, 9];
        let buf = rt.alloc_u32(&words).unwrap();
        assert_eq!(rt.read_u32(buf), words);
    }

    #[test]
    fn dispatch_blocks_are_written() {
        let mut rt = Runtime::new(DeviceConfig::with_topology(2, 2, 2));
        rt.load_program(&trivial_program());
        rt.launch(&LaunchParams::new(64).policy(LwsPolicy::Explicit(4)), None).unwrap();
        // 16 tasks over 2 cores: core 0 gets 0..8, core 1 gets 8..16.
        let mem = rt.device().memory();
        let b0 = abi::dispatch_block_addr(0);
        let b1 = abi::dispatch_block_addr(1);
        assert_eq!(mem.read_u32(b0 + abi::dispatch::TASK_BASE), 0);
        assert_eq!(mem.read_u32(b0 + abi::dispatch::TASK_END), 8);
        assert_eq!(mem.read_u32(b1 + abi::dispatch::TASK_BASE), 8);
        assert_eq!(mem.read_u32(b1 + abi::dispatch::TASK_END), 16);
        assert_eq!(mem.read_u32(b0 + abi::dispatch::LWS), 4);
        assert_eq!(mem.read_u32(b0 + abi::dispatch::GWS), 64);
    }

    #[test]
    fn plan_cache_hits_reproduce_cold_reports() {
        let config = DeviceConfig::with_topology(2, 2, 4);
        let mut rt = Runtime::new(config);
        rt.load_program(&trivial_program());
        let params = LaunchParams::new(256).policy(LwsPolicy::Explicit(2));
        let cold = rt.launch(&params, None).unwrap();
        assert_eq!(rt.plan_cache_stats(), (0, 1));
        rt.reset();
        let hit = rt.launch(&params, None).unwrap();
        assert_eq!(rt.plan_cache_stats(), (1, 1), "reset must keep the plan cache");
        assert_eq!(hit, cold, "cached plan drifted from the cold compile");
        // A fresh runtime's cold plan agrees too.
        let mut fresh = Runtime::new(config);
        fresh.load_program(&trivial_program());
        assert_eq!(fresh.launch(&params, None).unwrap(), cold);
        assert_eq!(fresh.plan_cache_stats(), (0, 1));
    }

    #[test]
    fn policies_resolving_to_the_same_lws_share_a_plan() {
        let mut rt = Runtime::new(DeviceConfig::with_topology(1, 2, 4)); // hp = 8
        rt.load_program(&trivial_program());
        // Auto resolves 128/8 = 16; Explicit(16) must hit the same plan.
        let auto = rt.launch(&LaunchParams::new(128).policy(LwsPolicy::Auto), None).unwrap();
        rt.reset();
        let explicit =
            rt.launch(&LaunchParams::new(128).policy(LwsPolicy::Explicit(16)), None).unwrap();
        assert_eq!(rt.plan_cache_stats(), (1, 1));
        assert_eq!(rt.plan_cache_len(), 1);
        assert_eq!(auto, explicit);
    }

    #[test]
    fn reports_carry_total_rounds() {
        let mut rt = Runtime::new(DeviceConfig::with_topology(2, 2, 4)); // 8 slots/core
        rt.load_program(&trivial_program());
        // 32 tasks over 2 cores: 16/core on 8 slots = 2 rounds each.
        let r = rt.launch(&LaunchParams::new(128).policy(LwsPolicy::Explicit(4)), None).unwrap();
        assert_eq!(r.rounds, 2);
        assert_eq!(r.total_rounds, 4);
    }

    #[test]
    fn digest_hooks_identify_run_inputs() {
        let config = DeviceConfig::with_topology(2, 2, 4);
        let mut rt = Runtime::new(config);
        assert_eq!(rt.program_digest(), None);
        assert_eq!(rt.config_digest(), digest::digest_device_config(&config));
        let program = trivial_program();
        rt.load_program(&program);
        assert_eq!(rt.program_digest(), Some(digest::digest_program(&program)));
        rt.reset();
        assert_eq!(rt.program_digest(), Some(digest::digest_program(&program)), "survives reset");
        // A different topology digests differently.
        let other = Runtime::new(DeviceConfig::with_topology(2, 2, 8));
        assert_ne!(other.config_digest(), rt.config_digest());
    }

    #[test]
    fn policy_changes_reported_lws() {
        let mut rt = Runtime::new(DeviceConfig::with_topology(1, 2, 4)); // hp=8
        rt.load_program(&trivial_program());
        let r = rt.launch(&LaunchParams::new(128).policy(LwsPolicy::Auto), None).unwrap();
        assert_eq!(r.lws, 16);
        assert_eq!(r.scenario, MappingScenario::ExactFit);
        let r = rt.launch(&LaunchParams::new(128).policy(LwsPolicy::Fixed32), None).unwrap();
        assert_eq!(r.lws, 32);
        assert_eq!(r.scenario, MappingScenario::Underfilled);
    }
}
