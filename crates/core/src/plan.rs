//! Precompiled launch plans: everything a kernel launch needs, derived
//! once and re-executed many times.
//!
//! A launch used to re-derive its whole host side on every call: resolve
//! the lws policy, plan the task mapping, write six dispatch-block words
//! per core field by field, then start warp 0 everywhere. A measurement
//! campaign repeats the *same* launch thousands of times (three policies
//! per configuration, many configurations resolving to the same `lws`),
//! so the launch path is the unit of scale — [`LaunchPlan`] precompiles
//! the validated parameters, the paper's mapping regime, the per-core
//! task ranges, the rendered dispatch-block words (via
//! [`abi::render_dispatch_block`], the single copy of the host-side ABI
//! layout) and the warp-0 start set. `Runtime` caches compiled plans
//! keyed by `(gws, resolved lws)`, so a repeated launch is a lookup plus
//! a bulk write per participating core.

use vortex_sim::DeviceConfig;

use crate::abi;
use crate::mapping::WorkMapping;
use crate::runtime::LaunchReport;
use crate::tuner::MappingScenario;

/// A fully precompiled kernel launch for one `(gws, lws)` on one device
/// configuration.
///
/// Everything here is derived from `(gws, lws, config)` alone — the entry
/// address and the cycle budget stay per-call — so a plan can be cached
/// for the lifetime of a [`Runtime`](crate::Runtime) (the device
/// configuration never changes underneath it) and survives
/// [`Runtime::reset`](crate::Runtime::reset).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaunchPlan {
    gws: u32,
    lws: u32,
    n_tasks: u32,
    scenario: MappingScenario,
    rounds: u32,
    total_rounds: u64,
    /// Core ids that receive work (ascending) — the warp-0 start set.
    starts: Vec<usize>,
    /// Rendered dispatch-block words, [`abi::DISPATCH_HOST_WORDS`] per
    /// started core, in [`starts`](Self::starts) order.
    words: Vec<u32>,
}

impl LaunchPlan {
    /// Compiles the plan for `gws` iterations at the resolved `lws` on
    /// `config`.
    ///
    /// # Panics
    ///
    /// Panics if `gws` or `lws` is zero (the runtime validates both
    /// before compiling).
    pub fn compile(gws: u32, lws: u32, config: &DeviceConfig) -> Self {
        let mapping = WorkMapping::plan(gws, lws, config);
        let ranges = mapping.core_ranges();
        let mut starts = Vec::with_capacity(ranges.len());
        let mut words = Vec::with_capacity(ranges.len() * abi::DISPATCH_HOST_WORDS);
        for range in ranges {
            starts.push(range.core);
            words.extend_from_slice(&abi::render_dispatch_block(
                range.task_base,
                range.task_end,
                lws,
                gws,
                abi::ARGS_BASE,
            ));
        }
        LaunchPlan {
            gws,
            lws,
            n_tasks: mapping.n_tasks(),
            scenario: mapping.scenario(),
            rounds: mapping.rounds(),
            total_rounds: mapping.total_rounds(),
            starts,
            words,
        }
    }

    /// Global work size the plan was compiled for.
    pub fn gws(&self) -> u32 {
        self.gws
    }

    /// The resolved `local_work_size`.
    pub fn lws(&self) -> u32 {
        self.lws
    }

    /// Total tasks (`⌈gws/lws⌉`).
    pub fn n_tasks(&self) -> u32 {
        self.n_tasks
    }

    /// The paper's mapping regime.
    pub fn scenario(&self) -> MappingScenario {
        self.scenario
    }

    /// In-kernel dispatch rounds of the busiest core.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Dispatch rounds summed over every participating core.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Core ids that receive work — the warp-0 start set.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }

    /// Cores that participate in the launch.
    pub fn active_cores(&self) -> usize {
        self.starts.len()
    }

    /// The `i`-th participating core's dispatch-block address and its
    /// rendered words, ready for one bulk write.
    pub fn core_block(&self, i: usize) -> (u32, &[u32]) {
        let at = i * abi::DISPATCH_HOST_WORDS;
        (abi::dispatch_block_addr(self.starts[i]), &self.words[at..at + abi::DISPATCH_HOST_WORDS])
    }

    /// Assembles the launch report for one execution of this plan.
    pub(crate) fn report(
        &self,
        cycles: vortex_mem::Cycle,
        instructions: u64,
        fused_instructions: u64,
        fused_blocks: u64,
    ) -> LaunchReport {
        LaunchReport {
            lws: self.lws,
            n_tasks: self.n_tasks,
            scenario: self.scenario,
            rounds: self.rounds,
            total_rounds: self.total_rounds,
            active_cores: self.active_cores(),
            cycles,
            instructions,
            fused_instructions,
            fused_blocks,
        }
    }
}

/// Raw dispatch-round and occupancy counters, accumulated over launches.
///
/// All fields are plain sums, so shard merges reconstruct full-grid
/// values exactly (the same backward-compatible scheme as the memory
/// counters: derived rates are computed at display time only).
///
/// These are the counters the paper argues should drive the mapping
/// choice, and since PR 8 they literally do: the online autotuner
/// ([`autotune`](crate::autotune)) fits its cost model from the probes'
/// `instructions` against analytic warp-group counts. The full glossary
/// — what each counter means micro-architecturally and how the cost
/// model consumes it — is in `docs/TUNING.md`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Kernel launches executed (one per phase per run). Single-phase
    /// kernels contribute 1 per run; `gcn_layer` contributes 2.
    pub launches: u64,
    /// In-kernel dispatch rounds, summed over launches and cores (each
    /// core's warp 0 runs its own spawn → work → barrier round loop).
    /// `rounds / launches` ≫ 1 marks the paper's multi-call regime; the
    /// cost model's per-round overhead term β prices exactly these.
    pub rounds: u64,
    /// Tasks dispatched, summed over launches. Every task occupies one
    /// hardware lane slot in exactly one round, so `round_tasks / rounds`
    /// is the mean number of busy lane slots per dispatch round — the
    /// occupancy marker (low values flag under-filled launches).
    pub round_tasks: u64,
    /// Instructions issued, summed over launches and cores. Divided by
    /// the analytic total warp-group count of the mapping
    /// ([`WorkMapping::total_warp_groups`](crate::WorkMapping::total_warp_groups)),
    /// this yields instructions per warp group — the affine-in-lws
    /// quantity the autotuner's stage-1 sub-model regresses.
    pub instructions: u64,
    /// Instructions issued through the fused basic-block path (a subset
    /// of [`instructions`](DispatchStats::instructions)); the fused
    /// share tracks how much of the stream the PR 6 superinstruction
    /// engine covers.
    pub fused_instructions: u64,
    /// Fused block dispatches, summed over launches
    /// (`fused_instructions / fused_blocks` = mean fused block length).
    pub fused_blocks: u64,
}

impl DispatchStats {
    /// The counters of one launch.
    pub fn of_launch(report: &LaunchReport) -> Self {
        DispatchStats {
            launches: 1,
            rounds: report.total_rounds,
            round_tasks: u64::from(report.n_tasks),
            instructions: report.instructions,
            fused_instructions: report.fused_instructions,
            fused_blocks: report.fused_blocks,
        }
    }

    /// Adds `other`'s counters into `self`.
    pub fn accumulate(&mut self, other: &DispatchStats) {
        self.launches += other.launches;
        self.rounds += other.rounds;
        self.round_tasks += other.round_tasks;
        self.instructions += other.instructions;
        self.fused_instructions += other.fused_instructions;
        self.fused_blocks += other.fused_blocks;
    }

    /// Mean dispatch rounds per launch (0.0 before any launch).
    pub fn rounds_per_launch(&self) -> f64 {
        if self.launches == 0 {
            0.0
        } else {
            self.rounds as f64 / self.launches as f64
        }
    }

    /// Mean busy lane slots per dispatch round (0.0 before any round).
    pub fn mean_lanes_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.round_tasks as f64 / self.rounds as f64
        }
    }

    /// Share of instructions issued through the fused basic-block path
    /// (0.0 before any instruction).
    pub fn fused_share(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.fused_instructions as f64 / self.instructions as f64
        }
    }

    /// Mean instructions per fused block dispatch (0.0 before any block).
    pub fn mean_fused_block_len(&self) -> f64 {
        if self.fused_blocks == 0 {
            0.0
        } else {
            self.fused_instructions as f64 / self.fused_blocks as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_renders_one_block_per_active_core() {
        let config = DeviceConfig::with_topology(2, 2, 2);
        let plan = LaunchPlan::compile(64, 4, &config); // 16 tasks over 2 cores
        assert_eq!(plan.active_cores(), 2);
        assert_eq!(plan.starts(), &[0, 1]);
        let (addr0, words0) = plan.core_block(0);
        assert_eq!(addr0, abi::dispatch_block_addr(0));
        assert_eq!(words0, &abi::render_dispatch_block(0, 8, 4, 64, abi::ARGS_BASE));
        let (addr1, words1) = plan.core_block(1);
        assert_eq!(addr1, abi::dispatch_block_addr(1));
        assert_eq!(words1[(abi::dispatch::TASK_BASE / 4) as usize], 8);
        assert_eq!(words1[(abi::dispatch::TASK_END / 4) as usize], 16);
    }

    #[test]
    fn plan_mirrors_the_work_mapping() {
        let config = DeviceConfig::with_topology(2, 2, 4); // 8 slots/core
        let plan = LaunchPlan::compile(128, 4, &config); // 32 tasks, 16/core
        let mapping = WorkMapping::plan(128, 4, &config);
        assert_eq!(plan.n_tasks(), mapping.n_tasks());
        assert_eq!(plan.rounds(), mapping.rounds());
        assert_eq!(plan.total_rounds(), mapping.total_rounds());
        assert_eq!(plan.scenario(), mapping.scenario());
        assert_eq!(plan.active_cores(), mapping.active_cores());
    }

    #[test]
    fn dispatch_stats_accumulate_and_derive() {
        let mut total = DispatchStats::default();
        assert_eq!(total.rounds_per_launch(), 0.0);
        assert_eq!(total.mean_lanes_per_round(), 0.0);
        assert_eq!(total.fused_share(), 0.0);
        assert_eq!(total.mean_fused_block_len(), 0.0);
        total.accumulate(&DispatchStats {
            launches: 2,
            rounds: 8,
            round_tasks: 64,
            instructions: 300,
            fused_instructions: 90,
            fused_blocks: 20,
        });
        total.accumulate(&DispatchStats {
            launches: 2,
            rounds: 2,
            round_tasks: 16,
            instructions: 100,
            fused_instructions: 110,
            fused_blocks: 30,
        });
        assert_eq!(total.launches, 4);
        assert_eq!(total.rounds, 10);
        assert_eq!(total.round_tasks, 80);
        assert_eq!(total.instructions, 400);
        assert_eq!(total.fused_instructions, 200);
        assert_eq!(total.fused_blocks, 50);
        assert!((total.rounds_per_launch() - 2.5).abs() < 1e-12);
        assert!((total.mean_lanes_per_round() - 8.0).abs() < 1e-12);
        assert!((total.fused_share() - 0.5).abs() < 1e-12);
        assert!((total.mean_fused_block_len() - 4.0).abs() < 1e-12);
    }
}
