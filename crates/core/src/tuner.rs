//! Runtime `local_work_size` selection — Eq. 1 of the paper.

use std::fmt;

use vortex_sim::DeviceConfig;

/// Computes the paper's optimal `local_work_size`:
///
/// ```text
/// lws = gws / hp,    hp = cores × warps × threads      (Eq. 1)
/// ```
///
/// Integer division, clamped to at least 1 — which makes the policy
/// resolve to `lws = 1` whenever the hardware parallelism exceeds the
/// global work size, exactly as §3 of the paper observes. Delegates to
/// [`autotune::eq1_floor`](crate::autotune::eq1_floor), the single
/// source of the Eq. 1 arithmetic since PR 8.
///
/// # Examples
///
/// ```
/// use vortex_core::optimal_lws;
/// assert_eq!(optimal_lws(4096, 8), 512);
/// assert_eq!(optimal_lws(128, 65536), 1); // hp > gws ⇒ naive mapping
/// ```
pub fn optimal_lws(gws: u32, hp: u64) -> u32 {
    crate::autotune::eq1_floor(gws, hp)
}

/// How the host chooses `local_work_size` for a launch.
///
/// `Naive1` and `Fixed32` are the two baselines the paper compares
/// against; `Auto` is the paper's hardware-aware runtime policy.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum LwsPolicy {
    /// `lws = 1`: never unroll the kernel over one thread (paper baseline).
    Naive1,
    /// `lws = 32`: a fixed, hardware-agnostic choice (paper baseline).
    Fixed32,
    /// Eq. 1: `lws = max(1, gws / hp)`, evaluated at runtime from the
    /// device configuration (the paper's contribution).
    Auto,
    /// Ceiling variant of Eq. 1 (`⌈gws / hp⌉`), for ablation studies.
    AutoCeil,
    /// A programmer-specified value.
    Explicit(u32),
}

impl LwsPolicy {
    /// Resolves the policy for a launch of `gws` items on `config`.
    ///
    /// The result is clamped to `1..=gws`.
    pub fn lws_for(self, gws: u32, config: &DeviceConfig) -> u32 {
        let hp = config.hardware_parallelism();
        let raw = match self {
            LwsPolicy::Naive1 => 1,
            LwsPolicy::Fixed32 => 32,
            LwsPolicy::Auto => crate::autotune::eq1_floor(gws, hp),
            LwsPolicy::AutoCeil => crate::autotune::eq1_ceil(gws, hp),
            LwsPolicy::Explicit(n) => n.max(1),
        };
        raw.min(gws.max(1))
    }

    /// Short label used in experiment tables (`lws=1`, `lws=32`, `ours`).
    pub fn label(self) -> String {
        match self {
            LwsPolicy::Naive1 => "lws=1".to_owned(),
            LwsPolicy::Fixed32 => "lws=32".to_owned(),
            LwsPolicy::Auto => "ours".to_owned(),
            LwsPolicy::AutoCeil => "ours-ceil".to_owned(),
            LwsPolicy::Explicit(n) => format!("lws={n}"),
        }
    }
}

impl fmt::Display for LwsPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The three mapping regimes of §2 of the paper, determined by the
/// relation between `lws` and `gws / hp`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum MappingScenario {
    /// `lws < gws/hp`: more software warps than hardware — execution is
    /// serialised over multiple in-kernel dispatch rounds.
    MultiCall,
    /// `lws = gws/hp`: every hardware slot gets exactly one task in a
    /// single round.
    ExactFit,
    /// `lws > gws/hp`: a single round that leaves hardware slots idle.
    Underfilled,
}

impl MappingScenario {
    /// Classifies a launch.
    pub fn classify(gws: u32, lws: u32, hp: u64) -> Self {
        let n_tasks = u64::from(gws).div_ceil(u64::from(lws.max(1)));
        match n_tasks.cmp(&hp) {
            std::cmp::Ordering::Greater => MappingScenario::MultiCall,
            std::cmp::Ordering::Equal => MappingScenario::ExactFit,
            std::cmp::Ordering::Less => MappingScenario::Underfilled,
        }
    }
}

impl fmt::Display for MappingScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MappingScenario::MultiCall => "multi-call (lws < gws/hp)",
            MappingScenario::ExactFit => "exact fit (lws = gws/hp)",
            MappingScenario::Underfilled => "under-filled (lws > gws/hp)",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_examples_from_the_paper() {
        // Fig. 1: vecadd gws=128 on 1c2w4t (hp=8) -> optimal lws=16.
        assert_eq!(optimal_lws(128, 8), 16);
        // §3: hp > gws resolves to lws=1.
        assert_eq!(optimal_lws(128, 256), 1);
    }

    #[test]
    fn policies_resolve() {
        let cfg = DeviceConfig::with_topology(1, 2, 4);
        assert_eq!(LwsPolicy::Naive1.lws_for(128, &cfg), 1);
        assert_eq!(LwsPolicy::Fixed32.lws_for(128, &cfg), 32);
        assert_eq!(LwsPolicy::Auto.lws_for(128, &cfg), 16);
        assert_eq!(LwsPolicy::Explicit(64).lws_for(128, &cfg), 64);
        // lws never exceeds gws
        assert_eq!(LwsPolicy::Fixed32.lws_for(8, &cfg), 8);
        assert_eq!(LwsPolicy::Explicit(0).lws_for(8, &cfg), 1);
    }

    #[test]
    fn auto_ceil_rounds_up() {
        let cfg = DeviceConfig::with_topology(1, 2, 4); // hp=8
        assert_eq!(LwsPolicy::Auto.lws_for(100, &cfg), 12); // floor(100/8)
        assert_eq!(LwsPolicy::AutoCeil.lws_for(100, &cfg), 13); // ceil
    }

    #[test]
    fn scenario_classification_matches_paper() {
        // gws=128, hp=8 (Fig. 1's example).
        assert_eq!(MappingScenario::classify(128, 1, 8), MappingScenario::MultiCall);
        assert_eq!(MappingScenario::classify(128, 16, 8), MappingScenario::ExactFit);
        assert_eq!(MappingScenario::classify(128, 32, 8), MappingScenario::Underfilled);
        assert_eq!(MappingScenario::classify(128, 64, 8), MappingScenario::Underfilled);
    }

    #[test]
    fn auto_policy_yields_exact_fit_when_divisible() {
        for (gws, topo) in [(4096u32, (2usize, 4usize, 8usize)), (1024, (1, 2, 2))] {
            let cfg = DeviceConfig::with_topology(topo.0, topo.1, topo.2);
            let lws = LwsPolicy::Auto.lws_for(gws, &cfg);
            assert_eq!(
                MappingScenario::classify(gws, lws, cfg.hardware_parallelism()),
                MappingScenario::ExactFit
            );
        }
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(LwsPolicy::Naive1.label(), "lws=1");
        assert_eq!(LwsPolicy::Fixed32.label(), "lws=32");
        assert_eq!(LwsPolicy::Auto.label(), "ours");
    }
}
