//! Canonical content digests for campaign-cache keys.
//!
//! A campaign result is a pure function of *(program words, dataset,
//! device configuration, mapping policy, engine semantics)*. This module
//! provides the stable, hand-rolled FNV-1a/64 digests over those inputs
//! that the persistent result store (`vortex-bench`) keys on:
//!
//! * [`Fnv64`] — the hasher itself, with a fixed canonical encoding for
//!   every value kind (no dependence on `std::hash` internals, struct
//!   layout or platform endianness — multi-byte values are folded
//!   little-endian, so digests are identical across runs, builds and
//!   machines);
//! * [`digest_program`] — the loaded code image;
//! * [`digest_device_config`] — **every** semantics-affecting field of
//!   [`DeviceConfig`], bound by exhaustive destructuring: adding a field
//!   to any configuration struct breaks compilation here until the new
//!   field is folded into the digest (or consciously excluded), so a
//!   configuration knob can never silently alias cache entries;
//! * [`ENGINE_SEMANTICS_VERSION`] — the invalidation lever. Any change
//!   that affects *simulated cycles or counters for the same inputs*
//!   (timing model, scheduler order, counter definitions) must bump it,
//!   which re-keys the entire store. Host-side optimisations that are
//!   verified bit-identical (the standing rule for perf PRs) do not.

use vortex_asm::Program;
use vortex_mem::{CacheConfig, DramConfig, MemConfig};
use vortex_sim::{DeviceConfig, TimingConfig};

/// Version of the simulator's *observable semantics*: the mapping from
/// (program, data, configuration) to cycles and counters. Bump on any
/// cycle-affecting or counter-affecting change; cached campaign rows from
/// other versions are unreadable by construction (the version is folded
/// into every key).
pub const ENGINE_SEMANTICS_VERSION: u32 = 1;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A streaming FNV-1a/64 hasher with a canonical input encoding.
///
/// # Examples
///
/// ```
/// use vortex_core::digest::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_bytes(b"abc");
/// // FNV-1a/64 of "abc" — a published reference value.
/// assert_eq!(h.finish(), 0xe71f_a219_0541_574b);
/// ```
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Folds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` widened to 64 bits (platform-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Folds a string, length-prefixed so concatenations cannot collide
    /// (`"ab" + "c"` digests differently from `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything folded so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Digest of a loaded program: entry address plus the relocated code
/// image, word by word. Symbols and section names are presentation
/// metadata (they never reach the device) and are excluded — two
/// assemblies producing the same words at the same base are the same
/// program.
pub fn digest_program(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.write_u32(program.entry());
    h.write_usize(program.words().len());
    for &w in program.words() {
        h.write_u32(w);
    }
    h.finish()
}

/// Digest of a full device configuration: topology, every pipeline
/// latency, the complete memory hierarchy and the IPDOM depth.
///
/// Exhaustive destructuring (no `..` anywhere) is the invalidation
/// guarantee: a field added to [`DeviceConfig`], [`TimingConfig`],
/// [`MemConfig`], [`CacheConfig`] or [`DramConfig`] fails to compile
/// until it is folded in below — a semantics-affecting knob can never be
/// silently omitted from the cache key.
pub fn digest_device_config(config: &DeviceConfig) -> u64 {
    let DeviceConfig { cores, warps, threads, timing, mem, ipdom_depth, cores_per_cluster } =
        config;
    let TimingConfig { alu, mul, div, fpu, fdiv, fsqrt, branch_bubble, simt, wspawn, barrier } =
        timing;
    let MemConfig {
        l1,
        l1_banks,
        l2,
        l2_banks,
        l1_latency,
        l2_latency,
        l2_interval,
        dram,
        l1_line_memo,
    } = mem;
    let DramConfig { latency: dram_latency, interval: dram_interval, channels } = dram;

    let mut h = Fnv64::new();
    // Topology.
    h.write_usize(*cores);
    h.write_usize(*warps);
    h.write_usize(*threads);
    h.write_usize(*ipdom_depth);
    // Pipeline timing.
    for v in [alu, mul, div, fpu, fdiv, fsqrt, branch_bubble, simt, wspawn, barrier] {
        h.write_u64(*v);
    }
    // Memory hierarchy: both cache geometries, field by field.
    for cache in [l1, l2] {
        let CacheConfig { size_bytes, ways, line_bytes } = cache;
        h.write_u32(*size_bytes);
        h.write_u32(*ways);
        h.write_u32(*line_bytes);
    }
    h.write_u32(*l1_banks);
    h.write_u32(*l2_banks);
    h.write_u64(*l1_latency);
    h.write_u64(*l2_latency);
    h.write_u64(*l2_interval);
    h.write_u64(*dram_latency);
    h.write_u64(*dram_interval);
    h.write_u32(*channels);
    h.write_bool(*l1_line_memo);
    // Clustering (PR 9). The knob is timing-transparent by construction
    // (clustered == flat is gated bit-identical in CI), so the flat
    // default is *consciously excluded* to keep every key written before
    // the field existed valid — all historical rows were flat. Clustered
    // layouts fold the knob in: their `topology_name()` differs, and a
    // key shared with the flat row would be rejected by the store's topo
    // cross-check as a collision. All non-cluster fields are fixed-width,
    // so the conditional tail cannot alias two distinct configurations.
    if *cores_per_cluster != 1 {
        h.write_usize(*cores_per_cluster);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        let digest = |s: &[u8]| {
            let mut h = Fnv64::new();
            h.write_bytes(s);
            h.finish()
        };
        assert_eq!(digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn str_digest_is_length_prefixed() {
        let pair = |a: &str, b: &str| {
            let mut h = Fnv64::new();
            h.write_str(a);
            h.write_str(b);
            h.finish()
        };
        assert_ne!(pair("ab", "c"), pair("a", "bc"));
    }

    /// The canonical encoding (and therefore every stored cache key) is
    /// frozen: this golden value may only change together with a bump of
    /// [`ENGINE_SEMANTICS_VERSION`], because changing the encoding
    /// re-keys every persisted campaign row.
    #[test]
    fn default_config_digest_is_stable() {
        let cfg = DeviceConfig::with_topology(4, 8, 16);
        let d = digest_device_config(&cfg);
        assert_eq!(d, digest_device_config(&cfg), "digest must be deterministic");
        assert_eq!(d, 0x7a0b_6590_b8bd_e96f, "canonical config encoding changed — see doc above");
    }

    #[test]
    fn program_digest_covers_entry_and_words() {
        let mut a = vortex_asm::Assembler::new(0x8000_0000);
        a.li(vortex_isa::reg::T0, 7);
        a.vx_tmc(vortex_isa::reg::ZERO);
        let p1 = a.assemble().unwrap();

        let mut b = vortex_asm::Assembler::new(0x8000_0000);
        b.li(vortex_isa::reg::T0, 8); // one immediate differs
        b.vx_tmc(vortex_isa::reg::ZERO);
        let p2 = b.assemble().unwrap();

        let mut c = vortex_asm::Assembler::new(0x8000_1000); // base differs
        c.li(vortex_isa::reg::T0, 7);
        c.vx_tmc(vortex_isa::reg::ZERO);
        let p3 = c.assemble().unwrap();

        assert_eq!(digest_program(&p1), digest_program(&p1));
        assert_ne!(digest_program(&p1), digest_program(&p2));
        assert_ne!(digest_program(&p1), digest_program(&p3));
    }

    /// Every semantics-affecting field must perturb the digest. Paired
    /// with the exhaustive destructuring in `digest_device_config`, this
    /// pins both directions: no field is omitted (compile error) and no
    /// field is folded into a dead position (runtime check here).
    #[test]
    fn every_config_field_perturbs_the_digest() {
        let base = DeviceConfig::with_topology(4, 8, 16);
        let d0 = digest_device_config(&base);
        let mut variants: Vec<(&str, DeviceConfig)> = Vec::new();

        let mut v = base;
        v.cores = 5;
        variants.push(("cores", v));
        let mut v = base;
        v.warps = 9;
        variants.push(("warps", v));
        let mut v = base;
        v.threads = 17;
        variants.push(("threads", v));
        let mut v = base;
        v.ipdom_depth = 33;
        variants.push(("ipdom_depth", v));

        macro_rules! timing_variant {
            ($($field:ident),*) => {
                $(
                    let mut v = base;
                    v.timing.$field += 1;
                    variants.push((stringify!($field), v));
                )*
            };
        }
        timing_variant!(alu, mul, div, fpu, fdiv, fsqrt, branch_bubble, simt, wspawn, barrier);

        let mut v = base;
        v.mem.l1.size_bytes *= 2;
        variants.push(("l1.size_bytes", v));
        let mut v = base;
        v.mem.l1.ways *= 2;
        variants.push(("l1.ways", v));
        let mut v = base;
        v.mem.l1.line_bytes *= 2;
        variants.push(("l1.line_bytes", v));
        let mut v = base;
        v.mem.l2.size_bytes *= 2;
        variants.push(("l2.size_bytes", v));
        let mut v = base;
        v.mem.l2.ways *= 2;
        variants.push(("l2.ways", v));
        let mut v = base;
        v.mem.l2.line_bytes *= 2;
        variants.push(("l2.line_bytes", v));
        let mut v = base;
        v.mem.l1_banks += 1;
        variants.push(("l1_banks", v));
        let mut v = base;
        v.mem.l2_banks += 1;
        variants.push(("l2_banks", v));
        let mut v = base;
        v.mem.l1_latency += 1;
        variants.push(("l1_latency", v));
        let mut v = base;
        v.mem.l2_latency += 1;
        variants.push(("l2_latency", v));
        let mut v = base;
        v.mem.l2_interval += 1;
        variants.push(("l2_interval", v));
        let mut v = base;
        v.mem.dram.latency += 1;
        variants.push(("dram.latency", v));
        let mut v = base;
        v.mem.dram.interval += 1;
        variants.push(("dram.interval", v));
        let mut v = base;
        v.mem.dram.channels += 1;
        variants.push(("dram.channels", v));
        let mut v = base;
        v.mem.l1_line_memo = true;
        variants.push(("l1_line_memo", v));
        let mut v = base;
        v.cores_per_cluster = 2;
        variants.push(("cores_per_cluster", v));

        let mut seen = vec![d0];
        for (field, variant) in &variants {
            let d = digest_device_config(variant);
            assert_ne!(d, d0, "field `{field}` does not perturb the config digest");
            assert!(!seen.contains(&d), "field `{field}` collides with another variant");
            seen.push(d);
        }
    }
}
