//! The paper's contribution: an OpenCL-style host runtime with
//! **hardware-aware, runtime `local_work_size` selection** for a
//! Vortex-like RISC-V GPGPU.
//!
//! The runtime mirrors the POCL + Vortex software stack analysed in the
//! paper:
//!
//! * a kernel is launched over a 1-D global work size (`gws`);
//! * the `local_work_size` (**lws**) decides how many kernel iterations
//!   each *task* executes sequentially (`n_tasks = ⌈gws / lws⌉`);
//! * tasks are split evenly across cores, then within a core threads-first
//!   across `warps × threads` hardware slots;
//! * when a core has more tasks than slots, warp 0 runs a **software
//!   dispatch loop** (spawn → work → barrier → respawn), which is the
//!   "multiple kernel calls at different timesteps" regime of the paper;
//! * when there are fewer tasks than slots the hardware is under-filled.
//!
//! [`LwsPolicy::Auto`] implements Eq. 1 of the paper,
//!
//! ```text
//! lws = gws / hp,    hp = cores × warps × threads
//! ```
//!
//! evaluated **at runtime** from the device's micro-architecture
//! parameters, so the programmer never specifies a mapping.
//!
//! # Examples
//!
//! Plan a mapping and inspect which regime it lands in:
//!
//! ```
//! use vortex_core::{LwsPolicy, MappingScenario, WorkMapping};
//! use vortex_sim::DeviceConfig;
//!
//! let cfg = DeviceConfig::with_topology(1, 2, 4); // hp = 8
//! let lws = LwsPolicy::Auto.lws_for(128, &cfg);
//! assert_eq!(lws, 16); // Eq. 1: 128 / 8
//! let plan = WorkMapping::plan(128, lws, &cfg);
//! assert_eq!(plan.scenario(), MappingScenario::ExactFit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod autotune;
pub mod digest;
mod mapping;
mod oracle;
mod plan;
mod runtime;
mod tuner;

pub use digest::{digest_device_config, digest_program, Fnv64, ENGINE_SEMANTICS_VERSION};
pub use mapping::{CoreRange, WorkMapping};
pub use oracle::{oracle_candidates, oracle_search, OracleResult};
pub use plan::{DispatchStats, LaunchPlan};
pub use runtime::{Buffer, LaunchError, LaunchParams, LaunchReport, Runtime};
pub use tuner::{optimal_lws, LwsPolicy, MappingScenario};
