//! Exhaustive lws search — the oracle the runtime policy is measured
//! against.
//!
//! The paper's contribution is that Eq. 1 needs *no* search; this module
//! provides the search anyway, so the gap between the runtime policy and
//! the best achievable mapping can be quantified (see the
//! `autotune_sweep` example and the ablation benches).

use vortex_sim::DeviceConfig;

/// The candidate lws values an exhaustive search should try for a launch
/// of `gws` items: 1, all powers of two up to `gws`, `gws` itself, and
/// the two Eq. 1 variants — deduplicated and sorted. Since PR 8 this is
/// an alias of [`autotune::lws_candidates`](crate::autotune::lws_candidates),
/// so the oracle and the online autotuner search exactly the same grid.
///
/// # Examples
///
/// ```
/// use vortex_core::oracle_candidates;
/// use vortex_sim::DeviceConfig;
/// let cfg = DeviceConfig::with_topology(1, 2, 4);
/// let c = oracle_candidates(100, &cfg);
/// assert!(c.contains(&1) && c.contains(&64) && c.contains(&100));
/// assert!(c.contains(&12)); // Eq.1 floor: 100/8
/// assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
/// ```
pub fn oracle_candidates(gws: u32, config: &DeviceConfig) -> Vec<u32> {
    crate::autotune::lws_candidates(gws, config)
}

/// Result of an exhaustive lws search.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OracleResult {
    /// The best lws found.
    pub lws: u32,
    /// Its cost in cycles.
    pub cycles: u64,
    /// Number of candidates evaluated.
    pub evaluated: usize,
}

/// Finds the best lws by measuring every candidate with a caller-supplied
/// cost function (typically a full simulated run). Ties resolve to the
/// smaller lws.
///
/// # Panics
///
/// Panics if `gws == 0`.
///
/// # Examples
///
/// ```
/// use vortex_core::{oracle_search, optimal_lws};
/// use vortex_sim::DeviceConfig;
/// let cfg = DeviceConfig::with_topology(1, 2, 4);
/// // A synthetic cost with its minimum at Eq.1's choice (16).
/// let result = oracle_search(128, &cfg, |lws| (lws as i64 - 16).unsigned_abs() + 1);
/// assert_eq!(result.lws, 16);
/// ```
pub fn oracle_search(
    gws: u32,
    config: &DeviceConfig,
    mut cost: impl FnMut(u32) -> u64,
) -> OracleResult {
    assert!(gws > 0, "gws must be positive");
    let candidates = oracle_candidates(gws, config);
    let mut best = OracleResult { lws: 1, cycles: u64::MAX, evaluated: 0 };
    for lws in candidates {
        let cycles = cost(lws);
        best.evaluated += 1;
        if cycles < best.cycles {
            best.lws = lws;
            best.cycles = cycles;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_cover_the_extremes() {
        let cfg = DeviceConfig::with_topology(2, 4, 8); // hp = 64
        let c = oracle_candidates(4096, &cfg);
        assert_eq!(*c.first().unwrap(), 1);
        assert_eq!(*c.last().unwrap(), 4096);
        assert!(c.contains(&64)); // Eq.1
    }

    #[test]
    fn search_finds_global_minimum_of_candidates() {
        let cfg = DeviceConfig::with_topology(1, 2, 2);
        let result = oracle_search(64, &cfg, |lws| u64::from(lws ^ 8));
        assert_eq!(result.lws, 8);
        assert_eq!(result.cycles, 0);
        assert!(result.evaluated >= 7);
    }

    #[test]
    fn ties_resolve_to_smaller_lws() {
        let cfg = DeviceConfig::with_topology(1, 1, 1);
        let result = oracle_search(16, &cfg, |_| 42);
        assert_eq!(result.lws, 1);
    }

    #[test]
    fn gws_one_is_legal() {
        let cfg = DeviceConfig::with_topology(1, 1, 1);
        let c = oracle_candidates(1, &cfg);
        assert_eq!(c, vec![1]);
    }
}
