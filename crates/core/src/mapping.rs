//! POCL-style workload mapping: tasks → cores → warps → threads.

use vortex_sim::DeviceConfig;

use crate::tuner::MappingScenario;

/// The contiguous task range assigned to one core.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CoreRange {
    /// Core index.
    pub core: usize,
    /// First task id (inclusive).
    pub task_base: u32,
    /// One past the last task id.
    pub task_end: u32,
}

impl CoreRange {
    /// Number of tasks assigned to this core.
    pub fn len(&self) -> u32 {
        self.task_end - self.task_base
    }

    /// Whether the core received no work.
    pub fn is_empty(&self) -> bool {
        self.task_end == self.task_base
    }
}

/// A fully resolved launch plan for one kernel call.
///
/// Mirrors the mapping performed by the Vortex runtime: `n_tasks =
/// ⌈gws/lws⌉` tasks are distributed evenly and contiguously across cores;
/// within a core, tasks fill threads first, then warps; surplus tasks are
/// processed by the in-kernel dispatch loop in successive *rounds*.
///
/// # Examples
///
/// ```
/// use vortex_core::WorkMapping;
/// use vortex_sim::DeviceConfig;
///
/// let cfg = DeviceConfig::with_topology(2, 2, 4); // 16 slots
/// let plan = WorkMapping::plan(128, 4, &cfg);     // 32 tasks
/// assert_eq!(plan.n_tasks(), 32);
/// assert_eq!(plan.core_ranges().len(), 2);
/// assert_eq!(plan.rounds(), 2); // 16 tasks/core on 8 slots/core
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkMapping {
    gws: u32,
    lws: u32,
    n_tasks: u32,
    hp: u64,
    threads: u32,
    slots_per_core: u32,
    ranges: Vec<CoreRange>,
}

impl WorkMapping {
    /// Plans the mapping of `gws` kernel iterations with the given `lws`
    /// onto `config`.
    ///
    /// # Panics
    ///
    /// Panics if `gws` or `lws` is zero.
    pub fn plan(gws: u32, lws: u32, config: &DeviceConfig) -> Self {
        assert!(gws > 0, "gws must be positive");
        assert!(lws > 0, "lws must be positive");
        let n_tasks = gws.div_ceil(lws);
        let cores = config.cores as u32;
        let tasks_per_core = n_tasks.div_ceil(cores);
        let mut ranges = Vec::with_capacity(config.cores);
        for c in 0..cores {
            let base = (c * tasks_per_core).min(n_tasks);
            let end = ((c + 1) * tasks_per_core).min(n_tasks);
            if end > base {
                ranges.push(CoreRange { core: c as usize, task_base: base, task_end: end });
            }
        }
        WorkMapping {
            gws,
            lws,
            n_tasks,
            hp: config.hardware_parallelism(),
            threads: config.threads as u32,
            slots_per_core: (config.warps * config.threads) as u32,
            ranges,
        }
    }

    /// Global work size.
    pub fn gws(&self) -> u32 {
        self.gws
    }

    /// Local work size (iterations per task).
    pub fn lws(&self) -> u32 {
        self.lws
    }

    /// Total tasks (`⌈gws/lws⌉`).
    pub fn n_tasks(&self) -> u32 {
        self.n_tasks
    }

    /// Task ranges of the cores that received work.
    pub fn core_ranges(&self) -> &[CoreRange] {
        &self.ranges
    }

    /// Cores that participate in the launch.
    pub fn active_cores(&self) -> usize {
        self.ranges.len()
    }

    /// In-kernel dispatch rounds needed by the busiest core.
    pub fn rounds(&self) -> u32 {
        self.ranges.iter().map(|r| r.len().div_ceil(self.slots_per_core)).max().unwrap_or(0)
    }

    /// Dispatch rounds summed over every participating core — the raw
    /// device-wide round count a launch executes (each core's warp 0 runs
    /// its own round loop).
    pub fn total_rounds(&self) -> u64 {
        self.ranges.iter().map(|r| u64::from(r.len().div_ceil(self.slots_per_core))).sum()
    }

    /// Warps the busiest core activates in its first round.
    pub fn peak_warps(&self) -> u32 {
        self.ranges
            .iter()
            .map(|r| r.len().min(self.slots_per_core).div_ceil(self.threads))
            .max()
            .unwrap_or(0)
    }

    /// Warp activations on one core with `tasks` assigned: every full
    /// round wakes all `warps` slots, the tail round only the warps its
    /// remaining tasks fill (tasks pack threads-first).
    fn core_warp_groups(&self, tasks: u32) -> u64 {
        let full = u64::from(tasks / self.slots_per_core);
        let rem = tasks % self.slots_per_core;
        full * u64::from(self.slots_per_core / self.threads) + u64::from(rem.div_ceil(self.threads))
    }

    /// Warp activations on the busiest core, summed over its dispatch
    /// rounds. Each activated warp executes one task per lane in
    /// lockstep, so this is the launch's *serialised issue depth* in
    /// units of per-task instruction streams — the occupancy feature the
    /// autotuner's cost model is built on (see
    /// [`autotune::OccupancyFeatures`](crate::autotune::OccupancyFeatures)).
    pub fn busiest_warp_groups(&self) -> u64 {
        self.ranges.iter().map(|r| self.core_warp_groups(r.len())).max().unwrap_or(0)
    }

    /// Warp activations summed over every participating core and round —
    /// the device-wide count of per-task instruction streams executed.
    /// Measured issue counts divide by this to give instructions per
    /// warp-group, the quantity that is linear in `lws`.
    pub fn total_warp_groups(&self) -> u64 {
        self.ranges.iter().map(|r| self.core_warp_groups(r.len())).sum()
    }

    /// The paper's mapping regime for this plan.
    pub fn scenario(&self) -> MappingScenario {
        MappingScenario::classify(self.gws, self.lws, self.hp)
    }

    /// Fraction of hardware task slots that are busy in the last round of
    /// the busiest core — 1.0 means perfectly filled rounds.
    pub fn tail_utilization(&self) -> f64 {
        let Some(busiest) = self.ranges.iter().max_by_key(|r| r.len()) else {
            return 0.0;
        };
        let rem = busiest.len() % self.slots_per_core;
        let tail = if rem == 0 { self.slots_per_core } else { rem };
        f64::from(tail) / f64::from(self.slots_per_core)
    }

    /// Checks that every task id in `0..n_tasks` is covered by exactly one
    /// core range (a planning invariant, used by property tests).
    pub fn verify_coverage(&self) -> bool {
        let mut next = 0u32;
        for r in &self.ranges {
            if r.task_base != next || r.task_end < r.task_base {
                return false;
            }
            next = r.task_end;
        }
        next == self.n_tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_plan_has_one_round() {
        let cfg = DeviceConfig::with_topology(1, 2, 4); // hp = 8
        let plan = WorkMapping::plan(128, 16, &cfg); // 8 tasks
        assert_eq!(plan.n_tasks(), 8);
        assert_eq!(plan.rounds(), 1);
        assert_eq!(plan.scenario(), MappingScenario::ExactFit);
        assert!(plan.verify_coverage());
    }

    #[test]
    fn naive_mapping_multiplies_rounds() {
        let cfg = DeviceConfig::with_topology(1, 2, 4);
        let plan = WorkMapping::plan(128, 1, &cfg); // 128 tasks on 8 slots
        assert_eq!(plan.rounds(), 16);
        assert_eq!(plan.total_rounds(), 16);
        assert_eq!(plan.scenario(), MappingScenario::MultiCall);
    }

    #[test]
    fn total_rounds_sums_over_cores() {
        let cfg = DeviceConfig::with_topology(2, 2, 4); // 8 slots/core
        let plan = WorkMapping::plan(128, 4, &cfg); // 32 tasks, 16/core
        assert_eq!(plan.rounds(), 2);
        assert_eq!(plan.total_rounds(), 4);
        // Uneven split: 3 tasks over 8 cores -> 3 single-round cores.
        let cfg = DeviceConfig::with_topology(8, 2, 4);
        let plan = WorkMapping::plan(6, 2, &cfg);
        assert_eq!(plan.rounds(), 1);
        assert_eq!(plan.total_rounds(), 3);
    }

    #[test]
    fn oversized_lws_underfills() {
        let cfg = DeviceConfig::with_topology(1, 2, 4);
        let plan = WorkMapping::plan(128, 64, &cfg); // 2 tasks on 8 slots
        assert_eq!(plan.rounds(), 1);
        assert_eq!(plan.scenario(), MappingScenario::Underfilled);
        assert!(plan.tail_utilization() < 0.5);
    }

    #[test]
    fn cores_without_work_are_dropped() {
        let cfg = DeviceConfig::with_topology(8, 2, 4);
        let plan = WorkMapping::plan(6, 2, &cfg); // 3 tasks over 8 cores
        assert_eq!(plan.active_cores(), 3);
        assert!(plan.verify_coverage());
    }

    #[test]
    fn uneven_distribution_covers_everything() {
        let cfg = DeviceConfig::with_topology(3, 2, 2);
        let plan = WorkMapping::plan(1000, 7, &cfg); // 143 tasks over 3 cores
        assert_eq!(plan.n_tasks(), 143);
        assert!(plan.verify_coverage());
        let total: u32 = plan.core_ranges().iter().map(|r| r.len()).sum();
        assert_eq!(total, 143);
    }

    #[test]
    fn warp_groups_count_tail_rounds_exactly() {
        let cfg = DeviceConfig::with_topology(1, 2, 4); // 8 slots, 2 warps
                                                        // 20 tasks on one core: 2 full rounds (2 warps each) + a tail
                                                        // round of 4 tasks (1 warp).
        let plan = WorkMapping::plan(20, 1, &cfg);
        assert_eq!(plan.rounds(), 3);
        assert_eq!(plan.busiest_warp_groups(), 5);
        assert_eq!(plan.total_warp_groups(), 5);
        // Two cores, uneven split: 10 tasks/core -> 1 full round + 2-task
        // tail (1 warp) each.
        let cfg = DeviceConfig::with_topology(2, 2, 4);
        let plan = WorkMapping::plan(20, 1, &cfg);
        assert_eq!(plan.busiest_warp_groups(), 3);
        assert_eq!(plan.total_warp_groups(), 6);
        // Exact fit: one round, all warps.
        let plan = WorkMapping::plan(128, 16, &DeviceConfig::with_topology(1, 2, 4));
        assert_eq!(plan.busiest_warp_groups(), 2);
    }

    #[test]
    fn non_power_of_two_cores() {
        let cfg = DeviceConfig::with_topology(5, 4, 8);
        let plan = WorkMapping::plan(4096, 8, &cfg);
        assert!(plan.verify_coverage());
        assert_eq!(plan.active_cores(), 5);
    }
}
