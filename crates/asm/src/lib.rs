//! A two-pass assembler for the Vortex-like RISC-V GPGPU ISA.
//!
//! Kernels in this reproduction are written directly against the machine
//! ISA through [`Assembler`], a builder with:
//!
//! * one method per instruction mnemonic (`add`, `lw`, `vx_split`, …),
//! * forward-referencing [`Label`]s with automatic offset fix-up,
//! * pseudo-instructions (`li`, `la`, `mv`, `j`, …) that expand to one or
//!   two base instructions, and
//! * named **semantic sections** that tag address ranges — these become the
//!   waveform annotations of the paper's Figure 1 trace plots.
//!
//! The result is a [`Program`]: a relocated code image plus its symbol and
//! section tables, ready to be loaded into the simulator.
//!
//! # Examples
//!
//! A counted loop, assembled at the default kernel base address:
//!
//! ```
//! use vortex_asm::Assembler;
//! use vortex_isa::reg;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Assembler::new(0x8000_0000);
//! a.li(reg::T0, 10);
//! let loop_top = a.label("loop");
//! a.bind(loop_top)?;
//! a.addi(reg::T0, reg::T0, -1);
//! a.bnez(reg::T0, loop_top);
//! a.vx_tmc(reg::ZERO); // halt the warp
//! let program = a.assemble()?;
//! assert_eq!(program.entry(), 0x8000_0000);
//! assert!(program.len() >= 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod assembler;
mod program;

pub use assembler::{AsmError, Assembler, Label};
pub use program::{Program, Section, Symbol};
